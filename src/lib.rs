#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-emu — Bandwidth-Based Lower Bounds on Slowdown for Efficient
//! # Emulations of Fixed-Connection Networks
//!
//! A faithful, executable reproduction of Kruskal & Rappoport (SPAA 1994).
//! The paper proves that any *efficient* (work-preserving, redundant-model)
//! emulation of a guest fixed-connection network `G` on a bottleneck-free
//! host `H` incurs slowdown `S ≥ Ω(β(G)/β(H))`, where `β` is communication
//! bandwidth — the expected message delivery rate under symmetric traffic.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`asymptotics`] — exact Θ-algebra, crossover solving, exponent fitting;
//! * [`multigraph`] — multigraphs, traffic, cuts, embeddings, collapse;
//! * [`topology`] — the 19 machine families of Table 4;
//! * [`routing`] — synchronous unit-capacity packet-routing simulator;
//! * [`bandwidth`] — operational β estimation, flux bounds, bottleneck audit;
//! * [`core`] — circuits, Lemmas 9/11, the Efficient Emulation Theorem,
//!   host-size tables (Tables 1–3) and executable emulation strategies;
//! * [`exec`] — deterministic fork-join pool powering the parallel sweeps
//!   (`--jobs N`), with per-job seeds that make results independent of
//!   scheduling order;
//! * [`faults`] — the deterministic fault plane: seeded [`faults::FaultPlan`]s
//!   that kill wires and processors reproducibly, feeding the degraded-β
//!   sweeps and the router's typed abort causes.
//!
//! ## Quickstart
//!
//! ```
//! use fcn_emu::prelude::*;
//!
//! // The paper's introduction example: an n-processor de Bruijn guest on an
//! // m-processor 2-d mesh host can only be efficiently emulated when
//! // m = O(lg^2 n).
//! let guest = Machine::de_bruijn(10);        // n = 1024
//! let host = Machine::mesh(2, 8);            // 8x8 mesh
//! let bound = slowdown_lower_bound(&guest.family(), &host.family());
//! assert_eq!(bound.to_string(), "Θ((n * lg^-1 n) / (m^(1/2)))");
//!
//! // Maximum efficient host size: O(lg^2 n).
//! let cap = max_host_size(&guest.family(), &host.family());
//! assert_eq!(cap.to_cell(), "O(lg^2 n)");
//! ```

pub use fcn_asymptotics as asymptotics;
pub use fcn_bandwidth as bandwidth;
pub use fcn_core as core;
pub use fcn_exec as exec;
pub use fcn_faults as faults;
pub use fcn_multigraph as multigraph;
pub use fcn_routing as routing;
pub use fcn_topology as topology;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use fcn_asymptotics::{Asym, Rational};
    pub use fcn_bandwidth::{BandwidthEstimate, BandwidthEstimator, FluxBound};
    pub use fcn_core::prelude::*;
    pub use fcn_exec::Pool;
    pub use fcn_faults::{FaultPlan, FaultSpec};
    pub use fcn_multigraph::{Multigraph, Traffic};
    pub use fcn_routing::{RouterConfig, RoutingOutcome};
    pub use fcn_topology::{Family, Machine, Topology};
}
