//! The complete measured pipeline, end to end: measure β̂ for a guest and a
//! host family sweep on the router, derive the *empirical* maximum host
//! size, and check it lands where the Efficient Emulation Theorem's
//! symbolic solution says it should.

use fcn_emu::bandwidth::BandwidthEstimator;
use fcn_emu::core::{empirical_host_size, max_host_size, HostSizeBound};
use fcn_emu::prelude::*;
use fcn_emu::routing::{saturation_throughput, SteadyConfig};

fn estimator() -> BandwidthEstimator {
    BandwidthEstimator {
        multipliers: vec![2, 4],
        trials: 2,
        ..Default::default()
    }
}

#[test]
fn measured_crossover_tracks_symbolic_for_debruijn_on_mesh() {
    // Measure β̂ for 2-d mesh hosts at several sizes...
    let est = estimator();
    let host_samples: Vec<(f64, f64)> = [4usize, 6, 8, 12, 16]
        .iter()
        .map(|&side| {
            let h = Machine::mesh(2, side);
            let b = est.estimate_symmetric(&h);
            (h.processors() as f64, b.rate)
        })
        .collect();
    // ... and β̂ for a de Bruijn guest.
    let guest = Machine::de_bruijn(9); // n = 512
    let guest_beta = est.estimate_symmetric(&guest).rate;

    let m_empirical = empirical_host_size(guest_beta, guest.processors() as f64, &host_samples);
    // Symbolic: m* = Θ(lg² n) = 81 at n = 512 (unit constants). Constants
    // differ, so compare within an order of magnitude and require the
    // empirical crossover to be far below full size.
    let symbolic = match max_host_size(&Family::DeBruijn, &Family::Mesh(2)) {
        HostSizeBound::Constrained(a) => a.eval(512.0),
        HostSizeBound::FullSize => panic!("expected a cap"),
    };
    assert!(
        m_empirical > 0.1 * symbolic && m_empirical < 10.0 * symbolic,
        "empirical {m_empirical} vs symbolic {symbolic}"
    );
    assert!(m_empirical < 512.0 * 0.9);
}

#[test]
fn batch_and_steady_state_agree_within_constants() {
    for machine in [Machine::mesh(2, 8), Machine::tree(5), Machine::de_bruijn(6)] {
        let t = machine.symmetric_traffic();
        let batch = estimator().estimate(&machine, &t).rate;
        let (steady, _) = saturation_throughput(
            &machine,
            &t,
            SteadyConfig {
                warmup_ticks: 64,
                measure_ticks: 256,
                ..Default::default()
            },
        );
        let ratio = steady / batch;
        assert!(
            (0.3..=3.5).contains(&ratio),
            "{}: batch {batch} steady {steady}",
            machine.name()
        );
    }
}

#[test]
fn theorem6_certificates_close_for_every_family_class() {
    use fcn_emu::bandwidth::theorem6_sandwich;
    // One representative per β class.
    for machine in [
        Machine::linear_array(48), // Θ(1)
        Machine::xtree(5),         // Θ(lg n)
        Machine::mesh(2, 7),       // Θ(sqrt n)
        Machine::de_bruijn(6),     // Θ(n / lg n)
    ] {
        let c = theorem6_sandwich(&machine, 8, 13);
        assert!(c.is_consistent(4.0), "{}: {c:?}", machine.name());
        assert!(
            c.sandwich_ratio() < 24.0,
            "{}: ratio {}",
            machine.name(),
            c.sandwich_ratio()
        );
    }
}

#[test]
fn statements_and_tables_agree() {
    use fcn_emu::core::{generate_table, table3_spec, theorem5};
    let t5 = theorem5();
    let table = generate_table(table3_spec(&[2]), &[1 << 16]);
    for (guest, host, cell) in t5.conclusions() {
        if let Some(found) = table
            .cells
            .iter()
            .find(|c| c.guest == guest.id() && c.host == host.id())
        {
            assert_eq!(found.bound, cell, "{guest} on {host}");
        }
    }
}
