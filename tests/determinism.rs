//! Reproducibility suite for the parallel sweep engine.
//!
//! Every measurement grid in the workspace fans out over
//! [`fcn_exec::Pool`] with seeds derived purely from job indices, so the
//! numbers must be *bit-identical* for every worker count. These tests pin
//! that contract end-to-end: estimator grids, family sweeps, and bottleneck
//! audits across four machine families, parallel vs `jobs = 1`, compared
//! through their full serialized records (not just the headline rates).
//!
//! The sharded router extends the same contract along a second axis: every
//! `jobs = 1 ≡ jobs = 4` pin here has a `shards = 1 ≡ shards = 4` twin
//! (estimator grids, degraded sweeps, and `fcnemu` stdout), because the
//! boundary exchange replays the sequential send order exactly.

use fcn_emu::bandwidth::{audit_bottleneck_freeness, sweep_family, BandwidthEstimator};
use fcn_emu::prelude::*;

/// The four families the suite pins (one per Table 4 β class shape).
const FAMILIES: [Family; 4] = [
    Family::Mesh(2),
    Family::Tree,
    Family::DeBruijn,
    Family::XTree,
];

fn estimator(jobs: usize) -> BandwidthEstimator {
    BandwidthEstimator {
        multipliers: vec![2, 4],
        trials: 2,
        jobs,
        ..Default::default()
    }
}

/// Serialize to the JSON-lines form the bench binaries write; equality here
/// is equality of the published record, field for field.
fn record<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("record serializes")
}

#[test]
fn estimates_are_bit_identical_across_worker_counts() {
    for family in FAMILIES {
        let machine = family.build_near(64, 0xd5);
        let baseline = estimator(1).estimate_symmetric(&machine);
        for jobs in [2, 3, 8, 0] {
            let parallel = estimator(jobs).estimate_symmetric(&machine);
            assert_eq!(
                record(&baseline),
                record(&parallel),
                "{}: estimate differs at jobs={jobs}",
                family.id()
            );
        }
    }
}

#[test]
fn estimates_are_bit_identical_across_shard_counts() {
    // The sharded-router twin of the jobs pin above: the tick loop itself
    // fans out over K shard workers, and the boundary exchange must make
    // that invisible — including combined with grid-level parallelism.
    for family in FAMILIES {
        let machine = family.build_near(64, 0xd5);
        let baseline = estimator(1).estimate_symmetric(&machine);
        for shards in [2, 4] {
            let sharded = estimator(1)
                .with_shards(shards)
                .estimate_symmetric(&machine);
            assert_eq!(
                record(&baseline),
                record(&sharded),
                "{}: estimate differs at shards={shards}",
                family.id()
            );
        }
        let both = estimator(4).with_shards(4).estimate_symmetric(&machine);
        assert_eq!(
            record(&baseline),
            record(&both),
            "{}: estimate differs at jobs=4 x shards=4",
            family.id()
        );
    }
}

#[test]
fn degraded_sweeps_are_bit_identical_across_shard_counts() {
    // Fault planes change which wires exist, not how the shard boundary
    // replays arrival order: the full degraded curve (rates, strandings,
    // replans, abort causes) is shard-count invariant.
    use fcn_emu::bandwidth::DegradedSweep;
    let sweep = DegradedSweep {
        fault_rates: vec![0.0, 0.15],
        multipliers: vec![2, 4],
        trials: 2,
        ..Default::default()
    };
    for family in FAMILIES {
        let machine = family.build_near(64, 0x7a);
        let baseline = sweep.clone().sweep_symmetric(&machine);
        let sharded = DegradedSweep {
            shards: 4,
            ..sweep.clone()
        }
        .sweep_symmetric(&machine);
        assert_eq!(
            record(&baseline),
            record(&sharded),
            "{}: degraded sweep differs between shards=1 and shards=4",
            family.id()
        );
    }
}

/// Run the `fcnemu` CLI in-process, returning (exit code, stdout).
fn cli(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = fcn_cli::run(&argv, &mut out);
    (
        code,
        String::from_utf8(out).expect("fcnemu output is UTF-8"),
    )
}

#[test]
fn cli_reports_are_byte_identical_across_shard_counts() {
    // End-to-end: the user-visible reports — not just the in-memory
    // records — are byte-for-byte identical under `--shards 4`.
    for (family, size) in [("mesh2", "64"), ("de_bruijn", "64")] {
        let (c1, seq) = cli(&["beta", family, size, "--trials", "2", "--shards", "1"]);
        let (c4, sh) = cli(&["beta", family, size, "--trials", "2", "--shards", "4"]);
        assert_eq!((c1, c4), (0, 0), "{family}: beta exit codes");
        assert_eq!(seq, sh, "{family}: beta stdout differs at --shards 4");
    }
    let (c1, seq) = cli(&["audit", "tree", "31", "--shards", "1"]);
    let (c4, sh) = cli(&["audit", "tree", "31", "--shards", "4"]);
    assert_eq!((c1, c4), (0, 0), "audit exit codes");
    assert_eq!(seq, sh, "audit stdout differs at --shards 4");
}

#[test]
fn family_sweeps_are_bit_identical_across_worker_counts() {
    let targets = [64usize, 128, 256];
    for family in FAMILIES {
        let baseline = sweep_family(family, &targets, &estimator(1), 0x5eed);
        let parallel = sweep_family(family, &targets, &estimator(0), 0x5eed);
        assert_eq!(
            record(&baseline),
            record(&parallel),
            "{}: sweep differs between jobs=1 and jobs=0",
            family.id()
        );
    }
}

#[test]
fn bottleneck_audits_are_bit_identical_across_worker_counts() {
    for family in FAMILIES {
        let machine = family.build_near(64, 0xa0);
        let baseline = audit_bottleneck_freeness(&machine, &estimator(1), 0xa1);
        let parallel = audit_bottleneck_freeness(&machine, &estimator(4), 0xa1);
        assert_eq!(
            record(&baseline),
            record(&parallel),
            "{}: audit differs between jobs=1 and jobs=4",
            family.id()
        );
    }
}

#[test]
fn estimates_are_bit_identical_with_telemetry_on_and_off() {
    // Observability must be a read-only lens: enabling the global
    // fcn-telemetry registry changes no simulated bit, sequentially or
    // under the worker pool (whose shard merge rides the same fan-out).
    let reg = fcn_telemetry::global();
    let machine = Family::Mesh(2).build_near(64, 0xd5);
    reg.set_enabled(false);
    let baseline = record(&estimator(1).estimate_symmetric(&machine));
    for jobs in [1, 4] {
        reg.set_enabled(true);
        let on = record(&estimator(jobs).estimate_symmetric(&machine));
        reg.set_enabled(false);
        let off = record(&estimator(jobs).estimate_symmetric(&machine));
        assert_eq!(baseline, on, "jobs={jobs}: telemetry-on estimate differs");
        assert_eq!(baseline, off, "jobs={jobs}: telemetry-off estimate differs");
    }
    let _ = fcn_telemetry::take_shard();
}

#[test]
fn pool_results_are_index_ordered_regardless_of_schedule() {
    // The job bodies finish in scrambled order (longer work for lower
    // indices); the pool must still return results slot-by-slot.
    let pool = Pool::new(0);
    let out = pool.run(64, |i| {
        // Unbalanced busywork so threads interleave unpredictably.
        let mut acc = i as u64;
        for _ in 0..((64 - i) * 1000) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        // Fold the busywork through black_box so it cannot be optimized
        // away, then discard it: the result is the index alone.
        (i, std::hint::black_box(acc).wrapping_sub(acc))
    });
    for (slot, (i, z)) in out.iter().enumerate() {
        assert_eq!(slot, *i);
        assert_eq!(*z, 0);
    }
}

#[test]
fn job_seeds_are_pure_functions_of_index() {
    use fcn_emu::exec::job_seed;
    // Same (base, index) -> same seed; distinct indices -> distinct seeds.
    let base = 0xfeed_f00d;
    let seeds: Vec<u64> = (0..256).map(|i| job_seed(base, i)).collect();
    let again: Vec<u64> = (0..256).map(|i| job_seed(base, i)).collect();
    assert_eq!(seeds, again);
    let mut sorted = seeds.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), seeds.len(), "seed collision across indices");
}
