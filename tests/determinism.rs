//! Reproducibility suite for the parallel sweep engine.
//!
//! Every measurement grid in the workspace fans out over
//! [`fcn_exec::Pool`] with seeds derived purely from job indices, so the
//! numbers must be *bit-identical* for every worker count. These tests pin
//! that contract end-to-end: estimator grids, family sweeps, and bottleneck
//! audits across four machine families, parallel vs `jobs = 1`, compared
//! through their full serialized records (not just the headline rates).

use fcn_emu::bandwidth::{audit_bottleneck_freeness, sweep_family, BandwidthEstimator};
use fcn_emu::prelude::*;

/// The four families the suite pins (one per Table 4 β class shape).
const FAMILIES: [Family; 4] = [
    Family::Mesh(2),
    Family::Tree,
    Family::DeBruijn,
    Family::XTree,
];

fn estimator(jobs: usize) -> BandwidthEstimator {
    BandwidthEstimator {
        multipliers: vec![2, 4],
        trials: 2,
        jobs,
        ..Default::default()
    }
}

/// Serialize to the JSON-lines form the bench binaries write; equality here
/// is equality of the published record, field for field.
fn record<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("record serializes")
}

#[test]
fn estimates_are_bit_identical_across_worker_counts() {
    for family in FAMILIES {
        let machine = family.build_near(64, 0xd5);
        let baseline = estimator(1).estimate_symmetric(&machine);
        for jobs in [2, 3, 8, 0] {
            let parallel = estimator(jobs).estimate_symmetric(&machine);
            assert_eq!(
                record(&baseline),
                record(&parallel),
                "{}: estimate differs at jobs={jobs}",
                family.id()
            );
        }
    }
}

#[test]
fn family_sweeps_are_bit_identical_across_worker_counts() {
    let targets = [64usize, 128, 256];
    for family in FAMILIES {
        let baseline = sweep_family(family, &targets, &estimator(1), 0x5eed);
        let parallel = sweep_family(family, &targets, &estimator(0), 0x5eed);
        assert_eq!(
            record(&baseline),
            record(&parallel),
            "{}: sweep differs between jobs=1 and jobs=0",
            family.id()
        );
    }
}

#[test]
fn bottleneck_audits_are_bit_identical_across_worker_counts() {
    for family in FAMILIES {
        let machine = family.build_near(64, 0xa0);
        let baseline = audit_bottleneck_freeness(&machine, &estimator(1), 0xa1);
        let parallel = audit_bottleneck_freeness(&machine, &estimator(4), 0xa1);
        assert_eq!(
            record(&baseline),
            record(&parallel),
            "{}: audit differs between jobs=1 and jobs=4",
            family.id()
        );
    }
}

#[test]
fn estimates_are_bit_identical_with_telemetry_on_and_off() {
    // Observability must be a read-only lens: enabling the global
    // fcn-telemetry registry changes no simulated bit, sequentially or
    // under the worker pool (whose shard merge rides the same fan-out).
    let reg = fcn_telemetry::global();
    let machine = Family::Mesh(2).build_near(64, 0xd5);
    reg.set_enabled(false);
    let baseline = record(&estimator(1).estimate_symmetric(&machine));
    for jobs in [1, 4] {
        reg.set_enabled(true);
        let on = record(&estimator(jobs).estimate_symmetric(&machine));
        reg.set_enabled(false);
        let off = record(&estimator(jobs).estimate_symmetric(&machine));
        assert_eq!(baseline, on, "jobs={jobs}: telemetry-on estimate differs");
        assert_eq!(baseline, off, "jobs={jobs}: telemetry-off estimate differs");
    }
    let _ = fcn_telemetry::take_shard();
}

#[test]
fn pool_results_are_index_ordered_regardless_of_schedule() {
    // The job bodies finish in scrambled order (longer work for lower
    // indices); the pool must still return results slot-by-slot.
    let pool = Pool::new(0);
    let out = pool.run(64, |i| {
        // Unbalanced busywork so threads interleave unpredictably.
        let mut acc = i as u64;
        for _ in 0..((64 - i) * 1000) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        // Fold the busywork through black_box so it cannot be optimized
        // away, then discard it: the result is the index alone.
        (i, std::hint::black_box(acc).wrapping_sub(acc))
    });
    for (slot, (i, z)) in out.iter().enumerate() {
        assert_eq!(slot, *i);
        assert_eq!(*z, 0);
    }
}

#[test]
fn job_seeds_are_pure_functions_of_index() {
    use fcn_emu::exec::job_seed;
    // Same (base, index) -> same seed; distinct indices -> distinct seeds.
    let base = 0xfeed_f00d;
    let seeds: Vec<u64> = (0..256).map(|i| job_seed(base, i)).collect();
    let again: Vec<u64> = (0..256).map(|i| job_seed(base, i)).collect();
    assert_eq!(seeds, again);
    let mut sorted = seeds.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), seeds.len(), "seed collision across indices");
}
