//! End-to-end Table 4 shape checks: the measured bandwidth of each machine
//! family, swept over sizes, must classify into the paper's Θ-class — and
//! the measured diameter into the λ class.
//!
//! These are the cheap representatives; the full sweep lives in
//! `cargo run -p fcn-bench --bin table4`.

use fcn_emu::asymptotics::Rational;
use fcn_emu::bandwidth::{sweep_family, BandwidthEstimator};
use fcn_emu::prelude::*;

fn estimator() -> BandwidthEstimator {
    // The ×8 batch matters: with only [2, 4] the larger machines never
    // reach their saturation plateau, and the borderline classifications
    // (de Bruijn's n/lg n, X-Tree's lg n growth) land one class low.
    // `jobs: 0` fans the grid over all hardware threads; the estimate is
    // bit-identical to the sequential run (see tests/determinism.rs).
    BandwidthEstimator {
        multipliers: vec![2, 4, 8],
        trials: 2,
        jobs: 0,
        ..Default::default()
    }
}

const TARGETS: [usize; 4] = [64, 128, 256, 512];

#[test]
fn linear_array_is_constant_beta_linear_lambda() {
    let sweep = sweep_family(Family::LinearArray, &TARGETS, &estimator(), 1);
    assert!(sweep.beta_class.is_constant(), "{:?}", sweep.beta_class);
    assert_eq!(sweep.lambda_class.pow_n, Rational::ONE);
}

#[test]
fn tree_is_constant_beta_log_lambda() {
    let sweep = sweep_family(Family::Tree, &TARGETS, &estimator(), 2);
    assert!(sweep.beta_class.is_constant(), "{:?}", sweep.beta_class);
    assert!(sweep.lambda_class.pow_n.is_zero());
    assert!(sweep.lambda_class.pow_lg.is_positive());
}

#[test]
fn mesh2_is_sqrt_beta() {
    let sweep = sweep_family(Family::Mesh(2), &TARGETS, &estimator(), 3);
    assert_eq!(
        sweep.beta_class.pow_n,
        Rational::new(1, 2),
        "{:?}",
        sweep.beta_class
    );
    assert_eq!(sweep.lambda_class.pow_n, Rational::new(1, 2));
}

#[test]
fn de_bruijn_is_near_linear_beta_log_lambda() {
    let sweep = sweep_family(Family::DeBruijn, &TARGETS, &estimator(), 4);
    // n/lg n: the classifier may return n^1·lg^-1 or a nearby high class;
    // require pow_n >= 3/4 to separate it from the mesh classes.
    assert!(
        sweep.beta_class.pow_n >= Rational::new(3, 4),
        "{:?}",
        sweep.beta_class
    );
    assert!(sweep.lambda_class.pow_n.is_zero());
    assert!(sweep.lambda_class.pow_lg.is_positive());
}

#[test]
fn bus_is_constant_beta_constant_lambda() {
    let sweep = sweep_family(Family::GlobalBus, &TARGETS, &estimator(), 5);
    assert!(sweep.beta_class.is_constant(), "{:?}", sweep.beta_class);
    // Diameter 2 at every size.
    for row in &sweep.rows {
        assert_eq!(row.diameter, 2);
    }
}

#[test]
fn xtree_beta_grows_slowly() {
    // Θ(lg n) is not separable from Θ(1)+noise or Θ(n^{1/4}) over this
    // cheap test range (the full-range separation runs in the table4
    // bench), so assert the raw shape instead: the rate grows, but far
    // slower than any mesh class.
    let sweep = sweep_family(Family::XTree, &TARGETS, &estimator(), 6);
    let lo = sweep.rows.first().unwrap();
    let hi = sweep.rows.last().unwrap();
    let ratio = hi.measured / lo.measured;
    // lg ratio over [63, 511] is 1.5; sqrt-n ratio would be 2.85.
    assert!(
        (1.1..=2.4).contains(&ratio),
        "xtree rate ratio {ratio} (rates {} -> {})",
        lo.measured,
        hi.measured
    );
    // And it clearly beats the plain tree (β = Θ(1)) at the same size.
    let tree = sweep_family(Family::Tree, &TARGETS, &estimator(), 6);
    assert!(
        hi.measured > 1.5 * tree.rows.last().unwrap().measured,
        "xtree {} vs tree {}",
        hi.measured,
        tree.rows.last().unwrap().measured
    );
}

#[test]
fn measured_never_exceeds_flux_bound() {
    for family in [
        Family::Mesh(2),
        Family::Tree,
        Family::DeBruijn,
        Family::XTree,
    ] {
        let sweep = sweep_family(family, &[64, 256], &estimator(), 7);
        for row in &sweep.rows {
            assert!(
                row.measured <= row.flux_bound + 1e-9,
                "{}: measured {} > flux {}",
                row.machine,
                row.measured,
                row.flux_bound
            );
        }
    }
}

#[test]
fn mesh3_beats_mesh2_bandwidth_at_equal_size() {
    let est = estimator();
    let m2 = est.estimate_symmetric(&Machine::mesh(2, 16)).rate; // 256
    let m3 = est.estimate_symmetric(&Machine::mesh(3, 6)).rate; // 216
    assert!(
        m3 > m2 * 0.9,
        "mesh3 {m3} should be at least comparable to mesh2 {m2}"
    );
}
