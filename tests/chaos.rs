//! Chaos tests for the fault plane and the resilient harness.
//!
//! Four contracts, exercised with randomized inputs:
//!
//! * **No panics, typed termination** — an arbitrary seeded [`FaultPlan`]
//!   (any rate, any graph) never panics the planner or the router, and
//!   every routed batch ends in a typed [`AbortCause`] whose accounting is
//!   internally consistent (no silent spinning to `max_ticks`). The same
//!   faulted batch routed through the sharded engine terminates with the
//!   identical typed outcome at every shard count.
//! * **Worker-count byte-identity under faults** — a degraded-β sweep is
//!   bit-identical at `jobs = 1` and `jobs = 4`, faults enabled, and at
//!   `shards = 1` and `shards = 4`.
//! * **Transparency** — applying an *empty* fault plan yields a compiled
//!   net equal to the original, and routing on it reproduces the intact
//!   outcome exactly.
//! * **Panic isolation** — a pool job that panics surfaces as a typed
//!   [`fcn_emu::exec::JobError`] (lowest failing index, deterministically)
//!   and seeded retries re-run it identically at any worker count.

use fcn_emu::bandwidth::DegradedSweep;
use fcn_emu::exec::{retry_seed, Pool};
use fcn_emu::faults::{FaultPlan, FaultSpec};
use fcn_emu::routing::{
    plan_routes_degraded, route_compiled_pooled, AbortCause, CompiledNet, PacketBatch,
    RouterConfig, Strategy,
};
use fcn_emu::topology::{Family, Machine};
use proptest::prelude::*;

/// Qualitatively different route policies: BFS mesh, root-heavy tree,
/// arithmetic de Bruijn (bit-correction), level-walk X-tree.
const FAMILIES: [Family; 4] = [
    Family::Mesh(2),
    Family::Tree,
    Family::DeBruijn,
    Family::XTree,
];

fn machine_for(pick: usize, size: usize) -> Machine {
    FAMILIES[pick % FAMILIES.len()].build_near(size, 0x11)
}

fn demands_on(machine: &Machine, raw: &[(u64, u64)]) -> Vec<(u32, u32)> {
    let n = machine.processors() as u64;
    raw.iter()
        .map(|&(s, d)| ((s % n) as u32, (d % n) as u32))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary fault plans never panic, and the router always terminates
    /// with a typed outcome whose delivered/stranded accounting matches the
    /// abort cause.
    #[test]
    fn chaos_router_terminates_with_typed_outcome(
        pick in 0usize..4,
        size in 16usize..80,
        fault_seed in any::<u64>(),
        rate in 0.0f64..0.6,
        plan_seed in any::<u64>(),
        valiant in any::<bool>(),
        shards in 2usize..8,
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..48),
    ) {
        let machine = machine_for(pick, size);
        let spec = FaultSpec::uniform(fault_seed, rate);
        let plan = FaultPlan::generate(machine.graph(), &spec);
        let demands = demands_on(&machine, &raw);
        let strategy = if valiant { Strategy::Valiant } else { Strategy::ShortestPath };

        let dp = plan_routes_degraded(&machine, &demands, strategy, plan_seed, &plan, None);
        // Every demand is either planned or reported unreachable.
        prop_assert_eq!(dp.paths.len() + dp.unreachable.len(), demands.len());
        prop_assert!(dp.unreachable.windows(2).all(|w| w[0] < w[1]), "sorted, unique");

        let net = CompiledNet::compile(&machine).apply_faults(&plan);
        let batch = PacketBatch::compile(&net, &dp.paths).expect("degraded paths are walks");
        let cfg = RouterConfig { max_ticks: 200_000, ..RouterConfig::default() };
        let out = route_compiled_pooled(&net, &batch, cfg);

        // Typed termination: the tick budget is respected and the abort
        // cause agrees with the delivery accounting.
        prop_assert!(out.ticks <= cfg.max_ticks);
        prop_assert_eq!(out.total, dp.paths.len());
        match out.abort {
            AbortCause::Completed => {
                prop_assert_eq!(out.stranded, 0);
                prop_assert_eq!(out.delivered, out.total);
                prop_assert!(out.completed);
            }
            AbortCause::Stranded => {
                prop_assert!(out.stranded > 0);
                prop_assert_eq!(out.delivered, out.total - out.stranded);
            }
            AbortCause::MaxTicks => {
                prop_assert!(out.delivered < out.total - out.stranded);
                prop_assert!(!out.completed);
            }
            AbortCause::Cancelled => prop_assert!(false, "nothing cancels this run"),
        }

        // Shard-count row: the sharded engine on the same faulted net also
        // terminates with a typed outcome, and it is the *same* outcome —
        // delivery accounting, tick count, and abort cause all included.
        let sharded = fcn_emu::routing::route_sharded_pooled(&net, &batch, cfg, shards);
        prop_assert!(sharded.ticks <= cfg.max_ticks);
        prop_assert!(out == sharded, "shards={} outcome diverged", shards);
    }

    /// An empty fault plan is byte-transparent: the faulted compile equals
    /// the intact one and routing reproduces the intact outcome bit-for-bit.
    #[test]
    fn chaos_empty_plan_is_byte_transparent(
        pick in 0usize..4,
        size in 16usize..64,
        plan_seed in any::<u64>(),
        raw in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..32),
    ) {
        let machine = machine_for(pick, size);
        let base = CompiledNet::compile(&machine);
        let applied = base.apply_faults(&FaultPlan::none());
        prop_assert!(!applied.is_faulted());

        let demands = demands_on(&machine, &raw);
        let dp = plan_routes_degraded(
            &machine, &demands, Strategy::ShortestPath, plan_seed, &FaultPlan::none(), None,
        );
        prop_assert!(dp.unreachable.is_empty());
        prop_assert_eq!(dp.replans, 0);
        let cfg = RouterConfig::default();
        let b1 = PacketBatch::compile(&base, &dp.paths).expect("walks");
        let b2 = PacketBatch::compile(&applied, &dp.paths).expect("walks");
        let o1 = route_compiled_pooled(&base, &b1, cfg);
        let o2 = route_compiled_pooled(&applied, &b2, cfg);
        prop_assert_eq!(o1, o2);
        prop_assert_eq!(o1.abort, if o1.completed { AbortCause::Completed } else { AbortCause::MaxTicks });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Degraded-β sweeps are bit-identical for any worker count *and* any
    /// router shard count, faults on.
    #[test]
    fn chaos_degraded_sweep_is_worker_count_invariant(
        fault_seed in any::<u64>(),
        seed in any::<u64>(),
        rate in 0.05f64..0.35,
    ) {
        let machine = Machine::mesh(2, 8);
        let sweep = DegradedSweep {
            fault_rates: vec![0.0, rate],
            fault_seed,
            multipliers: vec![2, 4],
            trials: 2,
            seed,
            jobs: 1,
            ..Default::default()
        };
        let seq = sweep.sweep_symmetric(&machine);
        let par = DegradedSweep { jobs: 4, ..sweep.clone() }.sweep_symmetric(&machine);
        prop_assert_eq!(&seq, &par);
        let sharded = DegradedSweep { shards: 4, ..sweep }.sweep_symmetric(&machine);
        prop_assert_eq!(&seq, &sharded);
    }

    /// A panicking pool job surfaces as a typed error naming the lowest
    /// failing index, and seeded retries recover it deterministically at
    /// any worker count.
    #[test]
    fn chaos_pool_survives_injected_panics(
        base_seed in any::<u64>(),
        count in 4usize..24,
        panic_mask in any::<u32>(),
    ) {
        silence_panic_hook();
        // Jobs whose low mask bit is set panic on their first attempt only.
        let flaky = move |i: usize, seed: u64| {
            if seed == retry_seed(base_seed, i as u64, 0) && (panic_mask >> (i % 32)) & 1 == 1 {
                panic!("chaos: injected failure in job {i}");
            }
            (i as u64) ^ seed
        };

        // With retries, every worker count recovers the identical vector.
        let seq = Pool::new(1).try_run_seeded(count, base_seed, 2, flaky);
        let par = Pool::new(4).try_run_seeded(count, base_seed, 2, flaky);
        prop_assert_eq!(&seq, &par);
        let values = seq.expect("one retry clears every injected panic");
        for (i, v) in values.iter().enumerate() {
            let attempt = u32::from((panic_mask >> (i % 32)) & 1 == 1);
            prop_assert_eq!(*v, (i as u64) ^ retry_seed(base_seed, i as u64, attempt));
        }

        // Without retries, the error is typed and names the lowest failing
        // index regardless of scheduling.
        let first_failing = (0..count).find(|i| (panic_mask >> (i % 32)) & 1 == 1);
        match (
            Pool::new(4).try_run_seeded(count, base_seed, 0, flaky),
            first_failing,
        ) {
            (Ok(_), None) => {}
            (Err(e), Some(idx)) => {
                prop_assert_eq!(e.index, idx);
                prop_assert!(e.payload.contains("injected failure"), "{}", e.payload);
            }
            (Ok(_), Some(idx)) => prop_assert!(false, "job {idx} should have failed"),
            (Err(e), None) => prop_assert!(false, "unexpected failure: {e}"),
        }
    }
}

/// The default panic hook would print every injected panic; silence it once
/// for this test binary so chaos runs keep CI logs readable. Caught panics
/// still surface as typed [`fcn_emu::exec::JobError`]s — only the hook's
/// stderr spam is suppressed.
fn silence_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("chaos:"));
            if !injected {
                default(info);
            }
        }));
    });
}
