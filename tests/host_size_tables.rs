//! Integration checks for the Tables 1–3 generation pipeline: symbolic vs
//! numeric agreement across the whole grid, and cross-table consistency.

use fcn_emu::core::{
    generate_table, max_host_size, numeric_host_size, table1_spec, table2_spec, table3_spec,
    HostSizeBound,
};
use fcn_emu::prelude::*;

#[test]
fn symbolic_and_numeric_agree_across_all_cells() {
    // For every (guest, host) pair of every table, evaluating the symbolic
    // class at n must track the numeric crossover within a constant factor.
    let n = (1u64 << 22) as f64;
    for spec in [
        table1_spec(&[2, 3]),
        table2_spec(&[2, 3]),
        table3_spec(&[2, 3]),
    ] {
        for guest in &spec.guests {
            for host in &spec.hosts {
                let sym = max_host_size(guest, host).as_asym().eval(n);
                let num = numeric_host_size(guest, host, n).min(n);
                let ratio = num / sym;
                assert!(
                    (0.2..=5.0).contains(&ratio),
                    "{guest} on {host}: numeric {num} vs symbolic {sym}"
                );
            }
        }
    }
}

#[test]
fn host_size_is_monotone_in_host_strength() {
    // Stronger hosts admit larger sizes: linear array <= xtree <= mesh2 for
    // a butterfly-class guest.
    let n = (1u64 << 20) as f64;
    let weak = numeric_host_size(&Family::Butterfly, &Family::LinearArray, n);
    let mid = numeric_host_size(&Family::Butterfly, &Family::XTree, n);
    let strong = numeric_host_size(&Family::Butterfly, &Family::Mesh(2), n);
    assert!(weak <= mid && mid <= strong, "{weak} {mid} {strong}");
}

#[test]
fn tables_1_and_2_cells_coincide_per_dimension() {
    let sizes = [1u64 << 16];
    let t1 = generate_table(table1_spec(&[2]), &sizes);
    let t2 = generate_table(table2_spec(&[2]), &sizes);
    // mesh2 (t1) and mesh_of_trees2/multigrid2/pyramid2 (t2) share β, so
    // all their rows against every host agree.
    for host in &t1.spec.hosts {
        let c1 = t1
            .cells
            .iter()
            .find(|c| c.guest == "mesh2" && c.host == host.id())
            .unwrap();
        for g2 in ["mesh_of_trees2", "multigrid2", "pyramid2"] {
            let c2 = t2
                .cells
                .iter()
                .find(|c| c.guest == g2 && c.host == host.id())
                .unwrap();
            assert_eq!(c1.bound, c2.bound, "host {host}");
        }
    }
}

#[test]
fn table3_guests_all_share_cells() {
    // All butterfly-class guests have identical rows.
    let t = generate_table(table3_spec(&[2]), &[1 << 18]);
    let hosts: Vec<String> = t.spec.hosts.iter().map(|h| h.id()).collect();
    for host in &hosts {
        let bounds: Vec<&str> = t
            .cells
            .iter()
            .filter(|c| &c.host == host)
            .map(|c| c.bound.as_str())
            .collect();
        assert!(
            bounds.windows(2).all(|w| w[0] == w[1]),
            "host {host}: {bounds:?}"
        );
    }
}

#[test]
fn guest_dimension_strictly_widens_host_caps() {
    // Higher-dimensional mesh guests are harder: their max host shrinks.
    let n = (1u64 << 24) as f64;
    let h2 = numeric_host_size(&Family::Mesh(2), &Family::LinearArray, n);
    let h3 = numeric_host_size(&Family::Mesh(3), &Family::LinearArray, n);
    assert!(h3 < h2, "{h3} !< {h2}");
}

#[test]
fn full_size_cells_render_as_linear() {
    assert_eq!(
        max_host_size(&Family::Mesh(2), &Family::Mesh(3)),
        HostSizeBound::FullSize
    );
    assert_eq!(
        max_host_size(&Family::Mesh(2), &Family::Mesh(3)).to_cell(),
        "O(n)"
    );
}

#[test]
fn numeric_crossover_respects_guest_size_cap() {
    // For same-class pairs the numeric solver lands at ~n (full size).
    let n = 4096.0;
    let m = numeric_host_size(&Family::Butterfly, &Family::DeBruijn, n);
    assert!(m >= n * 0.5, "m {m}");
}
