//! Cross-crate validation of the proof pipeline: Lemma 9 (cone witness) →
//! Lemma 11 (collapse preservation) → Lemma 8 (flux/time bound), composed
//! the way the Efficient Emulation Theorem composes them.

use fcn_emu::core::{build_witness, collapse_preservation, Circuit, Lemma9Config};
use fcn_emu::multigraph::{contiguous_blocks, Traffic};
use fcn_emu::prelude::*;

#[test]
fn lemma9_constants_stable_across_families() {
    // The preservation and congestion constants must stay in narrow bands
    // across different guest families — the lemma is family-agnostic.
    for machine in [
        Machine::ring(16),
        Machine::mesh(2, 5),
        Machine::tree(3),
        Machine::de_bruijn(4),
        Machine::xtree(3),
    ] {
        let w = build_witness(machine.graph(), Lemma9Config::default());
        assert!(
            w.preservation_ratio() > 0.05,
            "{}: preservation {}",
            machine.name(),
            w.preservation_ratio()
        );
        assert!(
            w.congestion_ratio() < 8.0,
            "{}: congestion ratio {}",
            machine.name(),
            w.congestion_ratio()
        );
        assert!(w.gamma_density() > 0.005, "{}: density", machine.name());
    }
}

#[test]
fn lemma9_alpha_tradeoff() {
    // Larger α ⇒ deeper circuit ⇒ more S-levels and γ-edges.
    let m = Machine::mesh(2, 5);
    let w1 = build_witness(
        m.graph(),
        Lemma9Config {
            alpha: 0.5,
            seed: 1,
        },
    );
    let w2 = build_witness(
        m.graph(),
        Lemma9Config {
            alpha: 2.0,
            seed: 1,
        },
    );
    assert!(w2.t > w1.t);
    assert!(w2.gamma_edges > w1.gamma_edges);
    assert!(w2.s_nodes > w1.s_nodes);
}

#[test]
fn lemma11_composes_with_lemma9_scales() {
    // Collapse a guest graph carrying symmetric traffic onto hosts of
    // several sizes: preservation must hold at every collapse factor.
    let machine = Machine::mesh(2, 8);
    let n = machine.graph().node_count();
    let gamma = Traffic::symmetric(n);
    for m in [4usize, 8, 16, 32] {
        let assign = contiguous_blocks(n, m);
        let r = collapse_preservation(machine.graph(), &gamma, &assign, m, 3);
        assert!(
            r.preservation_ratio() > 0.4,
            "m={m}: ratio {}",
            r.preservation_ratio()
        );
        // K_{n/k, O(k²)} multiplicity cap.
        let k = r.max_load as u64;
        assert!(
            r.max_pair_multiplicity <= 2 * k * k,
            "m={m}: mult {} vs k² {}",
            r.max_pair_multiplicity,
            k * k
        );
    }
}

#[test]
fn circuit_of_every_small_family_validates() {
    for machine in [
        Machine::ring(8),
        Machine::mesh(2, 3),
        Machine::tree(2),
        Machine::de_bruijn(3),
    ] {
        let c = Circuit::nonredundant(machine.graph(), 4);
        c.validate(machine.graph())
            .unwrap_or_else(|e| panic!("{}: {e}", machine.name()));
        assert!(c.is_efficient(1.0));
        let (mg, _) = c.as_multigraph();
        assert!(mg.is_connected());
    }
}

#[test]
fn redundant_circuits_stay_efficient_within_duplicity() {
    let machine = Machine::mesh(2, 4);
    for max_dup in [1u32, 2, 4] {
        let c = Circuit::redundant_random(machine.graph(), 6, max_dup, 11);
        c.validate(machine.graph()).unwrap();
        assert!(
            c.is_efficient(max_dup as f64),
            "dup {max_dup}: {} nodes",
            c.node_count()
        );
    }
}

#[test]
fn flux_time_bound_lemma8_composition() {
    // Lemma 8: executing a pattern C with bandwidth β(C,π) on H takes
    // T ≥ β(C,π)/β(H,π) per unit. Executable version: route the pattern on
    // the host, compare measured ticks with E(C)/flux-bound.
    use fcn_emu::bandwidth::flux_upper_bound;
    use fcn_emu::routing::{route_traffic, RouterConfig, Strategy};

    let host = Machine::mesh(2, 4);
    let traffic = host.symmetric_traffic();
    let messages = 32 * traffic.n();
    let out = route_traffic(
        &host,
        &traffic,
        messages,
        Strategy::ShortestPath,
        RouterConfig::default(),
        13,
    );
    assert!(out.completed);
    let flux = flux_upper_bound(&host, &traffic, 1, 4, 2);
    let min_ticks = messages as f64 / flux.rate_bound;
    assert!(
        out.ticks as f64 >= min_ticks * 0.99,
        "ticks {} below flux floor {min_ticks}",
        out.ticks
    );
}
