//! End-to-end validation of the Efficient Emulation Theorem: for a matrix
//! of guest/host pairs, the *measured* slowdown of an actual emulation must
//! respect the theorem's lower bound, and the premises must be auditable.

use fcn_emu::core::{check_premises, direct_emulation, slowdown_lower_bound, EmulationConfig};
use fcn_emu::prelude::*;

fn cfg() -> EmulationConfig {
    EmulationConfig {
        sample_steps: 2,
        ..Default::default()
    }
}

#[test]
fn measured_slowdown_dominates_bound_across_pairs() {
    let pairs: Vec<(Machine, Machine)> = vec![
        (Machine::de_bruijn(6), Machine::mesh(2, 3)),
        (Machine::de_bruijn(6), Machine::linear_array(8)),
        (Machine::butterfly(4), Machine::mesh(2, 4)),
        (Machine::mesh(2, 8), Machine::linear_array(8)),
        (Machine::mesh(2, 8), Machine::tree(3)),
        (Machine::shuffle_exchange(6), Machine::xtree(3)),
    ];
    for (guest, host) in pairs {
        let bound = slowdown_lower_bound(&guest.family(), &host.family());
        let report = direct_emulation(&guest, &host, 6, &cfg());
        let predicted = bound.eval(guest.processors() as f64, host.processors() as f64);
        assert!(
            report.slowdown() >= 0.5 * predicted,
            "{} on {}: measured {} < bound {}",
            guest.name(),
            host.name(),
            report.slowdown(),
            predicted
        );
    }
}

#[test]
fn load_bound_alone_is_respected_exactly() {
    // Compute time alone forces S >= ceil(n/m).
    let guest = Machine::mesh(2, 8);
    let host = Machine::mesh(2, 4);
    let report = direct_emulation(&guest, &host, 5, &cfg());
    assert!(report.slowdown() >= (64.0 / 16.0));
    assert_eq!(report.max_load, 4);
}

#[test]
fn premises_audit_full_matrix() {
    // Premise auditing runs for every host family at small size and the
    // classical machines all pass bottleneck-freeness with constant 4.
    let guest = Machine::de_bruijn(5);
    for host_family in [
        Family::LinearArray,
        Family::Tree,
        Family::XTree,
        Family::Mesh(2),
        Family::Butterfly,
    ] {
        let host = host_family.build_near(64, 5);
        let report = check_premises(&guest, &host, 16, 0.5, 4.0, 9);
        assert!(report.all_ok(), "{host_family}: {report:?}");
    }
}

#[test]
fn communication_dominates_when_host_is_weak() {
    // A big de Bruijn on a tiny linear array: communication slowdown must
    // exceed the load slowdown because β(G)/β(H) >> n/m fails... actually
    // for the linear array host β_H = Θ(1) so comm ~ n/lg n vs load n/m:
    // with m = 16 > lg n the communication bound dominates.
    let guest = Machine::de_bruijn(7); // n = 128, n/lg n ≈ 18
    let host = Machine::linear_array(16); // load = 8
    let bound = slowdown_lower_bound(&guest.family(), &host.family());
    let (n, m) = (128.0, 16.0);
    assert!(bound.communication(n, m) > bound.load(n, m));
    let report = direct_emulation(&guest, &host, 6, &cfg());
    assert!(report.communication_slowdown() > report.max_load as f64);
}

#[test]
fn equal_machines_emulate_with_constant_slowdown() {
    for machine in [Machine::mesh(2, 6), Machine::de_bruijn(6)] {
        let report = direct_emulation(&machine, &machine, 6, &cfg());
        assert_eq!(report.max_load, 1);
        assert!(
            report.slowdown() <= 12.0,
            "{}: slowdown {}",
            machine.name(),
            report.slowdown()
        );
    }
}
