//! Property-based tests (proptest) over the core data structures and
//! invariants: exact rational algebra, growth-expression algebra, multigraph
//! accounting, BFS metrics, cuts, embeddings, traffic sampling, and router
//! conservation laws.

use fcn_emu::asymptotics::{invert_monotone, Asym, Rational};
use fcn_emu::multigraph::{
    bfs_distances, bfs_parents, collapse, contiguous_blocks, path_from_parents, Cut, Embedding,
    Multigraph, MultigraphBuilder, NodeId, Traffic,
};
use fcn_emu::routing::{
    route_batch, PacketPath, PathOracle, RouterConfig, Strategy as RouteStrategy,
};
use proptest::prelude::*;

// ---------- generators ----------

/// A random connected graph: a random tree plus extra random edges.
fn connected_graph() -> impl Strategy<Value = Multigraph> {
    (2usize..40, proptest::collection::vec(any::<u32>(), 0..60)).prop_map(|(n, extras)| {
        let mut b = MultigraphBuilder::new(n);
        // Random-ish tree from deterministic mixing of the extras.
        for v in 1..n {
            let parent = if extras.is_empty() {
                v - 1
            } else {
                (extras[v % extras.len()] as usize) % v
            };
            b.add_edge(parent as NodeId, v as NodeId);
        }
        for (i, &e) in extras.iter().enumerate() {
            let u = (e as usize) % n;
            let v = ((e as usize) / n + i) % n;
            if u != v {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
        b.build()
    })
}

fn rational() -> impl Strategy<Value = Rational> {
    (-40i64..40, 1i64..12).prop_map(|(p, q)| Rational::new(p, q))
}

fn asym() -> impl Strategy<Value = Asym> {
    // Exponents kept small enough that products of two expressions stay
    // finite in f64 at the evaluated sizes (n < 10^6, |pow_n| ≤ 8 each).
    let small = (-48i64..48, 1i64..7).prop_map(|(p, q)| Rational::new(p.clamp(-8 * q, 8 * q), q));
    (small.clone(), small, 1u32..50).prop_map(|(pn, pl, c)| {
        Asym::one()
            .with_pow_n(pn)
            .with_pow_lg(pl)
            .with_coeff(c as f64 / 7.0)
    })
}

// ---------- rational algebra ----------

proptest! {
    #[test]
    fn rational_add_commutes(a in rational(), b in rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rational_add_sub_roundtrip(a in rational(), b in rational()) {
        prop_assert_eq!(a + b - b, a);
    }

    #[test]
    fn rational_mul_div_roundtrip(a in rational(), b in rational()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!(a * b / b, a);
    }

    #[test]
    fn rational_order_respects_addition(a in rational(), b in rational(), c in rational()) {
        if a < b {
            prop_assert!(a + c < b + c);
        }
    }

    #[test]
    fn rational_to_f64_is_monotone(a in rational(), b in rational()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }
}

// ---------- growth expressions ----------

proptest! {
    #[test]
    fn asym_eval_is_multiplicative(a in asym(), b in asym(), n in 4u32..1_000_000) {
        let n = n as f64;
        let lhs = (a * b).eval(n);
        let rhs = a.eval(n) * b.eval(n);
        prop_assert!((lhs - rhs).abs() <= 1e-6 * lhs.abs().max(rhs.abs()).max(1e-300));
    }

    #[test]
    fn asym_recip_inverts_eval(a in asym(), n in 4u32..1_000_000) {
        let n = n as f64;
        let prod = a.eval(n) * a.recip().eval(n);
        prop_assert!((prod - 1.0).abs() < 1e-6, "prod {prod}");
    }

    #[test]
    fn asym_growth_order_matches_eval_at_huge_n(a in asym(), b in asym()) {
        use std::cmp::Ordering;
        // Compare in log space at ln n = 1e7, far beyond any crossover the
        // generator's exponent ranges allow (min pow_n gap 1/144 beats the
        // max lg-exponent gap 80 at ln lg n ≈ 16.5). f64 can't represent
        // such n directly, so evaluate ln f = ln c + a·ln n + b·ln lg n.
        prop_assume!(a.pow_n != b.pow_n);
        let ln_n = 1e7f64;
        let ln_lg = (ln_n / std::f64::consts::LN_2).ln();
        let lnf = |x: &Asym| {
            x.coeff.ln() + x.pow_n.to_f64() * ln_n + x.pow_lg.to_f64() * ln_lg
        };
        match a.cmp_growth(&b) {
            Ordering::Less => prop_assert!(lnf(&a) < lnf(&b)),
            Ordering::Greater => prop_assert!(lnf(&a) > lnf(&b)),
            Ordering::Equal => {}
        }
    }

    #[test]
    fn invert_monotone_finds_roots(exp in 1u32..4, target in 2.0f64..1e6) {
        let f = |x: f64| x.powi(exp as i32);
        let x = invert_monotone(1.0, 1e9, target, f);
        prop_assert!((f(x) - target).abs() / target < 1e-6);
    }
}

// ---------- multigraph accounting ----------

proptest! {
    #[test]
    fn degree_sum_is_twice_edge_mass(g in connected_graph()) {
        let total: u64 = (0..g.node_count() as NodeId).map(|u| g.degree(u)).sum();
        prop_assert_eq!(total, 2 * g.simple_edge_count());
    }

    #[test]
    fn scaling_multiplies_edge_mass(g in connected_graph(), x in 1u32..9) {
        prop_assert_eq!(g.scaled(x).simple_edge_count(), g.simple_edge_count() * x as u64);
    }

    #[test]
    fn collapse_preserves_edge_mass(g in connected_graph(), m in 1usize..10) {
        let n = g.node_count();
        let m = m.min(n);
        let r = collapse(&g, &contiguous_blocks(n, m), m);
        prop_assert_eq!(r.graph.simple_edge_count(), g.simple_edge_count());
        prop_assert_eq!(r.loads.iter().sum::<u32>() as usize, n);
    }

    #[test]
    fn cut_capacity_at_most_edge_mass(g in connected_graph(), k in 1usize..39) {
        let n = g.node_count();
        prop_assume!(k < n);
        let cut = Cut::prefix(n, k);
        prop_assert!(cut.capacity(&g) <= g.simple_edge_count());
    }

    #[test]
    fn crossing_fraction_is_a_probability(g in connected_graph(), k in 1usize..39) {
        let n = g.node_count();
        prop_assume!(k < n && n >= 2);
        let t = Traffic::symmetric(n);
        let cut = Cut::prefix(n, k);
        let f = t.crossing_fraction(&cut.side);
        prop_assert!((0.0..=1.0).contains(&f));
        if let Some(stats) = cut.stats(&g, &t) {
            prop_assert!(stats.rate_bound > 0.0);
        }
    }
}

// ---------- BFS metrics ----------

proptest! {
    #[test]
    fn bfs_satisfies_triangle_inequality(g in connected_graph(), seeds in any::<u32>()) {
        let n = g.node_count() as u32;
        let u = (seeds % n) as NodeId;
        let v = ((seeds / n) % n) as NodeId;
        let du = bfs_distances(&g, u);
        let dv = bfs_distances(&g, v);
        for w in 0..n as usize {
            prop_assert!(du[w] <= du[v as usize] + dv[w]);
        }
    }

    #[test]
    fn bfs_paths_have_bfs_lengths(g in connected_graph(), seed in any::<u32>()) {
        let n = g.node_count() as u32;
        let src = (seed % n) as NodeId;
        let (dist, parent) = bfs_parents(&g, src);
        for dst in 0..n {
            let p = path_from_parents(&parent, src, dst).unwrap();
            prop_assert_eq!(p.len() as u32 - 1, dist[dst as usize]);
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
        }
    }
}

// ---------- embeddings ----------

proptest! {
    #[test]
    fn shortest_path_embeddings_validate(g in connected_graph(), seed in any::<u64>()) {
        use rand::SeedableRng;
        let n = g.node_count();
        // Guest: a ring on the same vertex count.
        let guest = Multigraph::from_edges(
            n,
            (0..n as NodeId).map(|i| (i, (i + 1) % n as NodeId)),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let emb = Embedding::shortest_paths(&guest, &g, (0..n as NodeId).collect(), &mut rng);
        prop_assert!(emb.validate(&g).is_ok());
        let stats = emb.stats();
        // Dilation bounded by host diameter.
        let max_d = (0..n as NodeId)
            .map(|u| bfs_distances(&g, u).into_iter().max().unwrap())
            .max()
            .unwrap();
        prop_assert!(stats.dilation <= max_d);
    }
}

// ---------- traffic and routing conservation ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn traffic_samples_are_valid(n in 2usize..60, seed in any::<u64>()) {
        use rand::SeedableRng;
        let t = Traffic::symmetric(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let (u, v) = t.sample(&mut rng);
            prop_assert!(u != v);
            prop_assert!((u as usize) < n && (v as usize) < n);
        }
    }

    #[test]
    fn router_conserves_packets_and_hops(g in connected_graph(), seed in any::<u64>()) {
        use fcn_emu::topology::{Family, Machine, SendCapacity};
        let n = g.node_count();
        let machine = Machine::custom(
            Family::Expander,
            "prop".into(),
            g.clone(),
            n,
            SendCapacity::Unlimited,
            vec![],
        );
        let mut oracle = PathOracle::new(machine.graph(), seed);
        let traffic = Traffic::symmetric(n);
        let demands: Vec<_> = {
            let rng = oracle.rng();
            (0..2 * n).map(|_| traffic.sample(rng)).collect()
        };
        let routes = oracle.routes(&demands, RouteStrategy::ShortestPath);
        let expected_hops: u64 = routes.iter().map(|r| r.hops() as u64).sum();
        let max_hops = routes.iter().map(PacketPath::hops).max().unwrap_or(0) as u64;
        let out = route_batch(&machine, routes, RouterConfig::default());
        prop_assert!(out.completed);
        prop_assert_eq!(out.delivered, 2 * n);
        prop_assert_eq!(out.total_hops, expected_hops);
        // Time at least the longest path, at most total hops (full serialization).
        prop_assert!(out.ticks >= max_hops);
        prop_assert!(out.ticks <= expected_hops.max(1));
    }
}
