//! Build the Lemma 9 cone witness (the paper's Figure 2) on a small guest
//! and print its anatomy: S-sets, cones, Q-sets, γ-edges, congestion.
//!
//! Run: `cargo run --release --example cone_witness [-- <family> <size>]`

use fcn_emu::core::{build_witness, Lemma9Config};
use fcn_emu::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let family_id = args.first().map(String::as_str).unwrap_or("mesh2");
    let target: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(36);
    let family = Family::all_with_dims(&[1, 2, 3])
        .into_iter()
        .find(|f| f.id() == family_id)
        .unwrap_or_else(|| {
            eprintln!("unknown family {family_id:?}; using mesh2");
            Family::Mesh(2)
        });
    let machine = family.build_near(target, 3);
    let w = build_witness(machine.graph(), Lemma9Config::default());

    println!("guest {} (n = {})", machine.name(), w.n);
    println!("Λ(G) (diameter)             : {}", w.lambda);
    println!("circuit depth t = (1+α)Λ    : {}", w.t);
    println!("cone cutoff                 : {}", w.cutoff);
    println!("S-nodes                     : {}", w.s_nodes);
    println!("cone paths                  : {}", w.cone_paths);
    println!("γ vertices (S ∪ Q)          : {}", w.gamma_vertices);
    println!("γ edges                     : {}", w.gamma_edges);
    println!(
        "γ density vs K_(nt),1       : {:.3} (quasi-symmetric when Ω(1))",
        w.gamma_density()
    );
    println!("measured congestion         : {}", w.congestion);
    println!("proof cap max(nt², t·C)     : {}", w.congestion_cap);
    println!("congestion / cap            : {:.3}", w.congestion_ratio());
    println!("C(G, K_n) (measured)        : {}", w.c_g_kn);
    println!(
        "β(circuit, γ)               : {:.2} (target t·β(G) = {:.2})",
        w.circuit_bandwidth, w.target_bandwidth
    );
    println!(
        "preservation ratio          : {:.3} (Lemma 9 claims this is Ω(1))",
        w.preservation_ratio()
    );
}
