//! The paper's announced extension (conclusion, citing [15]): lower bounds
//! for *algorithms* via the bandwidth of their communication patterns.
//!
//! This example builds classic patterns (FFT exchange, odd-even sort,
//! stencil, all-to-all, broadcast), measures each pattern's bandwidth
//! demand, and derives Lemma 8 execution-time floors on a spectrum of
//! hosts — then routes the pattern for real to show the floors are honest.
//!
//! Run: `cargo run --release --example algorithm_patterns`

use fcn_emu::core::{execute_pattern, pattern_bandwidth, CommPattern};
use fcn_emu::prelude::*;

fn main() {
    let patterns = vec![
        CommPattern::fft(5), // 32 processes
        CommPattern::odd_even_sort(32),
        CommPattern::stencil2d(6, 4), // 36 processes
        CommPattern::all_to_all(32),
        CommPattern::broadcast(32),
        CommPattern::random_permutations(32, 8, 42),
    ];
    let hosts = vec![
        Machine::linear_array(36),
        Machine::tree(5), // 63 procs
        Machine::mesh(2, 6),
        Machine::de_bruijn(6),
        Machine::weak_hypercube(6),
    ];

    for p in &patterns {
        println!(
            "\n=== {} — {} messages, {} native rounds ===",
            p.name,
            p.message_count(),
            p.rounds
        );
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12}",
            "host", "flux floor", "measured", "slowdown", "β(H,pattern)"
        );
        for h in &hosts {
            if h.processors() < p.n {
                continue;
            }
            let ex = execute_pattern(p, h, RouterConfig::default(), 11);
            let (beta_lo, _beta_hi) = pattern_bandwidth(p, h, 11);
            println!(
                "{:<22} {:>12.1} {:>12} {:>12.1} {:>12.2}",
                h.name(),
                ex.ticks_lower,
                ex.ticks_measured,
                ex.slowdown_vs_rounds(p.rounds),
                beta_lo
            );
        }
    }
    println!(
        "\nreading: 'flux floor' is the Lemma 8 lower bound on host ticks for \
         any execution; 'measured' routes the pattern with block placement; \
         'slowdown' compares to the pattern's native round count."
    );
}
