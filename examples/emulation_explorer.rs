//! Interactive explorer: pick any guest/host family pair and sizes from the
//! command line; prints the analytic bounds, measured bandwidths, premise
//! audit, and a measured direct emulation.
//!
//! Run: `cargo run --release --example emulation_explorer -- <guest> <host> [n] [m]`
//! e.g. `cargo run --release --example emulation_explorer -- butterfly mesh2 512 64`
//!
//! Families: linear_array ring global_bus tree weak_ppn xtree mesh{1,2,3}
//! torus{2,3} xgrid{1,2,3} mesh_of_trees{1,2,3} multigrid{1,2,3}
//! pyramid{1,2,3} butterfly ccc shuffle_exchange de_bruijn multibutterfly
//! expander weak_hypercube

use fcn_emu::core::{check_premises, direct_emulation, EmulationConfig};
use fcn_emu::prelude::*;

fn parse_family(s: &str) -> Option<Family> {
    Family::all_with_dims(&[1, 2, 3])
        .into_iter()
        .find(|f| f.id() == s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let guest_id = args.first().map(String::as_str).unwrap_or("de_bruijn");
    let host_id = args.get(1).map(String::as_str).unwrap_or("mesh2");
    let n_target: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(256);
    let m_target: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(16);

    let Some(guest_family) = parse_family(guest_id) else {
        eprintln!("unknown guest family {guest_id:?}");
        std::process::exit(2);
    };
    let Some(host_family) = parse_family(host_id) else {
        eprintln!("unknown host family {host_id:?}");
        std::process::exit(2);
    };

    let guest = guest_family.build_near(n_target, 0xa);
    let host = host_family.build_near(m_target, 0xb);
    let (n, m) = (guest.processors() as f64, host.processors() as f64);
    println!(
        "guest {} (n = {n}), host {} (m = {m})",
        guest.name(),
        host.name()
    );

    // Analytic side.
    let bound = slowdown_lower_bound(&guest_family, &host_family);
    println!("\nTheorem: S ≥ {bound}");
    println!(
        "at these sizes: load ≥ {:.2}, communication ≥ {:.2}",
        bound.load(n, m),
        bound.communication(n, m)
    );
    let cap = max_host_size(&guest_family, &host_family);
    println!("max efficient host size: {}", cap.to_cell());

    // Premise audit.
    let steps = (3.0 * guest.lambda_at_size()).ceil() as u64;
    let premises = check_premises(&guest, &host, steps, 0.5, 4.0, 0xc);
    println!(
        "\npremises (T = {steps} guest steps): fixed-degree = {}, time-ok = {}, \
         bottleneck-free = {} (worst ratio {:.2})",
        premises.guest_fixed_degree,
        premises.guest_time_ok,
        premises.host_bottleneck_free,
        premises.bottleneck_audit.worst_ratio
    );

    // Measured bandwidths.
    let est = BandwidthEstimator::default();
    let bg = est.estimate_symmetric(&guest);
    let bh = est.estimate_symmetric(&host);
    println!(
        "\nmeasured β̂(G) = {:.2}, β̂(H) = {:.2}, ratio = {:.2}",
        bg.rate,
        bh.rate,
        bg.rate / bh.rate
    );

    // Measured emulation.
    if guest.processors() >= host.processors() {
        let report = direct_emulation(&guest, &host, steps.min(8), &EmulationConfig::default());
        println!(
            "\ndirect emulation: slowdown {:.1} (compute {:.1} + comm {:.1} per step), \
             load {}, vs bound {:.1}",
            report.slowdown(),
            report.compute_ticks as f64 / report.guest_steps as f64,
            report.communication_slowdown(),
            report.max_load,
            bound.eval(n, m)
        );
    } else {
        println!("\n(host larger than guest: skipping direct emulation)");
    }
}
