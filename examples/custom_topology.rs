//! Bring your own topology: build a custom machine from an edge list, run
//! the whole analysis pipeline on it, and compare it against the closest
//! paper family.
//!
//! The example constructs a "bridged double mesh" — two 2-d meshes joined
//! by a handful of bridge links — a classic bottlenecked design whose
//! bandwidth is capped by the bridge, and shows the flux bound finding the
//! bridge automatically.
//!
//! Run: `cargo run --release --example custom_topology`

use fcn_emu::bandwidth::{flux_upper_bound, quick_audit, BandwidthEstimator};
use fcn_emu::multigraph::{from_edge_list, to_edge_list, Cut, MultigraphBuilder, NodeId};
use fcn_emu::prelude::*;
use fcn_emu::topology::SendCapacity;

fn main() {
    // Two 8x8 meshes joined by a single bridge link.
    let side = 8usize;
    let n = 2 * side * side;
    let mut b = MultigraphBuilder::new(n);
    for half in 0..2usize {
        let base = (half * side * side) as NodeId;
        for r in 0..side {
            for c in 0..side {
                let id = base + (r * side + c) as NodeId;
                if c + 1 < side {
                    b.add_edge(id, id + 1);
                }
                if r + 1 < side {
                    b.add_edge(id, id + side as NodeId);
                }
            }
        }
    }
    // One bridge: a corner of mesh A to a corner of mesh B.
    let a = |r: usize, c: usize| (r * side + c) as NodeId;
    let bb = |r: usize, c: usize| (side * side + r * side + c) as NodeId;
    b.add_edge(a(0, side - 1), bb(0, 0));
    let graph = b.build();

    // Round-trip through the text format, as a user with a file would.
    let text = to_edge_list(&graph);
    let graph = from_edge_list(&text).expect("own format parses");
    println!(
        "custom machine: {} nodes, {} edges (two meshes + 1 bridge)\n",
        graph.node_count(),
        graph.simple_edge_count()
    );

    let machine = Machine::custom(
        Family::Mesh(2), // closest analytic class, for reporting only
        "bridged_double_mesh".into(),
        graph,
        n,
        SendCapacity::Unlimited,
        vec![Cut::prefix(n, n / 2)],
    );

    // Measured bandwidth vs a single mesh of the same total size.
    let est = BandwidthEstimator::default();
    let custom_beta = est.estimate_symmetric(&machine).rate;
    let reference = Machine::mesh(2, 11); // 121 ≈ 128 processors
    let ref_beta = est.estimate_symmetric(&reference).rate;
    println!("measured β̂(custom)    = {custom_beta:.2}");
    println!("measured β̂(mesh 11x11)= {ref_beta:.2}   (same size class, no bridge)");

    // The flux bound finds the bridge.
    let flux = flux_upper_bound(&machine, &machine.symmetric_traffic(), 1, 6, 3);
    println!(
        "\nflux bound             = {:.2} via {}",
        flux.rate_bound, flux.witness
    );
    if let Some(stats) = flux.cut_stats {
        println!(
            "witness cut            : capacity {} between {} and {} nodes",
            stats.capacity, stats.size_s, stats.size_t
        );
    }

    // Bottleneck-freeness: sub-population traffic inside one mesh runs far
    // faster than cross-bridge symmetric traffic, and the gap widens with
    // size (mesh throughput √n vs bridge capacity 1).
    let audit = quick_audit(&machine, 5);
    println!(
        "\nbottleneck audit: symmetric {:.2}, worst quasi-symmetric ratio {:.2} \
         (well-formed machines measure ≈ 1-1.5 here)",
        audit.symmetric_rate, audit.worst_ratio,
    );
    println!(
        "\nmoral: the Efficient Emulation Theorem's host premise is doing real \
         work — a bridged host's symmetric β understates what sub-populations \
         can do, the audit ratio grows with size, and at scale such hosts \
         violate bottleneck-freeness and escape the theorem's guarantee."
    );
}
