//! Quickstart: the paper's introduction example, end to end.
//!
//! An n-processor de Bruijn graph has β = Θ(n/lg n); an m-processor 2-d
//! mesh has β = Θ(√m). The Efficient Emulation Theorem gives slowdown
//! S ≥ Ω(β(G)/β(H)), and matching it against the load bound n/m shows only
//! meshes of size O(lg² n) can efficiently emulate the de Bruijn graph.
//!
//! Run: `cargo run --release --example quickstart`

use fcn_emu::prelude::*;

fn main() {
    // Build concrete machines.
    let guest = Machine::de_bruijn(10); // n = 1024
    let host = Machine::mesh(2, 8); // m = 64
    let (n, m) = (guest.processors() as f64, host.processors() as f64);

    println!("guest: {} (n = {n})", guest.name());
    println!("host:  {} (m = {m})", host.name());

    // Analytic β and λ from Table 4.
    println!(
        "\nβ(G) = {}  λ(G) = {}",
        guest.beta_analytic(),
        guest.lambda_analytic()
    );
    println!(
        "β(H) = {}  λ(H) = {}",
        host.beta_analytic(),
        host.lambda_analytic()
    );

    // The Efficient Emulation Theorem.
    let bound = slowdown_lower_bound(&guest.family(), &host.family());
    println!("\nEfficient Emulation Theorem: S ≥ {bound}");
    println!(
        "at (n, m) = ({n}, {m}): communication ≥ {:.1}, load ≥ {:.1}, total ≥ {:.1}",
        bound.communication(n, m),
        bound.load(n, m),
        bound.eval(n, m)
    );

    // Maximum efficient host size.
    let cap = max_host_size(&guest.family(), &host.family());
    println!(
        "\nmax efficient 2-d mesh host for a de Bruijn guest: |H| = {}",
        cap.to_cell()
    );
    let m_star = numeric_host_size(&guest.family(), &host.family(), n);
    println!(
        "numeric crossover at n = {n}: m* ≈ {m_star:.1} (lg²n = {:.1})",
        {
            let lg = n.log2();
            lg * lg
        }
    );

    // Measure β operationally on the router.
    let estimator = BandwidthEstimator::default();
    let guest_beta = estimator.estimate_symmetric(&guest);
    let host_beta = estimator.estimate_symmetric(&host);
    println!(
        "\nmeasured β̂(G) = {:.2} (analytic Θ gives {:.2})",
        guest_beta.rate,
        guest.beta_at_size()
    );
    println!(
        "measured β̂(H) = {:.2} (analytic Θ gives {:.2})",
        host_beta.rate,
        host.beta_at_size()
    );
    println!(
        "measured slowdown floor β̂(G)/β̂(H) = {:.2}",
        guest_beta.rate / host_beta.rate
    );
}
