//! The full pipeline on the introduction's example: emulating a de Bruijn
//! guest on 2-d mesh hosts of growing size, comparing the measured
//! slowdown of an actual (direct) emulation against the theorem's lower
//! bound, and locating the efficiency crossover.
//!
//! Run: `cargo run --release --example debruijn_on_mesh`

use fcn_emu::core::{direct_emulation, fig1_data, EmulationConfig};
use fcn_emu::prelude::*;

fn main() {
    let guest = Machine::de_bruijn(9); // n = 512
    let n = guest.processors() as f64;
    let bound = slowdown_lower_bound(&guest.family(), &Family::Mesh(2));
    let cfg = EmulationConfig::default();

    println!(
        "guest {} (n = {}), hosts: 2-d meshes\n",
        guest.name(),
        guest.processors()
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "host m", "load", "comm bound", "total bound", "measured S", "meas/bound"
    );
    for side in [2usize, 3, 4, 6, 8, 12, 16] {
        let host = Machine::mesh(2, side);
        let m = host.processors() as f64;
        let report = direct_emulation(&guest, &host, 8, &cfg);
        let total = bound.eval(n, m);
        println!(
            "{:>10} {:>10.1} {:>12.1} {:>12.1} {:>14.1} {:>12.2}",
            host.processors(),
            bound.load(n, m),
            bound.communication(n, m),
            total,
            report.slowdown(),
            report.slowdown() / total
        );
    }

    // Where is the efficiency crossover for this guest size?
    let d = fig1_data(&Family::DeBruijn, &Family::Mesh(2), n, 16);
    println!(
        "\ncrossover: m* ≈ {:.1} — hosts larger than this waste work \
         (communication-bound); lg²n = {:.1}",
        d.crossover_m,
        n.log2().powi(2)
    );
    println!(
        "minimum achievable slowdown for an efficient emulation: {:.1}",
        d.crossover_slowdown
    );
}
