//! Audit the bottleneck-freeness premise for every machine family.
//!
//! The paper asserts without proof that the classical machines are
//! bottleneck-free (quasi-symmetric traffic is never more than a constant
//! factor faster than symmetric traffic). This example measures it.
//!
//! Run: `cargo run --release --example bottleneck_audit [-- <target size>]`

use fcn_emu::bandwidth::quick_audit;
use fcn_emu::prelude::*;

fn main() {
    let target: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);

    println!("bottleneck-freeness audit at ~{target} processors\n");
    println!(
        "{:<18} {:>6} {:>10} {:>12}  distributions (label: rate)",
        "family", "n", "β̂ (sym)", "worst ratio"
    );
    for family in Family::all_with_dims(&[1, 2, 3]) {
        let machine = family.build_near(target, 7);
        let audit = quick_audit(&machine, 11);
        let labels: Vec<String> = audit
            .quasi_rates
            .iter()
            .map(|(l, r)| format!("{l}: {r:.2}"))
            .collect();
        println!(
            "{:<18} {:>6} {:>10.2} {:>12.2}  {}",
            family.id(),
            machine.processors(),
            audit.symmetric_rate,
            audit.worst_ratio,
            labels.join(", ")
        );
    }
    println!(
        "\na machine is bottleneck-free when the worst ratio stays below a \
         constant; the Efficient Emulation Theorem assumes this of hosts."
    );
}
