#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-faults — the deterministic fault plane
//!
//! The paper's bandwidth `β` is defined operationally as the delivery rate
//! of an *intact* machine. This crate makes "β under degradation" a
//! first-class measurable quantity: a [`FaultPlan`] kills wires and nodes
//! permanently or takes link capacity offline over tick windows, and the
//! router / planner stack (`fcn-routing`, `fcn-bandwidth`) consumes the
//! plan to produce degraded-β curves.
//!
//! ## Determinism contract
//!
//! A plan is a **pure function of `(plan seed, graph fingerprint, spec
//! knobs)`**. Every per-entity decision (does node `u` die? does link
//! `(u,v)` die, and when does its outage window open?) is derived by
//! hashing the entity's id with [`fcn_exec::job_seed`] — never by drawing
//! from a sequential RNG — so:
//!
//! * the same `(seed, graph)` always yields the same plan, on any machine,
//!   at any worker count;
//! * raising a fail rate only *adds* faults: every entity dead at rate `p`
//!   is still dead at rate `p' > p` (threshold hashing), which makes
//!   β-vs-fault-rate curves monotone in the injected fault set;
//! * two graphs with different fingerprints get statistically independent
//!   plans from the same seed.
//!
//! [`FaultPlan::none`] is the *transparency pin*: an empty plan must be
//! byte-invisible to every consumer (`CompiledNet::apply_faults` with
//! `none()` routes bit-identically to the unfaulted net; the chaos suite
//! enforces this).
//!
//! ## Model
//!
//! * **Dead link** — both directed wires of an undirected link vanish
//!   permanently. Packets whose precompiled path crosses a dead wire are
//!   *stranded* (typed outcome, never a silent `max_ticks` spin); planners
//!   replan around dead wires via BFS on [`FaultPlan::degrade_graph`].
//! * **Dead node** — every incident link dies and the node's send budget
//!   drops to zero.
//! * **Outage** — a transient window `[start, end)` of ticks during which
//!   the link's capacity is reduced (possibly to zero). Outages delay but
//!   never strand: windows are finite, so the router always terminates
//!   with a typed outcome.

use std::collections::BTreeSet;

use fcn_exec::job_seed;
use fcn_multigraph::{Multigraph, MultigraphBuilder, NodeId};
use serde::{Deserialize, Serialize};

/// Domain separators so node, link, and window decisions draw from
/// independent hash streams.
const NODE_STREAM: u64 = 0xfa17_0000_0000_0001;
const LINK_STREAM: u64 = 0xfa17_0000_0000_0002;
const OUTAGE_STREAM: u64 = 0xfa17_0000_0000_0003;
const WINDOW_STREAM: u64 = 0xfa17_0000_0000_0004;

/// Map a 64-bit hash to a uniform fraction in `[0, 1)`.
#[inline]
fn unit_fraction(h: u64) -> f64 {
    // 53 mantissa bits — the standard uniform-double construction.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Canonical 64-bit key of an unordered node pair (`u <= v`).
#[inline]
fn link_key(u: NodeId, v: NodeId) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// Knobs describing *how much* to degrade a machine. Resolved into a
/// concrete [`FaultPlan`] against a specific graph by [`FaultPlan::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Base seed of the plan's hash streams.
    pub seed: u64,
    /// Probability that an undirected link dies permanently.
    pub link_fail_rate: f64,
    /// Probability that a node dies permanently (killing its links).
    pub node_fail_rate: f64,
    /// Probability that a surviving link suffers one transient outage.
    pub outage_rate: f64,
    /// Outage windows start uniformly in `[0, outage_horizon)` ticks.
    pub outage_horizon: u64,
    /// Outage windows last `1..=outage_max_len` ticks.
    pub outage_max_len: u64,
    /// Link capacity *during* an outage window (usually 0).
    pub outage_capacity: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0xfa17,
            link_fail_rate: 0.0,
            node_fail_rate: 0.0,
            outage_rate: 0.0,
            outage_horizon: 256,
            outage_max_len: 64,
            outage_capacity: 0,
        }
    }
}

impl FaultSpec {
    /// The conventional single-knob spec used by degraded-β sweeps: links
    /// die at `rate`, nodes at `rate / 4`, and surviving links suffer
    /// zero-capacity outages at `rate`.
    pub fn uniform(seed: u64, rate: f64) -> FaultSpec {
        FaultSpec {
            seed,
            link_fail_rate: rate,
            node_fail_rate: rate / 4.0,
            outage_rate: rate,
            ..FaultSpec::default()
        }
    }

    /// True when no knob can produce a fault.
    pub fn is_trivial(&self) -> bool {
        self.link_fail_rate <= 0.0 && self.node_fail_rate <= 0.0 && self.outage_rate <= 0.0
    }
}

/// One transient capacity outage on an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkOutage {
    /// Link endpoint (`u <= v`).
    pub u: NodeId,
    /// Link endpoint.
    pub v: NodeId,
    /// First tick of the window.
    pub start: u64,
    /// First tick *after* the window.
    pub end: u64,
    /// Capacity of each direction of the link during the window.
    pub capacity: u32,
}

/// A concrete, resolved fault plan for one graph.
///
/// Construct with [`FaultPlan::generate`] (seeded, deterministic) or
/// [`FaultPlan::none`] (the transparency pin). All lists are sorted, so
/// plans compare and hash stably.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Fingerprint of the graph the plan was resolved against
    /// (0 for [`FaultPlan::none`], which applies to any graph).
    graph_fp: u64,
    /// Permanently dead nodes, ascending.
    dead_nodes: Vec<NodeId>,
    /// Permanently dead undirected links (`u <= v`), ascending. Includes
    /// the links implied by dead nodes.
    dead_links: Vec<(NodeId, NodeId)>,
    /// Transient outages on surviving links, ascending by link.
    outages: Vec<LinkOutage>,
}

impl FaultPlan {
    /// The empty plan: no faults, applies to any graph, and must be
    /// byte-invisible to every consumer.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Resolve `spec` against `graph` — a pure function of
    /// `(spec, graph.fingerprint())`.
    pub fn generate(graph: &Multigraph, spec: &FaultSpec) -> FaultPlan {
        if spec.is_trivial() {
            return FaultPlan::none();
        }
        let fp = graph.fingerprint();
        let n = graph.node_count() as NodeId;
        let mut dead_nodes = Vec::new();
        for u in 0..n {
            let h = job_seed(spec.seed ^ NODE_STREAM ^ fp, u as u64);
            if unit_fraction(h) < spec.node_fail_rate {
                dead_nodes.push(u);
            }
        }
        let dead_set: BTreeSet<NodeId> = dead_nodes.iter().copied().collect();
        let mut dead_links = Vec::new();
        let mut outages = Vec::new();
        for e in graph.edges() {
            if e.u == e.v {
                continue; // self-loops carry no traffic in the wire model
            }
            let key = link_key(e.u, e.v);
            let link_dead = unit_fraction(job_seed(spec.seed ^ LINK_STREAM ^ fp, key))
                < spec.link_fail_rate
                || dead_set.contains(&e.u)
                || dead_set.contains(&e.v);
            if link_dead {
                dead_links.push((e.u, e.v));
                continue;
            }
            if unit_fraction(job_seed(spec.seed ^ OUTAGE_STREAM ^ fp, key)) < spec.outage_rate {
                let w = job_seed(spec.seed ^ WINDOW_STREAM ^ fp, key);
                let horizon = spec.outage_horizon.max(1);
                let max_len = spec.outage_max_len.max(1);
                let start = (w >> 32) % horizon;
                let len = 1 + (w & 0xffff_ffff) % max_len;
                outages.push(LinkOutage {
                    u: e.u,
                    v: e.v,
                    start,
                    end: start + len,
                    capacity: spec.outage_capacity.min(e.multiplicity.saturating_sub(1)),
                });
            }
        }
        // `edges()` yields ascending (u, v); keep the invariant explicit.
        debug_assert!(dead_links.windows(2).all(|w| w[0] < w[1]));
        FaultPlan {
            graph_fp: fp,
            dead_nodes,
            dead_links,
            outages,
        }
    }

    /// Assemble a plan from explicit parts — the hand-built counterpart of
    /// [`FaultPlan::generate`] for tests, ablations, and property-based
    /// outage schedules. Inputs are normalized to the plan invariants:
    /// nodes sorted and deduplicated, links canonicalized (`u <= v`),
    /// sorted and deduplicated, outages canonicalized and sorted by link
    /// then window, and empty (`start >= end`) windows dropped. Like
    /// [`FaultPlan::none`] the result carries fingerprint 0 (applies to
    /// any graph). Unlike [`FaultPlan::generate`] there is no graph in
    /// scope, so callers who kill a node must list its incident links in
    /// `dead_links` themselves to uphold the plan invariant.
    pub fn assemble(
        dead_nodes: Vec<NodeId>,
        dead_links: Vec<(NodeId, NodeId)>,
        outages: Vec<LinkOutage>,
    ) -> FaultPlan {
        let mut dead_nodes = dead_nodes;
        dead_nodes.sort_unstable();
        dead_nodes.dedup();
        let mut links: Vec<(NodeId, NodeId)> = dead_links
            .into_iter()
            .map(|(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        links.sort_unstable();
        links.dedup();
        let mut outs: Vec<LinkOutage> = outages
            .into_iter()
            .filter(|o| o.start < o.end)
            .map(|o| {
                let (u, v) = if o.u <= o.v { (o.u, o.v) } else { (o.v, o.u) };
                LinkOutage { u, v, ..o }
            })
            .collect();
        outs.sort_unstable_by_key(|o| (o.u, o.v, o.start, o.end, o.capacity));
        FaultPlan {
            graph_fp: 0,
            dead_nodes,
            dead_links: links,
            outages: outs,
        }
    }

    /// True when the plan injects nothing (the transparency case).
    pub fn is_empty(&self) -> bool {
        self.dead_nodes.is_empty() && self.dead_links.is_empty() && self.outages.is_empty()
    }

    /// Fingerprint of the graph this plan was resolved against (0 for
    /// [`FaultPlan::none`]).
    pub fn graph_fingerprint(&self) -> u64 {
        self.graph_fp
    }

    /// Permanently dead nodes, ascending.
    pub fn dead_nodes(&self) -> &[NodeId] {
        &self.dead_nodes
    }

    /// Permanently dead undirected links (`u <= v`), ascending.
    pub fn dead_links(&self) -> &[(NodeId, NodeId)] {
        &self.dead_links
    }

    /// Transient link outages (on links that are *not* dead).
    pub fn outages(&self) -> &[LinkOutage] {
        &self.outages
    }

    /// Is node `u` permanently dead?
    pub fn node_dead(&self, u: NodeId) -> bool {
        self.dead_nodes.binary_search(&u).is_ok()
    }

    /// Is the undirected link `u — v` permanently dead?
    pub fn link_dead(&self, u: NodeId, v: NodeId) -> bool {
        let pair = if u <= v { (u, v) } else { (v, u) };
        self.dead_links.binary_search(&pair).is_ok()
    }

    /// The first tick by which every transient outage has ended — after
    /// this tick the degraded machine behaves like the permanently-faulted
    /// machine, which is what guarantees router termination.
    pub fn last_outage_end(&self) -> u64 {
        self.outages.iter().map(|o| o.end).max().unwrap_or(0)
    }

    /// The surviving graph: `graph` minus dead links and minus every link
    /// incident to a dead node (dead nodes stay as isolated vertices so
    /// node ids are stable). Planners BFS on this to route around faults.
    pub fn degrade_graph(&self, graph: &Multigraph) -> Multigraph {
        if self.is_empty() {
            return graph.clone();
        }
        let mut b = MultigraphBuilder::new(graph.node_count());
        for e in graph.edges() {
            if e.u == e.v || self.link_dead(e.u, e.v) {
                continue;
            }
            b.add_edge_mult(e.u, e.v, e.multiplicity);
        }
        b.build()
    }

    /// Does `path` (a vertex walk) cross any permanently dead link or
    /// touch a dead node? Such a packet can never be delivered.
    pub fn path_blocked(&self, path: &[NodeId]) -> bool {
        if self.is_empty() {
            return false;
        }
        if path.iter().any(|&u| self.node_dead(u)) {
            return true;
        }
        path.windows(2).any(|w| self.link_dead(w[0], w[1]))
    }

    /// Summary counts `(dead nodes, dead links, outages)` for reports.
    pub fn summary(&self) -> (usize, usize, usize) {
        (
            self.dead_nodes.len(),
            self.dead_links.len(),
            self.outages.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(side: NodeId) -> Multigraph {
        let mut b = MultigraphBuilder::new((side * side) as usize);
        for r in 0..side {
            for c in 0..side {
                let id = r * side + c;
                if c + 1 < side {
                    b.add_edge(id, id + 1);
                }
                if r + 1 < side {
                    b.add_edge(id, id + side);
                }
            }
        }
        b.build()
    }

    #[test]
    fn none_is_empty_and_blocks_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.path_blocked(&[0, 1, 2]));
        assert!(!plan.link_dead(0, 1));
        assert!(!plan.node_dead(7));
        assert_eq!(plan.last_outage_end(), 0);
        assert_eq!(plan.summary(), (0, 0, 0));
        let g = mesh(4);
        assert_eq!(plan.degrade_graph(&g), g);
    }

    #[test]
    fn trivial_spec_generates_none() {
        let g = mesh(4);
        let spec = FaultSpec::uniform(9, 0.0);
        assert!(spec.is_trivial());
        assert_eq!(FaultPlan::generate(&g, &spec), FaultPlan::none());
    }

    #[test]
    fn generation_is_a_pure_function_of_seed_and_graph() {
        let g = mesh(8);
        let spec = FaultSpec::uniform(42, 0.1);
        let a = FaultPlan::generate(&g, &spec);
        let b = FaultPlan::generate(&g, &spec);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Different seed: different plan (overwhelmingly likely at n=64).
        let c = FaultPlan::generate(&g, &FaultSpec::uniform(43, 0.1));
        assert_ne!(a, c);
        // Different graph, same seed: plans are keyed by fingerprint.
        let d = FaultPlan::generate(&mesh(6), &spec);
        assert_ne!(a.dead_links(), d.dead_links());
    }

    #[test]
    fn raising_the_rate_only_adds_faults() {
        // Threshold hashing: every link dead at p stays dead at p' > p.
        let g = mesh(8);
        let lo = FaultPlan::generate(&g, &FaultSpec::uniform(7, 0.05));
        let hi = FaultPlan::generate(&g, &FaultSpec::uniform(7, 0.25));
        for l in lo.dead_links() {
            assert!(
                hi.dead_links().contains(l),
                "{l:?} recovered at higher rate"
            );
        }
        for u in lo.dead_nodes() {
            assert!(hi.dead_nodes().contains(u));
        }
        assert!(hi.dead_links().len() >= lo.dead_links().len());
    }

    #[test]
    fn dead_nodes_kill_their_links() {
        let g = mesh(6);
        let spec = FaultSpec {
            node_fail_rate: 0.2,
            ..FaultSpec::uniform(3, 0.0)
        };
        let plan = FaultPlan::generate(&g, &spec);
        assert!(!plan.dead_nodes().is_empty(), "no node died at 20% on n=36");
        for &u in plan.dead_nodes() {
            for (v, _) in g.neighbors(u) {
                assert!(plan.link_dead(u, v), "live link at dead node {u}");
            }
            assert!(plan.path_blocked(&[u]));
        }
    }

    #[test]
    fn degraded_graph_drops_exactly_the_dead_links() {
        let g = mesh(8);
        let plan = FaultPlan::generate(&g, &FaultSpec::uniform(11, 0.15));
        let degraded = plan.degrade_graph(&g);
        assert_eq!(degraded.node_count(), g.node_count());
        for e in g.edges() {
            let expect = !plan.link_dead(e.u, e.v);
            assert_eq!(degraded.has_edge(e.u, e.v), expect, "{e:?}");
        }
        assert!(degraded.simple_edge_count() < g.simple_edge_count());
    }

    #[test]
    fn outages_are_finite_and_on_live_links() {
        let g = mesh(8);
        let spec = FaultSpec {
            outage_rate: 0.5,
            ..FaultSpec::uniform(5, 0.1)
        };
        let plan = FaultPlan::generate(&g, &spec);
        assert!(!plan.outages().is_empty());
        for o in plan.outages() {
            assert!(o.start < o.end, "{o:?}");
            assert!(o.end <= spec.outage_horizon + spec.outage_max_len);
            assert!(!plan.link_dead(o.u, o.v), "outage on dead link {o:?}");
            assert_eq!(o.capacity, 0, "unit links degrade to zero capacity");
        }
        assert_eq!(
            plan.last_outage_end(),
            plan.outages().iter().map(|o| o.end).max().unwrap()
        );
    }

    #[test]
    fn path_blocked_detects_interior_dead_links() {
        let g = mesh(4);
        let plan = FaultPlan::generate(
            &g,
            &FaultSpec {
                link_fail_rate: 0.3,
                ..FaultSpec::uniform(1, 0.0)
            },
        );
        let &(u, v) = plan
            .dead_links()
            .first()
            .expect("30% of 24 links: at least one dead");
        assert!(plan.path_blocked(&[u, v]));
        assert!(plan.path_blocked(&[v, u]));
        assert!(!plan.path_blocked(&[u]) || plan.node_dead(u));
    }
}
