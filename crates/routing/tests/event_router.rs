//! The event-driven backend's contract: same bits as the tick loop, which
//! is itself pinned to the retained reference simulator.
//!
//! Three layers of evidence, mirroring `sharded_router.rs`:
//!
//! * **Differential pins** — [`fcn_routing::route_events`] produces the
//!   *identical* [`fcn_routing::RoutingOutcome`] as
//!   [`fcn_routing::route_compiled`] AND `engine::reference::route_batch`
//!   across the determinism families × all three disciplines, through every
//!   abort path (MaxTicks via a starved budget *and* via a permanently
//!   gated wire the wheel fast-forwards over, Stranded via fault overlays,
//!   Cancelled via a pre-set flag), on the weak machines whose send budgets
//!   gate the budgeted send arm, and under sparse
//!   [`fcn_routing::InjectionSchedule`]s — the workload the backend exists
//!   for.
//! * **Arbitrary-schedule proptests** — *any* sparse injection schedule and
//!   *any* assembled outage schedule on any small net leaves the outcome
//!   bit-identical between `route_compiled_at` and `route_events_at`.
//! * **Drain-tail regression** — on a saturated mesh with one straggler the
//!   event backend must actually *skip* ticks (a positive
//!   `router_ticks_skipped_total`) while its outcome and delivered-packet
//!   telemetry stay equal to the tick backend's.

use std::sync::atomic::AtomicBool;
use std::sync::Mutex;

use fcn_faults::{FaultPlan, FaultSpec, LinkOutage};
use fcn_routing::engine::reference;
use fcn_routing::{
    plan_routes, route_compiled, route_compiled_at, route_compiled_gated, route_events,
    route_events_at, route_events_gated, route_events_pooled, CompiledNet, InjectionSchedule,
    PacketBatch, QueueDiscipline, RouterConfig, RouterScratch, Strategy,
};
use fcn_topology::{Family, Machine};
use proptest::prelude::*;

/// The determinism-suite families (same picks as `sharded_router.rs`).
const FAMILIES: [Family; 4] = [
    Family::Mesh(2),
    Family::Tree,
    Family::DeBruijn,
    Family::XTree,
];

const DISCIPLINES: [QueueDiscipline; 3] = [
    QueueDiscipline::Fifo,
    QueueDiscipline::FarthestFirst,
    QueueDiscipline::RandomRank,
];

/// Serializes global-registry toggling within this test binary.
static TELEMETRY_GATE: Mutex<()> = Mutex::new(());

fn symmetric_batch(
    machine: &Machine,
    mult: usize,
    demand_seed: u64,
    plan_seed: u64,
) -> Vec<fcn_routing::PacketPath> {
    let traffic = machine.symmetric_traffic();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(demand_seed);
    let demands: Vec<_> = (0..mult * traffic.n())
        .map(|_| traffic.sample(&mut rng))
        .collect();
    plan_routes(machine, &demands, Strategy::ShortestPath, plan_seed)
}

/// A deterministic sparse schedule: packet `i` comes due at
/// `(i * stride) % span`, so injections are scattered with long idle gaps
/// and out-of-pid order (exercising the tick-then-pid stable sort).
fn sparse_schedule(n: usize, stride: u64, span: u64) -> InjectionSchedule {
    InjectionSchedule::new((0..n as u64).map(|i| (i * stride) % span).collect())
}

/// The headline pin: families × disciplines × tick budgets, event backend
/// vs compiled vs reference — batch semantics (everything at tick 0).
#[test]
fn event_pin_families_disciplines_and_aborts() {
    for (fi, family) in FAMILIES.iter().enumerate() {
        let machine = family.build_near(64, 0x11);
        let paths = symmetric_batch(&machine, 4, 41 + fi as u64, 17 + fi as u64);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let mut scratch = RouterScratch::new();
        let mut escratch = RouterScratch::new();
        for discipline in DISCIPLINES {
            for max_ticks in [u64::MAX, 8] {
                let cfg = RouterConfig {
                    discipline,
                    seed: 99,
                    max_ticks,
                };
                let reference = reference::route_batch(&machine, paths.clone(), cfg);
                let compiled = route_compiled(&net, &batch, cfg, &mut scratch);
                assert_eq!(reference, compiled, "compiled drifted from reference");
                let events = route_events(&net, &batch, cfg, &mut escratch);
                assert_eq!(
                    events,
                    compiled,
                    "{} / {discipline:?} / max_ticks {max_ticks}",
                    machine.name()
                );
                if max_ticks == 8 {
                    assert!(!events.completed, "starved budget must abort");
                }
            }
        }
    }
}

/// Sparse schedules: families × disciplines, scattered injection ticks with
/// idle gaps the event backend skips — `route_events_at` vs
/// `route_compiled_at`, plus the degenerate uniform-0 schedule vs the batch
/// path.
#[test]
fn event_pin_sparse_schedules() {
    for (fi, family) in FAMILIES.iter().enumerate() {
        let machine = family.build_near(64, 0x11);
        let paths = symmetric_batch(&machine, 2, 59 + fi as u64, 31 + fi as u64);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let sched = sparse_schedule(batch.len(), 197, 4096);
        let uniform = InjectionSchedule::uniform(batch.len(), 0);
        let mut scratch = RouterScratch::new();
        let mut escratch = RouterScratch::new();
        for discipline in DISCIPLINES {
            let cfg = RouterConfig {
                discipline,
                seed: 13,
                ..Default::default()
            };
            let tick = route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, None);
            let events = route_events_at(&net, &batch, &sched, cfg, &mut escratch, None);
            assert_eq!(events, tick, "{} / {discipline:?}", machine.name());
            assert!(tick.completed);
            assert!(
                tick.ticks >= sched.max_tick(),
                "last injection bounds the run"
            );
            // Uniform tick-0 schedule ≡ batch semantics, on both backends.
            let batch_sem = route_compiled(&net, &batch, cfg, &mut scratch);
            assert_eq!(
                route_compiled_at(&net, &batch, &uniform, cfg, &mut scratch, None),
                batch_sem
            );
            assert_eq!(
                route_events_at(&net, &batch, &uniform, cfg, &mut escratch, None),
                batch_sem
            );
        }
    }
}

/// Fault overlays: dead wires strand packets at injection, outage windows
/// gate the budgeted send arm mid-run — the event backend must reproduce
/// both (Stranded abort cause included), batch and scheduled semantics.
#[test]
fn event_pin_fault_overlays() {
    for (fi, family) in FAMILIES.iter().enumerate() {
        let machine = family.build_near(64, 0x11);
        let paths = symmetric_batch(&machine, 3, 83 + fi as u64, 29 + fi as u64);
        let base = CompiledNet::compile(&machine);
        let spec = FaultSpec::uniform(0xfa17 + fi as u64, 0.15);
        let plan = FaultPlan::generate(machine.graph(), &spec);
        let net = base.apply_faults(&plan);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let sched = sparse_schedule(batch.len(), 113, 2048);
        let mut scratch = RouterScratch::new();
        let mut escratch = RouterScratch::new();
        for discipline in DISCIPLINES {
            let cfg = RouterConfig {
                discipline,
                seed: 7,
                ..Default::default()
            };
            let compiled = route_compiled(&net, &batch, cfg, &mut scratch);
            let events = route_events(&net, &batch, cfg, &mut escratch);
            assert_eq!(
                events,
                compiled,
                "{} faulted / {discipline:?}",
                machine.name()
            );
            let tick_at = route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, None);
            let events_at = route_events_at(&net, &batch, &sched, cfg, &mut escratch, None);
            assert_eq!(
                events_at,
                tick_at,
                "{} faulted+scheduled / {discipline:?}",
                machine.name()
            );
        }
    }
}

/// A wire gated shut far beyond the budget freezes the net: the tick loop
/// burns `max_ticks` one by one, the event backend burns them in one wheel
/// jump — same MaxTicks abort, same tick count, same bits.
#[test]
fn event_pin_frozen_net_fast_forwards_to_max_ticks() {
    let machine = Machine::linear_array(4);
    // One packet 0 → 3; the middle link is gated to capacity 0 from tick 1
    // to far past any budget, so after its first hop the packet waits
    // forever.
    let paths = plan_routes(&machine, &[(0, 3)], Strategy::ShortestPath, 5);
    let outage = |u: u32, v: u32| LinkOutage {
        u,
        v,
        start: 1,
        end: 1 << 40,
        capacity: 0,
    };
    let plan = FaultPlan::assemble(vec![], vec![], vec![outage(1, 2)]);
    let net = CompiledNet::compile(&machine).apply_faults(&plan);
    let batch = PacketBatch::compile(&net, &paths).unwrap();
    let mut scratch = RouterScratch::new();
    let mut escratch = RouterScratch::new();
    for discipline in DISCIPLINES {
        let cfg = RouterConfig {
            discipline,
            seed: 3,
            max_ticks: 50_000,
        };
        let tick = route_compiled(&net, &batch, cfg, &mut scratch);
        let events = route_events(&net, &batch, cfg, &mut escratch);
        assert_eq!(events, tick, "{discipline:?}");
        assert_eq!(tick.abort, fcn_routing::AbortCause::MaxTicks);
        assert_eq!(tick.ticks, 50_000, "budget burned to the tick");
    }
}

/// A pre-set cancellation flag aborts tick 1 on every path with identical
/// outcomes — the documented cancel-at-simulated-ticks semantics coincide
/// with the tick loop's whenever the flag predates the run.
#[test]
fn event_pin_cancelled_abort() {
    let machine = Family::Mesh(2).build_near(64, 0x11);
    let paths = symmetric_batch(&machine, 4, 5, 13);
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &paths).unwrap();
    let cancel = AtomicBool::new(true);
    let mut scratch = RouterScratch::new();
    let mut escratch = RouterScratch::new();
    for discipline in DISCIPLINES {
        let cfg = RouterConfig {
            discipline,
            seed: 3,
            ..Default::default()
        };
        let compiled = route_compiled_gated(&net, &batch, cfg, &mut scratch, Some(&cancel));
        assert_eq!(compiled.abort, fcn_routing::AbortCause::Cancelled);
        let events = route_events_gated(&net, &batch, cfg, &mut escratch, Some(&cancel));
        assert_eq!(events, compiled, "{discipline:?}");
    }
}

/// Cancellation must win against a wheel fast-forward: on a frozen net
/// (every injection due beyond the budget) the event backend's next jump
/// would burn the whole 10⁶-tick budget in one skip — a raised cancel flag
/// has to abort with `Cancelled` at the last simulated tick instead of
/// committing the skip and reporting `MaxTicks` with the budget burned.
/// The uncancelled counterfactual pins that the skip is real.
#[test]
fn event_pin_cancelled_before_skip() {
    let machine = Family::Mesh(2).build_near(64, 0x11);
    let paths = symmetric_batch(&machine, 2, 5, 13);
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &paths).unwrap();
    // Every packet comes due at tick 2·10⁶, past the 10⁶ budget: nothing
    // ever moves, so the first tick is quiescent and the only wheel entry
    // lies beyond max_ticks — the frozen-net jump burns the whole budget.
    let sched = InjectionSchedule::new(vec![2_000_000; batch.len()]);
    let cfg = RouterConfig {
        max_ticks: 1_000_000,
        ..Default::default()
    };
    let mut scratch = RouterScratch::new();
    let mut escratch = RouterScratch::new();
    // Counterfactual (no cancel): one fast-forward to the budget cap.
    let free = route_events_at(&net, &batch, &sched, cfg, &mut escratch, None);
    assert_eq!(free.abort, fcn_routing::AbortCause::MaxTicks);
    assert_eq!(free.ticks, 1_000_000, "budget burned in one skip");
    assert_eq!(
        free,
        route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, None)
    );
    // Cancelled: the flag is observed before any span is skipped — the
    // outcome must not report a single tick beyond the last simulated one.
    let cancel = AtomicBool::new(true);
    let cancelled = route_events_at(&net, &batch, &sched, cfg, &mut escratch, Some(&cancel));
    assert_eq!(cancelled.abort, fcn_routing::AbortCause::Cancelled);
    assert_eq!(cancelled.ticks, 0, "no skipped span may be accounted");
    assert_eq!(
        cancelled,
        route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, Some(&cancel))
    );
}

/// Weak machines: per-node send budgets (bus hub, weak hypercube) drive the
/// budgeted send arm, the subtle half of the wire model.
#[test]
fn event_pin_weak_machine_send_budgets() {
    for machine in [Machine::global_bus(16), Machine::weak_hypercube(4)] {
        let paths = symmetric_batch(&machine, 3, 7, 23);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let sched = sparse_schedule(batch.len(), 61, 512);
        let mut scratch = RouterScratch::new();
        let mut escratch = RouterScratch::new();
        let cfg = RouterConfig::default();
        let compiled = route_compiled(&net, &batch, cfg, &mut scratch);
        assert_eq!(
            reference::route_batch(&machine, paths.clone(), cfg),
            compiled
        );
        assert_eq!(
            route_events(&net, &batch, cfg, &mut escratch),
            compiled,
            "{}",
            machine.name()
        );
        assert_eq!(
            route_events_at(&net, &batch, &sched, cfg, &mut escratch, None),
            route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, None),
            "{} scheduled",
            machine.name()
        );
    }
}

/// `route_events_pooled` is the harness dispatch point: same bits as an
/// explicit-scratch run, and reusable across batches.
#[test]
fn event_pooled_dispatch_is_transparent() {
    let machine = Family::DeBruijn.build_near(64, 0x11);
    let paths = symmetric_batch(&machine, 2, 3, 9);
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &paths).unwrap();
    let cfg = RouterConfig::default();
    let mut scratch = RouterScratch::new();
    let baseline = route_events(&net, &batch, cfg, &mut scratch);
    for _ in 0..2 {
        assert_eq!(route_events_pooled(&net, &batch, cfg), baseline);
    }
}

/// The drain-tail regression (issue satellite): a saturated mesh with one
/// straggler scheduled long after the bulk drains. The event backend must
/// (a) return the identical outcome, (b) publish the same delivered-packet
/// telemetry, and (c) have actually skipped the idle gap
/// (`router_ticks_skipped_total > 0`, `router_events_total` counting the
/// run).
#[test]
fn drain_tail_skips_ticks_with_equal_outcome_and_telemetry() {
    let _gate = TELEMETRY_GATE.lock().unwrap();
    let machine = Machine::mesh(2, 16);
    let paths = symmetric_batch(&machine, 4, 21, 77);
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &paths).unwrap();
    // Bulk at tick 0, one straggler far past the drain of a mesh2(16)
    // batch (which completes within a few hundred ticks).
    let mut at = vec![0u64; batch.len()];
    at[0] = 50_000;
    let sched = InjectionSchedule::new(at);
    let cfg = RouterConfig::default();
    let mut scratch = RouterScratch::new();
    let mut escratch = RouterScratch::new();

    let reg = fcn_telemetry::global();
    let _ = fcn_telemetry::take_shard();
    reg.set_enabled(true);
    let tick = route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, None);
    reg.set_enabled(false);
    let tick_shard = fcn_telemetry::take_shard();

    reg.set_enabled(true);
    let events = route_events_at(&net, &batch, &sched, cfg, &mut escratch, None);
    reg.set_enabled(false);
    let events_shard = fcn_telemetry::take_shard();

    assert_eq!(events, tick, "drain-tail outcome diverged");
    assert!(events.completed);
    assert!(events.ticks >= 50_000, "straggler bounds the run");
    assert_eq!(
        events_shard.counter(fcn_telemetry::names::ROUTER_DELIVERED_TOTAL),
        tick_shard.counter(fcn_telemetry::names::ROUTER_DELIVERED_TOTAL),
        "delivered telemetry diverged"
    );
    assert_eq!(
        events_shard.counter(fcn_telemetry::names::ROUTER_TICKS_TOTAL),
        tick_shard.counter(fcn_telemetry::names::ROUTER_TICKS_TOTAL),
        "simulated-tick telemetry is outcome ticks on both backends"
    );
    // The tick loop never skips; the event backend must have skipped almost
    // the whole idle gap.
    assert_eq!(
        tick_shard.counter(fcn_telemetry::names::ROUTER_TICKS_SKIPPED_TOTAL),
        0
    );
    let skipped = events_shard.counter(fcn_telemetry::names::ROUTER_TICKS_SKIPPED_TOTAL);
    assert!(skipped > 40_000, "only {skipped} ticks skipped");
    assert_eq!(
        events_shard.counter(fcn_telemetry::names::ROUTER_EVENTS_TOTAL),
        1
    );
    // The occupancy histogram observes every tick — simulated or skipped —
    // on both backends.
    assert_eq!(
        events_shard
            .histogram(fcn_telemetry::names::ROUTER_QUEUE_OCCUPANCY)
            .count,
        events.ticks
    );
    assert_eq!(
        tick_shard
            .histogram(fcn_telemetry::names::ROUTER_QUEUE_OCCUPANCY)
            .count,
        tick.ticks
    );
}

/// Outage windows that open and close entirely inside a skipped gap are
/// counted as skipped (the `fcnemu faults --verbose` counter), and the
/// outcome still matches the tick backend, which dutifully simulates them.
#[test]
fn fully_idle_outage_windows_are_counted_skipped() {
    let _gate = TELEMETRY_GATE.lock().unwrap();
    let machine = Machine::linear_array(6);
    let paths = plan_routes(&machine, &[(0, 2), (5, 3)], Strategy::ShortestPath, 9);
    // Windows on links the packets never occupy at window time: both
    // packets drain within ~3 ticks of injection, the windows sit at
    // 1000–1100, and the straggler comes due at 9000.
    let win = |u: u32, v: u32| LinkOutage {
        u,
        v,
        start: 1000,
        end: 1100,
        capacity: 0,
    };
    let plan = FaultPlan::assemble(vec![], vec![], vec![win(2, 3), win(3, 4)]);
    let net = CompiledNet::compile(&machine).apply_faults(&plan);
    let batch = PacketBatch::compile(&net, &paths).unwrap();
    let sched = InjectionSchedule::new(vec![0, 9000]);
    let cfg = RouterConfig::default();
    let mut scratch = RouterScratch::new();
    let mut escratch = RouterScratch::new();

    let reg = fcn_telemetry::global();
    let _ = fcn_telemetry::take_shard();
    reg.set_enabled(true);
    let events = route_events_at(&net, &batch, &sched, cfg, &mut escratch, None);
    reg.set_enabled(false);
    let shard = fcn_telemetry::take_shard();

    let tick = route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, None);
    assert_eq!(events, tick);
    assert!(events.completed);
    // Each undirected outage window covers two directed wires.
    assert_eq!(
        shard.counter(fcn_telemetry::names::ROUTER_OUTAGE_WINDOWS_SKIPPED_TOTAL),
        4,
        "both windows (× two directed wires) lay inside the skipped gap"
    );
}

fn machine_for(pick: usize, size: usize) -> Machine {
    match pick {
        0..=3 => FAMILIES[pick].build_near(size, 0x11),
        4 => Machine::global_bus(size.clamp(4, 24)),
        _ => Machine::weak_hypercube(3 + (size % 3) as u32),
    }
}

/// The machine's undirected links (u < v), for outage placement.
fn links_of(machine: &Machine) -> Vec<(u32, u32)> {
    let g = machine.graph();
    let mut links = Vec::new();
    for u in 0..g.node_count() as u32 {
        for (v, _) in g.neighbors(u) {
            if u < v {
                links.push((u, v));
            }
        }
    }
    links
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary sparse batches with arbitrary injection schedules never
    /// diverge between the tick and event backends: any machine, any
    /// demands, any scatter of injection ticks, all three disciplines,
    /// generous and starved budgets.
    #[test]
    fn arbitrary_schedules_preserve_outcomes(
        pick in 0usize..6,
        size in 12usize..64,
        seed in proptest::strategy::any::<u64>(),
        raw in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>(), 0u64..600),
            1..40,
        ),
        starved in proptest::strategy::any::<bool>(),
    ) {
        let machine = machine_for(pick, size);
        let n = machine.processors() as u64;
        let demands: Vec<_> = raw.iter().map(|&(s, d, _)| ((s % n) as u32, (d % n) as u32)).collect();
        let paths = plan_routes(&machine, &demands, Strategy::ShortestPath, seed);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let sched = InjectionSchedule::new(raw.iter().map(|&(_, _, t)| t).collect());
        let mut scratch = RouterScratch::new();
        let mut escratch = RouterScratch::new();
        for discipline in DISCIPLINES {
            let cfg = RouterConfig {
                discipline,
                seed,
                max_ticks: if starved { 4 } else { u64::MAX },
            };
            let tick = route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, None);
            let events = route_events_at(&net, &batch, &sched, cfg, &mut escratch, None);
            prop_assert!(
                events == tick,
                "{:?}: {:?} != {:?}",
                discipline,
                events,
                tick
            );
        }
    }

    /// Arbitrary outage schedules on arbitrary small nets: window gating,
    /// wheel wakeups, and the skipped-window counter compose without
    /// changing a bit — batch and scheduled semantics both.
    #[test]
    fn arbitrary_outages_preserve_outcomes(
        pick in 0usize..4,
        size in 16usize..64,
        seed in proptest::strategy::any::<u64>(),
        outage_picks in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), 0u64..400, 1u64..200),
            1..8,
        ),
        raw in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>(), 0u64..500),
            1..32,
        ),
    ) {
        let machine = machine_for(pick, size);
        let n = machine.processors() as u64;
        let demands: Vec<_> = raw.iter().map(|&(s, d, _)| ((s % n) as u32, (d % n) as u32)).collect();
        let paths = plan_routes(&machine, &demands, Strategy::ShortestPath, seed);
        let links = links_of(&machine);
        let outages: Vec<_> = outage_picks
            .iter()
            .map(|&(l, start, len)| {
                let (u, v) = links[(l % links.len() as u64) as usize];
                LinkOutage { u, v, start, end: start + len, capacity: 0 }
            })
            .collect();
        let fplan = FaultPlan::assemble(vec![], vec![], outages);
        let net = CompiledNet::compile(&machine).apply_faults(&fplan);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let sched = InjectionSchedule::new(raw.iter().map(|&(_, _, t)| t).collect());
        let mut scratch = RouterScratch::new();
        let mut escratch = RouterScratch::new();
        let cfg = RouterConfig { discipline: QueueDiscipline::Fifo, seed, ..Default::default() };
        let batch_tick = route_compiled(&net, &batch, cfg, &mut scratch);
        let batch_events = route_events(&net, &batch, cfg, &mut escratch);
        prop_assert!(batch_events == batch_tick, "batch: {:?} != {:?}", batch_events, batch_tick);
        let tick = route_compiled_at(&net, &batch, &sched, cfg, &mut scratch, None);
        let events = route_events_at(&net, &batch, &sched, cfg, &mut escratch, None);
        prop_assert!(events == tick, "scheduled: {:?} != {:?}", events, tick);
    }
}

/// Boundary ticks for the wheel proptests: every base-64 level edge
/// (`64^k ± 2` straddles the slot-shift rollover between wheel levels),
/// the `64^6` overflow threshold, and large u64 values up to the top of
/// the range — the places where `EventWheel::place`'s leading-zeros
/// arithmetic changes regime.
fn boundary_tick(pick: usize, off: u64) -> u64 {
    const BASES: [u64; 11] = [
        0,
        64,           // level 0 → 1
        64 * 64,      // level 1 → 2
        64 * 64 * 64, // level 2 → 3
        1 << 24,      // 64^4: level 3 → 4
        1 << 30,      // 64^5: level 4 → 5
        1 << 36,      // 64^6: wheel → overflow list
        1 << 48,
        1 << 63,
        u64::MAX - 4,
        12_345, // one interior non-boundary control point
    ];
    BASES[pick % BASES.len()]
        .saturating_sub(2)
        .saturating_add(off)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `EventWheel::next_after` against a naive multiset reference, with
    /// every entry and every query tick clustered on level-rollover
    /// boundaries (`64^k ± 2`), the overflow threshold, and large u64
    /// values: each query must drop exactly the entries at ticks `<= now`,
    /// return the minimum surviving tick, and keep `len()` in lockstep.
    #[test]
    fn wheel_next_after_matches_reference_at_rollovers(
        entries in proptest::collection::vec((0usize..32, 0u64..5), 1..48),
        queries in proptest::collection::vec((0usize..32, 0u64..5), 1..12),
    ) {
        let mut wheel = fcn_routing::EventWheel::new();
        let mut model: Vec<u64> = Vec::new();
        for &(pick, off) in &entries {
            let t = boundary_tick(pick, off);
            wheel.push(t, fcn_routing::EventKind::Inject);
            model.push(t);
        }
        prop_assert_eq!(wheel.len(), model.len());
        for &(pick, off) in &queries {
            let now = boundary_tick(pick, off);
            let got = wheel.next_after(now);
            model.retain(|&t| t > now);
            let want = model.iter().copied().min();
            prop_assert!(got == want, "now = {}: got {:?}, want {:?}", now, got, want);
            prop_assert!(
                wheel.len() == model.len(),
                "now = {}: len {} != {}",
                now,
                wheel.len(),
                model.len()
            );
        }
    }
}

/// Regression pin for the seeded-wakeup path: a seeded scatter of wake
/// ticks (the shape `route_events` pushes for injections and fault-window
/// wakeups) must be visited by the `now = next_after(now)` walk in exactly
/// sorted-distinct order, across level rollovers and into the overflow
/// list, leaving the wheel empty once the walk passes the last wake.
#[test]
fn wheel_seeded_wakeup_walk_visits_sorted_distinct_ticks() {
    use rand::RngExt as _;
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_bee5);
    let mut wheel = fcn_routing::EventWheel::new();
    let mut ticks: Vec<u64> = Vec::new();
    for i in 0..400u64 {
        // Mix magnitudes so every level (and the overflow list) is hit:
        // shift a seeded 36-bit draw down by a per-entry level choice.
        let raw: u64 = rng.random();
        let t = (raw & ((1 << 36) - 1)) >> (6 * (i % 7));
        let kind = if i % 3 == 0 {
            fcn_routing::EventKind::WindowWakeup
        } else {
            fcn_routing::EventKind::Inject
        };
        wheel.push(t, kind);
        ticks.push(t);
    }
    ticks.sort_unstable();
    ticks.dedup();
    let mut walk = Vec::new();
    // Start below every entry: tick 0 entries are dropped by `next_after(0)`
    // (they are "in the past" of now = 0), matching the engine, which only
    // consults the wheel after simulating tick `now`.
    let mut now = 0u64;
    while let Some(next) = wheel.next_after(now) {
        walk.push(next);
        now = next;
    }
    let expect: Vec<u64> = ticks.into_iter().filter(|&t| t > 0).collect();
    assert_eq!(walk, expect, "seeded wakeup walk must be sorted-distinct");
    // The terminating `next_after` (the one that returned `None`) treated
    // the last wake as stale and dropped it: the wheel ends empty.
    assert_eq!(
        wheel.len(),
        0,
        "walking past the last wake empties the wheel"
    );
    assert_eq!(wheel.next_after(0), None);
}
