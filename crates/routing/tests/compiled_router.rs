//! The compiled router's contract: same bits as the reference simulator.
//!
//! Two layers of evidence:
//!
//! * **Round-trip properties** — flattening planner paths into a
//!   [`PacketBatch`] and decoding them back through the [`CompiledNet`]
//!   reproduces the exact vertex sequences, across every route policy the
//!   planners implement (BFS, restricted BFS, bit-correction, level walks)
//!   and both strategies.
//! * **Equivalence pins** — [`fcn_routing::route_compiled`] produces the
//!   *identical* [`RoutingOutcome`] (ticks, delivered, max queue, rate) as
//!   the retained pre-compilation simulator
//!   `fcn_routing::engine::reference::route_batch` across the determinism
//!   families × all three queue disciplines, including tick-budget aborts.
//!
//! Together these justify calling the rewrite a pure performance change:
//! every number the paper tables ingest is unchanged.

use fcn_routing::engine::reference;
use fcn_routing::{
    plan_routes, route_compiled, CompiledNet, PacketBatch, PacketPath, QueueDiscipline, RouteError,
    RouterConfig, RouterScratch, Strategy,
};
use fcn_topology::{Family, Machine};
use proptest::prelude::*;

/// The determinism-suite families: qualitatively different route policies
/// (BFS mesh, root-heavy tree, arithmetic de Bruijn, level-walk X-tree).
const FAMILIES: [Family; 4] = [
    Family::Mesh(2),
    Family::Tree,
    Family::DeBruijn,
    Family::XTree,
];

fn machine_for(pick: usize, size: usize) -> Machine {
    FAMILIES[pick % FAMILIES.len()].build_near(size, 0x11)
}

fn demands_on(machine: &Machine, raw: &[(u64, u64)]) -> Vec<(u32, u32)> {
    let n = machine.processors() as u64;
    raw.iter()
        .map(|&(s, d)| ((s % n) as u32, (d % n) as u32))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn packet_batch_round_trips_planner_paths(
        pick in 0usize..4,
        size in 16usize..96,
        seed in proptest::strategy::any::<u64>(),
        raw in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..40,
        ),
    ) {
        let machine = machine_for(pick, size);
        let demands = demands_on(&machine, &raw);
        let net = CompiledNet::compile(&machine);
        for strategy in [Strategy::ShortestPath, Strategy::Valiant] {
            let paths = plan_routes(&machine, &demands, strategy, seed);
            let batch = PacketBatch::compile(&net, &paths)
                .expect("planner paths are graph walks");
            prop_assert_eq!(batch.len(), paths.len());
            let mut hop_sum = 0usize;
            for (i, p) in paths.iter().enumerate() {
                prop_assert_eq!(batch.hops(i) as usize, p.hops());
                prop_assert_eq!(batch.path(i), &p.path[..]);
                prop_assert_eq!(&batch.decode_path(&net, i), &p.path);
                // Every pre-resolved wire id must be exactly the wire the
                // tick loop would otherwise re-derive for that hop.
                for (h, &w) in batch.wires(i).iter().enumerate() {
                    prop_assert_eq!(net.wire_head(w), p.path[h + 1]);
                    prop_assert_eq!(net.wire_between(p.path[h], p.path[h + 1]), Some(w));
                }
                hop_sum += p.hops();
            }
            prop_assert_eq!(batch.total_hops() as usize, hop_sum);
        }
    }

    #[test]
    fn compiled_router_matches_reference(
        pick in 0usize..4,
        size in 16usize..80,
        seed in proptest::strategy::any::<u64>(),
        raw in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..48,
        ),
    ) {
        let machine = machine_for(pick, size);
        let demands = demands_on(&machine, &raw);
        let paths = plan_routes(&machine, &demands, Strategy::ShortestPath, seed);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let mut scratch = RouterScratch::new();
        for discipline in [
            QueueDiscipline::Fifo,
            QueueDiscipline::FarthestFirst,
            QueueDiscipline::RandomRank,
        ] {
            let cfg = RouterConfig { discipline, seed, ..Default::default() };
            let old = reference::route_batch(&machine, paths.clone(), cfg);
            let new = route_compiled(&net, &batch, cfg, &mut scratch);
            prop_assert_eq!(old, new);
        }
    }
}

/// Deterministic pin at saturation scale: every family × discipline, batch
/// of 4n symmetric packets, plus a deliberately starved tick budget so the
/// abort path is covered too.
#[test]
fn equivalence_pin_families_times_disciplines() {
    for (fi, family) in FAMILIES.iter().enumerate() {
        let machine = family.build_near(64, 0x11);
        let traffic = machine.symmetric_traffic();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41 + fi as u64);
        let demands: Vec<_> = (0..4 * traffic.n())
            .map(|_| traffic.sample(&mut rng))
            .collect();
        let paths = plan_routes(&machine, &demands, Strategy::ShortestPath, 17 + fi as u64);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let mut scratch = RouterScratch::new();
        for discipline in [
            QueueDiscipline::Fifo,
            QueueDiscipline::FarthestFirst,
            QueueDiscipline::RandomRank,
        ] {
            for max_ticks in [u64::MAX, 8] {
                let cfg = RouterConfig {
                    discipline,
                    seed: 99,
                    max_ticks,
                };
                let old = reference::route_batch(&machine, paths.clone(), cfg);
                let new = route_compiled(&net, &batch, cfg, &mut scratch);
                assert_eq!(
                    old,
                    new,
                    "{} / {discipline:?} / max_ticks {max_ticks}",
                    machine.name()
                );
                if max_ticks == 8 {
                    assert!(!new.completed, "starved budget must abort");
                }
            }
        }
    }
}

#[test]
fn weak_machines_pin_send_budgets() {
    // Per-node send caps (bus hub, weak hypercube) are the subtle half of
    // the wire model; pin them separately.
    for machine in [Machine::global_bus(16), Machine::weak_hypercube(4)] {
        let traffic = machine.symmetric_traffic();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let demands: Vec<_> = (0..3 * traffic.n())
            .map(|_| traffic.sample(&mut rng))
            .collect();
        let paths = plan_routes(&machine, &demands, Strategy::ShortestPath, 23);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let mut scratch = RouterScratch::new();
        let cfg = RouterConfig::default();
        let old = reference::route_batch(&machine, paths.clone(), cfg);
        let new = route_compiled(&net, &batch, cfg, &mut scratch);
        assert_eq!(old, new, "{}", machine.name());
    }
}

#[test]
fn compile_rejects_malformed_paths_with_typed_errors() {
    let machine = Machine::mesh(2, 4); // 4x4 grid, node 0 and 5 not adjacent
    let net = CompiledNet::compile(&machine);
    let teleport = vec![PacketPath::new(vec![0, 5])];
    match PacketBatch::compile(&net, &teleport) {
        Err(RouteError::NoWire {
            from: 0,
            to: 5,
            packet: 0,
        }) => {}
        other => panic!("expected NoWire, got {other:?}"),
    }
    let out_of_range = vec![PacketPath::new(vec![2, 999])];
    match PacketBatch::compile(&net, &out_of_range) {
        Err(RouteError::NodeOutOfRange { node: 999, .. }) => {}
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
    // The error carries the *packet index*, so planner bugs in big batches
    // are attributable.
    let ok_then_bad = vec![PacketPath::new(vec![0, 1]), PacketPath::new(vec![0, 5])];
    match PacketBatch::compile(&net, &ok_then_bad) {
        Err(RouteError::NoWire { packet: 1, .. }) => {}
        other => panic!("expected NoWire at packet 1, got {other:?}"),
    }
}
