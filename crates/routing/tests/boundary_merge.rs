//! Property tests for the boundary-exchange merge in isolation.
//!
//! The sharded router's correctness reduces to one claim: scattering a
//! tick's send sequence across per-shard [`Outbox`]es and re-merging with
//! [`merge_outboxes`] reproduces the sequential send order exactly. These
//! properties pin that down without running a full simulation (the routing
//! analogue of `crates/telemetry/tests/shard_merge.rs`):
//!
//! * any assignment of activation-key runs to shards merges back to the
//!   sequential order (shard-count and placement independence),
//! * a single outbox degenerates to an in-order scan, and
//! * the merge tags every message with its true source shard.

use fcn_routing::{merge_outboxes, BoundaryMsg, Outbox};
use proptest::prelude::*;

/// One node's send-phase output, modeled abstractly: an activation key and
/// how many messages the node popped this tick.
#[derive(Debug, Clone)]
struct RunSpec {
    act_key: u64,
    len: usize,
    shard: usize,
}

/// Build run specs from raw proptest draws: activation keys are made
/// strictly increasing by accumulating positive deltas (each node activates
/// at a distinct global rank), and each run lands on an arbitrary shard —
/// the sequential engine's active list, dealt out to K workers.
fn specs_from(raw: &[(u64, u64, u64)], shards: usize) -> Vec<RunSpec> {
    let mut key = 0u64;
    raw.iter()
        .map(|&(dk, len, shard)| {
            key += dk % 1000 + 1;
            RunSpec {
                act_key: key,
                len: (len % 6 + 1) as usize,
                shard: (shard % shards as u64) as usize,
            }
        })
        .collect()
}

/// The sequential send order: every run's messages in activation-key order,
/// with globally unique pids so misplacements cannot alias.
fn sequential_order(specs: &[RunSpec]) -> Vec<(usize, BoundaryMsg)> {
    let mut pid = 0u32;
    let mut seq = Vec::new();
    for spec in specs {
        for _ in 0..spec.len {
            seq.push((
                spec.shard,
                BoundaryMsg {
                    pid,
                    rem: (pid % 7) + 1,
                    cursor: pid.wrapping_mul(3),
                },
            ));
            pid += 1;
        }
    }
    seq
}

/// Scatter the sequential order into per-shard outboxes, exactly as the
/// shard workers would: each shard pushes only its own runs, in key order.
fn scatter(specs: &[RunSpec], seq: &[(usize, BoundaryMsg)], shards: usize) -> Vec<Outbox> {
    let mut outboxes: Vec<Outbox> = (0..shards).map(|_| Outbox::default()).collect();
    let mut it = seq.iter();
    for spec in specs {
        for _ in 0..spec.len {
            let (shard, msg) = it.next().expect("seq covers all runs");
            assert_eq!(*shard, spec.shard);
            outboxes[spec.shard].push(spec.act_key, *msg);
        }
    }
    outboxes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any placement of activation runs onto any number of shards merges
    /// back to the exact sequential send order, message for message,
    /// with the correct source shard reported for each.
    #[test]
    fn merge_reproduces_sequential_send_order(
        raw in proptest::collection::vec(
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
            ),
            0..60,
        ),
        shards in 1usize..9,
    ) {
        let specs = specs_from(&raw, shards);
        let seq = sequential_order(&specs);
        let outboxes = scatter(&specs, &seq, shards);

        let total: usize = outboxes.iter().map(|o| o.len()).sum();
        prop_assert_eq!(total, seq.len());

        let mut merged = Vec::with_capacity(seq.len());
        merge_outboxes(&outboxes, |s, m| merged.push((s, *m)));
        prop_assert_eq!(merged, seq);
    }

    /// With one shard the merge is an identity scan: the outbox's own push
    /// order comes back untouched.
    #[test]
    fn single_shard_merge_is_identity(
        raw in proptest::collection::vec(
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
            ),
            0..40,
        ),
    ) {
        let specs = specs_from(&raw, 1);
        let seq = sequential_order(&specs);
        let outboxes = scatter(&specs, &seq, 1);
        let mut merged = Vec::new();
        merge_outboxes(&outboxes, |s, m| merged.push((s, *m)));
        prop_assert!(merged.iter().all(|&(s, _)| s == 0));
        prop_assert_eq!(merged, seq);
    }

    /// Adding empty shards anywhere (workers that sent nothing this tick)
    /// never perturbs the merged order.
    #[test]
    fn empty_shards_are_transparent(
        raw in proptest::collection::vec(
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
            ),
            1..40,
        ),
        shards in 1usize..5,
        pad in 1usize..4,
    ) {
        let specs = specs_from(&raw, shards);
        let seq = sequential_order(&specs);
        let mut outboxes = scatter(&specs, &seq, shards);
        // Pad with empty outboxes at the end: same messages, same order,
        // only the shard universe grows.
        for _ in 0..pad {
            outboxes.push(Outbox::default());
        }
        let mut merged = Vec::new();
        merge_outboxes(&outboxes, |s, m| merged.push((s, *m)));
        prop_assert_eq!(merged, seq);
    }
}
