//! The sharded router's contract: same bits as the 1-shard engine, which is
//! itself pinned to the retained reference simulator.
//!
//! Three layers of evidence:
//!
//! * **Differential pins** — [`fcn_routing::route_sharded`] produces the
//!   *identical* [`fcn_routing::RoutingOutcome`] as
//!   [`fcn_routing::route_compiled`] AND `engine::reference::route_batch`
//!   across the determinism families × all three disciplines × shard counts
//!   {1, 2, 3, 7, 16}, through every abort path (MaxTicks via a starved
//!   budget, Stranded via fault overlays, Cancelled via a pre-set flag) and
//!   on the weak machines whose send budgets gate the budgeted send arm.
//! * **Arbitrary-partition proptests** — *any* non-decreasing node
//!   partition ([`ShardPlan::from_bounds`]), balanced or degenerate, of any
//!   small net leaves the outcome bit-identical.
//! * **Partition invariance** — compiling then sharding equals sharding the
//!   node set then compiling per shard: each [`fcn_routing::ShardView`]'s
//!   wire ids, tails, heads, capacities, and send budgets match what an
//!   independent walk of the machine's adjacency produces for just that
//!   node range.

use std::sync::atomic::AtomicBool;

use fcn_faults::{FaultPlan, FaultSpec};
use fcn_routing::engine::reference;
use fcn_routing::{
    plan_routes, route_compiled, route_compiled_gated, route_sharded, route_sharded_gated,
    route_sharded_pooled, CompiledNet, PacketBatch, QueueDiscipline, RouterConfig, RouterScratch,
    ShardPlan, Strategy,
};
use fcn_topology::{Family, Machine};
use proptest::prelude::*;

/// The determinism-suite families (same picks as `compiled_router.rs`).
const FAMILIES: [Family; 4] = [
    Family::Mesh(2),
    Family::Tree,
    Family::DeBruijn,
    Family::XTree,
];

/// The issue's shard-count grid: 1 (degenerate), tiny, odd, prime, and more
/// shards than some small nets have nodes.
const SHARD_COUNTS: [usize; 5] = [1, 2, 3, 7, 16];

const DISCIPLINES: [QueueDiscipline; 3] = [
    QueueDiscipline::Fifo,
    QueueDiscipline::FarthestFirst,
    QueueDiscipline::RandomRank,
];

fn symmetric_batch(
    machine: &Machine,
    mult: usize,
    demand_seed: u64,
    plan_seed: u64,
) -> Vec<fcn_routing::PacketPath> {
    let traffic = machine.symmetric_traffic();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(demand_seed);
    let demands: Vec<_> = (0..mult * traffic.n())
        .map(|_| traffic.sample(&mut rng))
        .collect();
    plan_routes(machine, &demands, Strategy::ShortestPath, plan_seed)
}

/// The headline pin: families × disciplines × shard counts × tick budgets,
/// sharded vs compiled vs reference.
#[test]
fn sharded_pin_families_disciplines_shard_counts_and_aborts() {
    for (fi, family) in FAMILIES.iter().enumerate() {
        let machine = family.build_near(64, 0x11);
        let paths = symmetric_batch(&machine, 4, 41 + fi as u64, 17 + fi as u64);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let mut scratch = RouterScratch::new();
        for discipline in DISCIPLINES {
            for max_ticks in [u64::MAX, 8] {
                let cfg = RouterConfig {
                    discipline,
                    seed: 99,
                    max_ticks,
                };
                let reference = reference::route_batch(&machine, paths.clone(), cfg);
                let compiled = route_compiled(&net, &batch, cfg, &mut scratch);
                assert_eq!(reference, compiled, "compiled drifted from reference");
                for k in SHARD_COUNTS {
                    let plan = ShardPlan::balanced(&net, k);
                    let sharded = route_sharded(&net, &batch, cfg, &plan);
                    assert_eq!(
                        sharded,
                        compiled,
                        "{} / {discipline:?} / max_ticks {max_ticks} / k={k}",
                        machine.name()
                    );
                }
                if max_ticks == 8 {
                    assert!(!compiled.completed, "starved budget must abort");
                }
            }
        }
    }
}

/// Fault overlays: dead wires strand packets at injection, outage windows
/// gate the budgeted send arm mid-run — both must shard transparently,
/// Stranded abort cause included.
#[test]
fn sharded_pin_fault_overlays() {
    for (fi, family) in FAMILIES.iter().enumerate() {
        let machine = family.build_near(64, 0x11);
        let paths = symmetric_batch(&machine, 3, 83 + fi as u64, 29 + fi as u64);
        let base = CompiledNet::compile(&machine);
        let spec = FaultSpec::uniform(0xfa17 + fi as u64, 0.15);
        let plan = FaultPlan::generate(machine.graph(), &spec);
        let net = base.apply_faults(&plan);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let mut scratch = RouterScratch::new();
        for discipline in DISCIPLINES {
            let cfg = RouterConfig {
                discipline,
                seed: 7,
                ..Default::default()
            };
            let compiled = route_compiled(&net, &batch, cfg, &mut scratch);
            for k in SHARD_COUNTS {
                let splan = ShardPlan::balanced(&net, k);
                let sharded = route_sharded(&net, &batch, cfg, &splan);
                assert_eq!(
                    sharded,
                    compiled,
                    "{} faulted / {discipline:?} / k={k}",
                    machine.name()
                );
            }
        }
    }
}

/// A pre-set cancellation flag aborts tick 1 on every path, with identical
/// outcomes (Cancelled, zero progress beyond injection).
#[test]
fn sharded_pin_cancelled_abort() {
    let machine = Family::Mesh(2).build_near(64, 0x11);
    let paths = symmetric_batch(&machine, 4, 5, 13);
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &paths).unwrap();
    let cancel = AtomicBool::new(true);
    let mut scratch = RouterScratch::new();
    for discipline in DISCIPLINES {
        let cfg = RouterConfig {
            discipline,
            seed: 3,
            ..Default::default()
        };
        let compiled = route_compiled_gated(&net, &batch, cfg, &mut scratch, Some(&cancel));
        assert_eq!(compiled.abort, fcn_routing::AbortCause::Cancelled);
        for k in SHARD_COUNTS {
            let plan = ShardPlan::balanced(&net, k);
            let sharded = route_sharded_gated(&net, &batch, cfg, &plan, Some(&cancel));
            assert_eq!(sharded, compiled, "{discipline:?} / k={k}");
        }
    }
}

/// Weak machines: per-node send budgets (bus hub, weak hypercube) drive the
/// budgeted send arm, the subtle half of the wire model.
#[test]
fn sharded_pin_weak_machine_send_budgets() {
    for machine in [Machine::global_bus(16), Machine::weak_hypercube(4)] {
        let paths = symmetric_batch(&machine, 3, 7, 23);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let mut scratch = RouterScratch::new();
        let cfg = RouterConfig::default();
        let compiled = route_compiled(&net, &batch, cfg, &mut scratch);
        assert_eq!(
            reference::route_batch(&machine, paths.clone(), cfg),
            compiled
        );
        for k in SHARD_COUNTS {
            let plan = ShardPlan::balanced(&net, k);
            assert_eq!(
                route_sharded(&net, &batch, cfg, &plan),
                compiled,
                "{} / k={k}",
                machine.name()
            );
        }
    }
}

/// `route_sharded_pooled` is the `--shards N` dispatch point; `<= 1` takes
/// the pooled sequential engine and `K ≥ 2` the shard workers, same bits.
#[test]
fn sharded_pooled_dispatch_is_transparent() {
    let machine = Family::DeBruijn.build_near(64, 0x11);
    let paths = symmetric_batch(&machine, 2, 3, 9);
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &paths).unwrap();
    let cfg = RouterConfig::default();
    let baseline = route_sharded_pooled(&net, &batch, cfg, 1);
    for k in [0, 2, 4, 16] {
        assert_eq!(
            route_sharded_pooled(&net, &batch, cfg, k),
            baseline,
            "k={k}"
        );
    }
}

fn machine_for(pick: usize, size: usize) -> Machine {
    match pick {
        0..=3 => FAMILIES[pick].build_near(size, 0x11),
        4 => Machine::global_bus(size.clamp(4, 24)),
        _ => Machine::weak_hypercube(3 + (size % 3) as u32),
    }
}

/// Turn raw proptest cut points into a valid bounds vector (possibly with
/// empty shards, duplicated cuts, or a cut at 0/n).
fn bounds_from(cuts: &[u64], n: usize) -> Vec<u32> {
    let mut bounds: Vec<u32> = cuts.iter().map(|&c| (c % (n as u64 + 1)) as u32).collect();
    bounds.push(0);
    bounds.push(n as u32);
    bounds.sort_unstable();
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary partitions of arbitrary small nets never change outcomes:
    /// random (possibly empty, possibly degenerate) contiguous shards, all
    /// three disciplines, generous and starved tick budgets.
    #[test]
    fn arbitrary_partitions_preserve_outcomes(
        pick in 0usize..6,
        size in 12usize..64,
        seed in proptest::strategy::any::<u64>(),
        cuts in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..12),
        raw in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..40,
        ),
        starved in proptest::strategy::any::<bool>(),
    ) {
        let machine = machine_for(pick, size);
        let n = machine.processors() as u64;
        let demands: Vec<_> = raw.iter().map(|&(s, d)| ((s % n) as u32, (d % n) as u32)).collect();
        let paths = plan_routes(&machine, &demands, Strategy::ShortestPath, seed);
        let net = CompiledNet::compile(&machine);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let plan = ShardPlan::from_bounds(&net, bounds_from(&cuts, net.node_count()));
        let mut scratch = RouterScratch::new();
        for discipline in DISCIPLINES {
            let cfg = RouterConfig {
                discipline,
                seed,
                max_ticks: if starved { 4 } else { u64::MAX },
            };
            let compiled = route_compiled(&net, &batch, cfg, &mut scratch);
            let sharded = route_sharded(&net, &batch, cfg, &plan);
            prop_assert!(
                sharded == compiled,
                "{:?} k={}: {:?} != {:?}",
                discipline,
                plan.shards(),
                sharded,
                compiled
            );
        }
    }

    /// Arbitrary partitions of *faulted* small nets: stranding, gating, and
    /// the boundary exchange compose.
    #[test]
    fn arbitrary_partitions_preserve_faulted_outcomes(
        pick in 0usize..4,
        size in 16usize..64,
        seed in proptest::strategy::any::<u64>(),
        fault_seed in proptest::strategy::any::<u64>(),
        cuts in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..8),
        raw in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..32,
        ),
    ) {
        let machine = machine_for(pick, size);
        let n = machine.processors() as u64;
        let demands: Vec<_> = raw.iter().map(|&(s, d)| ((s % n) as u32, (d % n) as u32)).collect();
        let paths = plan_routes(&machine, &demands, Strategy::ShortestPath, seed);
        let fplan = FaultPlan::generate(machine.graph(), &FaultSpec::uniform(fault_seed, 0.12));
        let net = CompiledNet::compile(&machine).apply_faults(&fplan);
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        let plan = ShardPlan::from_bounds(&net, bounds_from(&cuts, net.node_count()));
        let mut scratch = RouterScratch::new();
        let cfg = RouterConfig { discipline: QueueDiscipline::Fifo, seed, ..Default::default() };
        let compiled = route_compiled(&net, &batch, cfg, &mut scratch);
        let sharded = route_sharded(&net, &batch, cfg, &plan);
        prop_assert!(
            sharded == compiled,
            "k={}: {:?} != {:?}",
            plan.shards(),
            sharded,
            compiled
        );
    }

    /// Partition invariance (compile-then-shard ≡ shard-then-compile): each
    /// view's owned slice matches an independent per-shard walk of the
    /// machine's adjacency — wire ids are consecutive from the view's base,
    /// tails/heads/capacities come from the adjacency (self-loops skipped),
    /// and send budgets are the machine's, including weak-machine caps.
    #[test]
    fn shard_views_match_per_shard_compilation(
        pick in 0usize..6,
        size in 12usize..64,
        cuts in proptest::collection::vec(proptest::strategy::any::<u64>(), 1..10),
    ) {
        let machine = machine_for(pick, size);
        let net = CompiledNet::compile(&machine);
        let g = machine.graph();
        let plan = ShardPlan::from_bounds(&net, bounds_from(&cuts, net.node_count()));
        let mut next_wire = 0u32;
        let mut nodes_seen = 0usize;
        for s in 0..plan.shards() {
            let view = plan.view(&net, s);
            let (nlo, nhi) = view.node_range();
            let (wlo, whi) = view.wire_range();
            prop_assert!(wlo == next_wire, "wire ranges must tile in shard order");
            // Shard-then-compile: enumerate this node range's out-wires from
            // the machine graph alone, exactly as CompiledNet::compile does.
            let mut w = wlo;
            for u in nlo..nhi {
                nodes_seen += 1;
                prop_assert_eq!(view.send_budget(u), machine.send_capacity(u));
                for (v, mult) in g.neighbors(u) {
                    if v == u {
                        continue; // self-loops never become wires
                    }
                    prop_assert!(w < whi, "per-shard walk overran the view");
                    prop_assert!(view.owns_wire(w));
                    prop_assert_eq!(view.wire_tail(w), u);
                    prop_assert_eq!(view.wire_head(w), v);
                    prop_assert_eq!(view.wire_capacity(w), mult);
                    prop_assert_eq!(view.is_cut(w), plan.shard_of(v) != s as u32);
                    w += 1;
                }
            }
            prop_assert!(w == whi, "per-shard walk must exhaust the view");
            next_wire = whi;
        }
        prop_assert_eq!(nodes_seen, net.node_count());
        prop_assert_eq!(next_wire as usize, net.wire_count());
    }
}
