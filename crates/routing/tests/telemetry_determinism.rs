//! Telemetry transparency pins (observability must be a read-only lens).
//!
//! The `fcn-telemetry` registry is global and *off* by default; turning it
//! on must not change a single simulated bit. These tests run the same
//! routing workloads with collection disabled and enabled and compare the
//! full serialized records byte for byte — [`RoutingOutcome`]s from the
//! compiled router (including the abort path) and [`RateSample`]s from the
//! measurement harness, across machine families and queue disciplines.
//!
//! Tests in this file toggle the process-global registry, so they serialize
//! behind a mutex; each drains the thread shard afterwards to keep the
//! global state as it found it.

use std::sync::Mutex;

use fcn_routing::{
    measure_rate, plan_routes, route_compiled, CompiledNet, PacketBatch, QueueDiscipline,
    RouterConfig, RouterScratch, RoutingOutcome, Strategy,
};
use fcn_topology::Machine;

/// Serializes registry toggling across the tests in this file.
static TELEMETRY_GATE: Mutex<()> = Mutex::new(());

/// Run `f` twice — collection disabled, then enabled — and return both
/// results. Restores the disabled state and drains this thread's shard.
fn with_and_without_telemetry<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _gate = TELEMETRY_GATE.lock().unwrap();
    let reg = fcn_telemetry::global();
    reg.set_enabled(false);
    let off = f();
    reg.set_enabled(true);
    let on = f();
    reg.set_enabled(false);
    let _ = fcn_telemetry::take_shard();
    (off, on)
}

fn record<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("record serializes")
}

fn machines() -> Vec<Machine> {
    vec![
        Machine::mesh(2, 8),
        Machine::de_bruijn(6),
        Machine::xtree(5),
    ]
}

fn route_once(machine: &Machine, discipline: QueueDiscipline, max_ticks: u64) -> RoutingOutcome {
    use rand::SeedableRng as _;
    let traffic = machine.symmetric_traffic();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x7e1e);
    let demands: Vec<_> = (0..4 * traffic.n())
        .map(|_| traffic.sample(&mut rng))
        .collect();
    let routes = plan_routes(machine, &demands, Strategy::ShortestPath, 42);
    let net = CompiledNet::compile(machine);
    let batch = PacketBatch::compile(&net, &routes).expect("planner paths are walks");
    let cfg = RouterConfig {
        discipline,
        max_ticks,
        ..RouterConfig::default()
    };
    let mut scratch = RouterScratch::new();
    // Route twice through the same scratch so both the scratch-created and
    // scratch-reused instrumentation branches are exercised.
    let first = route_compiled(&net, &batch, cfg, &mut scratch);
    let second = route_compiled(&net, &batch, cfg, &mut scratch);
    assert_eq!(
        record(&first),
        record(&second),
        "scratch reuse changed bits"
    );
    first
}

#[test]
fn routing_outcomes_are_byte_identical_with_telemetry_on_and_off() {
    for machine in machines() {
        for discipline in [
            QueueDiscipline::Fifo,
            QueueDiscipline::FarthestFirst,
            QueueDiscipline::RandomRank,
        ] {
            let (off, on) =
                with_and_without_telemetry(|| route_once(&machine, discipline, 4_000_000));
            assert!(off.completed);
            assert_eq!(
                record(&off),
                record(&on),
                "{}: outcome differs under telemetry ({discipline:?})",
                machine.name()
            );
        }
    }
}

#[test]
fn aborted_runs_are_byte_identical_with_telemetry_on_and_off() {
    // A tick budget low enough that the run aborts: the abort path (and its
    // `router_aborts_total` instrumentation) must be transparent too.
    let machine = Machine::mesh(2, 8);
    let (off, on) = with_and_without_telemetry(|| route_once(&machine, QueueDiscipline::Fifo, 3));
    assert!(!off.completed, "budget of 3 ticks should abort");
    assert_eq!(
        record(&off),
        record(&on),
        "abort path differs under telemetry"
    );
}

#[test]
fn rate_samples_are_byte_identical_with_telemetry_on_and_off() {
    for machine in machines() {
        let traffic = machine.symmetric_traffic();
        let (off, on) = with_and_without_telemetry(|| {
            measure_rate(
                &machine,
                &traffic,
                4 * traffic.n(),
                Strategy::ShortestPath,
                RouterConfig::default(),
                0xbead,
            )
        });
        assert!(off.completed);
        assert_eq!(
            record(&off),
            record(&on),
            "{}: rate sample differs under telemetry",
            machine.name()
        );
    }
}

#[test]
fn enabled_run_actually_collects() {
    // Transparency is vacuous if the enabled arm never records anything:
    // pin that the enabled run populates the thread shard with the router's
    // headline counters, consistent with the outcome it returned.
    let _gate = TELEMETRY_GATE.lock().unwrap();
    let reg = fcn_telemetry::global();
    let _ = fcn_telemetry::take_shard();
    reg.set_enabled(true);
    let machine = Machine::mesh(2, 8);
    let out = route_once(&machine, QueueDiscipline::RandomRank, 4_000_000);
    reg.set_enabled(false);
    let shard = fcn_telemetry::take_shard();
    // route_once routes the batch twice through one scratch.
    assert_eq!(shard.counter("router_runs_total"), 2);
    assert_eq!(shard.counter("router_ticks_total"), 2 * out.ticks);
    assert_eq!(
        shard.counter("router_delivered_total"),
        2 * out.delivered as u64
    );
    assert_eq!(shard.counter("router_scratch_created_total"), 1);
    assert_eq!(shard.counter("router_scratch_reused_total"), 1);
    let occ = shard.histogram("router_queue_occupancy");
    assert_eq!(occ.count, 2 * out.ticks, "one occupancy sample per tick");
}
