//! Property tests for the [`PlanCache`]: cache-served route planning must be
//! *indistinguishable* from fresh planning.
//!
//! The cache memoizes BFS parent trees keyed by (graph fingerprint, node
//! limit, source, per-source seed). Because each tree is a pure function of
//! that key, a cache hit must reproduce exactly the path a fresh computation
//! would have produced — across machines, strategies, seeds, and demand
//! batches, including cache reuse across *different* batches with the same
//! plan seed (the saturation-sweep pattern).

use fcn_routing::{plan_routes, plan_routes_cached, PlanCache, Strategy};
use fcn_topology::{Family, Machine};
use proptest::prelude::*;

/// A small machine drawn from four families with qualitatively different
/// route policies (BFS mesh/tree, arithmetic de Bruijn, level-walk X-tree).
fn machine_for(pick: usize, size: usize) -> Machine {
    let family = [
        Family::Mesh(2),
        Family::Tree,
        Family::DeBruijn,
        Family::XTree,
    ][pick % 4];
    family.build_near(size, 0x11)
}

/// Map raw endpoint draws onto the machine's processors.
fn demands_on(machine: &Machine, raw: &[(u64, u64)]) -> Vec<(u32, u32)> {
    let n = machine.processors() as u64;
    raw.iter()
        .map(|&(s, d)| ((s % n) as u32, (d % n) as u32))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_plans_match_fresh_plans(
        pick in 0usize..4,
        size in 16usize..96,
        seed in proptest::strategy::any::<u64>(),
        raw in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..40,
        ),
    ) {
        let machine = machine_for(pick, size);
        let demands = demands_on(&machine, &raw);
        for strategy in [Strategy::ShortestPath, Strategy::Valiant] {
            let fresh = plan_routes(&machine, &demands, strategy, seed);
            let cache = PlanCache::default();
            // Twice through the same cache: the first run populates it, the
            // second is served almost entirely from memory.
            let cold = plan_routes_cached(&machine, &demands, strategy, seed, Some(&cache));
            let warm = plan_routes_cached(&machine, &demands, strategy, seed, Some(&cache));
            prop_assert_eq!(&fresh, &cold);
            prop_assert_eq!(&fresh, &warm);
        }
    }

    #[test]
    fn cache_is_reusable_across_batches(
        pick in 0usize..4,
        size in 16usize..64,
        seed in proptest::strategy::any::<u64>(),
        raw_a in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..24,
        ),
        raw_b in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            1..24,
        ),
    ) {
        // The estimator's pattern: growing batches of one trial share a plan
        // seed and a cache. Serving batch B from a cache warmed by batch A
        // must equal planning B fresh.
        let machine = machine_for(pick, size);
        let a = demands_on(&machine, &raw_a);
        let b = demands_on(&machine, &raw_b);
        let cache = PlanCache::default();
        let _warmup = plan_routes_cached(
            &machine, &a, Strategy::ShortestPath, seed, Some(&cache),
        );
        let served = plan_routes_cached(
            &machine, &b, Strategy::ShortestPath, seed, Some(&cache),
        );
        let fresh = plan_routes(&machine, &b, Strategy::ShortestPath, seed);
        prop_assert_eq!(&served, &fresh);
    }

    #[test]
    fn capped_cache_still_plans_correctly(
        size in 24usize..64,
        seed in proptest::strategy::any::<u64>(),
        raw in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), proptest::strategy::any::<u64>()),
            8..32,
        ),
    ) {
        // A capacity smaller than the working set forces evictions-by-refusal;
        // correctness must not depend on what the cache managed to keep.
        let machine = Machine::mesh(2, (size as f64).sqrt() as usize + 2);
        let demands = demands_on(&machine, &raw);
        let cache = PlanCache::with_capacity(2);
        let cold = plan_routes_cached(
            &machine, &demands, Strategy::ShortestPath, seed, Some(&cache),
        );
        let warm = plan_routes_cached(
            &machine, &demands, Strategy::ShortestPath, seed, Some(&cache),
        );
        let fresh = plan_routes(&machine, &demands, Strategy::ShortestPath, seed);
        prop_assert_eq!(&cold, &fresh);
        prop_assert_eq!(&warm, &fresh);
    }
}

#[test]
fn cache_reports_hits_after_warmup() {
    let machine = Machine::mesh(2, 8);
    let demands: Vec<(u32, u32)> = (0..16u32).map(|i| (i, (i + 7) % 64)).collect();
    let cache = PlanCache::default();
    let _ = plan_routes_cached(&machine, &demands, Strategy::ShortestPath, 5, Some(&cache));
    let cold_hits = cache.hits();
    let _ = plan_routes_cached(&machine, &demands, Strategy::ShortestPath, 5, Some(&cache));
    assert!(
        cache.hits() > cold_hits,
        "second batch should hit: {} -> {}",
        cold_hits,
        cache.hits()
    );
    assert!(cache.entries() > 0);
}
