//! Sharded execution of the compiled router with a deterministic boundary
//! exchange.
//!
//! [`route_sharded`] partitions a [`CompiledNet`]'s node set into K
//! contiguous shards ([`ShardPlan`]), runs each shard's send phase on its
//! own persistent worker thread ([`fcn_exec::phased_scope`]), and merges
//! the per-shard send buffers once per tick through the canonical
//! [`crate::boundary::merge_outboxes`] helper. The result is **bit-identical**
//! to [`crate::engine::route_compiled`] for every `(net, batch, config,
//! plan)` — the differential harness in `tests/sharded_router.rs` pins this
//! across families × disciplines × shard counts × abort paths.
//!
//! ## Why outcomes are shard-count independent
//!
//! The sequential engine has exactly two order-sensitive behaviors, both
//! driven by the order arrivals are processed within a tick: FIFO queue
//! insertion order, and the order nodes are appended to the active list
//! (which fixes the next tick's send-phase scan order). Everything else is
//! order-free: each node's send-phase pop set depends only on its own
//! queues, and `delivered` / `total_hops` / `stranded` / `max_queue` are
//! sums or per-push maxima.
//!
//! The sharded path therefore reconstructs the sequential arrival order
//! exactly, via **activation keys**: whenever a node is (re)activated it is
//! stamped with a globally unique, time-monotone `u64` — the packet id at
//! injection (tick 0), or `(tick << 32) | global arrival index` afterwards.
//! A shard's active list is ascending in activation key by construction
//! (activation is chronological and the send phase's fused compaction
//! preserves list order), so each shard's send output is a key-ascending
//! sequence of per-node runs, and a K-way merge by smallest head key
//! replays the global sequential send order for any K. The leader then
//! advances every packet in that order — decrementing hops, delivering, or
//! forwarding the survivor to the shard owning its next wire's tail — and
//! the per-shard inboxes it builds are themselves in canonical order, so
//! shard-local FIFO insertions and activations land exactly as the 1-shard
//! engine's would.
//!
//! Random ranks never cross the boundary: they are a pure function of
//! `(config seed, packet id)`, pregenerated once by the leader and shared
//! read-only with every worker.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};

use fcn_exec::phased_scope;
use fcn_multigraph::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::boundary::{merge_outboxes, BoundaryMsg, Outbox};
use crate::compiled::{CompiledNet, PacketBatch};
use crate::engine::{
    publish_run, route_compiled_pooled, AbortCause, RouterConfig, RoutingOutcome, RunTele,
    DISC_FARTHEST, DISC_FIFO, DISC_RANDOM,
};
use crate::packet::QueueDiscipline;

/// Cumulative out-wire offset of node `u` (the CSR prefix sum), extended to
/// `u == n` so shard wire ranges are one subtraction.
#[inline]
fn wire_offset(net: &CompiledNet, u: u32) -> usize {
    if u as usize == net.node_count() {
        net.wire_count()
    } else {
        net.wire_range(u).0
    }
}

/// A contiguous node partition of a [`CompiledNet`] into K shards.
///
/// Shard `s` owns nodes `bounds[s]..bounds[s+1]`. Because the wire CSR
/// groups wires by tail node, a contiguous node range owns a contiguous
/// wire range too: every wire is *owned* by the shard of its tail, and a
/// wire whose head lives in another shard is a **cut** wire — its arrivals
/// cross the boundary exchange. Empty shards are permitted (K may exceed
/// the node count); the plan is pure bookkeeping and draws no randomness,
/// so planning cannot perturb routing outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// K+1 node boundaries, non-decreasing, `bounds[0] = 0`,
    /// `bounds[K] = n`.
    bounds: Vec<u32>,
    /// Inverse map: owning shard of each node.
    node_shard: Vec<u32>,
}

impl ShardPlan {
    /// Partition `net` into `shards` contiguous node ranges balanced by
    /// owned-wire count (the send phase's work measure): boundary `s` is
    /// the smallest node whose cumulative wire offset reaches
    /// `s/shards` of the total.
    pub fn balanced(net: &CompiledNet, shards: usize) -> ShardPlan {
        assert!(shards >= 1, "a shard plan needs at least one shard");
        let n = net.node_count();
        let total = net.wire_count();
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u32);
        let mut node = 0u32;
        for s in 1..shards {
            let target = total * s / shards;
            while (node as usize) < n && wire_offset(net, node) < target {
                node += 1;
            }
            bounds.push(node);
        }
        bounds.push(n as u32);
        ShardPlan::from_bounds(net, bounds)
    }

    /// Build a plan from explicit node boundaries (for tests and ablations:
    /// *any* non-decreasing boundary vector yields bit-identical outcomes).
    ///
    /// # Panics
    /// Panics unless `bounds` starts at 0, ends at `net.node_count()`, and
    /// is non-decreasing.
    pub fn from_bounds(net: &CompiledNet, bounds: Vec<u32>) -> ShardPlan {
        let n = net.node_count();
        assert!(bounds.len() >= 2, "bounds need at least one shard");
        assert_eq!(bounds[0], 0, "bounds must start at node 0");
        assert_eq!(
            bounds[bounds.len() - 1],
            n as u32,
            "bounds must end at the node count"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be non-decreasing"
        );
        let mut node_shard = vec![0u32; n];
        for s in 0..bounds.len() - 1 {
            for u in bounds[s]..bounds[s + 1] {
                node_shard[u as usize] = s as u32;
            }
        }
        ShardPlan { bounds, node_shard }
    }

    /// Number of shards (≥ 1; empty shards count).
    #[inline]
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of nodes this plan partitions.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_shard.len()
    }

    /// The shard owning node `u`.
    #[inline]
    pub fn shard_of(&self, u: NodeId) -> u32 {
        self.node_shard[u as usize]
    }

    /// Node range `(lo, hi)` of shard `s`.
    #[inline]
    pub fn range(&self, s: usize) -> (u32, u32) {
        (self.bounds[s], self.bounds[s + 1])
    }

    /// The node boundaries, `shards() + 1` entries.
    pub fn bounds(&self) -> &[u32] {
        &self.bounds
    }

    /// A read-only view of shard `s`'s subgraph within `net`.
    pub fn view<'a>(&'a self, net: &'a CompiledNet, s: usize) -> ShardView<'a> {
        assert!(s < self.shards(), "shard index out of range");
        ShardView {
            net,
            plan: self,
            shard: s,
        }
    }
}

/// One shard's slice of a [`CompiledNet`]: its node range, its owned
/// (tail-resident) wire range, and the cut classification of each wire.
///
/// The partition-invariance suite uses this to check that compiling then
/// sharding equals sharding then compiling: the union of all views'
/// wire ranges tiles `0..wire_count` exactly, and every per-wire attribute
/// read through a view equals the full net's.
#[derive(Debug, Clone, Copy)]
pub struct ShardView<'a> {
    net: &'a CompiledNet,
    plan: &'a ShardPlan,
    shard: usize,
}

impl ShardView<'_> {
    /// The shard index this view covers.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Node range `(lo, hi)` owned by this shard.
    #[inline]
    pub fn node_range(&self) -> (u32, u32) {
        self.plan.range(self.shard)
    }

    /// Owned wire range `(lo, hi)`: all wires whose tail lives in this
    /// shard. Contiguous because the CSR groups wires by tail node.
    #[inline]
    pub fn wire_range(&self) -> (u32, u32) {
        let (nlo, nhi) = self.node_range();
        (
            wire_offset(self.net, nlo) as u32,
            wire_offset(self.net, nhi) as u32,
        )
    }

    /// Tail node of owned wire `w` (always inside this shard's node range).
    #[inline]
    pub fn wire_tail(&self, w: u32) -> NodeId {
        debug_assert!(self.owns_wire(w));
        self.net.wire_tail(w)
    }

    /// Head node of owned wire `w` (any shard).
    #[inline]
    pub fn wire_head(&self, w: u32) -> NodeId {
        debug_assert!(self.owns_wire(w));
        self.net.wire_head(w)
    }

    /// Per-tick capacity of owned wire `w`.
    #[inline]
    pub fn wire_capacity(&self, w: u32) -> u32 {
        debug_assert!(self.owns_wire(w));
        self.net.wire_capacity(w)
    }

    /// Per-tick send budget of node `u` (must be in this shard's range).
    #[inline]
    pub fn send_budget(&self, u: NodeId) -> u32 {
        debug_assert_eq!(self.plan.shard_of(u) as usize, self.shard);
        self.net.send_budget(u)
    }

    /// Is owned wire `w` a cut wire (head owned by a different shard)?
    /// Arrivals on cut wires are the boundary exchange's traffic; with one
    /// shard no wire is cut.
    #[inline]
    pub fn is_cut(&self, w: u32) -> bool {
        debug_assert!(self.owns_wire(w));
        self.plan.shard_of(self.net.wire_head(w)) as usize != self.shard
    }

    /// Does this shard own wire `w` (i.e. its tail)?
    #[inline]
    pub fn owns_wire(&self, w: u32) -> bool {
        let (lo, hi) = self.wire_range();
        lo <= w && w < hi
    }
}

/// A queue entry carries the packet's routing state so a shard never reads
/// another shard's per-packet columns: hops remaining and the flat
/// wire-arena cursor travel with the packet.
#[derive(Debug, Clone, Copy)]
struct FifoEntry {
    pid: u32,
    rem: u32,
    cursor: u32,
}

/// Priority entry: `key_pid` packs `(key << 32) | pid` exactly like the
/// engine's [`crate::engine`] priority pool, so the min-scan pops the same
/// packet the 1-shard run would.
#[derive(Debug, Clone, Copy)]
struct PrioEntry {
    key_pid: u64,
    rem: u32,
    cursor: u32,
}

/// Per-wire queue pool of one discipline, mirroring the engine's
/// `WireQueues` but carrying `(rem, cursor)` alongside each packet.
trait ShardQueues {
    fn with_wires(wires: usize) -> Self;
    /// Enqueue and return the queue's new length (for max-queue tracking).
    fn push(&mut self, w: usize, key: u32, pid: u32, rem: u32, cursor: u32) -> usize;
    fn pop(&mut self, w: usize) -> Option<(u32, u32, u32)>;
    fn is_empty(&self, w: usize) -> bool;
}

struct ShardFifo(Vec<VecDeque<FifoEntry>>);

impl ShardQueues for ShardFifo {
    fn with_wires(wires: usize) -> Self {
        ShardFifo((0..wires).map(|_| VecDeque::new()).collect())
    }
    #[inline]
    fn push(&mut self, w: usize, _key: u32, pid: u32, rem: u32, cursor: u32) -> usize {
        let q = &mut self.0[w];
        q.push_back(FifoEntry { pid, rem, cursor });
        q.len()
    }
    #[inline]
    fn pop(&mut self, w: usize) -> Option<(u32, u32, u32)> {
        self.0[w].pop_front().map(|e| (e.pid, e.rem, e.cursor))
    }
    #[inline]
    fn is_empty(&self, w: usize) -> bool {
        self.0[w].is_empty()
    }
}

/// Unsorted priority pool, popped by linear min-scan + `swap_remove` — the
/// same pop order as the engine's pool because packed values are distinct.
struct ShardPrio(Vec<Vec<PrioEntry>>);

impl ShardQueues for ShardPrio {
    fn with_wires(wires: usize) -> Self {
        ShardPrio((0..wires).map(|_| Vec::new()).collect())
    }
    #[inline]
    fn push(&mut self, w: usize, key: u32, pid: u32, rem: u32, cursor: u32) -> usize {
        let q = &mut self.0[w];
        q.push(PrioEntry {
            key_pid: ((key as u64) << 32) | pid as u64,
            rem,
            cursor,
        });
        q.len()
    }
    #[inline]
    fn pop(&mut self, w: usize) -> Option<(u32, u32, u32)> {
        let q = &mut self.0[w];
        if q.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for i in 1..q.len() {
            if q[i].key_pid < q[best].key_pid {
                best = i;
            }
        }
        let e = q.swap_remove(best);
        Some((e.key_pid as u32, e.rem, e.cursor))
    }
    #[inline]
    fn is_empty(&self, w: usize) -> bool {
        self.0[w].is_empty()
    }
}

/// Priority key per discipline — byte-identical to the engine's `key_of`.
#[inline]
fn key_of<const DISC: u8>(remaining: u32, rank: u32) -> u32 {
    match DISC {
        DISC_FIFO => 0,
        DISC_FARTHEST => u32::MAX - remaining,
        _ => rank,
    }
}

/// One packet forwarded to its destination shard after the leader's merge:
/// requeue state plus the wire to queue on and the activation key to stamp
/// if the tail node is not yet active.
#[derive(Debug, Clone, Copy)]
struct Inbound {
    pid: u32,
    rem: u32,
    cursor: u32,
    wire: u32,
    act: u64,
}

/// Leader → worker phase requests. Per-worker request queues are FIFO
/// (`std::sync::mpsc`), so the one-way `Arrive` is always processed before
/// the next tick's `Send`.
enum ShardReq {
    /// Scan the whole batch, claiming packets whose source node this shard
    /// owns; respond with `Injected`.
    Inject,
    /// Run this shard's send phase for `tick`; respond with `Sent`.
    Send { tick: u64 },
    /// Requeue merged arrivals (already in canonical global order). No
    /// response — the request-queue FIFO orders it before the next `Send`.
    Arrive { inbox: Vec<Inbound> },
    /// Report end-of-run local maxima/counters; respond with `Finished`.
    Finish,
}

/// Worker → leader phase responses.
enum ShardResp {
    Injected { delivered: usize, stranded: usize },
    Sent(Outbox),
    Finished { max_queue: usize, gated: u64 },
}

/// One shard's worker loop: owns the shard's queues and activity arrays for
/// the whole run and serves phase requests until the leader hangs up.
///
/// Arrays are full-size (indexed by global node/wire id) for simplicity —
/// only this shard's slots are ever touched, so the cost is memory, not
/// correctness. Workers never touch telemetry: all observation happens on
/// the leader, keeping the telemetry stream identical at any shard count.
fn shard_worker<Q: ShardQueues, const UNIT: bool, const DISC: u8>(
    shard: usize,
    net: &CompiledNet,
    batch: &PacketBatch,
    plan: &ShardPlan,
    ranks: &[u32],
    rx: Receiver<ShardReq>,
    tx: Sender<ShardResp>,
) {
    let n = net.node_count();
    let shard = shard as u32;
    let mut queues = Q::with_wires(net.wire_count());
    let mut node_queued = vec![0u32; n];
    let mut node_listed = vec![false; n];
    let mut rotate = vec![0u32; n];
    let mut act_key = vec![0u64; n];
    let mut active: Vec<NodeId> = Vec::new();
    let mut max_queue = 0usize;
    let mut gated = 0u64;
    while let Ok(req) = rx.recv() {
        match req {
            ShardReq::Inject => {
                // Mirror of the engine's injection, restricted to packets
                // whose source node this shard owns (each packet has exactly
                // one owner, so summed counts equal the sequential ones).
                let mut delivered = 0usize;
                let mut stranded = 0usize;
                let strand_scan = net.has_dead_wires();
                for (pid, &rank) in ranks.iter().enumerate() {
                    let hops = batch.hops(pid);
                    if hops == 0 {
                        if plan.shard_of(batch.node_at(batch.node_base(pid), 0)) == shard {
                            delivered += 1;
                        }
                        continue;
                    }
                    let wb = batch.wire_base(pid);
                    let w = batch.wire_at(wb, 0) as usize;
                    let src = net.wire_tail(w as u32);
                    if plan.shard_of(src) != shard {
                        continue;
                    }
                    if strand_scan && batch.wires(pid).iter().any(|&dw| net.wire_dead(dw)) {
                        stranded += 1;
                        continue;
                    }
                    let key = key_of::<DISC>(hops, rank);
                    max_queue = max_queue.max(queues.push(w, key, pid as u32, hops, wb + 1));
                    node_queued[src as usize] += 1;
                    if !node_listed[src as usize] {
                        node_listed[src as usize] = true;
                        // Injection-time activation key: the packet id —
                        // globally unique, below every later-tick key
                        // (ticks start at 1, so `(tick << 32)` dominates),
                        // and ascending in batch scan order exactly like
                        // the sequential engine's activation order.
                        act_key[src as usize] = pid as u64;
                        active.push(src);
                    }
                }
                let _ = tx.send(ShardResp::Injected {
                    delivered,
                    stranded,
                });
            }
            ShardReq::Send { tick } => {
                // The engine's send phase with fused compaction, verbatim,
                // over this shard's active list; pops go to the outbox
                // (tagged with the sending node's activation key) instead
                // of a local arrivals vector.
                let mut outbox = Outbox::default();
                let mut act = std::mem::take(&mut active);
                let mut kept = 0usize;
                for idx in 0..act.len() {
                    let u = act[idx];
                    let (lo, hi) = net.wire_range(u);
                    let deg = hi - lo;
                    let mut queued = node_queued[u as usize];
                    if deg == 0 || queued == 0 {
                        node_listed[u as usize] = false;
                        continue;
                    }
                    let akey = act_key[u as usize];
                    let mut wi = rotate[u as usize] as usize;
                    debug_assert!(wi < deg);
                    if UNIT {
                        for _ in 0..deg {
                            let w = lo + wi;
                            wi += 1;
                            if wi == deg {
                                wi = 0;
                            }
                            if let Some((pid, rem, cursor)) = queues.pop(w) {
                                outbox.push(akey, BoundaryMsg { pid, rem, cursor });
                                queued -= 1;
                                if queued == 0 {
                                    break;
                                }
                            }
                        }
                    } else {
                        let mut budget = net.send_budget(u) as u64;
                        for _ in 0..deg {
                            if budget == 0 {
                                break;
                            }
                            let w = lo + wi;
                            wi += 1;
                            if wi == deg {
                                wi = 0;
                            }
                            if queues.is_empty(w) {
                                continue;
                            }
                            let cap_now = net.effective_wire_capacity(w as u32, tick - 1);
                            if cap_now < net.wire_capacity(w as u32) {
                                gated += 1;
                            }
                            if cap_now == 0 {
                                continue;
                            }
                            let cap = (cap_now as u64).min(budget);
                            let mut sent = 0u64;
                            while sent < cap {
                                match queues.pop(w) {
                                    Some((pid, rem, cursor)) => {
                                        outbox.push(akey, BoundaryMsg { pid, rem, cursor });
                                        sent += 1;
                                    }
                                    None => break,
                                }
                            }
                            budget -= sent;
                            queued -= sent as u32;
                            if queued == 0 {
                                break;
                            }
                        }
                    }
                    node_queued[u as usize] = queued;
                    let next = rotate[u as usize] + 1;
                    rotate[u as usize] = if next as usize == deg { 0 } else { next };
                    if queued > 0 {
                        act[kept] = u;
                        kept += 1;
                    } else {
                        node_listed[u as usize] = false;
                    }
                }
                act.truncate(kept);
                active = act;
                let _ = tx.send(ShardResp::Sent(outbox));
            }
            ShardReq::Arrive { inbox } => {
                // The leader built this inbox in canonical global order, so
                // FIFO insertions and activations land exactly as the
                // sequential arrival loop's would.
                for m in &inbox {
                    let key = key_of::<DISC>(m.rem, ranks[m.pid as usize]);
                    max_queue =
                        max_queue.max(queues.push(m.wire as usize, key, m.pid, m.rem, m.cursor));
                    let from = net.wire_tail(m.wire);
                    node_queued[from as usize] += 1;
                    if !node_listed[from as usize] {
                        node_listed[from as usize] = true;
                        act_key[from as usize] = m.act;
                        active.push(from);
                    }
                }
            }
            ShardReq::Finish => {
                let _ = tx.send(ShardResp::Finished { max_queue, gated });
            }
        }
    }
}

/// The leader loop: drives injection, per-tick send/merge/arrive phases,
/// and end-of-run collection over `plan.shards()` persistent workers.
fn drive<Q: ShardQueues, const UNIT: bool, const DISC: u8>(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
    plan: &ShardPlan,
    cancel: Option<&AtomicBool>,
) -> RoutingOutcome {
    let total = batch.len();
    let k = plan.shards();
    // Ranks are a pure function of (seed, pid): drawn once here, in packet
    // order, from the exact stream the 1-shard engine draws.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ranks: Vec<u32> = Vec::with_capacity(total);
    for _ in 0..total {
        ranks.push(rng.random::<u32>());
    }
    let ranks = &ranks[..];
    let mut tele = if fcn_telemetry::global().enabled() {
        Some(RunTele::default())
    } else {
        None
    };
    let mut boundary_msgs = 0u64;
    let mut shard_maxes: Vec<u64> = Vec::with_capacity(k);
    let worker = |i: usize, rx: Receiver<ShardReq>, tx: Sender<ShardResp>| {
        shard_worker::<Q, UNIT, DISC>(i, net, batch, plan, ranks, rx, tx);
    };
    let out = phased_scope(k, &worker, |links| {
        for s in 0..k {
            links.send(s, ShardReq::Inject);
        }
        let mut delivered = 0usize;
        let mut stranded = 0usize;
        for s in 0..k {
            match links.recv(s) {
                ShardResp::Injected {
                    delivered: d,
                    stranded: st,
                } => {
                    delivered += d;
                    stranded += st;
                }
                _ => unreachable!("sharded protocol violated: expected Injected"),
            }
        }
        let routable = total - stranded;
        let mut ticks = 0u64;
        let mut cancelled = false;
        let mut total_hops = 0u64;
        let mut max_queue = 0usize;
        let mut inboxes: Vec<Vec<Inbound>> = (0..k).map(|_| Vec::new()).collect();
        let mut outboxes: Vec<Outbox> = Vec::with_capacity(k);
        while delivered < routable && ticks < cfg.max_ticks {
            // ordering: same monotone stop hint as the 1-shard engine — no
            // data is published through the flag; a stale read merely runs
            // one more tick before stopping.
            if let Some(c) = cancel {
                if c.load(Ordering::Relaxed) {
                    cancelled = true;
                    break;
                }
            }
            ticks += 1;
            for s in 0..k {
                links.send(s, ShardReq::Send { tick: ticks });
            }
            outboxes.clear();
            for s in 0..k {
                match links.recv(s) {
                    ShardResp::Sent(ob) => outboxes.push(ob),
                    _ => unreachable!("sharded protocol violated: expected Sent"),
                }
            }
            let arrived: u64 = outboxes.iter().map(|o| o.len() as u64).sum();
            // Same observation point as the engine: after the send phase,
            // before arrivals advance anything (`delivered` still holds the
            // pre-arrival count).
            if let Some(t) = tele.as_mut() {
                let queued_start = (total - delivered) as u64;
                t.occupancy.record(queued_start);
                t.stalled += queued_start - arrived;
            }
            total_hops += arrived;
            // The canonical merge replays the global sequential send order;
            // the leader advances each packet exactly as the engine's
            // arrival loop does and routes survivors to their destination
            // shard's inbox, stamping fresh activation keys. Tick counts are
            // far below 2^32 in practice (the default max_ticks is 4M), so
            // `(tick << 32) | index` never wraps.
            let mut gidx = 0u64;
            merge_outboxes(&outboxes, |src, msg| {
                let rem = msg.rem - 1;
                if rem == 0 {
                    delivered += 1;
                } else {
                    let cur = msg.cursor as usize;
                    let w = batch.wire_flat(cur);
                    let dest = plan.shard_of(net.wire_tail(w)) as usize;
                    if dest != src {
                        boundary_msgs += 1;
                    }
                    inboxes[dest].push(Inbound {
                        pid: msg.pid,
                        rem,
                        cursor: (cur + 1) as u32,
                        wire: w,
                        act: (ticks << 32) | gidx,
                    });
                }
                gidx += 1;
            });
            for (s, inbox) in inboxes.iter_mut().enumerate() {
                links.send(
                    s,
                    ShardReq::Arrive {
                        inbox: std::mem::take(inbox),
                    },
                );
            }
        }
        for s in 0..k {
            links.send(s, ShardReq::Finish);
        }
        let mut gated = 0u64;
        for s in 0..k {
            match links.recv(s) {
                ShardResp::Finished {
                    max_queue: mq,
                    gated: g,
                } => {
                    max_queue = max_queue.max(mq);
                    gated += g;
                    shard_maxes.push(mq as u64);
                }
                _ => unreachable!("sharded protocol violated: expected Finished"),
            }
        }
        if let Some(t) = tele.as_mut() {
            t.faults_gated += gated;
        }
        let abort = if cancelled {
            AbortCause::Cancelled
        } else if delivered < routable {
            AbortCause::MaxTicks
        } else if stranded > 0 {
            AbortCause::Stranded
        } else {
            AbortCause::Completed
        };
        RoutingOutcome {
            ticks,
            delivered,
            total,
            completed: abort == AbortCause::Completed,
            max_queue,
            total_hops,
            stranded,
            abort,
        }
    });
    if let Some(t) = tele {
        // All telemetry publishes on the caller thread, in one place, so
        // enabling the registry is invisible to the routed bits and the
        // stream is identical at any shard count. `scratch_runs = 0`: the
        // sharded path holds per-worker state, not a pooled scratch.
        publish_run(&out, &t, 0);
        publish_sharded(k, boundary_msgs, &shard_maxes);
    }
    out
}

/// Publish the sharded-run extras (run count, shard count, boundary
/// traffic, per-shard queue peaks merged in shard order).
fn publish_sharded(shards: usize, boundary_msgs: u64, shard_maxes: &[u64]) {
    fcn_telemetry::with_shard(|s| {
        s.inc(fcn_telemetry::names::ROUTER_SHARDED_RUNS_TOTAL);
        s.set_gauge(fcn_telemetry::names::ROUTER_SHARDS_LAST, shards as u64);
        s.add(
            fcn_telemetry::names::ROUTER_BOUNDARY_MSGS_TOTAL,
            boundary_msgs,
        );
        for &mq in shard_maxes {
            s.record(fcn_telemetry::names::ROUTER_SHARD_MAX_QUEUE, mq);
        }
    });
}

/// Route a pre-compiled batch over `plan.shards()` shard workers.
///
/// Bit-identical to [`crate::engine::route_compiled`] for every plan —
/// including single-shard, empty-shard, and maximally unbalanced plans —
/// which `tests/sharded_router.rs` pins differentially against both the
/// compiled and reference engines.
pub fn route_sharded(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
    plan: &ShardPlan,
) -> RoutingOutcome {
    route_sharded_gated(net, batch, cfg, plan, None)
}

/// [`route_sharded`] with an optional cancellation flag, checked once per
/// tick on the leader — the same graceful-stop contract as
/// [`crate::engine::route_compiled_gated`].
pub fn route_sharded_gated(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
    plan: &ShardPlan,
    cancel: Option<&AtomicBool>,
) -> RoutingOutcome {
    assert_eq!(
        plan.node_count(),
        net.node_count(),
        "shard plan was built for a different net"
    );
    let unit = net.unit_capacity();
    match cfg.discipline {
        QueueDiscipline::Fifo => {
            if unit {
                drive::<ShardFifo, true, DISC_FIFO>(net, batch, cfg, plan, cancel)
            } else {
                drive::<ShardFifo, false, DISC_FIFO>(net, batch, cfg, plan, cancel)
            }
        }
        QueueDiscipline::FarthestFirst => {
            if unit {
                drive::<ShardPrio, true, DISC_FARTHEST>(net, batch, cfg, plan, cancel)
            } else {
                drive::<ShardPrio, false, DISC_FARTHEST>(net, batch, cfg, plan, cancel)
            }
        }
        QueueDiscipline::RandomRank => {
            if unit {
                drive::<ShardPrio, true, DISC_RANDOM>(net, batch, cfg, plan, cancel)
            } else {
                drive::<ShardPrio, false, DISC_RANDOM>(net, batch, cfg, plan, cancel)
            }
        }
    }
}

/// Route with a wire-balanced plan of `shards` shards. `shards <= 1` takes
/// the 1-shard engine directly ([`route_compiled_pooled`], pooled scratch,
/// no worker threads) — outcomes are bit-identical either way, so this is
/// the dispatch point `--shards N` plumbs into.
pub fn route_sharded_pooled(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
    shards: usize,
) -> RoutingOutcome {
    if shards <= 1 {
        return route_compiled_pooled(net, batch, cfg);
    }
    let plan = ShardPlan::balanced(net, shards);
    route_sharded(net, batch, cfg, &plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::route_compiled;
    use crate::engine::RouterScratch;
    use crate::oracle::PathOracle;
    use crate::packet::Strategy;
    use fcn_topology::Machine;

    fn demo_batch(m: &Machine, net: &CompiledNet) -> PacketBatch {
        let n = m.processors() as u32;
        let mut oracle = PathOracle::new(m.graph(), 5);
        let demands: Vec<_> = (0..2 * n).map(|i| (i % n, (n - 1) - (i % n))).collect();
        let routes = oracle.routes(&demands, Strategy::ShortestPath);
        PacketBatch::compile(net, &routes).expect("oracle paths are walks")
    }

    #[test]
    fn balanced_plans_tile_the_node_and_wire_ranges() {
        let m = Machine::mesh(2, 5);
        let net = CompiledNet::compile(&m);
        for k in [1, 2, 3, 7, 16, 40] {
            let plan = ShardPlan::balanced(&net, k);
            assert_eq!(plan.shards(), k);
            let mut nodes = 0u32;
            let mut wire_hi = 0u32;
            for s in 0..k {
                let v = plan.view(&net, s);
                let (nlo, nhi) = v.node_range();
                nodes += nhi - nlo;
                let (wlo, whi) = v.wire_range();
                assert_eq!(wlo, wire_hi, "wire ranges must tile");
                wire_hi = whi;
                for u in nlo..nhi {
                    assert_eq!(plan.shard_of(u), s as u32);
                }
            }
            assert_eq!(nodes as usize, net.node_count());
            assert_eq!(wire_hi as usize, net.wire_count());
        }
    }

    #[test]
    fn single_shard_plan_has_no_cut_wires() {
        let m = Machine::de_bruijn(4);
        let net = CompiledNet::compile(&m);
        let plan = ShardPlan::balanced(&net, 1);
        let v = plan.view(&net, 0);
        for w in 0..net.wire_count() as u32 {
            assert!(!v.is_cut(w));
        }
        let split = ShardPlan::balanced(&net, 4);
        let cuts: usize = (0..4)
            .map(|s| {
                let v = split.view(&net, s);
                let (lo, hi) = v.wire_range();
                (lo..hi).filter(|&w| v.is_cut(w)).count()
            })
            .sum();
        assert!(cuts > 0, "a 4-way de Bruijn split must cut some wires");
    }

    #[test]
    fn sharded_matches_compiled_on_a_mesh() {
        let m = Machine::mesh(2, 6);
        let net = CompiledNet::compile(&m);
        let batch = demo_batch(&m, &net);
        for d in [
            QueueDiscipline::Fifo,
            QueueDiscipline::FarthestFirst,
            QueueDiscipline::RandomRank,
        ] {
            let cfg = RouterConfig {
                discipline: d,
                ..RouterConfig::default()
            };
            let baseline = route_compiled(&net, &batch, cfg, &mut RouterScratch::new());
            for k in [1, 2, 5] {
                let plan = ShardPlan::balanced(&net, k);
                assert_eq!(route_sharded(&net, &batch, cfg, &plan), baseline, "k={k}");
            }
        }
    }

    #[test]
    fn empty_batch_completes_at_tick_zero() {
        let m = Machine::linear_array(6);
        let net = CompiledNet::compile(&m);
        let batch = PacketBatch::compile(&net, &[]).expect("empty batch");
        let plan = ShardPlan::balanced(&net, 3);
        let out = route_sharded(&net, &batch, RouterConfig::default(), &plan);
        assert_eq!((out.ticks, out.delivered, out.completed), (0, 0, true));
    }

    #[test]
    #[should_panic(expected = "different net")]
    fn mismatched_plan_is_rejected() {
        let a = CompiledNet::compile(&Machine::linear_array(4));
        let b = CompiledNet::compile(&Machine::linear_array(9));
        let plan = ShardPlan::balanced(&a, 2);
        let batch = PacketBatch::compile(&b, &[]).expect("empty batch");
        let _ = route_sharded(&b, &batch, RouterConfig::default(), &plan);
    }
}
