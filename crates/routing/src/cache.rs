//! Memoized route plans.
//!
//! Planning a batch of routes costs one randomized BFS tree per distinct
//! source. Saturation sweeps re-plan on the *same* machine with the *same*
//! plan seed at growing batch sizes, so most of those trees are recomputed
//! verbatim. [`PlanCache`] memoizes them.
//!
//! Correctness rests on the oracle's seeding discipline (see
//! [`crate::oracle::PathOracle`]): a BFS tree is a pure function of the key
//! `(graph fingerprint, node limit, source, plan seed)` — it does not depend
//! on which other sources were routed before, or on the composition of the
//! batch. A cache hit therefore returns bit-identical trees to a fresh
//! computation, which `tests/plan_cache.rs` proves property-style.
//!
//! The cache is `Sync` (internally a mutexed map) so one cache can serve all
//! workers of an [`fcn_exec::Pool`] sweep. Insertions stop at `capacity`
//! entries to bound memory on huge sweeps; lookups keep working.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fcn_multigraph::NodeId;

/// Key of one memoized BFS parent tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    /// [`fcn_multigraph::Multigraph::fingerprint`] of the host graph.
    graph: u64,
    /// Effective node limit (`usize::MAX` when unrestricted).
    node_limit: usize,
    /// BFS source.
    source: NodeId,
    /// The per-source BFS seed (already mixed from the plan seed).
    bfs_seed: u64,
}

/// Hit/miss counters of a [`PlanCache`], as reported by
/// [`PlanCache::stats`] (surfaced to users via `fcnemu beta --verbose`).
/// The counters are observability only — attaching or detaching a cache
/// never changes a single routed bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A memoizing store for BFS parent trees, shared across planning calls.
#[derive(Debug)]
pub struct PlanCache {
    map: Mutex<HashMap<PlanKey, Arc<Vec<NodeId>>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        // 4096 parent vectors at n = 4096 nodes ≈ 64 MiB worst case; actual
        // sweeps stay far below because one tree per distinct source exists.
        PlanCache::with_capacity(4096)
    }
}

impl PlanCache {
    /// A cache that stops inserting past `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            map: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("plan cache poisoned").len(),
        }
    }

    /// Serve the parent tree for `key`, computing it on a miss.
    ///
    /// The computation runs outside the lock, so a slow BFS never blocks
    /// other workers; the worst case is two workers computing the same tree
    /// concurrently, in which case the first insert wins (both results are
    /// identical by construction).
    pub(crate) fn get_or_compute(
        &self,
        graph: u64,
        node_limit: usize,
        source: NodeId,
        bfs_seed: u64,
        compute: impl FnOnce() -> Vec<NodeId>,
    ) -> Arc<Vec<NodeId>> {
        let key = PlanKey {
            graph,
            node_limit,
            source,
            bfs_seed,
        };
        if let Some(hit) = self
            .map
            .lock()
            .expect("plan cache poisoned")
            .get(&key)
            .cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(compute());
        let mut map = self.map.lock().expect("plan cache poisoned");
        if let Some(raced) = map.get(&key) {
            return raced.clone();
        }
        if map.len() < self.capacity {
            map.insert(key, fresh.clone());
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_compute() {
        let cache = PlanCache::with_capacity(8);
        let mut computes = 0;
        for _ in 0..3 {
            let tree = cache.get_or_compute(1, usize::MAX, 0, 42, || {
                computes += 1;
                vec![0, 0, 1]
            });
            assert_eq!(*tree, vec![0, 0, 1]);
        }
        assert_eq!(computes, 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = PlanCache::with_capacity(8);
        let a = cache.get_or_compute(1, usize::MAX, 0, 1, || vec![0]);
        let b = cache.get_or_compute(1, usize::MAX, 0, 2, || vec![1]);
        let c = cache.get_or_compute(2, usize::MAX, 0, 1, || vec![2]);
        let d = cache.get_or_compute(1, 16, 0, 1, || vec![3]);
        assert_eq!((a[0], b[0], c[0], d[0]), (0, 1, 2, 3));
        assert_eq!(cache.stats().entries, 4);
    }

    #[test]
    fn capacity_bounds_entries_but_not_service() {
        let cache = PlanCache::with_capacity(2);
        for src in 0..10u32 {
            let tree = cache.get_or_compute(1, usize::MAX, src, 7, || vec![src]);
            assert_eq!(tree[0], src);
        }
        assert_eq!(cache.stats().entries, 2);
        // Entries already stored keep hitting.
        let again = cache.get_or_compute(1, usize::MAX, 0, 7, || unreachable!());
        assert_eq!(again[0], 0);
    }
}
