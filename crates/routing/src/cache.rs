//! Memoized route plans.
//!
//! Planning a batch of routes costs one randomized BFS tree per distinct
//! source. Saturation sweeps re-plan on the *same* machine with the *same*
//! plan seed at growing batch sizes, so most of those trees are recomputed
//! verbatim. [`PlanCache`] memoizes them.
//!
//! Correctness rests on the oracle's seeding discipline (see
//! [`crate::oracle::PathOracle`]): a BFS tree is a pure function of the key
//! `(graph fingerprint, node limit, source, plan seed)` — it does not depend
//! on which other sources were routed before, or on the composition of the
//! batch. A cache hit therefore returns bit-identical trees to a fresh
//! computation, which `tests/plan_cache.rs` proves property-style.
//!
//! The cache is `Sync` (internally a mutexed map) so one cache can serve all
//! workers of an [`fcn_exec::Pool`] sweep. Insertions stop at `capacity`
//! entries to bound memory on huge sweeps; lookups keep working.
//!
//! Counters are [`fcn_telemetry`] instruments owned per cache instance —
//! observability only, attaching or detaching a cache never changes a
//! routed bit. [`PlanCache::publish`] pushes them into the thread's metric
//! shard under the `plan_cache_*` names (surfaced by `fcnemu beta
//! --verbose` and `--metrics-out`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use fcn_exec::lockdep::{lock_ranked, ranks, RankedGuard};
use fcn_multigraph::NodeId;
use fcn_telemetry::Counter;

/// Key of one memoized BFS parent tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PlanKey {
    /// [`fcn_multigraph::Multigraph::fingerprint`] of the host graph.
    graph: u64,
    /// Effective node limit (`usize::MAX` when unrestricted).
    node_limit: usize,
    /// BFS source.
    source: NodeId,
    /// The per-source BFS seed (already mixed from the plan seed).
    bfs_seed: u64,
}

/// A memoizing store for BFS parent trees, shared across planning calls.
#[derive(Debug)]
pub struct PlanCache {
    map: Mutex<BTreeMap<PlanKey, Arc<Vec<NodeId>>>>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl Default for PlanCache {
    fn default() -> Self {
        // 4096 parent vectors at n = 4096 nodes ≈ 64 MiB worst case; actual
        // sweeps stay far below because one tree per distinct source exists.
        PlanCache::with_capacity(4096)
    }
}

impl PlanCache {
    /// A cache that stops inserting past `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            map: Mutex::new(BTreeMap::new()),
            capacity,
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that computed a fresh tree.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Trees computed but *not* retained because the cache was at capacity
    /// (this cache never replaces existing entries, so "evicted at the
    /// door" is its only eviction form).
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Trees currently stored.
    pub fn entries(&self) -> usize {
        self.lock_map().len()
    }

    /// Lock the tree map, recovering from a poisoned mutex: the guarded
    /// state is a plain map that is never left half-edited (inserts are
    /// single calls), so a panic elsewhere cannot corrupt it.
    fn lock_map(&self) -> RankedGuard<'_, BTreeMap<PlanKey, Arc<Vec<NodeId>>>> {
        lock_ranked(&self.map, ranks::ROUTING_PLAN_CACHE)
    }

    /// Fraction of lookups served from the cache.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Push this cache's counters into the thread's telemetry shard (no-op
    /// when the global registry is disabled). Call once per run, after the
    /// work that used the cache.
    pub fn publish(&self) {
        if !fcn_telemetry::global().enabled() {
            return;
        }
        let entries = self.entries() as u64;
        fcn_telemetry::with_shard(|s| {
            s.add(fcn_telemetry::names::PLAN_CACHE_HITS_TOTAL, self.hits());
            s.add(fcn_telemetry::names::PLAN_CACHE_MISSES_TOTAL, self.misses());
            s.add(
                fcn_telemetry::names::PLAN_CACHE_EVICTIONS_TOTAL,
                self.evictions(),
            );
            s.set_gauge(fcn_telemetry::names::PLAN_CACHE_ENTRIES, entries);
        });
    }

    /// Serve the parent tree for `key`, computing it on a miss.
    ///
    /// The computation runs outside the lock, so a slow BFS never blocks
    /// other workers; the worst case is two workers computing the same tree
    /// concurrently, in which case the first insert wins (both results are
    /// identical by construction).
    pub(crate) fn get_or_compute(
        &self,
        graph: u64,
        node_limit: usize,
        source: NodeId,
        bfs_seed: u64,
        compute: impl FnOnce() -> Vec<NodeId>,
    ) -> Arc<Vec<NodeId>> {
        let key = PlanKey {
            graph,
            node_limit,
            source,
            bfs_seed,
        };
        if let Some(hit) = self.lock_map().get(&key).cloned() {
            self.hits.inc();
            return hit;
        }
        self.misses.inc();
        let fresh = Arc::new(compute());
        let mut map = self.lock_map();
        if let Some(raced) = map.get(&key) {
            return raced.clone();
        }
        if map.len() < self.capacity {
            map.insert(key, fresh.clone());
        } else {
            self.evictions.inc();
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_first_compute() {
        let cache = PlanCache::with_capacity(8);
        let mut computes = 0;
        for _ in 0..3 {
            let tree = cache.get_or_compute(1, usize::MAX, 0, 42, || {
                computes += 1;
                vec![0, 0, 1]
            });
            assert_eq!(*tree, vec![0, 0, 1]);
        }
        assert_eq!(computes, 1);
        assert_eq!((cache.hits(), cache.misses(), cache.entries()), (2, 1, 1));
        assert!(cache.hit_rate() > 0.6);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let cache = PlanCache::with_capacity(8);
        let a = cache.get_or_compute(1, usize::MAX, 0, 1, || vec![0]);
        let b = cache.get_or_compute(1, usize::MAX, 0, 2, || vec![1]);
        let c = cache.get_or_compute(2, usize::MAX, 0, 1, || vec![2]);
        let d = cache.get_or_compute(1, 16, 0, 1, || vec![3]);
        assert_eq!((a[0], b[0], c[0], d[0]), (0, 1, 2, 3));
        assert_eq!(cache.entries(), 4);
    }

    #[test]
    fn capacity_bounds_entries_but_not_service() {
        let cache = PlanCache::with_capacity(2);
        for src in 0..10u32 {
            let tree = cache.get_or_compute(1, usize::MAX, src, 7, || vec![src]);
            assert_eq!(tree[0], src);
        }
        assert_eq!(cache.entries(), 2);
        assert_eq!(cache.evictions(), 8, "refused inserts count as evictions");
        // Entries already stored keep hitting.
        let again = cache.get_or_compute(1, usize::MAX, 0, 7, || unreachable!());
        assert_eq!(again[0], 0);
    }
}
