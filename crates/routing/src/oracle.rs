//! Path computation: turns (source, destination) demands into explicit
//! routes, memory-frugally.
//!
//! One BFS tree is computed per distinct *group key* (source for direct
//! routing, intermediate for the second Valiant leg) and dropped as soon as
//! its group is done, so peak memory is one tree plus the output paths. Per
//! group, BFS tie-breaking uses a random neighbor-preference permutation so
//! that shortest-path load spreads across equal-cost alternatives (on
//! meshes this approximates the usual randomized dimension-interleaving).
//!
//! ## Seeding discipline
//!
//! The BFS seed for source `s` is `job_seed(plan_seed, s)` — a pure
//! function of the oracle's plan seed and the source id, independent of the
//! order sources are visited in and of the batch's composition. Two
//! consequences:
//!
//! * routing the same demands through oracles built with the same seed is
//!   bit-identical regardless of what else each oracle routed before;
//! * a tree may be memoized by `(graph fingerprint, node limit, source,
//!   bfs seed)` — which is exactly what [`PlanCache`] does when attached
//!   via [`PathOracle::with_cache`].
//!
//! Valiant intermediate draws still come from the oracle's own sequential
//! RNG: they are consumed in demand order before any BFS runs, so they too
//! are a pure function of `(plan_seed, demand index)`.
//!
//! Every emitted path is a walk on the host graph (BFS parents are graph
//! edges by construction), so compiling oracle output into a
//! [`crate::compiled::PacketBatch`] against the same machine's
//! [`crate::compiled::CompiledNet`] is infallible; a
//! [`crate::compiled::RouteError`] from that step indicates a planner bug,
//! not bad input.

use std::sync::Arc;

use fcn_exec::job_seed;
use fcn_multigraph::{path_from_parents, Multigraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt, SeedableRng};

use crate::cache::PlanCache;
use crate::packet::{PacketPath, Strategy};

/// Domain separator so BFS seeds never collide with other uses of the
/// plan-seed stream.
const BFS_STREAM: u64 = 0xb5f5_0000_0000_0001;

/// Computes explicit routes over a fixed host graph.
pub struct PathOracle<'g> {
    graph: &'g Multigraph,
    /// Sequential stream for Valiant intermediates and caller composition.
    rng: StdRng,
    /// Base seed; per-source BFS seeds are mixed from this.
    plan_seed: u64,
    /// BFS only visits nodes with id below this limit (used by machines
    /// whose good routing scheme avoids auxiliary/apex structure).
    node_limit: usize,
    /// Optional memo store; `graph_fp` is the graph's fingerprint, computed
    /// once when the cache is attached.
    cache: Option<&'g PlanCache>,
    graph_fp: u64,
}

impl<'g> PathOracle<'g> {
    /// An oracle over `graph` whose BFS tie-breaks derive from `seed`.
    pub fn new(graph: &'g Multigraph, seed: u64) -> Self {
        PathOracle {
            graph,
            rng: StdRng::seed_from_u64(seed),
            plan_seed: seed,
            node_limit: usize::MAX,
            cache: None,
            graph_fp: 0,
        }
    }

    /// An oracle whose shortest paths are restricted to the subgraph induced
    /// by nodes `0..limit`. All demands must lie inside the prefix.
    pub fn with_node_limit(graph: &'g Multigraph, limit: usize, seed: u64) -> Self {
        let mut oracle = PathOracle::new(graph, seed);
        oracle.node_limit = limit;
        oracle
    }

    /// Attach a [`PlanCache`]; subsequent BFS trees are served from (and
    /// inserted into) it. Cached routes are bit-identical to fresh ones.
    pub fn with_cache(mut self, cache: &'g PlanCache) -> Self {
        self.graph_fp = self.graph.fingerprint();
        self.cache = Some(cache);
        self
    }

    /// Compute routes for the given demands under a strategy.
    ///
    /// Output order matches input order.
    ///
    /// # Panics
    /// Panics when some demand has no path in the host (possible only on
    /// disconnected graphs — e.g. a [`fcn_faults::FaultPlan`]-degraded one);
    /// use [`PathOracle::try_routes`] there.
    pub fn routes(&mut self, demands: &[(NodeId, NodeId)], strategy: Strategy) -> Vec<PacketPath> {
        self.try_routes(demands, strategy)
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                p.unwrap_or_else(|| {
                    let (s, d) = demands[i];
                    // fcn-allow: ERR-UNWRAP documented panicking wrapper; `try_routes` is the Option-returning entry point
                    panic!("no path {s} -> {d} in host")
                })
            })
            .collect()
    }

    /// [`PathOracle::routes`] surfacing unreachable demands as `None`
    /// instead of panicking — the fault-aware entry point: on a
    /// degraded graph a demand whose endpoints fall in different surviving
    /// components has no route. Reachable demands' routes are bit-identical
    /// to [`PathOracle::routes`] (same BFS trees, same RNG draws, in the
    /// same order).
    pub fn try_routes(
        &mut self,
        demands: &[(NodeId, NodeId)],
        strategy: Strategy,
    ) -> Vec<Option<PacketPath>> {
        match strategy {
            Strategy::ShortestPath => self
                .legs_grouped(demands)
                .into_iter()
                .map(|leg| leg.map(PacketPath::new))
                .collect(),
            Strategy::Valiant => self.valiant_routes(demands),
        }
    }

    fn valiant_routes(&mut self, demands: &[(NodeId, NodeId)]) -> Vec<Option<PacketPath>> {
        let n = (self.graph.node_count().min(self.node_limit)) as NodeId;
        let intermediates: Vec<NodeId> = (0..demands.len())
            .map(|_| self.rng.random_range(0..n))
            .collect();
        let first: Vec<(NodeId, NodeId)> = demands
            .iter()
            .zip(&intermediates)
            .map(|(&(s, _), &w)| (s, w))
            .collect();
        let second: Vec<(NodeId, NodeId)> = demands
            .iter()
            .zip(&intermediates)
            .map(|(&(_, d), &w)| (w, d))
            .collect();
        let leg1 = self.legs_grouped(&first);
        let leg2 = self.legs_grouped(&second);
        leg1.into_iter()
            .zip(leg2)
            .map(|(a, b)| {
                let (mut a, b) = (a?, b?);
                debug_assert_eq!(a.last(), b.first());
                a.extend_from_slice(&b[1..]);
                Some(PacketPath::new(a))
            })
            .collect()
    }

    /// Shortest-path legs for all demands, one BFS per distinct source,
    /// trees dropped eagerly (unless cached). Returns raw vertex sequences
    /// in input order; `None` marks demands with no path (disconnected or
    /// degraded hosts).
    fn legs_grouped(&mut self, demands: &[(NodeId, NodeId)]) -> Vec<Option<Vec<NodeId>>> {
        let mut order: Vec<usize> = (0..demands.len()).collect();
        order.sort_by_key(|&i| demands[i].0);
        let mut out: Vec<Option<Vec<NodeId>>> = vec![None; demands.len()];
        let mut current_src: Option<NodeId> = None;
        let mut parent: Arc<Vec<NodeId>> = Arc::new(Vec::new());
        for &i in &order {
            let (s, d) = demands[i];
            if current_src != Some(s) {
                parent = self.parents_for(s);
                current_src = Some(s);
            }
            if s == d {
                out[i] = Some(vec![s]);
            } else {
                out[i] = path_from_parents(&parent, s, d);
            }
        }
        out
    }

    /// The (possibly memoized) BFS parent tree for `src`.
    fn parents_for(&self, src: NodeId) -> Arc<Vec<NodeId>> {
        let bfs_seed = job_seed(self.plan_seed ^ BFS_STREAM, src as u64);
        match self.cache {
            Some(cache) => {
                cache.get_or_compute(self.graph_fp, self.node_limit, src, bfs_seed, || {
                    self.bfs_parents_randomized(src, bfs_seed)
                })
            }
            None => Arc::new(self.bfs_parents_randomized(src, bfs_seed)),
        }
    }

    /// BFS parents with a random neighbor-preference permutation drawn from
    /// a fresh RNG at `bfs_seed`, honoring the node limit. A pure function
    /// of `(graph, node_limit, src, bfs_seed)`.
    fn bfs_parents_randomized(&self, src: NodeId, bfs_seed: u64) -> Vec<NodeId> {
        let g = self.graph;
        let n = g.node_count();
        let limit = self.node_limit;
        assert!((src as usize) < limit, "source {src} outside node limit");
        let mut rng = StdRng::seed_from_u64(bfs_seed);
        let mut parent = vec![NodeId::MAX; n];
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        parent[src as usize] = src;
        dist[src as usize] = 0;
        queue.push_back(src);
        // A small reusable scratch buffer of neighbors, shuffled per vertex.
        let mut scratch: Vec<NodeId> = Vec::new();
        while let Some(u) = queue.pop_front() {
            scratch.clear();
            scratch.extend(g.neighbors(u).map(|(v, _)| v));
            scratch.shuffle(&mut rng);
            for &v in &scratch {
                if (v as usize) < limit && dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    parent[v as usize] = u;
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// Access the oracle's RNG (for callers composing extra randomness with
    /// the same seed stream).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::Multigraph;

    fn cycle(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId).map(|i| (i, (i + 1) % n as NodeId)))
    }

    #[test]
    fn direct_routes_are_shortest() {
        let g = cycle(10);
        let mut oracle = PathOracle::new(&g, 1);
        let routes = oracle.routes(&[(0, 3), (0, 7), (5, 5)], Strategy::ShortestPath);
        assert_eq!(routes[0].hops(), 3);
        assert_eq!(routes[1].hops(), 3); // around the other way
        assert_eq!(routes[2].hops(), 0);
        for r in &routes {
            for w in r.path.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn routes_preserve_input_order() {
        let g = cycle(8);
        let mut oracle = PathOracle::new(&g, 2);
        let demands = [(3, 1), (0, 2), (3, 4), (0, 6)];
        let routes = oracle.routes(&demands, Strategy::ShortestPath);
        for (r, &(s, d)) in routes.iter().zip(&demands) {
            assert_eq!(r.src(), s);
            assert_eq!(r.dst(), d);
        }
    }

    #[test]
    fn valiant_routes_connect_endpoints() {
        let g = cycle(12);
        let mut oracle = PathOracle::new(&g, 3);
        let demands: Vec<_> = (0..12u32).map(|i| (i, (i + 6) % 12)).collect();
        let routes = oracle.routes(&demands, Strategy::Valiant);
        for (r, &(s, d)) in routes.iter().zip(&demands) {
            assert_eq!(r.src(), s);
            assert_eq!(r.dst(), d);
            for w in r.path.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn tie_breaking_varies_with_seed() {
        // On a 4x4 torus many (s,d) pairs have multiple shortest paths;
        // different seeds should produce at least one differing route.
        let mut b = fcn_multigraph::MultigraphBuilder::new(16);
        for r in 0..4u32 {
            for c in 0..4u32 {
                let id = r * 4 + c;
                b.add_edge(id, r * 4 + (c + 1) % 4);
                b.add_edge(id, ((r + 1) % 4) * 4 + c);
            }
        }
        let g = b.build();
        let demands: Vec<_> = (0..16u32).map(|i| (i, (i + 5) % 16)).collect();
        let r1 = PathOracle::new(&g, 10).routes(&demands, Strategy::ShortestPath);
        let r2 = PathOracle::new(&g, 20).routes(&demands, Strategy::ShortestPath);
        assert!(r1 != r2, "seeds produced identical routes");
        // But same seed reproduces exactly.
        let r1b = PathOracle::new(&g, 10).routes(&demands, Strategy::ShortestPath);
        assert_eq!(r1, r1b);
    }

    #[test]
    fn routes_are_batch_composition_independent() {
        // Per-source seeding: demand i's route must not depend on which
        // other demands are in the batch or their order.
        let g = cycle(16);
        let demands = [(0u32, 8u32), (5, 12), (11, 2)];
        let full = PathOracle::new(&g, 77).routes(&demands, Strategy::ShortestPath);
        for (i, &d) in demands.iter().enumerate() {
            let solo = PathOracle::new(&g, 77).routes(&[d], Strategy::ShortestPath);
            assert_eq!(solo[0], full[i], "demand {d:?} changed with batch");
        }
        let mut rev = demands;
        rev.reverse();
        let rev_routes = PathOracle::new(&g, 77).routes(&rev, Strategy::ShortestPath);
        for (i, r) in rev_routes.iter().enumerate() {
            assert_eq!(*r, full[demands.len() - 1 - i]);
        }
    }

    #[test]
    fn cached_routes_match_fresh_routes() {
        let g = cycle(20);
        let cache = PlanCache::default();
        let demands: Vec<_> = (0..20u32).map(|i| (i, (i + 9) % 20)).collect();
        let fresh = PathOracle::new(&g, 5).routes(&demands, Strategy::ShortestPath);
        let cold = PathOracle::new(&g, 5)
            .with_cache(&cache)
            .routes(&demands, Strategy::ShortestPath);
        let warm = PathOracle::new(&g, 5)
            .with_cache(&cache)
            .routes(&demands, Strategy::ShortestPath);
        assert_eq!(fresh, cold);
        assert_eq!(fresh, warm);
        assert!(
            cache.hits() >= 20,
            "second pass should hit: {} hits",
            cache.hits()
        );
    }
}
