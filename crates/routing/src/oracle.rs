//! Path computation: turns (source, destination) demands into explicit
//! routes, memory-frugally.
//!
//! One BFS tree is computed per distinct *group key* (source for direct
//! routing, intermediate for the second Valiant leg) and dropped as soon as
//! its group is done, so peak memory is one tree plus the output paths. Per
//! group, BFS tie-breaking uses a random neighbor-preference permutation so
//! that shortest-path load spreads across equal-cost alternatives (on
//! meshes this approximates the usual randomized dimension-interleaving).

use fcn_multigraph::{path_from_parents, Multigraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt, SeedableRng};

use crate::packet::{PacketPath, Strategy};

/// Computes explicit routes over a fixed host graph.
pub struct PathOracle<'g> {
    graph: &'g Multigraph,
    rng: StdRng,
    /// BFS only visits nodes with id below this limit (used by machines
    /// whose good routing scheme avoids auxiliary/apex structure).
    node_limit: usize,
}

impl<'g> PathOracle<'g> {
    pub fn new(graph: &'g Multigraph, seed: u64) -> Self {
        PathOracle {
            graph,
            rng: StdRng::seed_from_u64(seed),
            node_limit: usize::MAX,
        }
    }

    /// An oracle whose shortest paths are restricted to the subgraph induced
    /// by nodes `0..limit`. All demands must lie inside the prefix.
    pub fn with_node_limit(graph: &'g Multigraph, limit: usize, seed: u64) -> Self {
        PathOracle {
            graph,
            rng: StdRng::seed_from_u64(seed),
            node_limit: limit,
        }
    }

    /// Compute routes for the given demands under a strategy.
    ///
    /// Output order matches input order.
    pub fn routes(&mut self, demands: &[(NodeId, NodeId)], strategy: Strategy) -> Vec<PacketPath> {
        match strategy {
            Strategy::ShortestPath => self.direct_routes(demands),
            Strategy::Valiant => self.valiant_routes(demands),
        }
    }

    fn direct_routes(&mut self, demands: &[(NodeId, NodeId)]) -> Vec<PacketPath> {
        let legs = self.legs_grouped(demands);
        legs.into_iter().map(PacketPath::new).collect()
    }

    fn valiant_routes(&mut self, demands: &[(NodeId, NodeId)]) -> Vec<PacketPath> {
        let n = (self.graph.node_count().min(self.node_limit)) as NodeId;
        let intermediates: Vec<NodeId> =
            (0..demands.len()).map(|_| self.rng.random_range(0..n)).collect();
        let first: Vec<(NodeId, NodeId)> = demands
            .iter()
            .zip(&intermediates)
            .map(|(&(s, _), &w)| (s, w))
            .collect();
        let second: Vec<(NodeId, NodeId)> = demands
            .iter()
            .zip(&intermediates)
            .map(|(&(_, d), &w)| (w, d))
            .collect();
        let leg1 = self.legs_grouped(&first);
        let leg2 = self.legs_grouped(&second);
        leg1.into_iter()
            .zip(leg2)
            .map(|(mut a, b)| {
                debug_assert_eq!(*a.last().unwrap(), b[0]);
                a.extend_from_slice(&b[1..]);
                PacketPath::new(a)
            })
            .collect()
    }

    /// Shortest-path legs for all demands, one BFS per distinct source,
    /// trees dropped eagerly. Returns raw vertex sequences in input order.
    fn legs_grouped(&mut self, demands: &[(NodeId, NodeId)]) -> Vec<Vec<NodeId>> {
        let mut order: Vec<usize> = (0..demands.len()).collect();
        order.sort_by_key(|&i| demands[i].0);
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); demands.len()];
        let mut current_src: Option<NodeId> = None;
        let mut parent: Vec<NodeId> = Vec::new();
        for &i in &order {
            let (s, d) = demands[i];
            if current_src != Some(s) {
                parent = self.bfs_parents_randomized(s);
                current_src = Some(s);
            }
            if s == d {
                out[i] = vec![s];
            } else {
                out[i] = path_from_parents(&parent, s, d)
                    .unwrap_or_else(|| panic!("no path {s} -> {d} in host"));
            }
        }
        out
    }

    /// BFS parents with a per-call random neighbor-preference permutation,
    /// honoring the node limit.
    fn bfs_parents_randomized(&mut self, src: NodeId) -> Vec<NodeId> {
        let g = self.graph;
        let n = g.node_count();
        let limit = self.node_limit;
        assert!((src as usize) < limit, "source {src} outside node limit");
        let mut parent = vec![NodeId::MAX; n];
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        parent[src as usize] = src;
        dist[src as usize] = 0;
        queue.push_back(src);
        // A small reusable scratch buffer of neighbors, shuffled per vertex.
        let mut scratch: Vec<NodeId> = Vec::new();
        while let Some(u) = queue.pop_front() {
            scratch.clear();
            scratch.extend(g.neighbors(u).map(|(v, _)| v));
            scratch.shuffle(&mut self.rng);
            for &v in &scratch {
                if (v as usize) < limit && dist[v as usize] == u32::MAX {
                    dist[v as usize] = dist[u as usize] + 1;
                    parent[v as usize] = u;
                    queue.push_back(v);
                }
            }
        }
        parent
    }

    /// Access the oracle's RNG (for callers composing extra randomness with
    /// the same seed stream).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::Multigraph;

    fn cycle(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId).map(|i| (i, (i + 1) % n as NodeId)))
    }

    #[test]
    fn direct_routes_are_shortest() {
        let g = cycle(10);
        let mut oracle = PathOracle::new(&g, 1);
        let routes = oracle.routes(&[(0, 3), (0, 7), (5, 5)], Strategy::ShortestPath);
        assert_eq!(routes[0].hops(), 3);
        assert_eq!(routes[1].hops(), 3); // around the other way
        assert_eq!(routes[2].hops(), 0);
        for r in &routes {
            for w in r.path.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn routes_preserve_input_order() {
        let g = cycle(8);
        let mut oracle = PathOracle::new(&g, 2);
        let demands = [(3, 1), (0, 2), (3, 4), (0, 6)];
        let routes = oracle.routes(&demands, Strategy::ShortestPath);
        for (r, &(s, d)) in routes.iter().zip(&demands) {
            assert_eq!(r.src(), s);
            assert_eq!(r.dst(), d);
        }
    }

    #[test]
    fn valiant_routes_connect_endpoints() {
        let g = cycle(12);
        let mut oracle = PathOracle::new(&g, 3);
        let demands: Vec<_> = (0..12u32).map(|i| (i, (i + 6) % 12)).collect();
        let routes = oracle.routes(&demands, Strategy::Valiant);
        for (r, &(s, d)) in routes.iter().zip(&demands) {
            assert_eq!(r.src(), s);
            assert_eq!(r.dst(), d);
            for w in r.path.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn tie_breaking_varies_with_seed() {
        // On a 4x4 torus many (s,d) pairs have multiple shortest paths;
        // different seeds should produce at least one differing route.
        let mut b = fcn_multigraph::MultigraphBuilder::new(16);
        for r in 0..4u32 {
            for c in 0..4u32 {
                let id = r * 4 + c;
                b.add_edge(id, r * 4 + (c + 1) % 4);
                b.add_edge(id, ((r + 1) % 4) * 4 + c);
            }
        }
        let g = b.build();
        let demands: Vec<_> = (0..16u32).map(|i| (i, (i + 5) % 16)).collect();
        let r1 = PathOracle::new(&g, 10).routes(&demands, Strategy::ShortestPath);
        let r2 = PathOracle::new(&g, 20).routes(&demands, Strategy::ShortestPath);
        assert!(r1 != r2, "seeds produced identical routes");
        // But same seed reproduces exactly.
        let r1b = PathOracle::new(&g, 10).routes(&demands, Strategy::ShortestPath);
        assert_eq!(r1, r1b);
    }
}
