#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-routing
//!
//! A synchronous, unit-capacity, store-and-forward packet-routing simulator
//! — the operational realization of the Kruskal–Snir bandwidth definition
//! the paper builds on: route `m` messages drawn from a traffic
//! distribution, measure the completion time `r(m)`, and report the
//! delivery rate `m / r(m)`.
//!
//! * [`oracle`] — converts source/destination demands into explicit routes
//!   (randomized shortest paths or Valiant two-phase), with per-source
//!   seeding that makes every route a pure function of
//!   `(graph, node limit, source, seed)`;
//! * [`cache`] — memoized BFS trees ([`PlanCache`]) serving repeated
//!   batches on the same machine and seed;
//! * [`compiled`] — the compile-once artifacts: [`CompiledNet`] (the
//!   machine's directed-wire CSR, shared across every batch of a sweep) and
//!   [`PacketBatch`] (flat SoA paths with hops pre-resolved to wire ids);
//! * [`engine`] — the tick simulator: one packet per wire per tick, per-node
//!   send budgets for the "weak" machines, pluggable queue disciplines,
//!   pooled [`RouterScratch`] arenas;
//! * [`events`] — the event-driven backend: the same tick loop armed with a
//!   calendar-wheel skip hook that jumps over quiescent spans (sparse
//!   injection schedules, fault outage windows, drain tails), bit-identical
//!   to the tick backend;
//! * [`harness`] — batch-rate measurement and saturation sweeps, built
//!   around the compile-once [`RouteCtx`] with selectable [`Backend`];
//! * [`shard`] + [`boundary`] — the K-shard router: shard-local tick phases
//!   joined by a deterministic boundary exchange, bit-identical to the
//!   1-shard engine at every shard count.

pub mod boundary;
pub mod cache;
pub mod compiled;
pub mod engine;
pub mod events;
pub mod harness;
pub mod native;
pub mod oracle;
pub mod packet;
pub mod shard;
pub mod steady;

pub use boundary::{merge_outboxes, BoundaryMsg, Outbox};
pub use cache::PlanCache;
pub use compiled::{CompiledNet, InjectionSchedule, PacketBatch, RouteError};
pub use engine::{
    route_batch, route_compiled, route_compiled_at, route_compiled_gated, route_compiled_pooled,
    try_route_batch, AbortCause, RouterConfig, RouterScratch, RoutingOutcome,
};
pub use events::{
    route_events, route_events_at, route_events_gated, route_events_pooled, EventKind, EventWheel,
};
pub use harness::{
    measure_rate, measure_rate_ctx, measure_rate_with, plateau_rate, route_traffic,
    route_traffic_ctx, route_traffic_with, saturation_sweep, Backend, RateSample, RouteCtx,
};
pub use native::{
    de_bruijn_path, plan_batch, plan_routes, plan_routes_cached, plan_routes_degraded,
    plan_routes_faulted, shuffle_exchange_path, DegradedPlan,
};
pub use oracle::PathOracle;
pub use packet::{PacketPath, QueueDiscipline, Strategy};
pub use shard::{route_sharded, route_sharded_gated, route_sharded_pooled, ShardPlan, ShardView};
pub use steady::{
    saturation_throughput, steady_state_rate, steady_state_rate_ctx, SteadyConfig, SteadyOutcome,
};
