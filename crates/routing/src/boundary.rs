//! The sharded router's boundary-exchange buffers and their canonical
//! ordered merge.
//!
//! During a sharded tick, each shard runs its send phase independently and
//! records every popped packet into an [`Outbox`]. The pops themselves are
//! order-free (each node's pop set is determined by its queues alone), but
//! the *global* order in which arrivals are then processed is
//! load-bearing: it fixes FIFO insertion order and the order nodes are
//! (re)activated for the next tick. The sequential engine processes
//! arrivals in the order it scans active nodes, and that scan order is the
//! order nodes were first activated.
//!
//! [`merge_outboxes`] reconstructs exactly that order for any shard count.
//! Every message in an outbox is tagged (via its run) with the **activation
//! key** of the node that sent it — the global rank at which the node was
//! appended to the sequential engine's active list. Per-shard outboxes are
//! naturally ascending in that key (activation is chronological and
//! compaction preserves order), so a K-way merge by smallest head key
//! replays the sequential send order bit for bit. This is the routing
//! analogue of the telemetry shard merge pinned by
//! `crates/telemetry/tests/shard_merge.rs`, and the `SHARD-MERGE` analyze
//! rule keeps every consumer of cross-shard buffers on this one helper.

/// One packet crossing the tick boundary: enough state for the receiving
/// shard to requeue it without consulting any other shard.
///
/// The packet's random rank is *not* carried: ranks are a pure function of
/// `(config seed, packet id)`, pregenerated once by the leader and shared
/// read-only with every shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryMsg {
    /// Packet id (index into the batch).
    pub pid: u32,
    /// Hops remaining *before* this traversal is applied.
    pub rem: u32,
    /// The packet's flat wire-arena cursor (next hop to read).
    pub cursor: u32,
}

/// A run of consecutive messages sent by one node: all pops of one active
/// node during one send phase, tagged with that node's activation key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Run {
    /// The sending node's global activation rank (see [`crate::shard`]).
    act_key: u64,
    /// Number of messages in this run.
    len: u32,
}

/// One shard's send-phase output: messages grouped into per-node [`Run`]s,
/// ascending in activation key by construction.
///
/// The message buffer is private; shards append through [`Outbox::push`]
/// and the leader consumes through [`merge_outboxes`], so no caller can
/// iterate a cross-shard buffer outside the canonical merge order (enforced
/// token-wise by the `SHARD-MERGE` analyze rule).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Outbox {
    runs: Vec<Run>,
    msgs: Vec<BoundaryMsg>,
}

impl Outbox {
    /// Append one message under the sending node's activation key.
    ///
    /// Consecutive pushes with the same key extend the current run; a new
    /// key opens a new run. Keys must arrive in non-decreasing order (the
    /// send phase walks the active list, which is ascending in activation
    /// key) — debug-checked here, and what makes the K-way merge correct.
    #[inline]
    pub fn push(&mut self, act_key: u64, msg: BoundaryMsg) {
        match self.runs.last_mut() {
            Some(run) if run.act_key == act_key => run.len += 1,
            last => {
                debug_assert!(
                    last.is_none_or(|r| r.act_key < act_key),
                    "outbox activation keys must be pushed in ascending order"
                );
                self.runs.push(Run { act_key, len: 1 });
            }
        }
        self.msgs.push(msg);
    }

    /// Total messages buffered.
    #[inline]
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True when no messages are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drop all runs and messages, keeping capacity.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.msgs.clear();
    }
}

/// Merge per-shard outboxes into the canonical global send order, invoking
/// `f(source shard, message)` once per message.
///
/// The merge repeatedly takes the whole head run of the shard whose head
/// run has the smallest activation key. Because every node lives in exactly
/// one shard, keys never tie across shards, and because each outbox is
/// ascending in key, the emitted sequence is globally ascending — i.e. the
/// exact order the 1-shard engine would have produced these sends in. With
/// a single shard this degenerates to an in-order scan.
pub fn merge_outboxes<F: FnMut(usize, &BoundaryMsg)>(outboxes: &[Outbox], mut f: F) {
    // (next run index, next message index) per shard.
    let mut pos: Vec<(usize, usize)> = vec![(0, 0); outboxes.len()];
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (s, ob) in outboxes.iter().enumerate() {
            if let Some(run) = ob.runs.get(pos[s].0) {
                if best.is_none_or(|(k, _)| run.act_key < k) {
                    best = Some((run.act_key, s));
                }
            }
        }
        let Some((_, s)) = best else { break };
        let ob = &outboxes[s];
        let (run_idx, msg_idx) = pos[s];
        let len = ob.runs[run_idx].len as usize;
        for m in &ob.msgs[msg_idx..msg_idx + len] {
            f(s, m);
        }
        pos[s] = (run_idx + 1, msg_idx + len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(pid: u32) -> BoundaryMsg {
        BoundaryMsg {
            pid,
            rem: 1,
            cursor: 0,
        }
    }

    #[test]
    fn runs_extend_and_split_on_key_changes() {
        let mut ob = Outbox::default();
        assert!(ob.is_empty());
        ob.push(3, msg(0));
        ob.push(3, msg(1));
        ob.push(9, msg(2));
        assert_eq!(ob.len(), 3);
        let mut seen = Vec::new();
        merge_outboxes(std::slice::from_ref(&ob), |s, m| seen.push((s, m.pid)));
        assert_eq!(seen, vec![(0, 0), (0, 1), (0, 2)]);
        ob.clear();
        assert!(ob.is_empty());
    }

    #[test]
    fn merge_interleaves_shards_by_activation_key() {
        // Shard 0 activated nodes at ranks 1 and 6; shard 1 at ranks 4 and 5.
        let mut a = Outbox::default();
        a.push(1, msg(10));
        a.push(1, msg(11));
        a.push(6, msg(12));
        let mut b = Outbox::default();
        b.push(4, msg(20));
        b.push(5, msg(21));
        let mut seen = Vec::new();
        merge_outboxes(&[a, b], |s, m| seen.push((s, m.pid)));
        assert_eq!(seen, vec![(0, 10), (0, 11), (1, 20), (1, 21), (0, 12)]);
    }

    #[test]
    fn merge_of_empty_outboxes_is_empty() {
        let mut calls = 0;
        merge_outboxes(&[Outbox::default(), Outbox::default()], |_, _| calls += 1);
        assert_eq!(calls, 0);
        merge_outboxes(&[], |_, _| calls += 1);
        assert_eq!(calls, 0);
    }
}
