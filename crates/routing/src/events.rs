//! The event-driven router backend: skip quiescent ticks.
//!
//! The synchronous tick loop pays for every tick even when nothing can
//! move — long drain tails, sparse injection schedules, fault outage
//! windows. This backend runs the **same** tick loop over the same
//! [`CompiledNet`]/[`PacketBatch`] arenas, but when a simulated tick turns
//! out to be *quiescent* (no packet crossed a wire and no packet was
//! injected) it consults an [`EventWheel`] of next-actionable ticks —
//! pending injections, fault-capacity boundaries on wires that hold
//! packets — and jumps straight to the earliest one, folding the skipped
//! span's side effects (rotate advance, occupancy/stall/gating telemetry)
//! in closed form. Cost therefore scales with *events* (injections,
//! crossings, window edges), not `ticks × wires`.
//!
//! ## Determinism contract
//!
//! [`route_events`] does not re-implement the wire model: every simulated
//! tick executes [`crate::engine`]'s `run_ticks` verbatim (the event hook
//! is a parameter of that loop), and a span is skipped only when the state
//! provably replays itself — so the [`RoutingOutcome`] is **bit-identical**
//! to [`crate::route_compiled`] / `engine::reference` / the sharded router
//! across families, disciplines, abort paths, and fault overlays (pinned
//! by `tests/event_router.rs`). Cancellation flags are polled at every
//! simulated tick *and* re-polled immediately before each fast-forward
//! commits, so a flag raised mid-run aborts with
//! [`crate::AbortCause::Cancelled`] before the skipped span is accounted —
//! a cancelled outcome never reports ticks beyond its last simulated tick
//! (a flag raised before the run starts behaves identically to the tick
//! backend's, and `event_pin_cancelled_before_skip` pins the
//! frozen-net case where the next jump would have burned the whole
//! budget).
//!
//! Why a quiescent state replays: packets move only when a send succeeds;
//! a tick with zero sends leaves every queue, rotate offset, and budget
//! untouched *except* that rotate offsets of listed nodes advance by one
//! (folded as `+k mod deg` over the span). The send phase's inputs change
//! only via injections (scheduled — in the wheel) or effective wire
//! capacity (piecewise-constant between fault-window boundaries — wake
//! ticks pushed for every queued wire before the skip decision). Jumping
//! to the earliest wake therefore commutes with single-stepping.

use std::cell::RefCell;
use std::sync::atomic::AtomicBool;

use crate::compiled::{CompiledNet, InjectionSchedule, PacketBatch};
use crate::engine::{dispatch_run, RouterConfig, RouterScratch, RoutingOutcome};

/// Wheel levels: level `l` covers ticks `[64^l, 64^(l+1))` (level 0 is
/// exact, one tick per slot), so six levels span `64^6 = 2^36` ticks —
/// far beyond any `max_ticks` in practice; later ticks go to an overflow
/// list.
const LEVELS: usize = 6;
/// Slots per level.
const SLOTS: usize = 64;

/// What a wheel entry wakes the simulation for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A schedule entry comes due: the tick must be simulated so its
    /// injection step runs.
    Inject,
    /// A fault-capacity boundary (outage window opening or closing) on a
    /// wire that held packets when the skip was computed: the wire may
    /// become sendable (or stop being sendable) at this tick.
    WindowWakeup,
}

/// A hierarchical calendar wheel of future wake ticks.
///
/// Entries are bucketed by tick magnitude: level `l` slot `s` holds ticks
/// whose base-64 digit `l` is `s` and whose higher digits are zero —
/// level 0 is one-tick-per-slot exact, level 1 slots cover 64 ticks, and
/// so on. Slot ranges are disjoint and ascending across levels, so the
/// earliest pending wake is found by scanning occupied-slot bitmasks
/// level by level and taking the minimum of the first live slot — no
/// per-tick cascading, which matters because the router *jumps* over
/// spans instead of advancing one tick at a time. Everything is plain
/// `Vec` state: deterministic, clearable, reusable across runs.
///
/// The hot path never touches the wheel — it is consulted only when a
/// simulated tick was quiescent, and pushed to only at run start
/// (injection ticks) and at skip decisions (window wakeups).
#[derive(Debug)]
pub struct EventWheel {
    /// `LEVELS × SLOTS` buckets, flattened (`level * SLOTS + slot`).
    slots: Vec<Vec<(u64, EventKind)>>,
    /// Occupied-slot bitmask per level.
    occ: [u64; LEVELS],
    /// Entries at ticks `>= 64^LEVELS` (never hit in practice).
    overflow: Vec<(u64, EventKind)>,
    /// Live entries.
    len: usize,
    /// Peak of `len` since the last [`EventWheel::clear`] (telemetry:
    /// `router_wheel_max_depth`).
    max_depth: usize,
}

impl Default for EventWheel {
    fn default() -> Self {
        EventWheel::new()
    }
}

impl EventWheel {
    /// An empty wheel.
    pub fn new() -> EventWheel {
        EventWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            overflow: Vec::new(),
            len: 0,
            max_depth: 0,
        }
    }

    /// Drop every entry and reset the depth watermark (bucket capacity is
    /// retained, so a pooled wheel allocates nothing after warm-up).
    pub fn clear(&mut self) {
        for l in 0..LEVELS {
            let mut occ = self.occ[l];
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                self.slots[l * SLOTS + s].clear();
            }
            self.occ[l] = 0;
        }
        self.overflow.clear();
        self.len = 0;
        self.max_depth = 0;
    }

    /// Bucket of `tick`, or `None` for the overflow list.
    #[inline]
    fn place(tick: u64) -> Option<(usize, usize)> {
        if tick < SLOTS as u64 {
            return Some((0, tick as usize));
        }
        let level = (63 - tick.leading_zeros() as usize) / 6;
        if level >= LEVELS {
            return None;
        }
        Some((level, (tick >> (6 * level)) as usize & (SLOTS - 1)))
    }

    /// Schedule a wake at `tick`.
    pub fn push(&mut self, tick: u64, kind: EventKind) {
        match EventWheel::place(tick) {
            Some((l, s)) => {
                self.slots[l * SLOTS + s].push((tick, kind));
                self.occ[l] |= 1u64 << s;
            }
            None => self.overflow.push((tick, kind)),
        }
        self.len += 1;
        self.max_depth = self.max_depth.max(self.len);
    }

    /// Drop every entry at ticks `<= now` (they are in the past) and
    /// return the earliest remaining wake tick, if any. The returned entry
    /// stays in the wheel — it will be discarded as stale by the call
    /// after its tick has been simulated.
    pub fn next_after(&mut self, now: u64) -> Option<u64> {
        for l in 0..LEVELS {
            let mut occ = self.occ[l];
            while occ != 0 {
                let s = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let slot = &mut self.slots[l * SLOTS + s];
                let before = slot.len();
                slot.retain(|&(t, _)| t > now);
                self.len -= before - slot.len();
                if slot.is_empty() {
                    self.occ[l] &= !(1u64 << s);
                    continue;
                }
                // Slot ranges ascend within and across levels, so the
                // first surviving slot holds the global minimum.
                if let Some(m) = slot.iter().map(|&(t, _)| t).min() {
                    return Some(m);
                }
            }
        }
        let before = self.overflow.len();
        self.overflow.retain(|&(t, _)| t > now);
        self.len -= before - self.overflow.len();
        self.overflow.iter().map(|&(t, _)| t).min()
    }

    /// Live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no wake is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak entry count since the last clear.
    #[inline]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

/// Per-run event-backend state threaded into the engine's tick loop. The
/// tick backend passes no `EventCtl`; its presence is the *only* behavioral
/// difference between the backends.
pub(crate) struct EventCtl<'a> {
    /// Pending wake ticks (injections at run start, window wakeups pushed
    /// at skip decisions).
    pub(crate) wheel: &'a mut EventWheel,
    /// Outage windows `(start, end)` sorted ascending, for the
    /// skipped-entirely counter.
    spans: &'a [(u64, u64)],
    /// Monotone cursor into `spans` (everything before it was simulated
    /// into, counted, or lies in the past).
    span_ptr: usize,
    /// Ticks skipped instead of simulated.
    pub(crate) skipped: u64,
    /// Outage windows (per directed wire, matching `fault_summary`) whose
    /// entire open span fell inside skipped ticks — no simulated tick ever
    /// queried capacity during the window.
    pub(crate) windows_skipped: u64,
}

impl EventCtl<'_> {
    /// Account a jump from simulated tick `from` to next simulated tick
    /// `next_sim` (skipping `from + 1 ..= next_sim - 1`): the skipped-tick
    /// counter, plus every outage window whose capacity queries (`start <=
    /// q < end` for queried ticks `q`) all fell inside the jump — ticks
    /// `from ..= next_sim - 2` are the queries the skipped ticks would
    /// have made (tick `x` queries capacity at `x - 1`).
    pub(crate) fn note_skip(&mut self, from: u64, next_sim: u64) {
        self.skipped += next_sim - 1 - from;
        while self.span_ptr < self.spans.len() && self.spans[self.span_ptr].0 < from {
            self.span_ptr += 1;
        }
        let mut p = self.span_ptr;
        while p < self.spans.len() && self.spans[p].0 + 1 < next_sim {
            if self.spans[p].1 < next_sim {
                self.windows_skipped += 1;
            }
            p += 1;
        }
        // Spans passed over but not counted were (or will be) touched by
        // the simulated tick at `next_sim`; never revisit them.
        self.span_ptr = p;
    }
}

thread_local! {
    /// Pooled wheel + sorted-span arena, reused across event runs on this
    /// thread (the companion of the engine's pooled [`RouterScratch`]).
    static EVENT_STATE: RefCell<(EventWheel, Vec<(u64, u64)>)> =
        RefCell::new((EventWheel::new(), Vec::new()));
}

/// Route a pre-compiled batch with the event-driven backend.
///
/// Bit-identical outcomes to [`crate::route_compiled`] for every
/// `(net, batch, cfg)`; faster whenever the run contains idle spans (the
/// batch semantics inject everything at tick 0, so intact batch runs have
/// none — the wins come from fault outage windows, and from
/// [`route_events_at`]'s sparse injection schedules).
pub fn route_events(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
    scratch: &mut RouterScratch,
) -> RoutingOutcome {
    route_events_inner(net, batch, None, cfg, scratch, None)
}

/// [`route_events`] with a cancellation flag, polled at simulated ticks
/// (see the module docs for the mid-skip caveat).
pub fn route_events_gated(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
    scratch: &mut RouterScratch,
    cancel: Option<&AtomicBool>,
) -> RoutingOutcome {
    route_events_inner(net, batch, None, cfg, scratch, cancel)
}

/// [`route_events`] under an [`InjectionSchedule`] — bit-identical to
/// [`crate::engine::route_compiled_at`] for every schedule, and the case
/// the backend exists for: idle gaps between scheduled injections are
/// skipped, not simulated.
pub fn route_events_at(
    net: &CompiledNet,
    batch: &PacketBatch,
    schedule: &InjectionSchedule,
    cfg: RouterConfig,
    scratch: &mut RouterScratch,
    cancel: Option<&AtomicBool>,
) -> RoutingOutcome {
    route_events_inner(net, batch, Some(schedule), cfg, scratch, cancel)
}

/// [`route_events`] using this thread's pooled [`RouterScratch`] — the
/// event-backend twin of [`crate::route_compiled_pooled`].
pub fn route_events_pooled(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
) -> RoutingOutcome {
    crate::engine::POOLED_SCRATCH.with(|s| route_events(net, batch, cfg, &mut s.borrow_mut()))
}

/// Shared body: seed the wheel (one `Inject` wake per distinct future
/// injection tick; window spans sorted for the skipped counter), run the
/// engine's tick loop with the event hook armed, then publish the
/// event-backend metrics.
fn route_events_inner(
    net: &CompiledNet,
    batch: &PacketBatch,
    sched: Option<&InjectionSchedule>,
    cfg: RouterConfig,
    scratch: &mut RouterScratch,
    cancel: Option<&AtomicBool>,
) -> RoutingOutcome {
    EVENT_STATE.with(|st| {
        let (wheel, spans) = &mut *st.borrow_mut();
        wheel.clear();
        spans.clear();
        if net.is_faulted() {
            spans.extend(net.outage_spans());
            spans.sort_unstable();
        }
        if let Some(s) = sched {
            // `order()` ascends by tick, so deduplication is one compare.
            let mut last = 0u64;
            for &pid in s.order() {
                let t = s.tick_of(pid as usize);
                if t > last {
                    wheel.push(t, EventKind::Inject);
                    last = t;
                }
            }
        }
        let mut ctl = EventCtl {
            wheel,
            spans,
            span_ptr: 0,
            skipped: 0,
            windows_skipped: 0,
        };
        let out = dispatch_run(net, batch, sched, cfg, scratch, cancel, Some(&mut ctl));
        let (skipped, windows_skipped) = (ctl.skipped, ctl.windows_skipped);
        let max_depth = ctl.wheel.max_depth() as u64;
        if fcn_telemetry::global().enabled() {
            fcn_telemetry::with_shard(|sh| {
                sh.inc(fcn_telemetry::names::ROUTER_EVENTS_TOTAL);
                sh.add(fcn_telemetry::names::ROUTER_TICKS_SKIPPED_TOTAL, skipped);
                sh.record(fcn_telemetry::names::ROUTER_WHEEL_MAX_DEPTH, max_depth);
                if windows_skipped > 0 {
                    sh.add(
                        fcn_telemetry::names::ROUTER_OUTAGE_WINDOWS_SKIPPED_TOTAL,
                        windows_skipped,
                    );
                }
            });
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_orders_and_drops_stale() {
        let mut w = EventWheel::new();
        assert_eq!(w.next_after(0), None);
        for t in [5u64, 100, 63, 64, 4095, 4096, 1 << 40] {
            w.push(t, EventKind::Inject);
        }
        assert_eq!(w.len(), 7);
        assert_eq!(w.max_depth(), 7);
        assert_eq!(w.next_after(0), Some(5));
        assert_eq!(w.next_after(5), Some(63));
        assert_eq!(w.next_after(63), Some(64));
        assert_eq!(w.next_after(64), Some(100));
        assert_eq!(w.next_after(100), Some(4095));
        assert_eq!(w.next_after(4100), Some(1 << 40));
        assert_eq!(w.len(), 1);
        assert_eq!(w.max_depth(), 7, "watermark survives drains");
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.max_depth(), 0);
        assert_eq!(w.next_after(0), None);
    }

    #[test]
    fn wheel_handles_duplicate_ticks() {
        let mut w = EventWheel::new();
        w.push(70, EventKind::Inject);
        w.push(70, EventKind::WindowWakeup);
        w.push(70, EventKind::Inject);
        assert_eq!(w.next_after(69), Some(70));
        assert_eq!(w.len(), 3);
        assert_eq!(w.next_after(70), None);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn note_skip_counts_fully_jumped_windows() {
        let spans = vec![(5u64, 10u64), (12, 40), (50, 60), (90, 95)];
        let mut wheel = EventWheel::new();
        let mut ctl = EventCtl {
            wheel: &mut wheel,
            spans: &spans,
            span_ptr: 0,
            skipped: 0,
            windows_skipped: 0,
        };
        // Jump 4 -> 45: windows (5,10) and (12,40) fall wholly inside the
        // skipped capacity queries 4..=43; (50,60) is still ahead.
        ctl.note_skip(4, 45);
        assert_eq!(ctl.skipped, 40);
        assert_eq!(ctl.windows_skipped, 2);
        // Jump 55 -> 70: (50,60) was entered before the jump (query 54
        // was simulated), so it is NOT skipped entirely.
        ctl.note_skip(55, 70);
        assert_eq!(ctl.windows_skipped, 2);
        // Jump 80 -> 100 swallows (90,95).
        ctl.note_skip(80, 100);
        assert_eq!(ctl.windows_skipped, 3);
    }
}
