//! Compile-once / run-many router artifacts.
//!
//! The synchronous router used to rebuild its directed-wire arrays and
//! re-derive every packet's next-hop wire (a per-hop binary search) on
//! *every* [`crate::engine::route_batch`] call — hundreds of times per
//! estimator grid point. This module splits that work into three reusable
//! artifacts:
//!
//! * [`CompiledNet`] — the machine's directed-wire CSR plus resolved
//!   per-node send capacities, compiled **once per machine** and shared
//!   (`Arc`) across every batch of a sweep;
//! * [`PacketBatch`] — a structure-of-arrays arena holding all paths of a
//!   batch flattened into one `path_nodes` vector, with each hop
//!   **pre-compiled to its wire id** so the tick loop never searches the
//!   adjacency again (the check degrades to a debug assertion);
//! * [`RouteError`] — the typed error produced when a path is not a walk of
//!   the host graph (replacing the engine's old `panic!` lookup failure).
//!
//! Compilation is pure bookkeeping: it draws no randomness and therefore
//! cannot perturb the engine's RNG stream. `route_compiled(net, batch)` is
//! bit-identical to the legacy per-call rebuild (pinned by
//! `tests/compiled_router.rs`).

use std::fmt;
use std::sync::Arc;

use fcn_faults::FaultPlan;
use fcn_multigraph::NodeId;
use fcn_topology::Machine;

use crate::packet::PacketPath;

/// A path that is not a walk of the compiled host graph.
///
/// Paths produced by [`crate::oracle::PathOracle`] and
/// [`crate::native::plan_routes`] are walks by construction, so this error
/// only surfaces for hand-built [`PacketPath`]s (ablations, tests, external
/// inputs) — which is why [`crate::engine::try_route_batch`] exists
/// alongside the infallible planner-facing entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// A path mentions a vertex the host does not have.
    NodeOutOfRange {
        /// Offending vertex id.
        node: NodeId,
        /// Host vertex count.
        nodes: usize,
        /// Index of the packet whose path is malformed.
        packet: usize,
    },
    /// Two consecutive path vertices are not joined by a wire (this includes
    /// self-hops `u -> u`: self-loops carry no traffic in the wire model).
    NoWire {
        /// Hop tail.
        from: NodeId,
        /// Hop head.
        to: NodeId,
        /// Index of the packet whose path is malformed.
        packet: usize,
    },
    /// No surviving route exists between a demand's endpoints once a
    /// [`fcn_faults::FaultPlan`]'s dead wires and nodes are removed — the
    /// fault-aware planner's typed "this demand is stranded" outcome
    /// (produced by [`crate::native::plan_routes_faulted`], never by an
    /// intact machine).
    Unreachable {
        /// Demand source.
        src: NodeId,
        /// Demand destination.
        dst: NodeId,
        /// Index of the demand that cannot be satisfied.
        packet: usize,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RouteError::NodeOutOfRange {
                node,
                nodes,
                packet,
            } => write!(
                f,
                "packet {packet}: vertex {node} outside host (|V| = {nodes})"
            ),
            RouteError::NoWire { from, to, packet } => {
                write!(f, "packet {packet}: no wire {from} -> {to}")
            }
            RouteError::Unreachable { src, dst, packet } => {
                write!(
                    f,
                    "packet {packet}: {src} -> {dst} unreachable in the degraded host"
                )
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The machine's wire-level connectivity, compiled once and reused.
///
/// Wires are directed edges: an undirected link of multiplicity `m` is two
/// opposite wires of capacity `m` each. Wire ids are CSR positions —
/// `wire_offsets[u]..wire_offsets[u+1]` are node `u`'s out-wires, heads
/// ascending — so next-hop lookup during *batch compilation* is one binary
/// search over a short ascending slice, and the tick loop needs no lookup
/// at all. Self-loops are skipped (they move no packets).
///
/// ```
/// use fcn_routing::CompiledNet;
/// use fcn_topology::Machine;
///
/// let m = Machine::mesh(2, 4);
/// let net = CompiledNet::compile(&m);
/// assert_eq!(net.node_count(), 16);
/// assert!(net.wire_between(0, 1).is_some());
/// assert!(net.wire_between(0, 15).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledNet {
    /// Vertex count.
    n: usize,
    /// `wire_offsets[u]..wire_offsets[u+1]` indexes `wire_to`/`wire_cap`.
    wire_offsets: Vec<u32>,
    /// Head vertex of each wire, ascending within a node's range.
    wire_to: Vec<NodeId>,
    /// Tail vertex of each wire (the node it departs from), so the tick
    /// loop can recover a packet's location from its wire id alone.
    wire_from: Vec<NodeId>,
    /// Per-tick capacity of each wire (the link multiplicity).
    wire_cap: Vec<u32>,
    /// Resolved per-node send budget (`u32::MAX` when unlimited).
    send_cap: Vec<u32>,
    /// True when every wire has capacity 1 and every node's send budget is
    /// unlimited — the common case (meshes, trees, hypercubic machines),
    /// which the engine serves with a budget-free fast path.
    unit: bool,
    /// Fault overlay compiled by [`CompiledNet::apply_faults`]. `None` for
    /// intact machines *and* for `apply_faults(&FaultPlan::none())` — the
    /// transparency pin: an empty plan leaves the net `==` the original.
    faults: Option<Box<FaultOverlay>>,
}

/// Per-wire fault state resolved against a [`CompiledNet`]'s wire ids.
///
/// Kept out-of-line (boxed, optional) so intact machines pay one pointer of
/// storage and one `None` branch on the engine's *budgeted* send path only
/// (the unit fast path never sees an overlay: faulted nets clear `unit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FaultOverlay {
    /// Permanently dead directed wires (both directions of a dead link).
    wire_dead: Vec<bool>,
    /// CSR of transient outage windows per wire: wire `w`'s windows are
    /// `win_offsets[w]..win_offsets[w+1]`.
    win_offsets: Vec<u32>,
    /// Window opening ticks (a wire's capacity drops from `start`...).
    win_start: Vec<u64>,
    /// Window closing ticks (...until just before `end`).
    win_end: Vec<u64>,
    /// Capacity during the window.
    win_cap: Vec<u32>,
    /// True when at least one wire is permanently dead (enables the
    /// engine's injection-time stranding scan).
    any_dead: bool,
    /// First tick by which every window has closed — beyond this the net
    /// behaves like its permanent part, which bounds router termination.
    last_window_end: u64,
    /// Dead directed wires (telemetry/reporting).
    dead_wires: u32,
    /// Dead nodes (telemetry/reporting).
    dead_nodes: u32,
}

impl CompiledNet {
    /// Compile `machine`'s wire arrays. Pure bookkeeping; no randomness.
    pub fn compile(machine: &Machine) -> CompiledNet {
        let g = machine.graph();
        let n = g.node_count();
        let mut wire_offsets = Vec::with_capacity(n + 1);
        let mut wire_to: Vec<NodeId> = Vec::new();
        let mut wire_from: Vec<NodeId> = Vec::new();
        let mut wire_cap: Vec<u32> = Vec::new();
        let mut send_cap = Vec::with_capacity(n);
        wire_offsets.push(0u32);
        for u in 0..n as NodeId {
            for (v, m) in g.neighbors(u) {
                if v != u {
                    wire_to.push(v);
                    wire_from.push(u);
                    wire_cap.push(m);
                }
            }
            wire_offsets.push(wire_to.len() as u32);
            send_cap.push(machine.send_capacity(u));
        }
        let unit = wire_cap.iter().all(|&c| c == 1) && send_cap.iter().all(|&b| b == u32::MAX);
        CompiledNet {
            n,
            wire_offsets,
            wire_to,
            wire_from,
            wire_cap,
            send_cap,
            unit,
            faults: None,
        }
    }

    /// Compile a [`FaultPlan`] into a faulted copy of this net.
    ///
    /// The wire CSR is **unchanged** — dead wires stay in the arrays,
    /// flagged in the overlay — so a [`PacketBatch`] compiled against the
    /// intact net remains valid against the faulted one (and vice versa).
    /// Dead nodes additionally get a zero send budget. The transparency
    /// pin: applying [`FaultPlan::none`] (or any empty plan) returns a net
    /// `==` to `self`, so empty plans are byte-invisible to the engine.
    pub fn apply_faults(&self, plan: &FaultPlan) -> CompiledNet {
        if plan.is_empty() {
            return self.clone();
        }
        let wires = self.wire_count();
        let mut wire_dead = vec![false; wires];
        let mut dead_wires = 0u32;
        for (w, dead) in wire_dead.iter_mut().enumerate() {
            if plan.link_dead(self.wire_from[w], self.wire_to[w]) {
                *dead = true;
                dead_wires += 1;
            }
        }
        // Resolve outages to directed wires, then CSR them by wire id.
        let mut events: Vec<(u32, u64, u64, u32)> = Vec::new();
        for o in plan.outages() {
            for (a, b) in [(o.u, o.v), (o.v, o.u)] {
                if let Some(w) = self.wire_between(a, b) {
                    events.push((w, o.start, o.end, o.capacity));
                }
            }
        }
        events.sort_unstable();
        let mut win_offsets = Vec::with_capacity(wires + 1);
        let mut win_start = Vec::with_capacity(events.len());
        let mut win_end = Vec::with_capacity(events.len());
        let mut win_cap = Vec::with_capacity(events.len());
        win_offsets.push(0u32);
        let mut cursor = 0usize;
        for w in 0..wires as u32 {
            while cursor < events.len() && events[cursor].0 == w {
                let (_, s, e, c) = events[cursor];
                win_start.push(s);
                win_end.push(e);
                win_cap.push(c);
                cursor += 1;
            }
            win_offsets.push(win_start.len() as u32);
        }
        let mut send_cap = self.send_cap.clone();
        let mut dead_nodes = 0u32;
        for &u in plan.dead_nodes() {
            if (u as usize) < send_cap.len() {
                send_cap[u as usize] = 0;
                dead_nodes += 1;
            }
        }
        if fcn_telemetry::global().enabled() {
            let windows = win_start.len() as u64;
            fcn_telemetry::with_shard(|s| {
                s.inc(fcn_telemetry::names::FAULT_PLANS_APPLIED_TOTAL);
                s.add(
                    fcn_telemetry::names::FAULT_DEAD_WIRES_TOTAL,
                    dead_wires as u64,
                );
                s.add(
                    fcn_telemetry::names::FAULT_DEAD_NODES_TOTAL,
                    dead_nodes as u64,
                );
                s.add(fcn_telemetry::names::FAULT_OUTAGE_WINDOWS_TOTAL, windows);
            });
        }
        let overlay = FaultOverlay {
            any_dead: dead_wires > 0,
            last_window_end: plan.last_outage_end(),
            wire_dead,
            win_offsets,
            win_start,
            win_end,
            win_cap,
            dead_wires,
            dead_nodes,
        };
        CompiledNet {
            send_cap,
            // Faulted nets always take the budgeted send path: transient
            // windows and zero send budgets need per-tick capacity checks.
            unit: false,
            faults: Some(Box::new(overlay)),
            ..self.clone()
        }
    }

    /// True when this net carries a fault overlay (non-empty plan applied).
    #[inline]
    pub fn is_faulted(&self) -> bool {
        self.faults.is_some()
    }

    /// True when at least one wire is permanently dead — the engine's cue
    /// to scan paths for stranded packets at injection time.
    #[inline]
    pub(crate) fn has_dead_wires(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.any_dead)
    }

    /// Is wire `w` permanently dead under the applied fault plan?
    #[inline]
    pub fn wire_dead(&self, w: u32) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.wire_dead[w as usize])
    }

    /// Per-tick capacity of wire `w` at tick `tick`, after fault gating:
    /// 0 for dead wires, the window capacity inside an outage window, and
    /// the static link multiplicity otherwise.
    #[inline]
    pub(crate) fn effective_wire_capacity(&self, w: u32, tick: u64) -> u32 {
        let base = self.wire_cap[w as usize];
        match &self.faults {
            None => base,
            Some(f) => {
                if f.wire_dead[w as usize] {
                    return 0;
                }
                let lo = f.win_offsets[w as usize] as usize;
                let hi = f.win_offsets[w as usize + 1] as usize;
                let mut cap = base;
                for i in lo..hi {
                    if f.win_start[i] <= tick && tick < f.win_end[i] {
                        cap = cap.min(f.win_cap[i]);
                    }
                }
                cap
            }
        }
    }

    /// Smallest outage-window boundary (a `start` or an `end`) of wire `w`
    /// that is strictly greater than `tick` — the next tick at which the
    /// wire's effective capacity *may* change. `None` when the capacity is
    /// constant from `tick` on: intact nets, permanently dead wires (stuck
    /// at 0), and wires whose windows have all closed. This is what lets
    /// the event backend bound how far it may skip ahead: between
    /// consecutive boundaries `effective_wire_capacity` is constant.
    pub(crate) fn next_capacity_boundary(&self, w: u32, tick: u64) -> Option<u64> {
        let f = self.faults.as_ref()?;
        if f.wire_dead[w as usize] {
            return None;
        }
        let lo = f.win_offsets[w as usize] as usize;
        let hi = f.win_offsets[w as usize + 1] as usize;
        let mut next: Option<u64> = None;
        for i in lo..hi {
            for b in [f.win_start[i], f.win_end[i]] {
                if b > tick && next.is_none_or(|n| b < n) {
                    next = Some(b);
                }
            }
        }
        next
    }

    /// Every transient outage window as a `(start, end)` span, in wire-id
    /// order (a window on an undirected link appears once per direction).
    /// Empty for intact nets. The event backend sorts these by `start` once
    /// per run to count windows that a skip jumped over entirely.
    pub(crate) fn outage_spans(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let (starts, ends): (&[u64], &[u64]) = match &self.faults {
            None => (&[], &[]),
            Some(f) => (&f.win_start, &f.win_end),
        };
        starts.iter().copied().zip(ends.iter().copied())
    }

    /// `(dead nodes, dead directed wires, outage windows)` of the applied
    /// fault plan — all zeros for intact nets.
    pub fn fault_summary(&self) -> (u32, u32, usize) {
        match &self.faults {
            None => (0, 0, 0),
            Some(f) => (f.dead_nodes, f.dead_wires, f.win_start.len()),
        }
    }

    /// First tick by which every transient outage window has closed.
    pub fn last_fault_window_end(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.last_window_end)
    }

    /// [`CompiledNet::compile`] wrapped for sharing across sweep batches
    /// (and across [`fcn_exec::Pool`] workers — the net is plain data).
    pub fn shared(machine: &Machine) -> Arc<CompiledNet> {
        Arc::new(CompiledNet::compile(machine))
    }

    /// Vertex count.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Directed wire count.
    #[inline]
    pub fn wire_count(&self) -> usize {
        self.wire_to.len()
    }

    /// Node `u`'s out-wire range.
    #[inline]
    pub(crate) fn wire_range(&self, u: NodeId) -> (usize, usize) {
        (
            self.wire_offsets[u as usize] as usize,
            self.wire_offsets[u as usize + 1] as usize,
        )
    }

    /// Head vertex of wire `w`.
    #[inline]
    pub fn wire_head(&self, w: u32) -> NodeId {
        self.wire_to[w as usize]
    }

    /// Tail vertex of wire `w` (the node it departs from).
    #[inline]
    pub fn wire_tail(&self, w: u32) -> NodeId {
        self.wire_from[w as usize]
    }

    /// True when every wire has capacity 1 and every send budget is
    /// unlimited (enables the engine's budget-free send phase).
    #[inline]
    pub(crate) fn unit_capacity(&self) -> bool {
        self.unit
    }

    /// Per-tick capacity of wire `w`.
    #[inline]
    pub(crate) fn wire_capacity(&self, w: u32) -> u32 {
        self.wire_cap[w as usize]
    }

    /// Per-tick send budget of node `u`.
    #[inline]
    pub(crate) fn send_budget(&self, u: NodeId) -> u32 {
        self.send_cap[u as usize]
    }

    /// The wire `u -> v`, if the machine has one.
    #[inline]
    pub fn wire_between(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u as usize >= self.n {
            return None;
        }
        let (lo, hi) = self.wire_range(u);
        self.wire_to[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|i| (lo + i) as u32)
    }
}

/// A batch of packets in structure-of-arrays form, pre-compiled against a
/// [`CompiledNet`].
///
/// All vertex sequences are flattened into `path_nodes` (packet `i` owns
/// `path_offsets[i]..path_offsets[i+1]`), and every hop is resolved to its
/// wire id at build time (`wire_ids`; packet `i`'s hops start at
/// `path_offsets[i] - i` because a `k`-vertex path has `k - 1` hops). The
/// tick loop therefore reads two flat arrays instead of chasing one heap
/// allocation per packet, and performs **zero** adjacency searches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketBatch {
    /// `path_offsets[i]..path_offsets[i+1]` indexes `path_nodes`.
    path_offsets: Vec<u32>,
    /// Concatenated vertex sequences.
    path_nodes: Vec<NodeId>,
    /// Concatenated per-hop wire ids (`hops(i)` entries per packet, starting
    /// at `path_offsets[i] - i`).
    wire_ids: Vec<u32>,
}

impl PacketBatch {
    /// Compile `paths` against `net`, resolving every hop to a wire id.
    ///
    /// Fails with a [`RouteError`] when some path is not a walk of the host
    /// graph; planner-produced paths are walks by construction.
    pub fn compile(net: &CompiledNet, paths: &[PacketPath]) -> Result<PacketBatch, RouteError> {
        let total_nodes: usize = paths.iter().map(|p| p.path.len()).sum();
        let mut batch = PacketBatch {
            path_offsets: Vec::with_capacity(paths.len() + 1),
            path_nodes: Vec::with_capacity(total_nodes),
            wire_ids: Vec::with_capacity(total_nodes.saturating_sub(paths.len())),
        };
        batch.path_offsets.push(0);
        for (packet, p) in paths.iter().enumerate() {
            batch.push_path(net, &p.path, packet)?;
        }
        Ok(batch)
    }

    /// Append one vertex sequence, compiling its hops. Exposed so planners
    /// can stream paths into an arena without an intermediate `Vec`.
    pub(crate) fn push_path(
        &mut self,
        net: &CompiledNet,
        path: &[NodeId],
        packet: usize,
    ) -> Result<(), RouteError> {
        debug_assert!(!path.is_empty(), "packet path cannot be empty");
        for win in path.windows(2) {
            let (u, v) = (win[0], win[1]);
            if u as usize >= net.node_count() || v as usize >= net.node_count() {
                let node = if u as usize >= net.node_count() { u } else { v };
                return Err(RouteError::NodeOutOfRange {
                    node,
                    nodes: net.node_count(),
                    packet,
                });
            }
            let w = net.wire_between(u, v).ok_or(RouteError::NoWire {
                from: u,
                to: v,
                packet,
            })?;
            self.wire_ids.push(w);
        }
        if path.len() == 1 && path[0] as usize >= net.node_count() {
            return Err(RouteError::NodeOutOfRange {
                node: path[0],
                nodes: net.node_count(),
                packet,
            });
        }
        self.path_nodes.extend_from_slice(path);
        self.path_offsets.push(self.path_nodes.len() as u32);
        Ok(())
    }

    /// Number of packets.
    #[inline]
    pub fn len(&self) -> usize {
        self.path_offsets.len() - 1
    }

    /// True when the batch holds no packets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wire traversals packet `i` needs.
    #[inline]
    pub fn hops(&self, i: usize) -> u32 {
        self.path_offsets[i + 1] - self.path_offsets[i] - 1
    }

    /// Start of packet `i`'s vertex range in the flat node arena.
    #[inline]
    pub(crate) fn node_base(&self, i: usize) -> u32 {
        self.path_offsets[i]
    }

    /// Start of packet `i`'s hop range in the flat wire arena.
    #[inline]
    pub(crate) fn wire_base(&self, i: usize) -> u32 {
        self.path_offsets[i] - i as u32
    }

    /// Vertex at position `pos` of packet `i`'s path.
    #[inline]
    pub(crate) fn node_at(&self, base: u32, pos: u32) -> NodeId {
        self.path_nodes[(base + pos) as usize]
    }

    /// Wire of hop `pos` of a packet with hop base `base`.
    #[inline]
    pub(crate) fn wire_at(&self, base: u32, pos: u32) -> u32 {
        self.wire_ids[(base + pos) as usize]
    }

    /// Wire id at flat arena index `idx` (the engine's per-packet cursor).
    #[inline]
    pub(crate) fn wire_flat(&self, idx: usize) -> u32 {
        self.wire_ids[idx]
    }

    /// Packet `i`'s vertex sequence.
    pub fn path(&self, i: usize) -> &[NodeId] {
        &self.path_nodes[self.path_offsets[i] as usize..self.path_offsets[i + 1] as usize]
    }

    /// Packet `i`'s compiled wire-id sequence.
    pub fn wires(&self, i: usize) -> &[u32] {
        let base = self.wire_base(i) as usize;
        &self.wire_ids[base..base + self.hops(i) as usize]
    }

    /// Total wire traversals across the batch.
    pub fn total_hops(&self) -> u64 {
        self.wire_ids.len() as u64
    }

    /// Reconstruct packet `i`'s vertex sequence from its *wire ids* alone
    /// (source vertex + wire heads). Compilation is lossless, so this
    /// round-trips the input path — pinned property-style by
    /// `tests/compiled_router.rs`.
    pub fn decode_path(&self, net: &CompiledNet, i: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.hops(i) as usize + 1);
        out.push(self.path(i)[0]);
        for &w in self.wires(i) {
            out.push(net.wire_head(w));
        }
        out
    }
}

/// Per-packet injection ticks for staggered (non-batch) workloads.
///
/// The paper's batch semantics inject every packet at tick 0; sparse and
/// bursty scenarios instead release packets over time. A schedule assigns
/// each packet of a [`PacketBatch`] an injection tick: the packet enters
/// its first wire queue at the *end* of that tick (tick-0 packets are
/// injected before the loop, exactly the batch semantics), so its first
/// possible crossing is the following tick, and a 0-hop packet delivers at
/// its injection tick. Both router backends accept an optional schedule
/// (`route_compiled_at` / `route_events_at`) and produce bit-identical
/// outcomes for any schedule; `InjectionSchedule::uniform(n, 0)` is
/// bit-identical to passing no schedule at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionSchedule {
    /// Injection tick per packet id.
    inject_at: Vec<u64>,
    /// Packet ids sorted by `(inject_at, pid)` — the engine's injection
    /// order (pid order within a tick, matching tick-0 injection order).
    order: Vec<u32>,
}

impl InjectionSchedule {
    /// Schedule packet `i` at `inject_at[i]`.
    pub fn new(inject_at: Vec<u64>) -> InjectionSchedule {
        let mut order: Vec<u32> = (0..inject_at.len() as u32).collect();
        order.sort_by_key(|&pid| (inject_at[pid as usize], pid));
        InjectionSchedule { inject_at, order }
    }

    /// Every one of `n` packets at the same `tick` (`tick = 0` reproduces
    /// the batch semantics bit-for-bit).
    pub fn uniform(n: usize, tick: u64) -> InjectionSchedule {
        InjectionSchedule::new(vec![tick; n])
    }

    /// Packet count covered by the schedule (must equal the batch's).
    #[inline]
    pub fn len(&self) -> usize {
        self.inject_at.len()
    }

    /// True when the schedule covers no packets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inject_at.is_empty()
    }

    /// Injection tick of packet `pid`.
    #[inline]
    pub fn tick_of(&self, pid: usize) -> u64 {
        self.inject_at[pid]
    }

    /// Packet ids in injection order (`(tick, pid)` ascending).
    #[inline]
    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    /// Latest injection tick (0 when empty).
    pub fn max_tick(&self) -> u64 {
        self.inject_at.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketPath;
    use fcn_topology::Machine;

    #[test]
    fn schedule_orders_by_tick_then_pid() {
        let s = InjectionSchedule::new(vec![5, 0, 5, 2, 0]);
        assert_eq!(s.order(), &[1, 4, 3, 0, 2]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.max_tick(), 5);
        assert_eq!(s.tick_of(3), 2);
        let u = InjectionSchedule::uniform(3, 0);
        assert_eq!(u.order(), &[0, 1, 2]);
        assert_eq!(u.max_tick(), 0);
        assert!(InjectionSchedule::uniform(0, 9).is_empty());
    }

    #[test]
    fn next_capacity_boundary_walks_window_edges() {
        use fcn_faults::{FaultPlan, LinkOutage};
        let m = Machine::linear_array(3);
        let net = CompiledNet::compile(&m);
        assert_eq!(net.next_capacity_boundary(0, 0), None);
        let win = |start, end| LinkOutage {
            u: 0,
            v: 1,
            start,
            end,
            capacity: 0,
        };
        let plan = FaultPlan::assemble(vec![], vec![], vec![win(10, 20), win(40, 45)]);
        let faulted = net.apply_faults(&plan);
        let w = faulted.wire_between(0, 1).unwrap();
        assert_eq!(faulted.next_capacity_boundary(w, 0), Some(10));
        assert_eq!(faulted.next_capacity_boundary(w, 10), Some(20));
        assert_eq!(faulted.next_capacity_boundary(w, 20), Some(40));
        assert_eq!(faulted.next_capacity_boundary(w, 44), Some(45));
        assert_eq!(faulted.next_capacity_boundary(w, 45), None);
        // Unaffected wires have constant capacity.
        let other = faulted.wire_between(1, 2).unwrap();
        assert_eq!(faulted.next_capacity_boundary(other, 0), None);
        // Both directions of the link carry the window.
        assert_eq!(faulted.outage_spans().count(), 4);
        assert!(faulted.outage_spans().all(|(s, e)| s < e));
    }

    #[test]
    fn compiled_net_matches_graph_adjacency() {
        let m = Machine::mesh(2, 4);
        let net = CompiledNet::compile(&m);
        assert_eq!(net.node_count(), 16);
        for u in 0..16 as NodeId {
            for v in 0..16 as NodeId {
                let wire = net.wire_between(u, v);
                let edge = u != v && m.graph().has_edge(u, v);
                assert_eq!(wire.is_some(), edge, "{u}->{v}");
                if let Some(w) = wire {
                    assert_eq!(net.wire_head(w), v);
                    assert_eq!(net.wire_capacity(w), m.graph().multiplicity(u, v));
                }
            }
        }
    }

    #[test]
    fn multiplicity_becomes_wire_capacity() {
        use fcn_multigraph::Cut;
        use fcn_topology::{Family, SendCapacity};
        let g = fcn_multigraph::Multigraph::from_edges(2, [(0, 1)]).scaled(3);
        let m = Machine::custom(
            Family::LinearArray,
            "triple".into(),
            g,
            2,
            SendCapacity::Unlimited,
            vec![Cut::prefix(2, 1)],
        );
        let net = CompiledNet::compile(&m);
        let w = net.wire_between(0, 1).unwrap();
        assert_eq!(net.wire_capacity(w), 3);
        assert_eq!(net.wire_count(), 2);
    }

    #[test]
    fn send_budgets_are_resolved() {
        let bus = Machine::global_bus(4);
        let net = CompiledNet::compile(&bus);
        let hub = 4 as NodeId;
        assert_eq!(net.send_budget(hub), 1);
        let mesh = CompiledNet::compile(&Machine::mesh(2, 2));
        assert_eq!(net.node_count(), 5);
        assert_eq!(mesh.send_budget(0), u32::MAX);
    }

    #[test]
    fn batch_flattens_and_compiles_wires() {
        let m = Machine::linear_array(5);
        let net = CompiledNet::compile(&m);
        let paths = vec![
            PacketPath::new(vec![0, 1, 2, 3]),
            PacketPath::new(vec![2]),
            PacketPath::new(vec![4, 3]),
        ];
        let batch = PacketBatch::compile(&net, &paths).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!((batch.hops(0), batch.hops(1), batch.hops(2)), (3, 0, 1));
        assert_eq!(batch.total_hops(), 4);
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(batch.path(i), &p.path[..]);
            assert_eq!(batch.decode_path(&net, i), p.path);
            assert_eq!(batch.wires(i).len(), p.hops());
        }
    }

    #[test]
    fn non_adjacent_hop_is_a_typed_error() {
        let m = Machine::linear_array(4);
        let net = CompiledNet::compile(&m);
        let err = PacketBatch::compile(&net, &[PacketPath::new(vec![0, 2])]).unwrap_err();
        assert_eq!(
            err,
            RouteError::NoWire {
                from: 0,
                to: 2,
                packet: 0
            }
        );
        assert!(err.to_string().contains("no wire 0 -> 2"));
    }

    #[test]
    fn self_hop_is_a_typed_error() {
        let m = Machine::linear_array(3);
        let net = CompiledNet::compile(&m);
        let err = PacketBatch::compile(&net, &[PacketPath::new(vec![1, 1])]).unwrap_err();
        assert!(matches!(err, RouteError::NoWire { from: 1, to: 1, .. }));
    }

    #[test]
    fn out_of_range_vertex_is_a_typed_error() {
        let m = Machine::linear_array(3);
        let net = CompiledNet::compile(&m);
        let err = PacketBatch::compile(&net, &[PacketPath::new(vec![1, 7])]).unwrap_err();
        assert!(matches!(err, RouteError::NodeOutOfRange { node: 7, .. }));
        let err = PacketBatch::compile(&net, &[PacketPath::new(vec![9])]).unwrap_err();
        assert!(matches!(err, RouteError::NodeOutOfRange { node: 9, .. }));
    }
}
