//! Machine-aware route planning.
//!
//! The operational bandwidth `β` is the delivery rate under the machine's
//! *best* routing, so each [`Machine`] declares the scheme that realizes its
//! Θ ([`RoutePolicy`]): randomized BFS is fine for meshes, trees and
//! butterflies, but pyramids/multigrids must route across their base mesh
//! (apex avoidance) and the shuffle-exchange / de Bruijn graphs use their
//! classical bit-correction schemes. [`plan_routes`] dispatches on the
//! policy; callers that want to *ablate* the scheme can still construct a
//! [`PathOracle`] directly.

use fcn_faults::FaultPlan;
use fcn_multigraph::NodeId;
use fcn_topology::{Machine, RoutePolicy};

use crate::cache::PlanCache;
use crate::compiled::{CompiledNet, PacketBatch, RouteError};
use crate::oracle::PathOracle;
use crate::packet::{PacketPath, Strategy};

/// Plan routes for `demands` on `machine` under `strategy`, honoring the
/// machine's native routing policy. `Strategy::Valiant` always uses the
/// two-phase random-intermediate scheme (restricted to the base prefix when
/// the policy demands it).
pub fn plan_routes(
    machine: &Machine,
    demands: &[(NodeId, NodeId)],
    strategy: Strategy,
    seed: u64,
) -> Vec<PacketPath> {
    plan_routes_cached(machine, demands, strategy, seed, None)
}

/// [`plan_routes`] with an optional [`PlanCache`] serving the BFS trees.
///
/// Cached planning is bit-identical to fresh planning — the oracle's BFS
/// trees are pure functions of `(graph, node limit, source, seed)` — so the
/// cache is purely a wall-clock optimization for repeated batches on the
/// same machine with the same seed (saturation sweeps, audits). Policies
/// that route arithmetically (de Bruijn / shuffle-exchange bit correction,
/// X-tree levels) compute no trees and ignore the cache.
pub fn plan_routes_cached(
    machine: &Machine,
    demands: &[(NodeId, NodeId)],
    strategy: Strategy,
    seed: u64,
    cache: Option<&PlanCache>,
) -> Vec<PacketPath> {
    let policy = machine.route_policy();
    let oracle = |limit: Option<usize>| {
        let o = match limit {
            Some(p) => PathOracle::with_node_limit(machine.graph(), p, seed),
            None => PathOracle::new(machine.graph(), seed),
        };
        match cache {
            Some(c) => o.with_cache(c),
            None => o,
        }
    };
    match (strategy, policy) {
        (Strategy::Valiant, RoutePolicy::RestrictToPrefix(p)) => {
            oracle(Some(p)).routes(demands, strategy)
        }
        (Strategy::Valiant, _) => oracle(None).routes(demands, strategy),
        (Strategy::ShortestPath, RoutePolicy::ShortestPath) => {
            oracle(None).routes(demands, strategy)
        }
        (Strategy::ShortestPath, RoutePolicy::RestrictToPrefix(p)) => {
            oracle(Some(p)).routes(demands, strategy)
        }
        (Strategy::ShortestPath, RoutePolicy::DeBruijnBits { g }) => demands
            .iter()
            .map(|&(u, v)| PacketPath::new(de_bruijn_path(u, v, g)))
            .collect(),
        (Strategy::ShortestPath, RoutePolicy::ShuffleExchangeBits { g }) => demands
            .iter()
            .map(|&(u, v)| PacketPath::new(shuffle_exchange_path(u, v, g)))
            .collect(),
        (Strategy::ShortestPath, RoutePolicy::XTreeLevels { depth }) => {
            use rand::SeedableRng as _;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            demands
                .iter()
                .map(|&(u, v)| PacketPath::new(xtree_level_path(u, v, depth, &mut rng)))
                .collect()
        }
    }
}

/// Plan `demands` and compile the resulting paths straight into a
/// [`PacketBatch`] against an already-compiled `net` — the fused front half
/// of the compile-once/run-many pipeline ([`crate::harness::RouteCtx`] is
/// the ergonomic wrapper).
///
/// Every native planner emits walks on the machine graph, so compilation
/// only fails (`Err(RouteError)`) for a planner bug; callers routing
/// oracle-planned paths may safely `expect` the result.
pub fn plan_batch(
    machine: &Machine,
    net: &CompiledNet,
    demands: &[(NodeId, NodeId)],
    strategy: Strategy,
    seed: u64,
    cache: Option<&PlanCache>,
) -> Result<PacketBatch, RouteError> {
    let paths = plan_routes_cached(machine, demands, strategy, seed, cache);
    PacketBatch::compile(net, &paths)
}

/// Outcome of planning a batch against a [`FaultPlan`]-degraded machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedPlan {
    /// Routes for every *routable* demand, in input order (unreachable
    /// demands are simply absent).
    pub paths: Vec<PacketPath>,
    /// Indices (into the demand slice) of demands with no surviving route:
    /// a dead endpoint, or endpoints in different surviving components.
    pub unreachable: Vec<usize>,
    /// Demands whose native route crossed a fault and were successfully
    /// re-routed by BFS on the degraded graph.
    pub replans: u64,
}

/// Fault-aware [`plan_routes_cached`]: plan `demands` around the dead wires
/// and nodes of `fault_plan`, degrading gracefully per policy.
///
/// * **Empty plan** — delegates to [`plan_routes_cached`] untouched (the
///   transparency pin: zero overhead, bit-identical output).
/// * **BFS policies** (shortest-path, prefix-restricted, Valiant) — the
///   oracle runs on [`FaultPlan::degrade_graph`], so every emitted route
///   avoids dead wires by construction. A failed Valiant route (e.g. a dead
///   random intermediate) falls back to a direct BFS route, counted as a
///   replan.
/// * **Arithmetic policies** (de Bruijn / shuffle-exchange bit correction,
///   X-tree levels) — the native route is computed first; when it crosses a
///   fault, the demand is re-planned by seeded BFS on the degraded graph
///   (counted in [`DegradedPlan::replans`]).
///
/// Demands with a permanently dead endpoint are always unreachable, even
/// the trivial `s == s` ones — a dead processor originates nothing.
/// Attaching a [`PlanCache`] is safe: the degraded graph's fingerprint
/// differs from the intact one's, so cached trees never cross over.
pub fn plan_routes_degraded(
    machine: &Machine,
    demands: &[(NodeId, NodeId)],
    strategy: Strategy,
    seed: u64,
    fault_plan: &FaultPlan,
    cache: Option<&PlanCache>,
) -> DegradedPlan {
    if fault_plan.is_empty() {
        return DegradedPlan {
            paths: plan_routes_cached(machine, demands, strategy, seed, cache),
            unreachable: Vec::new(),
            replans: 0,
        };
    }
    let degraded = fault_plan.degrade_graph(machine.graph());
    let policy = machine.route_policy();
    let limit = match policy {
        RoutePolicy::RestrictToPrefix(p) => Some(p),
        _ => None,
    };
    let oracle = |lim: Option<usize>| {
        let o = match lim {
            Some(p) => PathOracle::with_node_limit(&degraded, p, seed),
            None => PathOracle::new(&degraded, seed),
        };
        match cache {
            Some(c) => o.with_cache(c),
            None => o,
        }
    };
    // Phase 1 — candidate routes. Arithmetic policies compute their native
    // route on the intact topology (to be fault-checked below); every other
    // policy plans directly on the degraded graph and is fault-free by
    // construction.
    let arithmetic = matches!(
        (strategy, policy),
        (
            Strategy::ShortestPath,
            RoutePolicy::DeBruijnBits { .. }
                | RoutePolicy::ShuffleExchangeBits { .. }
                | RoutePolicy::XTreeLevels { .. }
        )
    );
    let mut candidates: Vec<Option<PacketPath>> = if arithmetic {
        plan_routes_cached(machine, demands, strategy, seed, cache)
            .into_iter()
            .map(Some)
            .collect()
    } else {
        oracle(limit).try_routes(demands, strategy)
    };
    // Phase 2 — fault-check and repair. A blocked or missing candidate is
    // re-planned by direct BFS on the degraded graph; per-source BFS
    // seeding keeps the repair a pure function of `(seed, demand)`,
    // independent of which other demands needed repair.
    let mut needs_bfs: Vec<usize> = Vec::new();
    for (i, cand) in candidates.iter_mut().enumerate() {
        let (s, d) = demands[i];
        if fault_plan.node_dead(s) || fault_plan.node_dead(d) {
            *cand = None; // dead endpoint: never routable
            continue;
        }
        let blocked = match cand {
            Some(p) => fault_plan.path_blocked(&p.path),
            None => true,
        };
        if blocked {
            *cand = None;
            needs_bfs.push(i);
        }
    }
    let mut replans = 0u64;
    if !needs_bfs.is_empty() {
        let sub: Vec<(NodeId, NodeId)> = needs_bfs.iter().map(|&i| demands[i]).collect();
        let repaired = oracle(limit).try_routes(&sub, Strategy::ShortestPath);
        for (&i, r) in needs_bfs.iter().zip(repaired) {
            if r.is_some() {
                replans += 1;
            }
            candidates[i] = r;
        }
    }
    // Phase 3 — split routable from stranded.
    let mut paths = Vec::with_capacity(candidates.len());
    let mut unreachable = Vec::new();
    for (i, cand) in candidates.into_iter().enumerate() {
        match cand {
            Some(p) => paths.push(p),
            None => unreachable.push(i),
        }
    }
    if fcn_telemetry::global().enabled() && (replans > 0 || !unreachable.is_empty()) {
        let dropped = unreachable.len() as u64;
        fcn_telemetry::with_shard(|s| {
            s.add(fcn_telemetry::names::PLANNER_REPLANS_TOTAL, replans);
            s.add(fcn_telemetry::names::PLANNER_UNREACHABLE_TOTAL, dropped);
        });
    }
    DegradedPlan {
        paths,
        unreachable,
        replans,
    }
}

/// Strict fault-aware planning: like [`plan_routes_degraded`] but an
/// unreachable demand is a typed [`RouteError::Unreachable`] (carrying the
/// first stranded demand) instead of being dropped. Use this when the
/// caller requires every demand delivered.
pub fn plan_routes_faulted(
    machine: &Machine,
    demands: &[(NodeId, NodeId)],
    strategy: Strategy,
    seed: u64,
    fault_plan: &FaultPlan,
    cache: Option<&PlanCache>,
) -> Result<Vec<PacketPath>, RouteError> {
    let planned = plan_routes_degraded(machine, demands, strategy, seed, fault_plan, cache);
    if let Some(&i) = planned.unreachable.first() {
        let (src, dst) = demands[i];
        return Err(RouteError::Unreachable {
            src,
            dst,
            packet: i,
        });
    }
    Ok(planned.paths)
}

/// The classical de Bruijn route: shift in the destination's bits, most
/// significant first (at most `g` hops), with two shortcuts — direct hops
/// for graph-adjacent pairs, and whichever direction (shift-in `v` from `u`
/// or the reverse of shift-in `u` from `v`) gives the shorter walk. The
/// shortcuts matter for emulations, whose demands are guest-adjacent pairs.
pub fn de_bruijn_path(u: NodeId, v: NodeId, g: u32) -> Vec<NodeId> {
    if u == v {
        return vec![u];
    }
    let mask = (1u64 << g) - 1;
    let (uu, vv) = (u as u64, v as u64);
    // Graph-adjacent (one a shift of the other): single hop.
    let shift_of = |a: u64, b: u64| ((a << 1) & mask) == b || (((a << 1) | 1) & mask) == b;
    if shift_of(uu, vv) || shift_of(vv, uu) {
        return vec![u, v];
    }
    let fwd = de_bruijn_shift_walk(u, v, g);
    let mut rev = de_bruijn_shift_walk(v, u, g);
    if rev.len() < fwd.len() {
        rev.reverse();
        rev
    } else {
        fwd
    }
}

/// Shift-in walk `u -> v` (forward direction only).
fn de_bruijn_shift_walk(u: NodeId, v: NodeId, g: u32) -> Vec<NodeId> {
    let mask = (1u64 << g) - 1;
    let mut cur = u as u64;
    let mut path = vec![u];
    for i in (0..g).rev() {
        if cur == v as u64 {
            break;
        }
        let next = ((cur << 1) | ((v as u64 >> i) & 1)) & mask;
        if next != cur {
            path.push(next as NodeId);
            cur = next;
        }
    }
    debug_assert_eq!(cur, v as u64, "de Bruijn route failed {u} -> {v}");
    path
}

/// The classical shuffle-exchange route: `g` rounds of (optional exchange,
/// shuffle). The bit corrected in round `j` lands at position `(g-j) mod g`,
/// so round `j` targets that bit of `v`. At most `2g` hops.
pub fn shuffle_exchange_path(u: NodeId, v: NodeId, g: u32) -> Vec<NodeId> {
    let mask = (1u64 << g) - 1;
    let rot_left = |x: u64| ((x << 1) | (x >> (g - 1))) & mask;
    if u == v {
        return vec![u];
    }
    // Graph-adjacent pairs (exchange or shuffle edges) hop directly —
    // emulation demands are guest-adjacent and must not pay the 2g-walk.
    if (u ^ v) == 1 || rot_left(u as u64) == v as u64 || rot_left(v as u64) == u as u64 {
        return vec![u, v];
    }
    let mut cur = u as u64;
    let mut path = vec![u];
    for j in 0..g {
        let pos = if j == 0 { 0 } else { g - j };
        let target = (v as u64 >> pos) & 1;
        if cur & 1 != target {
            cur ^= 1; // exchange edge
            path.push(cur as NodeId);
        }
        let shuffled = rot_left(cur);
        if shuffled != cur {
            path.push(shuffled as NodeId);
            cur = shuffled;
        }
    }
    debug_assert_eq!(cur, v as u64, "shuffle-exchange route failed {u} -> {v}");
    path
}

/// Level-balanced X-Tree route.
///
/// Nodes use heap numbering (root 0; children `2i+1`, `2i+2`; level of `i`
/// is `⌊lg(i+1)⌋`). The pair picks a crossing level `ℓ` uniformly between
/// its LCA's level and `depth`, climbs from `u` to its level-`ℓ` ancestor,
/// walks the level's sibling links, and descends to `v`. Adjacent pairs
/// (tree or level edges) hop directly.
pub fn xtree_level_path(
    u: NodeId,
    v: NodeId,
    _depth: u32,
    rng: &mut impl rand::Rng,
) -> Vec<NodeId> {
    use rand::RngExt as _;
    if u == v {
        return vec![u];
    }
    let level_of = |x: NodeId| 32 - (x + 1).leading_zeros() - 1;
    let ancestor_at = |mut x: NodeId, mut lx: u32, target: u32| -> NodeId {
        while lx > target {
            x = (x - 1) / 2;
            lx -= 1;
        }
        x
    };
    let (lu, lv) = (level_of(u), level_of(v));
    // Direct edges: parent/child or same-level neighbors.
    if (lu == lv + 1 && (u - 1) / 2 == v)
        || (lv == lu + 1 && (v - 1) / 2 == u)
        || (lu == lv && u.abs_diff(v) == 1)
    {
        return vec![u, v];
    }
    // LCA level.
    let common = lu.min(lv);
    let (mut a, mut b) = (ancestor_at(u, lu, common), ancestor_at(v, lv, common));
    let mut lca_level = common;
    while a != b {
        a = (a - 1) / 2;
        b = (b - 1) / 2;
        lca_level -= 1;
    }
    // Walk level: uniform between the LCA and the shallower endpoint, so
    // both endpoints climb (never descend) to it. At `walk == lca_level`
    // the horizontal segment is empty (the pure tree path).
    let hi_walk = lu.min(lv);
    let walk = if hi_walk <= lca_level {
        lca_level
    } else {
        rng.random_range(lca_level..=hi_walk)
    };
    let mut path = Vec::new();
    let mut x = u;
    let mut lx = lu;
    path.push(x);
    while lx > walk {
        x = (x - 1) / 2;
        lx -= 1;
        path.push(x);
    }
    // Horizontal walk along the level's sibling links to v's ancestor.
    let target = ancestor_at(v, lv, walk);
    while x != target {
        if x < target {
            x += 1;
        } else {
            x -= 1;
        }
        path.push(x);
    }
    // Descend along v's ancestor chain.
    let mut chain = Vec::new();
    let mut y = v;
    let mut ly = lv;
    while ly > walk {
        chain.push(y);
        y = (y - 1) / 2;
        ly -= 1;
    }
    debug_assert_eq!(y, target);
    for &node in chain.iter().rev() {
        path.push(node);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    #[test]
    fn de_bruijn_paths_are_graph_walks_for_all_pairs() {
        let g = 4u32;
        let m = Machine::de_bruijn(g);
        for u in 0..16u32 {
            for v in 0..16u32 {
                let p = de_bruijn_path(u, v, g);
                assert_eq!(*p.first().unwrap(), u);
                assert_eq!(*p.last().unwrap(), v);
                assert!(p.len() <= g as usize + 1, "{u}->{v}: {p:?}");
                for w in p.windows(2) {
                    assert!(m.graph().has_edge(w[0], w[1]), "{u}->{v}: hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn shuffle_exchange_paths_are_graph_walks_for_all_pairs() {
        let g = 4u32;
        let m = Machine::shuffle_exchange(g);
        for u in 0..16u32 {
            for v in 0..16u32 {
                let p = shuffle_exchange_path(u, v, g);
                assert_eq!(*p.first().unwrap(), u);
                assert_eq!(*p.last().unwrap(), v);
                assert!(p.len() <= 2 * g as usize + 1, "{u}->{v}: {p:?}");
                for w in p.windows(2) {
                    assert!(m.graph().has_edge(w[0], w[1]), "{u}->{v}: hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn plan_routes_uses_native_schemes() {
        let m = Machine::de_bruijn(5);
        let demands = vec![(0u32, 21u32), (7, 7), (3, 30)];
        let routes = plan_routes(&m, &demands, Strategy::ShortestPath, 1);
        assert_eq!(routes.len(), 3);
        for (r, &(s, d)) in routes.iter().zip(&demands) {
            assert_eq!(r.src(), s);
            assert_eq!(r.dst(), d);
            assert!(r.hops() <= 5);
        }
    }

    #[test]
    fn restricted_routing_stays_in_base_mesh() {
        let m = Machine::pyramid(2, 8); // processors = 64 base cells
        let demands: Vec<(u32, u32)> = (0..32).map(|i| (i, 63 - i)).collect();
        let routes = plan_routes(&m, &demands, Strategy::ShortestPath, 2);
        for r in &routes {
            for &node in &r.path {
                assert!((node as usize) < 64, "route left the base mesh: {node}");
            }
        }
    }

    #[test]
    fn valiant_respects_restriction() {
        let m = Machine::pyramid(2, 4);
        let demands: Vec<(u32, u32)> = (0..8).map(|i| (i, 15 - i)).collect();
        let routes = plan_routes(&m, &demands, Strategy::Valiant, 3);
        for r in &routes {
            for &node in &r.path {
                assert!((node as usize) < 16);
            }
        }
    }

    #[test]
    fn xtree_level_paths_are_walks_for_all_pairs() {
        use rand::SeedableRng;
        let depth = 4u32;
        let m = Machine::xtree(depth);
        let n = m.processors() as u32;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for u in 0..n {
            for v in 0..n {
                let p = xtree_level_path(u, v, depth, &mut rng);
                assert_eq!(*p.first().unwrap(), u, "{u}->{v}");
                assert_eq!(*p.last().unwrap(), v, "{u}->{v}");
                for w in p.windows(2) {
                    assert!(m.graph().has_edge(w[0], w[1]), "{u}->{v}: hop {w:?}");
                }
            }
        }
    }

    #[test]
    fn xtree_level_routing_spreads_across_levels() {
        // The measured saturation rate with level routing must clearly beat
        // the root-bound BFS rate at a size where lg n >> constant.
        use crate::engine::{route_batch, RouterConfig};
        use fcn_multigraph::Traffic;
        let m = Machine::xtree(9); // n = 1023
        let t = Traffic::symmetric(m.processors());
        use rand::SeedableRng;
        let mut srng = rand::rngs::StdRng::seed_from_u64(3);
        let demands: Vec<_> = (0..8 * t.n()).map(|_| t.sample(&mut srng)).collect();
        // Native (level-balanced).
        let native = plan_routes(&m, &demands, Strategy::ShortestPath, 7);
        let out_native = route_batch(&m, native, RouterConfig::default());
        assert!(out_native.completed);
        // BFS baseline.
        let bfs =
            crate::oracle::PathOracle::new(m.graph(), 7).routes(&demands, Strategy::ShortestPath);
        let out_bfs = route_batch(&m, bfs, RouterConfig::default());
        assert!(out_bfs.completed);
        let (r_native, r_bfs) = (
            out_native.delivered as f64 / out_native.ticks as f64,
            out_bfs.delivered as f64 / out_bfs.ticks as f64,
        );
        assert!(r_native > 1.5 * r_bfs, "native {r_native} vs bfs {r_bfs}");
    }

    #[test]
    fn plan_batch_compiles_native_plans_infallibly() {
        use crate::compiled::CompiledNet;
        for m in [
            Machine::de_bruijn(5),
            Machine::mesh(2, 6),
            Machine::xtree(4),
            Machine::pyramid(2, 4),
        ] {
            let n = m.processors() as u32;
            let demands: Vec<_> = (0..n / 2).map(|i| (i, n - 1 - i)).collect();
            let net = CompiledNet::compile(&m);
            let batch = plan_batch(&m, &net, &demands, Strategy::ShortestPath, 9, None)
                .expect("native plans are graph walks");
            assert_eq!(batch.len(), demands.len());
            let paths = plan_routes(&m, &demands, Strategy::ShortestPath, 9);
            for (i, p) in paths.iter().enumerate() {
                assert_eq!(batch.decode_path(&net, i), p.path, "{}", m.name());
            }
        }
    }

    #[test]
    fn fixed_point_endpoints_route_correctly() {
        // 0…0 and 1…1 are shuffle/shift fixed points; routes to/from them
        // must still work.
        let g = 4u32;
        for (u, v) in [(0u32, 15u32), (15, 0), (0, 1), (15, 14)] {
            let p = de_bruijn_path(u, v, g);
            assert_eq!(*p.last().unwrap(), v);
            let p = shuffle_exchange_path(u, v, g);
            assert_eq!(*p.last().unwrap(), v);
        }
    }
}
