//! Steady-state (open-loop) throughput measurement.
//!
//! Batch routing measures `m / r(m)` for one finite batch; the paper's `β`
//! is the limit as `m → ∞`. The steady-state mode approaches that limit
//! differently: inject new packets continuously at a target rate, let the
//! system warm up, and measure the sustained delivery rate over a
//! measurement window. Ramping the injection rate until the backlog
//! diverges brackets the saturation throughput — the classical
//! load–throughput methodology for interconnection networks (and the
//! operational reading of Kruskal–Snir bandwidth).

use fcn_multigraph::{NodeId, Traffic};
use fcn_topology::Machine;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::engine::RouterConfig;
use crate::harness::RouteCtx;
use crate::native::plan_routes;
use crate::packet::Strategy;

/// Configuration of one steady-state run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SteadyConfig {
    /// Ticks of warm-up before measurement starts.
    pub warmup_ticks: u64,
    /// Ticks measured.
    pub measure_ticks: u64,
    /// Router configuration.
    pub router: RouterConfig,
    /// Path-planning strategy.
    pub strategy: Strategy,
    /// Base seed for traffic sampling and planning.
    pub seed: u64,
}

impl Default for SteadyConfig {
    fn default() -> Self {
        SteadyConfig {
            warmup_ticks: 256,
            measure_ticks: 1024,
            router: RouterConfig::default(),
            strategy: Strategy::ShortestPath,
            seed: 0x57ea,
        }
    }
}

/// Outcome of one steady-state run at a fixed injection rate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SteadyOutcome {
    /// Packets injected per tick (target).
    pub injection_rate: f64,
    /// Delivered per tick during the measurement window.
    pub delivery_rate: f64,
    /// Backlog (in-flight packets) at the end relative to the start of the
    /// window; a stable system keeps this near zero.
    pub backlog_growth: i64,
    /// Whether delivery kept up with injection (within 5%).
    pub stable: bool,
}

/// Simulate continuous injection at `rate` packets/tick.
///
/// Implementation: time is sliced into epochs of `epoch` ticks; the packets
/// injected during an epoch are routed as a batch whose completion time is
/// compared to the epoch length. This epoch approximation measures
/// sustained throughput without per-tick event bookkeeping and is accurate
/// once epochs are much longer than the transit time.
pub fn steady_state_rate(
    machine: &Machine,
    traffic: &Traffic,
    rate: f64,
    cfg: SteadyConfig,
) -> SteadyOutcome {
    steady_state_rate_ctx(&RouteCtx::new(machine), traffic, rate, cfg)
}

/// [`steady_state_rate`] over an already-compiled [`RouteCtx`], so ramps
/// ([`saturation_throughput`]) compile the wire graph once instead of once
/// per probed rate.
pub fn steady_state_rate_ctx(
    ctx: &RouteCtx<'_>,
    traffic: &Traffic,
    rate: f64,
    cfg: SteadyConfig,
) -> SteadyOutcome {
    assert!(rate > 0.0);
    let machine = ctx.machine();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let epoch = cfg.measure_ticks.max(64);
    // Warmup epoch (discard), then measured epoch.
    let mut delivered_in_window = 0u64;
    let mut window_ticks = 0u64;
    let mut backlog: i64 = 0;
    for (phase, ticks) in [(0u8, cfg.warmup_ticks.max(1)), (1u8, epoch)] {
        let to_inject = (rate * ticks as f64).round() as usize;
        let demands: Vec<(NodeId, NodeId)> =
            (0..to_inject).map(|_| traffic.sample(&mut rng)).collect();
        if demands.is_empty() {
            continue;
        }
        let routes = plan_routes(machine, &demands, cfg.strategy, rng.random::<u64>());
        let out = ctx.route_paths(&routes, cfg.router);
        if phase == 1 {
            // If the batch needed longer than the epoch, the surplus is
            // backlog the system could not absorb.
            delivered_in_window = out.delivered as u64;
            window_ticks = ticks.max(out.ticks);
            backlog = out.ticks as i64 - ticks as i64;
        }
    }
    let delivery_rate = delivered_in_window as f64 / window_ticks.max(1) as f64;
    SteadyOutcome {
        injection_rate: rate,
        delivery_rate,
        backlog_growth: backlog.max(0),
        stable: delivery_rate >= rate * 0.95,
    }
}

/// Ramp the injection rate geometrically and report the highest *stable*
/// delivery rate — the saturation throughput estimate.
pub fn saturation_throughput(
    machine: &Machine,
    traffic: &Traffic,
    cfg: SteadyConfig,
) -> (f64, Vec<SteadyOutcome>) {
    // Start well below any machine's β and double until unstable. The ramp
    // probes up to ~25 rates; one compiled net serves them all.
    let ctx = RouteCtx::new(machine);
    let mut rate = 0.25;
    let mut outcomes = Vec::new();
    let mut best_stable: f64 = 0.0;
    for _ in 0..24 {
        let out = steady_state_rate_ctx(&ctx, traffic, rate, cfg);
        let stable = out.stable;
        let delivery = out.delivery_rate;
        outcomes.push(out);
        if stable {
            best_stable = best_stable.max(delivery);
            rate *= 2.0;
        } else {
            // Refine once between the last stable and the unstable rate.
            let refined = steady_state_rate_ctx(&ctx, traffic, rate * 0.75, cfg);
            if refined.stable {
                best_stable = best_stable.max(refined.delivery_rate);
            }
            outcomes.push(refined);
            break;
        }
    }
    (best_stable, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    fn cfg() -> SteadyConfig {
        SteadyConfig {
            warmup_ticks: 64,
            measure_ticks: 256,
            ..Default::default()
        }
    }

    #[test]
    fn low_rate_is_stable() {
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let out = steady_state_rate(&m, &t, 1.0, cfg());
        assert!(out.stable, "{out:?}");
        assert!((out.delivery_rate - 1.0).abs() < 0.2);
    }

    #[test]
    fn absurd_rate_is_unstable() {
        let m = Machine::linear_array(32);
        let t = m.symmetric_traffic();
        let out = steady_state_rate(&m, &t, 100.0, cfg());
        assert!(!out.stable, "{out:?}");
        assert!(out.backlog_growth > 0);
    }

    #[test]
    fn saturation_matches_batch_estimate_on_mesh() {
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let (sat, outcomes) = saturation_throughput(&m, &t, cfg());
        assert!(!outcomes.is_empty());
        // Batch estimate for mesh2(8) is ~10-16; steady-state should land
        // in the same ballpark.
        assert!(sat > 4.0 && sat < 40.0, "saturation {sat}");
    }

    #[test]
    fn saturation_scales_with_machine() {
        let t8 = Machine::mesh(2, 8);
        let t16 = Machine::mesh(2, 16);
        let (s8, _) = saturation_throughput(&t8, &t8.symmetric_traffic(), cfg());
        let (s16, _) = saturation_throughput(&t16, &t16.symmetric_traffic(), cfg());
        assert!(s16 > s8, "{s16} vs {s8}");
    }

    #[test]
    fn bus_saturates_at_one() {
        let m = Machine::global_bus(16);
        let (sat, _) = saturation_throughput(&m, &m.symmetric_traffic(), cfg());
        assert!(sat <= 1.3, "bus saturation {sat}");
        assert!(sat >= 0.5, "bus saturation {sat}");
    }
}
