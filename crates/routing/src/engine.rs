//! The synchronous store-and-forward router.
//!
//! Model (exactly the paper's): time proceeds in unit ticks; each *wire*
//! (directed edge; an undirected link of multiplicity `m` is two opposite
//! wires of capacity `m`) moves at most `m` packets per tick; packets queue
//! at wires; a packet forwarded at tick `t` becomes available at the next
//! vertex at tick `t+1`. "Weak" machines additionally cap the total packets
//! a *node* may transmit per tick ([`fcn_topology::SendCapacity::PerNode`]),
//! which is how the global bus (hub capacity 1) and the weak hypercube (one
//! wire per node per tick) are expressed.
//!
//! The queue discipline resolves contention; `RandomRank` mirrors the
//! random-priority scheduling of the universal O(congestion + dilation)
//! routing result the paper's Theorem 6 invokes.
//!
//! ## Compile / run split
//!
//! The hot entry point is [`route_compiled`]: it runs a pre-compiled
//! [`PacketBatch`] over a shared [`CompiledNet`] using a caller-owned
//! [`RouterScratch`], so a sweep performs O(1) allocations per batch and
//! the tick loop touches only flat arrays (no per-hop adjacency search —
//! hops were resolved to wire ids at batch-compile time). [`route_batch`]
//! keeps the legacy compile-on-every-call signature as a thin wrapper, and
//! [`reference`] retains the original single-function simulator as the
//! executable specification the compiled path is pinned against
//! (`tests/compiled_router.rs`).
//!
//! Determinism: for a given `(batch, RouterConfig)` the compiled and
//! reference engines draw the same `StdRng` stream (one `u32` rank per
//! packet, in packet order) and pop queues in the same order, so every
//! outcome field — ticks, delivered, max queue, hop count — is
//! bit-identical.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use fcn_multigraph::NodeId;
use fcn_telemetry::LocalHistogram;
use fcn_topology::Machine;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::compiled::{CompiledNet, InjectionSchedule, PacketBatch, RouteError};
use crate::events::{EventCtl, EventKind};
use crate::packet::{PacketPath, QueueDiscipline};

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Contention-resolution discipline for wire queues.
    pub discipline: QueueDiscipline,
    /// Seed for random ranks.
    pub seed: u64,
    /// Safety valve: abort after this many ticks.
    pub max_ticks: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            discipline: QueueDiscipline::RandomRank,
            seed: 0x5eed,
            max_ticks: 4_000_000,
        }
    }
}

/// Why a routing run ended — every run terminates with exactly one of
/// these (the router never silently spins: permanently-blocked packets are
/// stranded at injection, transient outage windows are finite, and
/// `max_ticks`/cancellation are hard stops).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortCause {
    /// Every packet was delivered.
    Completed,
    /// The `max_ticks` safety valve fired with routable packets in flight.
    MaxTicks,
    /// Every *routable* packet was delivered, but some packets' paths
    /// crossed permanently dead wires and could never be injected.
    Stranded,
    /// A caller-supplied cancellation flag (watchdog, Ctrl-C) was raised.
    Cancelled,
}

impl std::fmt::Display for AbortCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AbortCause::Completed => "completed",
            AbortCause::MaxTicks => "max-ticks",
            AbortCause::Stranded => "stranded",
            AbortCause::Cancelled => "cancelled",
        })
    }
}

/// Result of routing one batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Ticks until the last delivery (0 if every packet was trivial).
    pub ticks: u64,
    /// Packets delivered.
    pub delivered: usize,
    /// Packets injected.
    pub total: usize,
    /// False iff `max_ticks` was hit first.
    pub completed: bool,
    /// Peak queue length observed on any single wire.
    pub max_queue: usize,
    /// Total wire traversals performed.
    pub total_hops: u64,
    /// Packets never injected because their path crosses a permanently
    /// dead wire (always 0 on intact machines).
    pub stranded: usize,
    /// Why the run ended.
    pub abort: AbortCause,
}

impl RoutingOutcome {
    /// Average delivery rate `m / r(m)` — the operational bandwidth sample.
    pub fn rate(&self) -> f64 {
        self.delivered as f64 / self.ticks.max(1) as f64
    }
}

/// Reusable per-worker simulation arenas.
///
/// Holds the per-wire queues (both the FIFO and the priority pools, so one
/// scratch serves every [`QueueDiscipline`]), the per-node activity arrays,
/// and the per-packet position/rank columns. Everything is length-adjusted
/// and cleared at the start of a run, so a scratch can be reused across
/// batches, machines, and disciplines; after warm-up a sweep allocates
/// nothing per batch. [`route_compiled_pooled`] keeps one scratch per
/// thread, which is how [`fcn_exec::Pool`] workers reuse arenas across the
/// cells they execute.
#[derive(Debug, Default)]
pub struct RouterScratch {
    /// FIFO wire queues (one per wire; used by `QueueDiscipline::Fifo`).
    fifo: Vec<VecDeque<u32>>,
    /// Priority wire queues. Entries pack `(key, pid)` into one `u64`
    /// (`key << 32 | pid`), whose ordering coincides with the lexicographic
    /// `(key, pid)` order of the reference engine's tuple heap. Stored
    /// *unsorted*; pop scans for the minimum — wire queues average a couple
    /// of entries, where one vectorizable scan beats heap sifting and the
    /// pop order is the same min-of-set either way.
    prio: Vec<Vec<u64>>,
    /// Nodes with at least one queued packet, in first-activation order.
    active_nodes: Vec<NodeId>,
    /// Queued packets per node (across all of its out-wires).
    node_queued: Vec<u32>,
    /// Membership flags for `active_nodes`.
    node_listed: Vec<bool>,
    /// Rotating start wire per node (fairness under tight budgets), kept
    /// reduced modulo the node's degree.
    rotate: Vec<u32>,
    /// Packets that crossed a wire this tick.
    arrivals: Vec<u32>,
    /// Per-packet hops left to the destination (replaces the reference
    /// engine's `pos`: `remaining = hops - pos`).
    remaining: Vec<u32>,
    /// Per-packet flat index of the *next* wire id in the batch arena, so
    /// an arrival reads exactly one `wire_ids` slot and one wire-tail slot
    /// — no path-offset or vertex-array lookups in the tick loop.
    cursor: Vec<u32>,
    /// Per-packet random rank (`RandomRank` key).
    rank: Vec<u32>,
    /// Runs served by this scratch (telemetry: pool-reuse accounting; the
    /// first run of a scratch counts as a creation, later runs as reuse).
    runs: u64,
}

impl RouterScratch {
    /// A fresh, empty scratch. Arenas grow on first use and are retained.
    pub fn new() -> Self {
        RouterScratch::default()
    }

    /// Size the node/packet arenas for a run and reset their contents.
    fn prepare(&mut self, nodes: usize, packets: usize) {
        self.active_nodes.clear();
        self.arrivals.clear();
        self.node_queued.clear();
        self.node_queued.resize(nodes, 0);
        self.node_listed.clear();
        self.node_listed.resize(nodes, false);
        self.rotate.clear();
        self.rotate.resize(nodes, 0);
        self.remaining.clear();
        self.remaining.resize(packets, 0);
        self.cursor.clear();
        self.cursor.resize(packets, 0);
        self.rank.clear();
        self.rank.reserve(packets);
        self.runs += 1;
    }
}

/// Per-run telemetry accumulators, allocated only when the global registry
/// is enabled. Everything in here is a pure *observation* of simulation
/// state — the tick loop never reads it back, so telemetry cannot change a
/// routed bit.
#[derive(Debug, Default)]
pub(crate) struct RunTele {
    /// Per-tick queued-packet count (queue occupancy at tick start).
    pub(crate) occupancy: LocalHistogram,
    /// Packet-ticks spent waiting: packets that sat in a wire queue over a
    /// tick without crossing (occupancy minus that tick's crossings).
    pub(crate) stalled: u64,
    /// Wire-visits whose capacity was reduced by a fault (dead wire or an
    /// open outage window) during the send phase.
    pub(crate) faults_gated: u64,
}

/// Uniform view over the per-wire queue pool of one discipline, so the tick
/// loop monomorphizes per discipline instead of branching on an enum at
/// every queue operation.
trait WireQueues {
    /// Enqueue `pid` with `key` on wire `w` and return the queue's new
    /// length (so max-queue tracking costs no second indexed access).
    fn push(&mut self, w: usize, key: u32, pid: u32) -> usize;
    fn pop(&mut self, w: usize) -> Option<u32>;
    fn is_empty(&self, w: usize) -> bool;
}

struct FifoQueues<'a>(&'a mut [VecDeque<u32>]);

impl WireQueues for FifoQueues<'_> {
    #[inline]
    fn push(&mut self, w: usize, _key: u32, pid: u32) -> usize {
        let q = &mut self.0[w];
        q.push_back(pid);
        q.len()
    }
    #[inline]
    fn pop(&mut self, w: usize) -> Option<u32> {
        self.0[w].pop_front()
    }
    #[inline]
    fn is_empty(&self, w: usize) -> bool {
        self.0[w].is_empty()
    }
}

/// Unsorted priority pool: pop extracts the minimum packed `(key, pid)` by
/// linear scan + `swap_remove`. Packed values are distinct (the pid half is
/// unique), so the minimum — and therefore the pop sequence — is exactly
/// the reference engine's heap order, independent of internal layout.
struct PrioQueues<'a>(&'a mut [Vec<u64>]);

impl WireQueues for PrioQueues<'_> {
    #[inline]
    fn push(&mut self, w: usize, key: u32, pid: u32) -> usize {
        let q = &mut self.0[w];
        q.push(((key as u64) << 32) | pid as u64);
        q.len()
    }
    #[inline]
    fn pop(&mut self, w: usize) -> Option<u32> {
        let q = &mut self.0[w];
        if q.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut min = q[0];
        for (i, &v) in q.iter().enumerate().skip(1) {
            if v < min {
                min = v;
                best = i;
            }
        }
        q.swap_remove(best);
        Some(min as u32)
    }
    #[inline]
    fn is_empty(&self, w: usize) -> bool {
        self.0[w].is_empty()
    }
}

/// Route a pre-compiled batch over a compiled net, reusing `scratch`.
///
/// This is the hot path: zero allocations after scratch warm-up, no
/// adjacency lookups in the tick loop (hops are pre-resolved wire ids;
/// consistency degrades to debug assertions), and bit-identical outcomes to
/// [`reference::route_batch`] for every `(batch, config)`.
pub fn route_compiled(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
    scratch: &mut RouterScratch,
) -> RoutingOutcome {
    route_compiled_gated(net, batch, cfg, scratch, None)
}

/// [`route_compiled`] with an optional cancellation flag, checked once per
/// tick (one relaxed load). When the flag is raised the run stops at the
/// next tick boundary with [`AbortCause::Cancelled`] — the graceful-stop
/// hook used by `fcn_exec::Watchdog`. `cancel: None` is byte-identical to
/// [`route_compiled`].
pub fn route_compiled_gated(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
    scratch: &mut RouterScratch,
    cancel: Option<&AtomicBool>,
) -> RoutingOutcome {
    dispatch_run(net, batch, None, cfg, scratch, cancel, None)
}

/// [`route_compiled`] under an [`InjectionSchedule`]: packet `i` enters its
/// first wire queue at the end of tick `schedule.tick_of(i)` instead of at
/// tick 0 (a 0-hop packet delivers at its injection tick). The schedule
/// must cover the batch (`schedule.len() == batch.len()`).
/// `InjectionSchedule::uniform(batch.len(), 0)` is bit-identical to
/// [`route_compiled_gated`], and any schedule is bit-identical to the
/// event backend's [`crate::events::route_events_at`].
pub fn route_compiled_at(
    net: &CompiledNet,
    batch: &PacketBatch,
    schedule: &InjectionSchedule,
    cfg: RouterConfig,
    scratch: &mut RouterScratch,
    cancel: Option<&AtomicBool>,
) -> RoutingOutcome {
    dispatch_run(net, batch, Some(schedule), cfg, scratch, cancel, None)
}

/// The shared entry of both backends: size the scratch, draw ranks, pick
/// the queue pool for the discipline, and run the tick loop. The event
/// backend differs from the tick backend *only* by passing an [`EventCtl`]
/// — every simulated tick runs this exact code, which is what makes the
/// two backends structurally bit-identical.
pub(crate) fn dispatch_run(
    net: &CompiledNet,
    batch: &PacketBatch,
    sched: Option<&InjectionSchedule>,
    cfg: RouterConfig,
    scratch: &mut RouterScratch,
    cancel: Option<&AtomicBool>,
    mut ev: Option<&mut EventCtl>,
) -> RoutingOutcome {
    scratch.prepare(net.node_count(), batch.len());
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..batch.len() {
        scratch.rank.push(rng.random::<u32>());
    }
    // One enabled-check per *run* decides whether per-tick accumulators
    // exist at all; the disabled path costs a `None` branch per tick.
    let mut tele = if fcn_telemetry::global().enabled() {
        Some(RunTele::default())
    } else {
        None
    };
    let unit = net.unit_capacity();
    let out = match cfg.discipline {
        QueueDiscipline::Fifo => {
            let mut pool = std::mem::take(&mut scratch.fifo);
            grow_and_clear(&mut pool, net.wire_count(), VecDeque::new);
            let mut q = FifoQueues(&mut pool);
            let out = if unit {
                run_ticks::<_, true, DISC_FIFO>(
                    net,
                    batch,
                    sched,
                    cfg,
                    &mut q,
                    scratch,
                    tele.as_mut(),
                    cancel,
                    ev.as_deref_mut(),
                )
            } else {
                run_ticks::<_, false, DISC_FIFO>(
                    net,
                    batch,
                    sched,
                    cfg,
                    &mut q,
                    scratch,
                    tele.as_mut(),
                    cancel,
                    ev.as_deref_mut(),
                )
            };
            scratch.fifo = pool;
            out
        }
        QueueDiscipline::FarthestFirst => {
            let mut pool = std::mem::take(&mut scratch.prio);
            grow_and_clear(&mut pool, net.wire_count(), Vec::new);
            let mut q = PrioQueues(&mut pool);
            let out = if unit {
                run_ticks::<_, true, DISC_FARTHEST>(
                    net,
                    batch,
                    sched,
                    cfg,
                    &mut q,
                    scratch,
                    tele.as_mut(),
                    cancel,
                    ev.as_deref_mut(),
                )
            } else {
                run_ticks::<_, false, DISC_FARTHEST>(
                    net,
                    batch,
                    sched,
                    cfg,
                    &mut q,
                    scratch,
                    tele.as_mut(),
                    cancel,
                    ev.as_deref_mut(),
                )
            };
            scratch.prio = pool;
            out
        }
        QueueDiscipline::RandomRank => {
            let mut pool = std::mem::take(&mut scratch.prio);
            grow_and_clear(&mut pool, net.wire_count(), Vec::new);
            let mut q = PrioQueues(&mut pool);
            let out = if unit {
                run_ticks::<_, true, DISC_RANDOM>(
                    net,
                    batch,
                    sched,
                    cfg,
                    &mut q,
                    scratch,
                    tele.as_mut(),
                    cancel,
                    ev.as_deref_mut(),
                )
            } else {
                run_ticks::<_, false, DISC_RANDOM>(
                    net,
                    batch,
                    sched,
                    cfg,
                    &mut q,
                    scratch,
                    tele.as_mut(),
                    cancel,
                    ev,
                )
            };
            scratch.prio = pool;
            out
        }
    };
    if let Some(t) = tele {
        publish_run(&out, &t, scratch.runs);
    }
    out
}

/// Push one run's router metrics into this thread's telemetry shard.
/// Called only when the registry is enabled at run start. `scratch_runs`
/// feeds the scratch-pool reuse counters; the sharded router passes 0
/// (its workers hold per-shard state, not a pooled [`RouterScratch`]).
pub(crate) fn publish_run(out: &RoutingOutcome, tele: &RunTele, scratch_runs: u64) {
    fcn_telemetry::with_shard(|s| {
        s.inc(fcn_telemetry::names::ROUTER_RUNS_TOTAL);
        s.add(fcn_telemetry::names::ROUTER_TICKS_TOTAL, out.ticks);
        s.add(
            fcn_telemetry::names::ROUTER_DELIVERED_TOTAL,
            out.delivered as u64,
        );
        s.add(fcn_telemetry::names::ROUTER_PACKETS_TOTAL, out.total as u64);
        s.add(fcn_telemetry::names::ROUTER_HOPS_TOTAL, out.total_hops);
        s.add(
            fcn_telemetry::names::ROUTER_STALLED_PACKET_TICKS_TOTAL,
            tele.stalled,
        );
        if !out.completed {
            s.inc(fcn_telemetry::names::ROUTER_ABORTS_TOTAL);
        }
        // Per-cause abort accounting (`fcnemu beta --verbose` surfaces
        // these so max_ticks aborts never fold silently into a rate).
        match out.abort {
            AbortCause::Completed => {}
            AbortCause::MaxTicks => s.inc(fcn_telemetry::names::ROUTER_ABORT_MAX_TICKS_TOTAL),
            AbortCause::Stranded => s.inc(fcn_telemetry::names::ROUTER_ABORT_STRANDED_TOTAL),
            AbortCause::Cancelled => s.inc(fcn_telemetry::names::ROUTER_ABORT_CANCELLED_TOTAL),
        }
        if out.stranded > 0 {
            s.add(
                fcn_telemetry::names::ROUTER_STRANDED_PACKETS_TOTAL,
                out.stranded as u64,
            );
        }
        if tele.faults_gated > 0 {
            s.add(
                fcn_telemetry::names::ROUTER_FAULTS_GATED_TOTAL,
                tele.faults_gated,
            );
        }
        s.record(
            fcn_telemetry::names::ROUTER_RUN_MAX_QUEUE,
            out.max_queue as u64,
        );
        s.record_histogram(
            fcn_telemetry::names::ROUTER_QUEUE_OCCUPANCY,
            &tele.occupancy,
        );
        // Scratch-pool reuse: a scratch's first run is a creation, every
        // later run is an arena reuse (zero allocations after warm-up).
        // Scratch-free runs (the sharded router) pass 0 and record neither.
        if scratch_runs == 1 {
            s.inc(fcn_telemetry::names::ROUTER_SCRATCH_CREATED_TOTAL);
        } else if scratch_runs > 1 {
            s.inc(fcn_telemetry::names::ROUTER_SCRATCH_REUSED_TOTAL);
        }
    });
}

/// `const`-generic encodings of [`QueueDiscipline`] so the tick loop's
/// priority-key computation compiles to straight-line code per discipline
/// (shared with the sharded router, whose workers monomorphize identically).
pub(crate) const DISC_FIFO: u8 = 0;
pub(crate) const DISC_FARTHEST: u8 = 1;
pub(crate) const DISC_RANDOM: u8 = 2;

/// Resize a queue pool to `wires` entries and empty every queue (capacity is
/// retained, so steady-state batches allocate nothing). Queues are already
/// empty unless the previous run aborted on `max_ticks`.
fn grow_and_clear<Q: Clearable>(pool: &mut Vec<Q>, wires: usize, fresh: impl Fn() -> Q) {
    if pool.len() < wires {
        pool.resize_with(wires, fresh);
    }
    for q in pool.iter_mut().take(wires) {
        q.clear_queue();
    }
}

trait Clearable {
    fn clear_queue(&mut self);
}

impl Clearable for VecDeque<u32> {
    fn clear_queue(&mut self) {
        self.clear();
    }
}

impl Clearable for Vec<u64> {
    fn clear_queue(&mut self) {
        self.clear();
    }
}

/// Queue key of a packet with `remaining` hops to travel. Smaller keys pop
/// first; FarthestFirst inverts remaining hops so farther packets win.
/// `remaining` counts the push's own wire — identical to the reference's
/// `hops - pos` at both injection (`pos = 0`) and arrival time.
#[inline]
fn key_of<const DISC: u8>(remaining: u32, rank: u32) -> u32 {
    match DISC {
        DISC_FIFO => 0,
        DISC_FARTHEST => u32::MAX - remaining,
        _ => rank,
    }
}

/// Enqueue packet `pid` on the first wire of its path and activate the
/// source node — the single injection action shared by tick-0 batch
/// injection and scheduled mid-run injection (same code, same bits).
#[inline]
fn inject_packet<Q: WireQueues, const DISC: u8>(
    net: &CompiledNet,
    batch: &PacketBatch,
    queues: &mut Q,
    scr: &mut RouterScratch,
    pid: usize,
    max_queue: &mut usize,
) {
    let hops = batch.hops(pid);
    let wb = batch.wire_base(pid);
    let w = batch.wire_at(wb, 0) as usize;
    let src = net.wire_tail(w as u32);
    debug_assert_eq!(src, batch.node_at(batch.node_base(pid), 0));
    scr.remaining[pid] = hops;
    scr.cursor[pid] = wb + 1;
    let key = key_of::<DISC>(hops, scr.rank[pid]);
    *max_queue = (*max_queue).max(queues.push(w, key, pid as u32));
    scr.node_queued[src as usize] += 1;
    if !scr.node_listed[src as usize] {
        scr.node_listed[src as usize] = true;
        scr.active_nodes.push(src);
    }
}

/// Consume every schedule entry due at `tick` (pid order within the tick):
/// trivial packets deliver on the spot, stranded packets are dropped (they
/// were counted before the loop started), everything else is injected.
/// Returns whether any entry was consumed — a consuming tick is never
/// quiescent, even when every entry was trivial or stranded, because
/// `pending`/`delivered` moved.
#[allow(clippy::too_many_arguments)]
fn run_injections<Q: WireQueues, const DISC: u8>(
    net: &CompiledNet,
    batch: &PacketBatch,
    sched: &InjectionSchedule,
    tick: u64,
    strand_scan: bool,
    inj_cursor: &mut usize,
    delivered: &mut usize,
    queues: &mut Q,
    scr: &mut RouterScratch,
    max_queue: &mut usize,
) -> bool {
    let order = sched.order();
    let start = *inj_cursor;
    while *inj_cursor < order.len() && sched.tick_of(order[*inj_cursor] as usize) == tick {
        let pid = order[*inj_cursor] as usize;
        *inj_cursor += 1;
        if batch.hops(pid) == 0 {
            *delivered += 1;
            continue;
        }
        if strand_scan && batch.wires(pid).iter().any(|&w| net.wire_dead(w)) {
            continue;
        }
        inject_packet::<Q, DISC>(net, batch, queues, scr, pid, max_queue);
    }
    *inj_cursor > start
}

/// The tick loop, monomorphized per queue pool (`Q`), capacity regime
/// (`UNIT`: every wire capacity 1 and every send budget unlimited — the
/// budget bookkeeping compiles away entirely), and discipline (`DISC`: the
/// priority-key computation is a compile-time choice, not a per-push match).
///
/// Mirrors [`reference::route_batch`] phase for phase: injection, then
/// (send, compaction, arrival) per tick, with identical iteration orders —
/// which is what makes the outcomes bit-identical. Packet progress is
/// tracked as `(remaining, cursor)` columns instead of the reference's
/// vertex position: an arrival touches one `wire_ids` slot and one
/// wire-tail slot instead of re-deriving its location from the path arrays.
#[allow(clippy::too_many_arguments)]
fn run_ticks<Q: WireQueues, const UNIT: bool, const DISC: u8>(
    net: &CompiledNet,
    batch: &PacketBatch,
    sched: Option<&InjectionSchedule>,
    cfg: RouterConfig,
    queues: &mut Q,
    scr: &mut RouterScratch,
    mut tele: Option<&mut RunTele>,
    cancel: Option<&AtomicBool>,
    mut ev: Option<&mut EventCtl>,
) -> RoutingOutcome {
    let total = batch.len();

    let mut delivered = 0usize;
    let mut total_hops = 0u64;
    let mut max_queue = 0usize;

    // Injection: every packet enqueues on its first wire at tick 0. Queue
    // lengths only grow here, so tracking the max per push matches the
    // reference engine's post-injection scan.
    //
    // Fault gating: a packet whose precompiled path crosses a permanently
    // dead wire can never be delivered — it is *stranded* here (typed
    // outcome) rather than left to spin the loop to `max_ticks`. The scan
    // only runs when the net actually has dead wires, so intact machines
    // take the exact pre-fault-plane injection path.
    let mut stranded = 0usize;
    let strand_scan = net.has_dead_wires();
    // Scheduled runs: packets not yet at their injection tick. Trivial and
    // stranded packets stay "pending" until their tick too, so the
    // occupancy observation (`total - pending - delivered`) degenerates to
    // the legacy `total - delivered` exactly when every tick is 0.
    let mut pending = 0usize;
    let mut inj_cursor = 0usize;
    if let Some(s) = sched {
        debug_assert_eq!(s.len(), total, "schedule must cover the batch");
        // Strandedness is decided for *every* packet up front — before any
        // future injection runs — so `routable` is a constant of the run.
        if strand_scan {
            for pid in 0..total {
                if batch.hops(pid) > 0 && batch.wires(pid).iter().any(|&w| net.wire_dead(w)) {
                    stranded += 1;
                }
            }
        }
        // Tick-0 injections, in pid order — the batch semantics verbatim.
        run_injections::<Q, DISC>(
            net,
            batch,
            s,
            0,
            strand_scan,
            &mut inj_cursor,
            &mut delivered,
            queues,
            scr,
            &mut max_queue,
        );
        pending = s.order().len() - inj_cursor;
    } else {
        for pid in 0..total {
            let hops = batch.hops(pid);
            if hops == 0 {
                delivered += 1;
                continue;
            }
            if strand_scan && batch.wires(pid).iter().any(|&w| net.wire_dead(w)) {
                stranded += 1;
                continue;
            }
            inject_packet::<Q, DISC>(net, batch, queues, scr, pid, &mut max_queue);
        }
    }

    let routable = total - stranded;
    let mut ticks = 0u64;
    let mut cancelled = false;
    let mut gated = 0u64;
    while delivered < routable && ticks < cfg.max_ticks {
        // Graceful-stop hook: one relaxed load per tick when a watchdog or
        // signal handler armed a flag; `None` compiles to nothing observable.
        // ordering: the flag is a monotone stop hint carrying no data; a
        // stale read merely runs one more tick before stopping.
        if let Some(c) = cancel {
            if c.load(Ordering::Relaxed) {
                cancelled = true;
                break;
            }
        }
        ticks += 1;
        let gated_at_tick_start = gated;
        scr.arrivals.clear();
        // Send phase: each active node pushes packets subject to per-wire
        // and per-node budgets, starting at a rotating wire offset for
        // fairness under tight budgets. Once a node's queued count hits
        // zero the remaining wires are provably empty, so breaking early
        // pops the exact same packets the reference's full scan would.
        //
        // Compaction is fused into the same pass: a node's post-send queued
        // count is final until the arrival phase runs, so keeping/unlisting
        // it right here reads exactly the value the reference's separate
        // `retain` sweep would, in the same list order.
        let mut active = std::mem::take(&mut scr.active_nodes);
        let mut kept = 0usize;
        for idx in 0..active.len() {
            let u = active[idx];
            let (lo, hi) = net.wire_range(u);
            let deg = hi - lo;
            let mut queued = scr.node_queued[u as usize];
            if deg == 0 || queued == 0 {
                scr.node_listed[u as usize] = false;
                continue;
            }
            // `rotate[u]` is kept reduced mod `deg`, so the wrap-around walk
            // needs no modulo arithmetic in the inner loop.
            let mut wi = scr.rotate[u as usize] as usize;
            debug_assert!(wi < deg);
            if UNIT {
                // Unit capacities, unlimited budget: every nonempty wire
                // forwards exactly one packet.
                for _ in 0..deg {
                    let w = lo + wi;
                    wi += 1;
                    if wi == deg {
                        wi = 0;
                    }
                    if let Some(pid) = queues.pop(w) {
                        scr.arrivals.push(pid);
                        queued -= 1;
                        if queued == 0 {
                            break;
                        }
                    }
                }
            } else {
                let mut budget = net.send_budget(u) as u64;
                for _ in 0..deg {
                    if budget == 0 {
                        break;
                    }
                    let w = lo + wi;
                    wi += 1;
                    if wi == deg {
                        wi = 0;
                    }
                    if queues.is_empty(w) {
                        continue;
                    }
                    // Transient-fault gating: inside an outage window the
                    // wire's capacity is reduced (usually to zero — queued
                    // packets wait the window out). For intact nets this is
                    // the static multiplicity, bit-for-bit.
                    let cap_now = net.effective_wire_capacity(w as u32, ticks - 1);
                    if cap_now < net.wire_capacity(w as u32) {
                        gated += 1;
                    }
                    if cap_now == 0 {
                        continue;
                    }
                    let cap = (cap_now as u64).min(budget);
                    let mut sent = 0u64;
                    while sent < cap {
                        match queues.pop(w) {
                            Some(pid) => {
                                scr.arrivals.push(pid);
                                sent += 1;
                            }
                            None => break,
                        }
                    }
                    budget -= sent;
                    queued -= sent as u32;
                    if queued == 0 {
                        break;
                    }
                }
            }
            scr.node_queued[u as usize] = queued;
            let next = scr.rotate[u as usize] + 1;
            scr.rotate[u as usize] = if next as usize == deg { 0 } else { next };
            // Drop nodes emptied by the send phase (before arrivals re-add).
            if queued > 0 {
                active[kept] = u;
                kept += 1;
            } else {
                scr.node_listed[u as usize] = false;
            }
        }
        active.truncate(kept);
        scr.active_nodes = active;
        // Telemetry observation point (enabled runs only): every
        // undelivered, non-trivial packet sat in exactly one wire queue at
        // tick start, so occupancy is `total - delivered` in O(1); the ones
        // that did not make it into `arrivals` stalled for this tick.
        if let Some(t) = tele.as_deref_mut() {
            let queued_start = (total - pending - delivered) as u64;
            t.occupancy.record(queued_start);
            t.stalled += queued_start - scr.arrivals.len() as u64;
        }
        // Arrival phase: advance packets, deliver or re-enqueue. `arrivals`
        // is moved out of the scratch for the duration so the loop iterates
        // it directly (no per-element index check against the scratch
        // borrow) and moved back for the next tick.
        let arrivals = std::mem::take(&mut scr.arrivals);
        total_hops += arrivals.len() as u64;
        for &pid in &arrivals {
            let pid = pid as usize;
            let rem = scr.remaining[pid] - 1;
            scr.remaining[pid] = rem;
            if rem == 0 {
                delivered += 1;
                continue;
            }
            let cur = scr.cursor[pid] as usize;
            let w = batch.wire_flat(cur) as usize;
            scr.cursor[pid] = (cur + 1) as u32;
            let from = net.wire_tail(w as u32);
            let key = key_of::<DISC>(rem, scr.rank[pid]);
            max_queue = max_queue.max(queues.push(w, key, pid as u32));
            scr.node_queued[from as usize] += 1;
            if !scr.node_listed[from as usize] {
                scr.node_listed[from as usize] = true;
                scr.active_nodes.push(from);
            }
        }
        scr.arrivals = arrivals;
        // Injection step: packets scheduled for this tick enter their first
        // wire queue now (end of tick), after arrivals — their first
        // possible crossing is next tick, exactly like tick-0 packets whose
        // first crossing is tick 1.
        let mut injected_now = false;
        if let Some(s) = sched {
            injected_now = run_injections::<Q, DISC>(
                net,
                batch,
                s,
                ticks,
                strand_scan,
                &mut inj_cursor,
                &mut delivered,
                queues,
                scr,
                &mut max_queue,
            );
            pending = s.order().len() - inj_cursor;
        }
        // Event-backend skip hook (tick backend passes `ev: None` and the
        // whole block compiles to one branch). A tick is *quiescent* when
        // nothing crossed a wire and nothing was injected: from this exact
        // state, every future tick replays identically until either an
        // injection comes due or a fault-capacity boundary is crossed on a
        // wire that holds packets. Jump `ticks` to just before the earliest
        // such event, folding the per-tick side effects of the skipped span
        // (rotate advance, occupancy/stall/gating accumulation) in closed
        // form — bit-identical to simulating the span tick by tick.
        if let Some(ctl) = ev.as_deref_mut() {
            if scr.arrivals.is_empty() && !injected_now && delivered < routable {
                // Queued wires can only wake at a capacity boundary; their
                // wake ticks join the pending-injection ticks in the wheel.
                if net.is_faulted() {
                    for &u in &scr.active_nodes {
                        let (lo, hi) = net.wire_range(u);
                        for w in lo..hi {
                            if !queues.is_empty(w) {
                                if let Some(b) = net.next_capacity_boundary(w as u32, ticks - 1) {
                                    ctl.wheel.push(b + 1, EventKind::WindowWakeup);
                                }
                            }
                        }
                    }
                }
                // No event at all means the state is frozen forever: burn
                // the remaining budget in one jump (MaxTicks abort, at the
                // same tick count the tick loop would reach).
                let next_sim = ctl
                    .wheel
                    .next_after(ticks)
                    .unwrap_or(u64::MAX)
                    .min(cfg.max_ticks.saturating_add(1));
                if next_sim > ticks + 1 {
                    // Re-poll cancellation before committing the jump: a
                    // flag raised since the loop-top poll must abort *here*,
                    // not after the whole skipped span has been accounted —
                    // otherwise a watchdog firing just before a huge idle
                    // skip reports MaxTicks with the budget burned instead
                    // of Cancelled at the last simulated tick.
                    // ordering: same monotone stop hint as the loop-top
                    // poll; Relaxed is sufficient.
                    if let Some(c) = cancel {
                        if c.load(Ordering::Relaxed) {
                            cancelled = true;
                            break;
                        }
                    }
                    let k = next_sim - 1 - ticks;
                    ctl.note_skip(ticks, next_sim);
                    for &u in &scr.active_nodes {
                        let (lo, hi) = net.wire_range(u);
                        let deg = (hi - lo) as u64;
                        scr.rotate[u as usize] = ((scr.rotate[u as usize] as u64 + k) % deg) as u32;
                    }
                    if let Some(t) = tele.as_deref_mut() {
                        let occ = (total - pending - delivered) as u64;
                        t.occupancy.record_many(occ, k);
                        t.stalled = t.stalled.saturating_add(occ.saturating_mul(k));
                    }
                    gated += (gated - gated_at_tick_start).saturating_mul(k);
                    ticks = next_sim - 1;
                }
            }
        }
    }

    if let Some(t) = tele {
        t.faults_gated += gated;
    }
    let abort = if cancelled {
        AbortCause::Cancelled
    } else if delivered < routable {
        AbortCause::MaxTicks
    } else if stranded > 0 {
        AbortCause::Stranded
    } else {
        AbortCause::Completed
    };
    RoutingOutcome {
        ticks,
        delivered,
        total,
        completed: abort == AbortCause::Completed,
        max_queue,
        total_hops,
        stranded,
        abort,
    }
}

thread_local! {
    /// One scratch per thread: pool workers of a sweep reuse arenas across
    /// every batch they run.
    pub(crate) static POOLED_SCRATCH: RefCell<RouterScratch> = RefCell::new(RouterScratch::new());
}

/// [`route_compiled`] using this thread's pooled [`RouterScratch`].
pub fn route_compiled_pooled(
    net: &CompiledNet,
    batch: &PacketBatch,
    cfg: RouterConfig,
) -> RoutingOutcome {
    POOLED_SCRATCH.with(|s| route_compiled(net, batch, cfg, &mut s.borrow_mut()))
}

/// Route a batch of packets to completion on a machine.
///
/// All packets are injected at tick 0 (the paper's "deliver all m messages"
/// batch semantics); the returned outcome's [`RoutingOutcome::rate`] is the
/// delivery-rate sample `m / r(m)`.
///
/// This is the compile-on-every-call convenience wrapper: it compiles the
/// machine's [`CompiledNet`] and the batch afresh. Sweeps that route many
/// batches on one machine should compile once and call [`route_compiled`]
/// (or go through [`crate::harness::RouteCtx`]).
///
/// # Panics
/// Panics if some path is not a walk of the host graph; use
/// [`try_route_batch`] to get the typed [`RouteError`] instead.
pub fn route_batch(
    machine: &Machine,
    packets: Vec<PacketPath>,
    cfg: RouterConfig,
) -> RoutingOutcome {
    // fcn-allow: ERR-UNWRAP documented panicking wrapper; `try_route_batch` is the typed-error entry point
    try_route_batch(machine, &packets, cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// [`route_batch`] surfacing malformed routes as a typed [`RouteError`]
/// instead of panicking. Planner-produced paths are walks by construction
/// and never hit the error arm.
pub fn try_route_batch(
    machine: &Machine,
    packets: &[PacketPath],
    cfg: RouterConfig,
) -> Result<RoutingOutcome, RouteError> {
    let net = CompiledNet::compile(machine);
    let batch = PacketBatch::compile(&net, packets)?;
    Ok(route_compiled_pooled(&net, &batch, cfg))
}

/// The original single-function simulator, retained verbatim as the
/// executable specification of the wire model.
///
/// `tests/compiled_router.rs` pins [`route_compiled`] against this
/// implementation across machine families and queue disciplines, and
/// `perfbench` uses it as the pre-compilation baseline for the recorded
/// speedup trajectory. Not a hot path — new code should use
/// [`route_compiled`].
pub mod reference {
    use super::*;

    /// Per-wire queue under a discipline. Priority queues pop the smallest
    /// key.
    enum WireQueue {
        Fifo(VecDeque<u32>),
        Prio(BinaryHeap<Reverse<(u32, u32)>>),
    }

    impl WireQueue {
        fn new(discipline: QueueDiscipline) -> Self {
            match discipline {
                QueueDiscipline::Fifo => WireQueue::Fifo(VecDeque::new()),
                _ => WireQueue::Prio(BinaryHeap::new()),
            }
        }

        fn push(&mut self, key: u32, pid: u32) {
            match self {
                WireQueue::Fifo(q) => q.push_back(pid),
                WireQueue::Prio(q) => q.push(Reverse((key, pid))),
            }
        }

        fn pop(&mut self) -> Option<u32> {
            match self {
                WireQueue::Fifo(q) => q.pop_front(),
                WireQueue::Prio(q) => q.pop().map(|Reverse((_, pid))| pid),
            }
        }

        fn len(&self) -> usize {
            match self {
                WireQueue::Fifo(q) => q.len(),
                WireQueue::Prio(q) => q.len(),
            }
        }

        fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    struct PacketState {
        path: PacketPath,
        /// Index of the vertex the packet currently sits at.
        pos: u32,
        /// Random rank (used by `RandomRank`).
        rank: u32,
    }

    /// Route a batch by rebuilding all routing state from scratch — the
    /// pre-compilation behavior, bit-for-bit.
    pub fn route_batch(
        machine: &Machine,
        packets: Vec<PacketPath>,
        cfg: RouterConfig,
    ) -> RoutingOutcome {
        let g = machine.graph();
        let n = g.node_count();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Directed wire arrays. Neighbor lists are ascending (CSR built
        // from an ordered map), so next-hop lookup is a binary search.
        let mut wire_offsets = Vec::with_capacity(n + 1);
        let mut wire_to: Vec<NodeId> = Vec::new();
        let mut wire_cap: Vec<u32> = Vec::new();
        wire_offsets.push(0usize);
        for u in 0..n as NodeId {
            for (v, m) in g.neighbors(u) {
                if v != u {
                    wire_to.push(v);
                    wire_cap.push(m);
                }
            }
            wire_offsets.push(wire_to.len());
        }
        let wire_of = |u: NodeId, v: NodeId| -> usize {
            let lo = wire_offsets[u as usize];
            let hi = wire_offsets[u as usize + 1];
            lo + wire_to[lo..hi]
                .binary_search(&v)
                // fcn-allow: ERR-UNWRAP compile() already verified every hop is a host wire, so the search always succeeds
                .unwrap_or_else(|_| panic!("no wire {u} -> {v}"))
        };
        let mut queues: Vec<WireQueue> = (0..wire_to.len())
            .map(|_| WireQueue::new(cfg.discipline))
            .collect();
        // Activity is tracked per *node* (a node is active while any of its
        // out-wires has queued packets), so the send phase iterates active
        // nodes and their short wire ranges — no per-tick sorting.
        let mut active_nodes: Vec<NodeId> = Vec::new();
        let mut node_queued = vec![0u32; n]; // queued packets across the node's wires
        let mut node_listed = vec![false; n];
        let mut rotate = vec![0u32; n];

        let total = packets.len();
        let mut states: Vec<PacketState> = packets
            .into_iter()
            .map(|p| PacketState {
                path: p,
                pos: 0,
                rank: rng.random::<u32>(),
            })
            .collect();

        let key_of = |st: &PacketState, discipline: QueueDiscipline| -> u32 {
            match discipline {
                QueueDiscipline::Fifo => 0,
                // Smaller key pops first; invert remaining hops so farther
                // packets win.
                QueueDiscipline::FarthestFirst => u32::MAX - (st.path.hops() as u32 - st.pos),
                QueueDiscipline::RandomRank => st.rank,
            }
        };

        let mut delivered = 0usize;
        let mut total_hops = 0u64;
        let mut max_queue = 0usize;

        // Injection.
        for (pid, st) in states.iter().enumerate() {
            if st.path.hops() == 0 {
                delivered += 1;
                continue;
            }
            let src = st.path.path[0];
            let w = wire_of(src, st.path.path[1]);
            let key = key_of(st, cfg.discipline);
            queues[w].push(key, pid as u32);
            node_queued[src as usize] += 1;
            if !node_listed[src as usize] {
                node_listed[src as usize] = true;
                active_nodes.push(src);
            }
        }
        for q in &queues {
            max_queue = max_queue.max(q.len());
        }

        let mut ticks = 0u64;
        let mut arrivals: Vec<u32> = Vec::new();
        while delivered < total && ticks < cfg.max_ticks {
            ticks += 1;
            arrivals.clear();
            // Send phase: each active node pushes packets subject to
            // per-wire and per-node budgets, starting at a rotating wire
            // offset for fairness under tight budgets.
            for &u in &active_nodes {
                let lo = wire_offsets[u as usize];
                let hi = wire_offsets[u as usize + 1];
                let deg = hi - lo;
                if deg == 0 || node_queued[u as usize] == 0 {
                    continue;
                }
                let mut budget = machine.send_capacity(u) as u64;
                let start = (rotate[u as usize] as usize) % deg;
                for idx in 0..deg {
                    if budget == 0 {
                        break;
                    }
                    let w = lo + (start + idx) % deg;
                    if queues[w].is_empty() {
                        continue;
                    }
                    let cap = (wire_cap[w] as u64).min(budget);
                    let mut sent = 0u64;
                    while sent < cap {
                        match queues[w].pop() {
                            Some(pid) => {
                                arrivals.push(pid);
                                sent += 1;
                            }
                            None => break,
                        }
                    }
                    budget -= sent;
                    node_queued[u as usize] -= sent as u32;
                }
                rotate[u as usize] = rotate[u as usize].wrapping_add(1);
            }
            // Drop nodes emptied by the send phase (before arrivals re-add).
            active_nodes.retain(|&u| {
                let keep = node_queued[u as usize] > 0;
                if !keep {
                    node_listed[u as usize] = false;
                }
                keep
            });
            // Arrival phase: advance packets, deliver or re-enqueue.
            for &pid in &arrivals {
                let st = &mut states[pid as usize];
                st.pos += 1;
                total_hops += 1;
                if st.pos as usize == st.path.hops() {
                    delivered += 1;
                    continue;
                }
                let from = st.path.path[st.pos as usize];
                let to = st.path.path[st.pos as usize + 1];
                let w = wire_of(from, to);
                let key = key_of(st, cfg.discipline);
                queues[w].push(key, pid);
                max_queue = max_queue.max(queues[w].len());
                node_queued[from as usize] += 1;
                if !node_listed[from as usize] {
                    node_listed[from as usize] = true;
                    active_nodes.push(from);
                }
            }
        }

        RoutingOutcome {
            ticks,
            delivered,
            total,
            completed: delivered == total,
            max_queue,
            total_hops,
            // The reference engine predates the fault plane and only ever
            // routes intact machines: nothing strands, and the two exit
            // conditions map onto the first two abort causes.
            stranded: 0,
            abort: if delivered == total {
                AbortCause::Completed
            } else {
                AbortCause::MaxTicks
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    fn cfg(d: QueueDiscipline) -> RouterConfig {
        RouterConfig {
            discipline: d,
            seed: 7,
            max_ticks: 100_000,
        }
    }

    #[test]
    fn single_packet_takes_path_length_ticks() {
        let m = Machine::linear_array(10);
        let p = PacketPath::new((0..10).collect());
        let out = route_batch(&m, vec![p], cfg(QueueDiscipline::Fifo));
        assert!(out.completed);
        assert_eq!(out.ticks, 9);
        assert_eq!(out.total_hops, 9);
        assert!((out.rate() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_packets_deliver_at_tick_zero() {
        let m = Machine::linear_array(4);
        let out = route_batch(
            &m,
            vec![PacketPath::new(vec![2]), PacketPath::new(vec![0])],
            cfg(QueueDiscipline::Fifo),
        );
        assert!(out.completed);
        assert_eq!(out.ticks, 0);
        assert_eq!(out.delivered, 2);
    }

    #[test]
    fn contention_serializes_on_one_wire() {
        // k packets all crossing the same single wire take k ticks for the
        // final crossing: flux in action.
        let m = Machine::linear_array(2);
        let packets: Vec<_> = (0..8).map(|_| PacketPath::new(vec![0, 1])).collect();
        let out = route_batch(&m, packets, cfg(QueueDiscipline::Fifo));
        assert!(out.completed);
        assert_eq!(out.ticks, 8);
        assert_eq!(out.max_queue, 8);
    }

    #[test]
    fn opposite_wires_are_independent() {
        let m = Machine::linear_array(2);
        let mut packets: Vec<_> = (0..4).map(|_| PacketPath::new(vec![0, 1])).collect();
        packets.extend((0..4).map(|_| PacketPath::new(vec![1, 0])));
        let out = route_batch(&m, packets, cfg(QueueDiscipline::Fifo));
        assert_eq!(out.ticks, 4);
    }

    #[test]
    fn node_capacity_throttles_the_bus() {
        // 6 packets from distinct sources via the hub: hub forwards 1/tick,
        // so the last arrives around tick 7 (1 tick in + 6 hub slots).
        let m = Machine::global_bus(6);
        let hub = 6 as NodeId;
        let packets: Vec<_> = (0..6u32)
            .map(|i| PacketPath::new(vec![i, hub, (i + 1) % 6]))
            .collect();
        let out = route_batch(&m, packets, cfg(QueueDiscipline::RandomRank));
        assert!(out.completed);
        assert!(out.ticks >= 7, "bus finished too fast: {}", out.ticks);
        assert!(out.ticks <= 8, "bus too slow: {}", out.ticks);
    }

    #[test]
    fn unit_node_capacity_on_weak_hypercube() {
        // Node 0 fans out 4 packets on 4 distinct wires; weak capacity 1
        // serializes them.
        let m = Machine::weak_hypercube(2);
        let packets: Vec<_> = vec![
            PacketPath::new(vec![0, 1]),
            PacketPath::new(vec![0, 2]),
            PacketPath::new(vec![0, 1, 3]),
            PacketPath::new(vec![0, 2, 3]),
        ];
        let out = route_batch(&m, packets, cfg(QueueDiscipline::Fifo));
        assert!(out.completed);
        assert!(out.ticks >= 4, "weak cap violated: {}", out.ticks);
    }

    #[test]
    fn multiplicity_gives_parallel_capacity() {
        // Double every edge of a 2-path: two packets cross per tick.
        use fcn_multigraph::Cut;
        use fcn_topology::{Family, SendCapacity};
        let g = fcn_multigraph::Multigraph::from_edges(2, [(0, 1)]).scaled(2);
        let m = fcn_topology::Machine::custom(
            Family::LinearArray,
            "double_edge".into(),
            g,
            2,
            SendCapacity::Unlimited,
            vec![Cut::prefix(2, 1)],
        );
        let packets: Vec<_> = (0..8).map(|_| PacketPath::new(vec![0, 1])).collect();
        let out = route_batch(&m, packets, cfg(QueueDiscipline::Fifo));
        assert_eq!(out.ticks, 4);
    }

    #[test]
    fn all_disciplines_complete_random_traffic() {
        let m = Machine::mesh(2, 4);
        for d in [
            QueueDiscipline::Fifo,
            QueueDiscipline::FarthestFirst,
            QueueDiscipline::RandomRank,
        ] {
            let mut oracle = crate::oracle::PathOracle::new(m.graph(), 5);
            let demands: Vec<_> = (0..16u32).map(|i| (i, 15 - i)).collect();
            let routes = oracle.routes(&demands, crate::packet::Strategy::ShortestPath);
            let out = route_batch(&m, routes, cfg(d));
            assert!(out.completed, "{d:?} did not complete");
            assert_eq!(out.delivered, 16);
        }
    }

    #[test]
    fn max_ticks_aborts() {
        let m = Machine::linear_array(2);
        let packets: Vec<_> = (0..100).map(|_| PacketPath::new(vec![0, 1])).collect();
        let mut c = cfg(QueueDiscipline::Fifo);
        c.max_ticks = 10;
        let out = route_batch(&m, packets, c);
        assert!(!out.completed);
        assert_eq!(out.delivered, 10);
    }

    #[test]
    fn malformed_route_panics_with_typed_message() {
        let m = Machine::linear_array(4);
        let err = try_route_batch(
            &m,
            &[PacketPath::new(vec![0, 3])],
            cfg(QueueDiscipline::Fifo),
        )
        .unwrap_err();
        assert!(err.to_string().contains("no wire 0 -> 3"));
    }

    #[test]
    fn scratch_is_reusable_across_machines_and_disciplines() {
        // One scratch, three machines of different sizes, all disciplines:
        // results must match fresh-scratch runs (arena residue must not
        // leak between runs, including after a max_ticks abort).
        let mut scratch = RouterScratch::new();
        let machines = [
            Machine::mesh(2, 4),
            Machine::linear_array(2),
            Machine::de_bruijn(4),
        ];
        for m in &machines {
            for d in [
                QueueDiscipline::Fifo,
                QueueDiscipline::FarthestFirst,
                QueueDiscipline::RandomRank,
            ] {
                let mut oracle = crate::oracle::PathOracle::new(m.graph(), 5);
                let n = m.processors() as u32;
                let demands: Vec<_> = (0..n).map(|i| (i, n - 1 - i)).collect();
                let routes = oracle.routes(&demands, crate::packet::Strategy::ShortestPath);
                let net = CompiledNet::compile(m);
                let batch = PacketBatch::compile(&net, &routes).unwrap();
                // Abort run first to leave residue in the queues...
                let mut short = cfg(d);
                short.max_ticks = 1;
                let _ = route_compiled(&net, &batch, short, &mut scratch);
                // ...then the real run must still be clean.
                let pooled = route_compiled(&net, &batch, cfg(d), &mut scratch);
                let fresh = route_compiled(&net, &batch, cfg(d), &mut RouterScratch::new());
                assert_eq!(pooled, fresh, "{} {d:?}", m.name());
            }
        }
    }
}
