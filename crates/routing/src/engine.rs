//! The synchronous store-and-forward router.
//!
//! Model (exactly the paper's): time proceeds in unit ticks; each *wire*
//! (directed edge; an undirected link of multiplicity `m` is two opposite
//! wires of capacity `m`) moves at most `m` packets per tick; packets queue
//! at wires; a packet forwarded at tick `t` becomes available at the next
//! vertex at tick `t+1`. "Weak" machines additionally cap the total packets
//! a *node* may transmit per tick ([`fcn_topology::SendCapacity::PerNode`]),
//! which is how the global bus (hub capacity 1) and the weak hypercube (one
//! wire per node per tick) are expressed.
//!
//! The queue discipline resolves contention; `RandomRank` mirrors the
//! random-priority scheduling of the universal O(congestion + dilation)
//! routing result the paper's Theorem 6 invokes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use fcn_multigraph::NodeId;
use fcn_topology::Machine;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::packet::{PacketPath, QueueDiscipline};

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterConfig {
    pub discipline: QueueDiscipline,
    /// Seed for random ranks.
    pub seed: u64,
    /// Safety valve: abort after this many ticks.
    pub max_ticks: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            discipline: QueueDiscipline::RandomRank,
            seed: 0x5eed,
            max_ticks: 4_000_000,
        }
    }
}

/// Result of routing one batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoutingOutcome {
    /// Ticks until the last delivery (0 if every packet was trivial).
    pub ticks: u64,
    /// Packets delivered.
    pub delivered: usize,
    /// Packets injected.
    pub total: usize,
    /// False iff `max_ticks` was hit first.
    pub completed: bool,
    /// Peak queue length observed on any single wire.
    pub max_queue: usize,
    /// Total wire traversals performed.
    pub total_hops: u64,
}

impl RoutingOutcome {
    /// Average delivery rate `m / r(m)` — the operational bandwidth sample.
    pub fn rate(&self) -> f64 {
        self.delivered as f64 / self.ticks.max(1) as f64
    }
}

/// Per-wire queue under a discipline. Priority queues pop the smallest key.
enum WireQueue {
    Fifo(VecDeque<u32>),
    Prio(BinaryHeap<Reverse<(u32, u32)>>),
}

impl WireQueue {
    fn new(discipline: QueueDiscipline) -> Self {
        match discipline {
            QueueDiscipline::Fifo => WireQueue::Fifo(VecDeque::new()),
            _ => WireQueue::Prio(BinaryHeap::new()),
        }
    }

    fn push(&mut self, key: u32, pid: u32) {
        match self {
            WireQueue::Fifo(q) => q.push_back(pid),
            WireQueue::Prio(q) => q.push(Reverse((key, pid))),
        }
    }

    fn pop(&mut self) -> Option<u32> {
        match self {
            WireQueue::Fifo(q) => q.pop_front(),
            WireQueue::Prio(q) => q.pop().map(|Reverse((_, pid))| pid),
        }
    }

    fn len(&self) -> usize {
        match self {
            WireQueue::Fifo(q) => q.len(),
            WireQueue::Prio(q) => q.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct PacketState {
    path: PacketPath,
    /// Index of the vertex the packet currently sits at.
    pos: u32,
    /// Random rank (used by `RandomRank`).
    rank: u32,
}

/// Route a batch of packets to completion on a machine.
///
/// All packets are injected at tick 0 (the paper's "deliver all m messages"
/// batch semantics); the returned outcome's [`RoutingOutcome::rate`] is the
/// delivery-rate sample `m / r(m)`.
pub fn route_batch(
    machine: &Machine,
    packets: Vec<PacketPath>,
    cfg: RouterConfig,
) -> RoutingOutcome {
    let g = machine.graph();
    let n = g.node_count();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Directed wire arrays. Neighbor lists are ascending (CSR built from an
    // ordered map), so next-hop lookup is a binary search.
    let mut wire_offsets = Vec::with_capacity(n + 1);
    let mut wire_to: Vec<NodeId> = Vec::new();
    let mut wire_cap: Vec<u32> = Vec::new();
    wire_offsets.push(0usize);
    for u in 0..n as NodeId {
        for (v, m) in g.neighbors(u) {
            if v != u {
                wire_to.push(v);
                wire_cap.push(m);
            }
        }
        wire_offsets.push(wire_to.len());
    }
    let wire_of = |u: NodeId, v: NodeId| -> usize {
        let lo = wire_offsets[u as usize];
        let hi = wire_offsets[u as usize + 1];
        lo + wire_to[lo..hi]
            .binary_search(&v)
            .unwrap_or_else(|_| panic!("no wire {u} -> {v}"))
    };
    let mut queues: Vec<WireQueue> = (0..wire_to.len())
        .map(|_| WireQueue::new(cfg.discipline))
        .collect();
    // Activity is tracked per *node* (a node is active while any of its
    // out-wires has queued packets), so the send phase iterates active
    // nodes and their short wire ranges — no per-tick sorting.
    let mut active_nodes: Vec<NodeId> = Vec::new();
    let mut node_queued = vec![0u32; n]; // queued packets across the node's wires
    let mut node_listed = vec![false; n];
    let mut rotate = vec![0u32; n];

    let total = packets.len();
    let mut states: Vec<PacketState> = packets
        .into_iter()
        .map(|p| PacketState {
            path: p,
            pos: 0,
            rank: rng.random::<u32>(),
        })
        .collect();

    let key_of = |st: &PacketState, discipline: QueueDiscipline| -> u32 {
        match discipline {
            QueueDiscipline::Fifo => 0,
            // Smaller key pops first; invert remaining hops so farther
            // packets win.
            QueueDiscipline::FarthestFirst => u32::MAX - (st.path.hops() as u32 - st.pos),
            QueueDiscipline::RandomRank => st.rank,
        }
    };

    let mut delivered = 0usize;
    let mut total_hops = 0u64;
    let mut max_queue = 0usize;

    // Injection.
    for (pid, st) in states.iter().enumerate() {
        if st.path.hops() == 0 {
            delivered += 1;
            continue;
        }
        let src = st.path.path[0];
        let w = wire_of(src, st.path.path[1]);
        let key = key_of(st, cfg.discipline);
        queues[w].push(key, pid as u32);
        node_queued[src as usize] += 1;
        if !node_listed[src as usize] {
            node_listed[src as usize] = true;
            active_nodes.push(src);
        }
    }
    for q in &queues {
        max_queue = max_queue.max(q.len());
    }

    let mut ticks = 0u64;
    let mut arrivals: Vec<u32> = Vec::new();
    while delivered < total && ticks < cfg.max_ticks {
        ticks += 1;
        arrivals.clear();
        // Send phase: each active node pushes packets subject to per-wire
        // and per-node budgets, starting at a rotating wire offset for
        // fairness under tight budgets.
        for &u in &active_nodes {
            let lo = wire_offsets[u as usize];
            let hi = wire_offsets[u as usize + 1];
            let deg = hi - lo;
            if deg == 0 || node_queued[u as usize] == 0 {
                continue;
            }
            let mut budget = machine.send_capacity(u) as u64;
            let start = (rotate[u as usize] as usize) % deg;
            for idx in 0..deg {
                if budget == 0 {
                    break;
                }
                let w = lo + (start + idx) % deg;
                if queues[w].is_empty() {
                    continue;
                }
                let cap = (wire_cap[w] as u64).min(budget);
                let mut sent = 0u64;
                while sent < cap {
                    match queues[w].pop() {
                        Some(pid) => {
                            arrivals.push(pid);
                            sent += 1;
                        }
                        None => break,
                    }
                }
                budget -= sent;
                node_queued[u as usize] -= sent as u32;
            }
            rotate[u as usize] = rotate[u as usize].wrapping_add(1);
        }
        // Drop nodes emptied by the send phase (before arrivals re-add).
        active_nodes.retain(|&u| {
            let keep = node_queued[u as usize] > 0;
            if !keep {
                node_listed[u as usize] = false;
            }
            keep
        });
        // Arrival phase: advance packets, deliver or re-enqueue.
        for &pid in &arrivals {
            let st = &mut states[pid as usize];
            st.pos += 1;
            total_hops += 1;
            if st.pos as usize == st.path.hops() {
                delivered += 1;
                continue;
            }
            let from = st.path.path[st.pos as usize];
            let to = st.path.path[st.pos as usize + 1];
            let w = wire_of(from, to);
            let key = key_of(st, cfg.discipline);
            queues[w].push(key, pid);
            max_queue = max_queue.max(queues[w].len());
            node_queued[from as usize] += 1;
            if !node_listed[from as usize] {
                node_listed[from as usize] = true;
                active_nodes.push(from);
            }
        }
    }

    RoutingOutcome {
        ticks,
        delivered,
        total,
        completed: delivered == total,
        max_queue,
        total_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    fn cfg(d: QueueDiscipline) -> RouterConfig {
        RouterConfig {
            discipline: d,
            seed: 7,
            max_ticks: 100_000,
        }
    }

    #[test]
    fn single_packet_takes_path_length_ticks() {
        let m = Machine::linear_array(10);
        let p = PacketPath::new((0..10).collect());
        let out = route_batch(&m, vec![p], cfg(QueueDiscipline::Fifo));
        assert!(out.completed);
        assert_eq!(out.ticks, 9);
        assert_eq!(out.total_hops, 9);
        assert!((out.rate() - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_packets_deliver_at_tick_zero() {
        let m = Machine::linear_array(4);
        let out = route_batch(
            &m,
            vec![PacketPath::new(vec![2]), PacketPath::new(vec![0])],
            cfg(QueueDiscipline::Fifo),
        );
        assert!(out.completed);
        assert_eq!(out.ticks, 0);
        assert_eq!(out.delivered, 2);
    }

    #[test]
    fn contention_serializes_on_one_wire() {
        // k packets all crossing the same single wire take k ticks for the
        // final crossing: flux in action.
        let m = Machine::linear_array(2);
        let packets: Vec<_> = (0..8).map(|_| PacketPath::new(vec![0, 1])).collect();
        let out = route_batch(&m, packets, cfg(QueueDiscipline::Fifo));
        assert!(out.completed);
        assert_eq!(out.ticks, 8);
        assert_eq!(out.max_queue, 8);
    }

    #[test]
    fn opposite_wires_are_independent() {
        let m = Machine::linear_array(2);
        let mut packets: Vec<_> = (0..4).map(|_| PacketPath::new(vec![0, 1])).collect();
        packets.extend((0..4).map(|_| PacketPath::new(vec![1, 0])));
        let out = route_batch(&m, packets, cfg(QueueDiscipline::Fifo));
        assert_eq!(out.ticks, 4);
    }

    #[test]
    fn node_capacity_throttles_the_bus() {
        // 6 packets from distinct sources via the hub: hub forwards 1/tick,
        // so the last arrives around tick 7 (1 tick in + 6 hub slots).
        let m = Machine::global_bus(6);
        let hub = 6 as NodeId;
        let packets: Vec<_> = (0..6u32)
            .map(|i| PacketPath::new(vec![i, hub, (i + 1) % 6]))
            .collect();
        let out = route_batch(&m, packets, cfg(QueueDiscipline::RandomRank));
        assert!(out.completed);
        assert!(out.ticks >= 7, "bus finished too fast: {}", out.ticks);
        assert!(out.ticks <= 8, "bus too slow: {}", out.ticks);
    }

    #[test]
    fn unit_node_capacity_on_weak_hypercube() {
        // Node 0 fans out 4 packets on 4 distinct wires; weak capacity 1
        // serializes them.
        let m = Machine::weak_hypercube(2);
        let packets: Vec<_> = vec![
            PacketPath::new(vec![0, 1]),
            PacketPath::new(vec![0, 2]),
            PacketPath::new(vec![0, 1, 3]),
            PacketPath::new(vec![0, 2, 3]),
        ];
        let out = route_batch(&m, packets, cfg(QueueDiscipline::Fifo));
        assert!(out.completed);
        assert!(out.ticks >= 4, "weak cap violated: {}", out.ticks);
    }

    #[test]
    fn multiplicity_gives_parallel_capacity() {
        // Double every edge of a 2-path: two packets cross per tick.
        use fcn_multigraph::Cut;
        use fcn_topology::{Family, SendCapacity};
        let g = fcn_multigraph::Multigraph::from_edges(2, [(0, 1)]).scaled(2);
        let m = fcn_topology::Machine::custom(
            Family::LinearArray,
            "double_edge".into(),
            g,
            2,
            SendCapacity::Unlimited,
            vec![Cut::prefix(2, 1)],
        );
        let packets: Vec<_> = (0..8).map(|_| PacketPath::new(vec![0, 1])).collect();
        let out = route_batch(&m, packets, cfg(QueueDiscipline::Fifo));
        assert_eq!(out.ticks, 4);
    }

    #[test]
    fn all_disciplines_complete_random_traffic() {
        let m = Machine::mesh(2, 4);
        for d in [
            QueueDiscipline::Fifo,
            QueueDiscipline::FarthestFirst,
            QueueDiscipline::RandomRank,
        ] {
            let mut oracle = crate::oracle::PathOracle::new(m.graph(), 5);
            let demands: Vec<_> = (0..16u32).map(|i| (i, 15 - i)).collect();
            let routes = oracle.routes(&demands, crate::packet::Strategy::ShortestPath);
            let out = route_batch(&m, routes, cfg(d));
            assert!(out.completed, "{d:?} did not complete");
            assert_eq!(out.delivered, 16);
        }
    }

    #[test]
    fn max_ticks_aborts() {
        let m = Machine::linear_array(2);
        let packets: Vec<_> = (0..100).map(|_| PacketPath::new(vec![0, 1])).collect();
        let mut c = cfg(QueueDiscipline::Fifo);
        c.max_ticks = 10;
        let out = route_batch(&m, packets, c);
        assert!(!out.completed);
        assert_eq!(out.delivered, 10);
    }
}
