//! Delivery-rate measurement harness.
//!
//! The paper defines `β(G, π)` as the expected value, as `m → ∞`, of
//! `m / r(m)` where `r(m)` is the time to deliver `m` messages drawn from
//! `π`. [`measure_rate`] produces one `m / r(m)` sample; [`saturation_sweep`]
//! grows `m` geometrically until the rate plateaus, approximating the limit.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use fcn_multigraph::Traffic;
use fcn_topology::Machine;
use serde::{Deserialize, Serialize};

use crate::cache::PlanCache;
use crate::compiled::{CompiledNet, PacketBatch};
use crate::engine::{route_compiled_pooled, RouterConfig, RoutingOutcome};
use crate::events::route_events_pooled;
use crate::packet::{PacketPath, Strategy};

/// Which router executes a context's batches.
///
/// Both backends produce **bit-identical** [`RoutingOutcome`]s for every
/// `(machine, batch, config)` — the choice is purely a performance knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// The synchronous tick loop ([`crate::route_compiled`]), sharded when
    /// the context asks for shard workers. Best under dense traffic where
    /// almost every tick moves packets.
    #[default]
    Tick,
    /// The event-driven engine ([`crate::events::route_events`]): the same
    /// tick loop, but quiescent spans are skipped via a calendar wheel.
    /// Best for sparse injection schedules, fault outage windows, and long
    /// drain tails. Single-shard only — a context configured with both
    /// shard workers and this backend routes through the event engine.
    Events,
}

impl Backend {
    /// Parse a CLI flag value (`tick` | `events`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "tick" => Some(Backend::Tick),
            "events" => Some(Backend::Events),
            _ => None,
        }
    }

    /// The CLI flag spelling of this backend.
    pub fn as_str(&self) -> &'static str {
        match self {
            Backend::Tick => "tick",
            Backend::Events => "events",
        }
    }
}

/// A compile-once routing context: one machine, its [`CompiledNet`], and an
/// optional [`PlanCache`].
///
/// Every β estimate, saturation sweep, and audit routes hundreds of batches
/// on the *same* machine; the context compiles the machine's wire arrays
/// exactly once and shares them (`Arc`) across all batches — and across
/// [`fcn_exec::Pool`] workers, since the net is plain data. The context is
/// `Sync`, so one `&RouteCtx` can be captured by every worker closure of a
/// sweep.
///
/// ```
/// use fcn_routing::{measure_rate_ctx, RouteCtx, RouterConfig, Strategy};
/// use fcn_topology::Machine;
///
/// let m = Machine::mesh(2, 4);
/// let ctx = RouteCtx::new(&m);
/// let t = m.symmetric_traffic();
/// let s = measure_rate_ctx(&ctx, &t, 32, Strategy::ShortestPath, RouterConfig::default(), 1, 2);
/// assert!(s.completed);
/// ```
pub struct RouteCtx<'a> {
    machine: &'a Machine,
    net: Arc<CompiledNet>,
    cache: Option<&'a PlanCache>,
    shards: usize,
    backend: Backend,
    cancel: Option<&'a AtomicBool>,
}

impl<'a> RouteCtx<'a> {
    /// Compile `machine`'s wire arrays and wrap them in a context.
    pub fn new(machine: &'a Machine) -> Self {
        RouteCtx {
            machine,
            net: CompiledNet::shared(machine),
            cache: None,
            shards: 1,
            backend: Backend::Tick,
            cancel: None,
        }
    }

    /// A context over an already-compiled net (for sharing one compilation
    /// across several contexts, e.g. the audit's per-distribution cells).
    pub fn from_net(machine: &'a Machine, net: Arc<CompiledNet>) -> Self {
        debug_assert_eq!(net.node_count(), machine.graph().node_count());
        RouteCtx {
            machine,
            net,
            cache: None,
            shards: 1,
            backend: Backend::Tick,
            cancel: None,
        }
    }

    /// Attach a [`PlanCache`] serving the BFS trees of route planning.
    pub fn with_cache(mut self, cache: &'a PlanCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Route every batch through [`crate::shard::route_sharded_pooled`]
    /// with `shards` shard workers (`<= 1` keeps the 1-shard engine).
    /// Outcomes are bit-identical at every shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Select the router [`Backend`] for this context's batches. Outcomes
    /// are bit-identical across backends; [`Backend::Events`] takes
    /// precedence over a configured shard count (the event engine is
    /// single-shard), which the CLI rejects up front as a flag conflict.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Attach a cancellation flag observed by every batch routed through
    /// this context (typically a [`fcn_exec`] watchdog token). A set flag
    /// aborts the in-flight run with [`crate::AbortCause::Cancelled`] at
    /// its last simulated tick; runs that complete before the flag is
    /// raised are bit-identical to an unwatched context.
    pub fn with_cancel(mut self, cancel: &'a AtomicBool) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The configured shard count (1 = the sequential engine).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured router backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The machine being routed on.
    pub fn machine(&self) -> &Machine {
        self.machine
    }

    /// The shared compiled net.
    pub fn net(&self) -> &Arc<CompiledNet> {
        &self.net
    }

    /// The attached plan cache, if any.
    pub fn cache(&self) -> Option<&PlanCache> {
        self.cache
    }

    /// The attached cancellation flag, if any.
    pub fn cancel(&self) -> Option<&AtomicBool> {
        self.cancel
    }

    /// Compile and route planner-produced paths on this context's machine,
    /// reusing the calling thread's pooled scratch.
    ///
    /// # Panics
    /// Panics if some path is not a walk of the host graph — impossible for
    /// planner output; use [`crate::engine::try_route_batch`] for untrusted
    /// paths.
    pub fn route_paths(&self, paths: &[PacketPath], cfg: RouterConfig) -> RoutingOutcome {
        let batch = PacketBatch::compile(&self.net, paths)
            // fcn-allow: ERR-UNWRAP documented panicking wrapper over planner output; `try_route_batch` covers untrusted paths
            .unwrap_or_else(|e| panic!("planner produced unroutable path: {e}"));
        match (self.backend, self.cancel) {
            (Backend::Events, None) => route_events_pooled(&self.net, &batch, cfg),
            (Backend::Events, Some(c)) => crate::engine::POOLED_SCRATCH.with(|s| {
                crate::events::route_events_gated(
                    &self.net,
                    &batch,
                    cfg,
                    &mut s.borrow_mut(),
                    Some(c),
                )
            }),
            (Backend::Tick, None) if self.shards > 1 => {
                crate::shard::route_sharded_pooled(&self.net, &batch, cfg, self.shards)
            }
            (Backend::Tick, Some(c)) if self.shards > 1 => {
                // Same plan construction as `route_sharded_pooled`, so a
                // watched run that completes is bit-identical to the
                // unwatched dispatch above.
                let plan = crate::shard::ShardPlan::balanced(&self.net, self.shards);
                crate::shard::route_sharded_gated(&self.net, &batch, cfg, &plan, Some(c))
            }
            (Backend::Tick, None) => route_compiled_pooled(&self.net, &batch, cfg),
            (Backend::Tick, Some(c)) => crate::engine::POOLED_SCRATCH.with(|s| {
                crate::engine::route_compiled_gated(
                    &self.net,
                    &batch,
                    cfg,
                    &mut s.borrow_mut(),
                    Some(c),
                )
            }),
        }
    }
}

/// One rate sample at a specific batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSample {
    /// Messages injected.
    pub messages: usize,
    /// Ticks to deliver them all.
    pub ticks: u64,
    /// `messages / ticks`.
    pub rate: f64,
    /// Whether routing completed within the tick budget.
    pub completed: bool,
}

/// Route `messages` random pairs from `traffic` and report the delivery
/// rate. `seed` controls both pair sampling and routing randomness.
///
/// ```
/// use fcn_routing::{measure_rate, RouterConfig, Strategy};
/// use fcn_topology::Machine;
///
/// let m = Machine::mesh(2, 4);
/// let t = m.symmetric_traffic();
/// let s = measure_rate(&m, &t, 64, Strategy::ShortestPath, RouterConfig::default(), 1);
/// assert!(s.completed);
/// assert!(s.rate > 0.0);
/// ```
pub fn measure_rate(
    machine: &Machine,
    traffic: &Traffic,
    messages: usize,
    strategy: Strategy,
    cfg: RouterConfig,
    seed: u64,
) -> RateSample {
    let outcome = route_traffic(machine, traffic, messages, strategy, cfg, seed);
    RateSample {
        messages,
        ticks: outcome.ticks,
        rate: outcome.rate(),
        completed: outcome.completed,
    }
}

/// [`measure_rate`] with split seeds and an optional [`PlanCache`].
///
/// `demand_seed` drives the traffic draw, `plan_seed` drives route
/// planning. Splitting them lets saturation sweeps vary the batch
/// (different demand seeds per cell) while *reusing* one plan seed per
/// trial, so every cell of the trial shares the same BFS trees — which the
/// cache then serves instead of recomputing. Results are bit-identical with
/// or without the cache.
#[allow(clippy::too_many_arguments)]
pub fn measure_rate_with(
    machine: &Machine,
    traffic: &Traffic,
    messages: usize,
    strategy: Strategy,
    cfg: RouterConfig,
    demand_seed: u64,
    plan_seed: u64,
    cache: Option<&PlanCache>,
) -> RateSample {
    let outcome = route_traffic_with(
        machine,
        traffic,
        messages,
        strategy,
        cfg,
        demand_seed,
        plan_seed,
        cache,
    );
    RateSample {
        messages,
        ticks: outcome.ticks,
        rate: outcome.rate(),
        completed: outcome.completed,
    }
}

/// Route a batch and return the raw outcome (queue stats included).
pub fn route_traffic(
    machine: &Machine,
    traffic: &Traffic,
    messages: usize,
    strategy: Strategy,
    cfg: RouterConfig,
    seed: u64,
) -> RoutingOutcome {
    route_traffic_with(
        machine,
        traffic,
        messages,
        strategy,
        cfg,
        seed ^ 0x7ea55a17,
        seed,
        None,
    )
}

/// [`route_traffic`] with split demand/plan seeds and an optional cache.
///
/// Compiles the machine afresh; sweeps should build a [`RouteCtx`] once and
/// call [`route_traffic_ctx`] instead.
#[allow(clippy::too_many_arguments)]
pub fn route_traffic_with(
    machine: &Machine,
    traffic: &Traffic,
    messages: usize,
    strategy: Strategy,
    cfg: RouterConfig,
    demand_seed: u64,
    plan_seed: u64,
    cache: Option<&PlanCache>,
) -> RoutingOutcome {
    let mut ctx = RouteCtx::new(machine);
    ctx.cache = cache;
    // (no cancellation: this is the compile-per-call convenience path)
    route_traffic_ctx(
        &ctx,
        traffic,
        messages,
        strategy,
        cfg,
        demand_seed,
        plan_seed,
    )
}

/// [`measure_rate_with`] over a compile-once [`RouteCtx`].
#[allow(clippy::too_many_arguments)]
pub fn measure_rate_ctx(
    ctx: &RouteCtx<'_>,
    traffic: &Traffic,
    messages: usize,
    strategy: Strategy,
    cfg: RouterConfig,
    demand_seed: u64,
    plan_seed: u64,
) -> RateSample {
    let outcome = route_traffic_ctx(
        ctx,
        traffic,
        messages,
        strategy,
        cfg,
        demand_seed,
        plan_seed,
    );
    RateSample {
        messages,
        ticks: outcome.ticks,
        rate: outcome.rate(),
        completed: outcome.completed,
    }
}

/// Route one traffic batch over a compile-once [`RouteCtx`]: sample
/// demands, plan routes (through the context's cache, if any), compile the
/// batch to wire ids, and run it on the shared net with pooled scratch.
/// Bit-identical to [`route_traffic_with`] on a fresh context.
pub fn route_traffic_ctx(
    ctx: &RouteCtx<'_>,
    traffic: &Traffic,
    messages: usize,
    strategy: Strategy,
    cfg: RouterConfig,
    demand_seed: u64,
    plan_seed: u64,
) -> RoutingOutcome {
    assert!(messages >= 1);
    assert!(
        traffic.n() <= ctx.machine.processors(),
        "traffic addresses more processors than the machine has"
    );
    let mut rng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(demand_seed)
    };
    let demands: Vec<_> = (0..messages).map(|_| traffic.sample(&mut rng)).collect();
    let routes =
        crate::native::plan_routes_cached(ctx.machine, &demands, strategy, plan_seed, ctx.cache);
    ctx.route_paths(&routes, cfg)
}

/// Grow the batch geometrically (`m = mult · n` for each multiplier) and
/// report all samples. The largest completed sample's rate is the bandwidth
/// estimate (rates increase toward the saturation plateau as fixed transit
/// latency amortizes away).
pub fn saturation_sweep(
    machine: &Machine,
    traffic: &Traffic,
    multipliers: &[usize],
    strategy: Strategy,
    cfg: RouterConfig,
    seed: u64,
) -> Vec<RateSample> {
    let n = traffic.n();
    // One compiled net serves every batch of the sweep.
    let ctx = RouteCtx::new(machine);
    multipliers
        .iter()
        .enumerate()
        .map(|(i, &mult)| {
            let s = seed.wrapping_add(i as u64);
            measure_rate_ctx(
                &ctx,
                traffic,
                (mult * n).max(1),
                strategy,
                cfg,
                s ^ 0x7ea55a17,
                s,
            )
        })
        .collect()
}

/// The plateau estimate from a sweep: the maximum completed rate.
pub fn plateau_rate(samples: &[RateSample]) -> Option<f64> {
    samples
        .iter()
        .filter(|s| s.completed)
        .map(|s| s.rate)
        .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::QueueDiscipline;
    use fcn_topology::Machine;

    fn cfg() -> RouterConfig {
        RouterConfig {
            discipline: QueueDiscipline::RandomRank,
            seed: 3,
            max_ticks: 1_000_000,
        }
    }

    #[test]
    fn linear_array_rate_is_constant() {
        // β(linear array) = Θ(1): the measured rate must not grow with n.
        let mut rates = Vec::new();
        for n in [32, 64, 128] {
            let m = Machine::linear_array(n);
            let t = m.symmetric_traffic();
            let s = measure_rate(&m, &t, 8 * n, Strategy::ShortestPath, cfg(), 11);
            assert!(s.completed);
            rates.push(s.rate);
        }
        let (lo, hi) = (
            rates.iter().cloned().fold(f64::MAX, f64::min),
            rates.iter().cloned().fold(0.0, f64::max),
        );
        assert!(hi / lo < 2.0, "rates {rates:?} not flat");
    }

    #[test]
    fn mesh_rate_grows_like_sqrt_n() {
        let r8 = {
            let m = Machine::mesh(2, 8);
            measure_rate(
                &m,
                &m.symmetric_traffic(),
                8 * 64,
                Strategy::ShortestPath,
                cfg(),
                5,
            )
        };
        let r16 = {
            let m = Machine::mesh(2, 16);
            measure_rate(
                &m,
                &m.symmetric_traffic(),
                8 * 256,
                Strategy::ShortestPath,
                cfg(),
                5,
            )
        };
        assert!(r8.completed && r16.completed);
        let ratio = r16.rate / r8.rate;
        // β ~ sqrt(n): quadrupling n should double the rate, within noise.
        assert!(ratio > 1.4 && ratio < 2.8, "ratio {ratio}");
    }

    #[test]
    fn bus_rate_is_about_one() {
        let m = Machine::global_bus(32);
        let s = measure_rate(
            &m,
            &m.symmetric_traffic(),
            256,
            Strategy::ShortestPath,
            cfg(),
            2,
        );
        assert!(s.completed);
        assert!(s.rate <= 1.2, "bus rate {}", s.rate);
        assert!(s.rate > 0.5, "bus rate {}", s.rate);
    }

    #[test]
    fn sweep_rates_increase_with_batch_size() {
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let samples = saturation_sweep(&m, &t, &[1, 4, 16], Strategy::ShortestPath, cfg(), 9);
        assert_eq!(samples.len(), 3);
        assert!(samples.iter().all(|s| s.completed));
        assert!(samples[2].rate >= samples[0].rate * 0.9);
        let plateau = plateau_rate(&samples).unwrap();
        assert!(plateau >= samples[2].rate * 0.999);
    }

    #[test]
    fn valiant_completes_on_de_bruijn() {
        let m = Machine::de_bruijn(5);
        let t = m.symmetric_traffic();
        let s = measure_rate(&m, &t, 4 * 32, Strategy::Valiant, cfg(), 21);
        assert!(s.completed);
        assert!(s.rate > 1.0);
    }

    #[test]
    fn backend_choice_is_outcome_invariant() {
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let tick = RouteCtx::new(&m);
        let events = RouteCtx::new(&m).with_backend(Backend::Events);
        assert_eq!(events.backend(), Backend::Events);
        for seed in 0..3u64 {
            let a = route_traffic_ctx(&tick, &t, 96, Strategy::ShortestPath, cfg(), seed ^ 1, seed);
            let b = route_traffic_ctx(
                &events,
                &t,
                96,
                Strategy::ShortestPath,
                cfg(),
                seed ^ 1,
                seed,
            );
            assert_eq!(a, b, "backends diverged at seed {seed}");
        }
    }

    #[test]
    fn backend_flag_round_trips() {
        assert_eq!(Backend::parse("tick"), Some(Backend::Tick));
        assert_eq!(Backend::parse("events"), Some(Backend::Events));
        assert_eq!(Backend::parse("warp"), None);
        assert_eq!(Backend::default(), Backend::Tick);
        for b in [Backend::Tick, Backend::Events] {
            assert_eq!(Backend::parse(b.as_str()), Some(b));
        }
    }

    #[test]
    #[should_panic(expected = "more processors")]
    fn traffic_must_fit_machine() {
        let m = Machine::linear_array(4);
        let t = Traffic::symmetric(8);
        let _ = measure_rate(&m, &t, 8, Strategy::ShortestPath, cfg(), 0);
    }
}
