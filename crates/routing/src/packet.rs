//! Packet and route types for the synchronous router.

use fcn_multigraph::NodeId;
use serde::{Deserialize, Serialize};

/// A packet with a fully precomputed route (vertex sequence, endpoints
/// included). Routes are computed by the [`crate::oracle::PathOracle`]
/// before simulation starts; the engine only walks them.
///
/// This is the *planner-facing* representation. Before the tick loop runs,
/// paths are flattened into a [`crate::compiled::PacketBatch`] — a
/// structure-of-arrays arena whose hops are pre-resolved to wire ids — so
/// the engine never chases `Vec<Vec<_>>` pointers or re-derives wires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketPath {
    /// Vertex sequence from source to destination. A single-vertex path is a
    /// packet already at its destination (delivered at tick 0).
    pub path: Vec<NodeId>,
}

impl PacketPath {
    /// A packet path over the given node walk.
    ///
    /// # Panics
    /// Panics if `path` is empty.
    pub fn new(path: Vec<NodeId>) -> Self {
        assert!(!path.is_empty(), "packet path cannot be empty");
        PacketPath { path }
    }

    /// Source node (first hop).
    pub fn src(&self) -> NodeId {
        self.path[0]
    }

    /// Destination node (last hop).
    pub fn dst(&self) -> NodeId {
        self.path[self.path.len() - 1]
    }

    /// Number of wire traversals this packet needs.
    pub fn hops(&self) -> usize {
        self.path.len() - 1
    }
}

/// How contended wires pick which queued packet to forward next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// First-in-first-out.
    Fifo,
    /// Farthest-remaining-distance first (a classic greedy heuristic).
    FarthestFirst,
    /// Uniform random ranks assigned at injection; lowest rank wins. This is
    /// the scheduling idea behind the Leighton–Maggs–Rao universal O(c + Λ)
    /// routing the paper's Theorem 6 invokes.
    RandomRank,
}

/// Routing strategy used to convert (src, dst) demands into paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// BFS shortest paths with per-source randomized tie-breaking.
    ShortestPath,
    /// Valiant's two-phase routing: shortest path to a uniformly random
    /// intermediate node, then to the destination.
    Valiant,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_accessors() {
        let p = PacketPath::new(vec![3, 1, 4, 1, 5]);
        assert_eq!(p.src(), 3);
        assert_eq!(p.dst(), 5);
        assert_eq!(p.hops(), 4);
    }

    #[test]
    fn trivial_packet() {
        let p = PacketPath::new(vec![7]);
        assert_eq!(p.src(), 7);
        assert_eq!(p.dst(), 7);
        assert_eq!(p.hops(), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_path_rejected() {
        let _ = PacketPath::new(vec![]);
    }
}
