//! Deterministic fork-join execution for sweep workloads.
//!
//! The workspace's hot paths — saturation sweeps over `trials ×
//! multipliers` grids, family sweeps over `(family, size)` cells, and
//! bottleneck audits over demand distributions — are embarrassingly
//! parallel, but naive parallelization destroys reproducibility: when jobs
//! share one sequential RNG, the answer depends on which thread draws
//! first.
//!
//! [`Pool`] fixes this with two rules:
//!
//! 1. **Seeds are a pure function of the job index.** [`job_seed`] derives
//!    each job's seed as a SplitMix64 mix of `(base_seed, job_index)`, so a
//!    job's entropy never depends on what other jobs ran before it.
//! 2. **Results are returned in job-index order**, whatever order the
//!    worker threads finished in.
//!
//! Together these make `pool.run_seeded(n, seed, f)` bit-identical for any
//! worker count — `--jobs 8` and `--jobs 1` produce the same bytes — which
//! the `tests/determinism.rs` suite checks end to end.
//!
//! ## Telemetry
//!
//! The pool is also the merge point of the [`fcn_telemetry`] shard design:
//! when the global registry is enabled, each job's metric delta is captured
//! from its worker's thread-local shard and the deltas are merged **in job
//! index order** into the calling thread's shard — so merged totals (all
//! `u64` additions) are bit-identical to a `--jobs 1` run, and gauges keep
//! the last job's value exactly as sequential execution would. The pool
//! additionally reports its own `exec_*` metrics (runs, jobs, per-worker
//! busy/idle nanos; the nano counters are wall-clock and excluded from
//! determinism comparisons). When the registry is disabled all of this
//! costs one relaxed load per `run` call.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use fcn_telemetry::LocalShard;

/// SplitMix64 finalizer over a base seed and a job index.
///
/// This is the workspace-wide convention for deriving independent seed
/// streams: the same mixing constants as the SplitMix64 generator, applied
/// to `base ⊕ stream(index)`. Distinct `(base, index)` pairs map to
/// well-separated seeds, and the result does not depend on any other job.
#[inline]
pub fn job_seed(base_seed: u64, job_index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(
        job_index
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Elapsed nanoseconds since `t0`, clamped into `u64`.
#[inline]
fn saturating_nanos(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Number of hardware threads, used when a job count of `0` ("auto") is
/// requested.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A deterministic fork-join pool.
///
/// The pool is a *policy* object (how many workers to use); it spawns
/// scoped threads per [`Pool::run`] call and joins them before returning,
/// so borrowed data can flow into jobs freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Default for Pool {
    /// A sequential pool. Parallelism is always opt-in (`--jobs N`).
    fn default() -> Self {
        Pool::sequential()
    }
}

impl Pool {
    /// A pool with `jobs` workers; `0` means "one per hardware thread".
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            available_parallelism()
        } else {
            jobs
        };
        Pool { jobs }
    }

    /// A single-worker pool: jobs run on the calling thread, in order.
    pub fn sequential() -> Self {
        Pool { jobs: 1 }
    }

    /// The worker count this pool will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `count` jobs, returning results in job-index order.
    ///
    /// Jobs are handed to workers through an atomic counter, so any worker
    /// may run any job — but because each job sees only its own index (and
    /// seeds derived from it), the output vector is independent of the
    /// assignment. With one worker this degenerates to a plain loop on the
    /// calling thread, with zero thread overhead.
    pub fn run<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(count);
        let tele_on = fcn_telemetry::global().enabled();
        if workers <= 1 {
            if !tele_on {
                return (0..count).map(f).collect();
            }
            // Sequential: jobs record straight into the caller's shard, which
            // is by definition the single-threaded reference the parallel
            // path must reproduce.
            let start = Instant::now();
            let out: Vec<T> = (0..count).map(f).collect();
            let busy = saturating_nanos(start);
            fcn_telemetry::with_shard(|s| {
                s.inc("exec_runs_total");
                s.add("exec_jobs_total", count as u64);
                s.set_gauge("exec_workers_last", 1);
                s.add("exec_worker_busy_nanos_total", busy);
            });
            return out;
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
        // Per-job metric deltas, captured on the worker and merged below in
        // job index order (never in completion order).
        let job_shards: Mutex<Vec<Option<LocalShard>>> = Mutex::new(if tele_on {
            (0..count).map(|_| None).collect()
        } else {
            Vec::new()
        });
        let busy_nanos = AtomicU64::new(0);
        let idle_nanos = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let spawned = Instant::now();
                    let mut busy = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let job_start = tele_on.then(Instant::now);
                        let value = f(i);
                        if let Some(t0) = job_start {
                            busy += saturating_nanos(t0);
                            // Worker threads start with an empty shard and we
                            // drain after every job, so this take is exactly
                            // job i's delta.
                            let shard = fcn_telemetry::take_shard();
                            if !shard.is_empty() {
                                job_shards.lock().expect("pool shards poisoned")[i] = Some(shard);
                            }
                        }
                        slots.lock().expect("pool slots poisoned")[i] = Some(value);
                    }
                    if tele_on {
                        let lifetime = saturating_nanos(spawned);
                        busy_nanos.fetch_add(busy, Ordering::Relaxed);
                        idle_nanos.fetch_add(lifetime.saturating_sub(busy), Ordering::Relaxed);
                    }
                });
            }
        });
        if tele_on {
            let shards = job_shards.into_inner().expect("pool shards poisoned");
            fcn_telemetry::with_shard(|s| {
                for shard in shards.into_iter().flatten() {
                    s.merge(&shard);
                }
                s.inc("exec_runs_total");
                s.add("exec_jobs_total", count as u64);
                s.set_gauge("exec_workers_last", workers as u64);
                s.add(
                    "exec_worker_busy_nanos_total",
                    busy_nanos.load(Ordering::Relaxed),
                );
                s.add(
                    "exec_worker_idle_nanos_total",
                    idle_nanos.load(Ordering::Relaxed),
                );
            });
        }
        slots
            .into_inner()
            .expect("pool slots poisoned")
            .into_iter()
            .map(|slot| slot.expect("job produced no result"))
            .collect()
    }

    /// Run `count` jobs, each receiving `(index, job_seed(base_seed, index))`.
    ///
    /// This is the canonical entry point for randomized sweeps: all entropy
    /// a job uses must flow from its seed argument, which makes the result
    /// a pure function of `(count, base_seed)`.
    pub fn run_seeded<T, F>(&self, count: usize, base_seed: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        self.run(count, |i| f(i, job_seed(base_seed, i as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seeds_are_index_pure() {
        // Seed for index 5 must not depend on whether 0..4 were computed.
        let direct = job_seed(0xbead, 5);
        let _ = job_seed(0xbead, 0);
        let _ = job_seed(0xbead, 3);
        assert_eq!(job_seed(0xbead, 5), direct);
        // Distinct indices and bases give distinct seeds.
        assert_ne!(job_seed(0xbead, 5), job_seed(0xbead, 6));
        assert_ne!(job_seed(0xbead, 5), job_seed(0xbeae, 5));
    }

    #[test]
    fn results_are_in_index_order() {
        let pool = Pool::new(4);
        let out = pool.run(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let work = |i: usize, seed: u64| {
            // A job whose output depends on both index and seed.
            (i as u64).wrapping_mul(seed) ^ seed.rotate_left(i as u32 % 64)
        };
        let seq = Pool::sequential().run_seeded(64, 42, work);
        for jobs in [2, 3, 8, 16] {
            let par = Pool::new(jobs).run_seeded(64, 42, work);
            assert_eq!(par, seq, "jobs={jobs} diverged from sequential");
        }
    }

    #[test]
    fn zero_means_auto() {
        assert!(Pool::new(0).jobs() >= 1);
        assert_eq!(Pool::sequential().jobs(), 1);
    }

    #[test]
    fn empty_and_tiny_counts() {
        let pool = Pool::new(8);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn merged_job_shards_match_sequential() {
        use fcn_telemetry as tele;
        // Unique metric names so concurrent tests in this binary can't
        // collide; all comparisons are against this thread's own shard.
        let work = |i: usize| {
            tele::with_shard(|s| {
                s.add("exectest_jobs_seen_total", 1);
                s.record("exectest_hist", (i as u64) % 13);
                s.set_gauge("exectest_last_index", i as u64);
            });
            i * 3
        };
        tele::global().set_enabled(true);
        let _ = tele::take_shard();
        let seq_out = Pool::sequential().run(40, work);
        let seq = tele::take_shard();
        assert_eq!(seq.counter("exectest_jobs_seen_total"), 40);
        for jobs in [2, 4, 8] {
            let par_out = Pool::new(jobs).run(40, work);
            let par = tele::take_shard();
            assert_eq!(par_out, seq_out, "jobs={jobs} results diverged");
            assert_eq!(
                par.counter("exectest_jobs_seen_total"),
                seq.counter("exectest_jobs_seen_total"),
                "jobs={jobs}"
            );
            assert_eq!(
                par.histogram("exectest_hist"),
                seq.histogram("exectest_hist"),
                "jobs={jobs}"
            );
            // Index-order merge keeps the *last* job's gauge, exactly like
            // sequential execution.
            assert_eq!(par.gauge("exectest_last_index"), Some(39), "jobs={jobs}");
            assert_eq!(par.counter("exec_jobs_total"), 40);
            assert_eq!(par.gauge("exec_workers_last"), Some(jobs as u64));
        }
        tele::global().set_enabled(false);
    }

    #[test]
    fn borrows_flow_into_jobs() {
        let data: Vec<u64> = (0..32).collect();
        let pool = Pool::new(4);
        let out = pool.run(data.len(), |i| data[i] * 2);
        assert_eq!(out[31], 62);
    }
}
