#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Deterministic fork-join execution for sweep workloads.
//!
//! The workspace's hot paths — saturation sweeps over `trials ×
//! multipliers` grids, family sweeps over `(family, size)` cells, and
//! bottleneck audits over demand distributions — are embarrassingly
//! parallel, but naive parallelization destroys reproducibility: when jobs
//! share one sequential RNG, the answer depends on which thread draws
//! first.
//!
//! [`Pool`] fixes this with two rules:
//!
//! 1. **Seeds are a pure function of the job index.** [`job_seed`] derives
//!    each job's seed as a SplitMix64 mix of `(base_seed, job_index)`, so a
//!    job's entropy never depends on what other jobs ran before it.
//! 2. **Results are returned in job-index order**, whatever order the
//!    worker threads finished in.
//!
//! Together these make `pool.run_seeded(n, seed, f)` bit-identical for any
//! worker count — `--jobs 8` and `--jobs 1` produce the same bytes — which
//! the `tests/determinism.rs` suite checks end to end.
//!
//! ## Telemetry
//!
//! The pool is also the merge point of the [`fcn_telemetry`] shard design:
//! when the global registry is enabled, each job's metric delta is captured
//! from its worker's thread-local shard and the deltas are merged **in job
//! index order** into the calling thread's shard — so merged totals (all
//! `u64` additions) are bit-identical to a `--jobs 1` run, and gauges keep
//! the last job's value exactly as sequential execution would. The pool
//! additionally reports its own `exec_*` metrics (runs, jobs, per-worker
//! busy/idle nanos; the nano counters are wall-clock and excluded from
//! determinism comparisons). When the registry is disabled all of this
//! costs one relaxed load per `run` call.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fcn_telemetry::LocalShard;

/// The workspace lockdep: ordered lock-rank assertions in debug builds.
///
/// This is the canonical import path for service/runtime code (`use
/// fcn_exec::lockdep::{lock_ranked, ranks}`); the implementation lives in
/// [`fcn_telemetry::lockdep`] because the telemetry registry sits below
/// this crate in the dependency stack and ranks its own maps too.
pub mod lockdep {
    pub use fcn_telemetry::lockdep::{
        lock_ranked, ranks, wait_timeout_ranked, LockRank, LockToken, RankedGuard,
    };
}

use lockdep::{lock_ranked, ranks, wait_timeout_ranked};

/// Domain separator for deterministic retry seeds: retry attempt `k` of job
/// `i` re-runs with `job_seed(base ⊕ job_seed(RETRY_STREAM, k), i)`, so the
/// retry schedule is a pure function of `(base seed, job index, attempt)` —
/// reproducible on any worker count, yet decorrelated from the failing draw.
pub const RETRY_STREAM: u64 = 0x7e72_a110_0000_0001;

/// The seed for attempt `attempt` (0 = first try) of job `job_index`.
///
/// Attempt 0 is exactly [`job_seed`]`(base_seed, job_index)` — a zero-retry
/// [`Pool::try_run_seeded`] draws the same seeds as [`Pool::run_seeded`].
#[inline]
pub fn retry_seed(base_seed: u64, job_index: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        job_seed(base_seed, job_index)
    } else {
        job_seed(
            base_seed ^ job_seed(RETRY_STREAM, attempt as u64),
            job_index,
        )
    }
}

/// Deterministic exponential backoff with decorrelated jitter, milliseconds.
///
/// The delay before retry `attempt` (1 = first retry; 0 returns 0 — the
/// first *attempt* waits for nothing) of logical request `index` is drawn
/// uniformly from `[base_ms, window]` where `window = min(cap_ms,
/// base_ms << (attempt - 1))` doubles per attempt. The draw comes from
/// [`retry_seed`]`(seed, index, attempt)`, so the whole schedule is a pure
/// function of `(seed, index, attempt)` — byte-identical at any client
/// concurrency — yet decorrelated across requests and attempts (no
/// thundering herd of synchronized retries).
#[inline]
pub fn backoff_ms(seed: u64, index: u64, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    if attempt == 0 {
        return 0;
    }
    let base = base_ms.max(1);
    let cap = cap_ms.max(base);
    let doubling = 1u64 << (attempt - 1).min(32);
    let window = base.saturating_mul(doubling).min(cap);
    let span = window - base; // window ≥ base by construction
    base + retry_seed(seed, index, attempt) % (span + 1)
}

/// Render a panic payload as text (panics carry `&str` or `String` in
/// practice; anything else is reported opaquely).
fn payload_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        p.downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

/// A job that panicked (every configured attempt), caught and reported as
/// data instead of aborting the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Index of the failing job.
    pub index: usize,
    /// Stringified panic payload of the *last* attempt.
    pub payload: String,
    /// Attempts made (1 = no retries configured).
    pub attempts: u32,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} panicked after {} attempt{}: {}",
            self.index,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.payload
        )
    }
}

impl std::error::Error for JobError {}

/// SplitMix64 finalizer over a base seed and a job index.
///
/// This is the workspace-wide convention for deriving independent seed
/// streams: the same mixing constants as the SplitMix64 generator, applied
/// to `base ⊕ stream(index)`. Distinct `(base, index)` pairs map to
/// well-separated seeds, and the result does not depend on any other job.
#[inline]
pub fn job_seed(base_seed: u64, job_index: u64) -> u64 {
    let mut z = base_seed.wrapping_add(
        job_index
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Elapsed nanoseconds since `t0`, clamped into `u64`.
#[inline]
fn saturating_nanos(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Number of hardware threads, used when a job count of `0` ("auto") is
/// requested.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A deterministic fork-join pool.
///
/// The pool is a *policy* object (how many workers to use); it spawns
/// scoped threads per [`Pool::run`] call and joins them before returning,
/// so borrowed data can flow into jobs freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    jobs: usize,
}

impl Default for Pool {
    /// A sequential pool. Parallelism is always opt-in (`--jobs N`).
    fn default() -> Self {
        Pool::sequential()
    }
}

impl Pool {
    /// A pool with `jobs` workers; `0` means "one per hardware thread".
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            available_parallelism()
        } else {
            jobs
        };
        Pool { jobs }
    }

    /// A single-worker pool: jobs run on the calling thread, in order.
    pub fn sequential() -> Self {
        Pool { jobs: 1 }
    }

    /// The worker count this pool will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run `count` jobs, returning results in job-index order.
    ///
    /// Jobs are handed to workers through an atomic counter, so any worker
    /// may run any job — but because each job sees only its own index (and
    /// seeds derived from it), the output vector is independent of the
    /// assignment. With one worker this degenerates to a plain loop on the
    /// calling thread, with zero thread overhead.
    pub fn run<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.jobs.min(count);
        let tele_on = fcn_telemetry::global().enabled();
        if workers <= 1 {
            if !tele_on {
                return (0..count).map(f).collect();
            }
            // Sequential: jobs record straight into the caller's shard, which
            // is by definition the single-threaded reference the parallel
            // path must reproduce.
            // Wall clock allowed: busy-nanos telemetry, excluded from
            // determinism comparisons.
            #[allow(clippy::disallowed_methods)]
            let start = Instant::now();
            let out: Vec<T> = (0..count).map(f).collect();
            let busy = saturating_nanos(start);
            fcn_telemetry::with_shard(|s| {
                s.inc(fcn_telemetry::names::EXEC_RUNS_TOTAL);
                s.add(fcn_telemetry::names::EXEC_JOBS_TOTAL, count as u64);
                s.set_gauge(fcn_telemetry::names::EXEC_WORKERS_LAST, 1);
                s.add(fcn_telemetry::names::EXEC_WORKER_BUSY_NANOS_TOTAL, busy);
            });
            return out;
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
        // Per-job metric deltas, captured on the worker and merged below in
        // job index order (never in completion order).
        let job_shards: Mutex<Vec<Option<LocalShard>>> = Mutex::new(if tele_on {
            (0..count).map(|_| None).collect()
        } else {
            Vec::new()
        });
        let busy_nanos = AtomicU64::new(0);
        let idle_nanos = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Wall clock allowed: busy/idle-nanos telemetry only.
                    #[allow(clippy::disallowed_methods)]
                    let spawned = Instant::now();
                    let mut busy = 0u64;
                    loop {
                        // ordering: the only requirement is that each worker
                        // claims a distinct index, which the atomic RMW gives
                        // regardless of ordering; no other memory is
                        // published through this counter.
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        #[allow(clippy::disallowed_methods)] // telemetry timing only
                        let job_start = tele_on.then(Instant::now);
                        let value = f(i);
                        if let Some(t0) = job_start {
                            busy += saturating_nanos(t0);
                            // Worker threads start with an empty shard and we
                            // drain after every job, so this take is exactly
                            // job i's delta.
                            let shard = fcn_telemetry::take_shard();
                            if !shard.is_empty() {
                                lock_ranked(&job_shards, ranks::EXEC_SHARDS)[i] = Some(shard);
                            }
                        }
                        lock_ranked(&slots, ranks::EXEC_SLOTS)[i] = Some(value);
                    }
                    if tele_on {
                        // ordering: commutative additions summed across
                        // workers; the reads below happen after the scope
                        // join, which already synchronizes.
                        let lifetime = saturating_nanos(spawned);
                        busy_nanos.fetch_add(busy, Ordering::Relaxed);
                        idle_nanos.fetch_add(lifetime.saturating_sub(busy), Ordering::Relaxed);
                    }
                });
            }
        });
        if tele_on {
            let shards = job_shards
                .into_inner()
                .unwrap_or_else(|poison| poison.into_inner());
            fcn_telemetry::with_shard(|s| {
                for shard in shards.into_iter().flatten() {
                    s.merge(&shard);
                }
                s.inc(fcn_telemetry::names::EXEC_RUNS_TOTAL);
                s.add(fcn_telemetry::names::EXEC_JOBS_TOTAL, count as u64);
                s.set_gauge(fcn_telemetry::names::EXEC_WORKERS_LAST, workers as u64);
                // ordering: the thread scope above already joined every
                // worker, so these reads observe the final totals; the
                // atomics only resolved cross-worker additions.
                s.add(
                    fcn_telemetry::names::EXEC_WORKER_BUSY_NANOS_TOTAL,
                    busy_nanos.load(Ordering::Relaxed),
                );
                s.add(
                    fcn_telemetry::names::EXEC_WORKER_IDLE_NANOS_TOTAL,
                    idle_nanos.load(Ordering::Relaxed),
                );
            });
        }
        slots
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                // A missing slot means job `i`'s closure unwound before
                // writing its result; name the culprit instead of the old
                // anonymous double-panic. (Reachable only if the caller's
                // closure swallows its own unwind bookkeeping —
                // `try_run`/`try_run_seeded` never leave holes.)
                // fcn-allow: ERR-UNWRAP deliberate panic propagation: re-raises a swallowed job panic with the job named
                slot.unwrap_or_else(|| panic!("job {i} panicked and produced no result"))
            })
            .collect()
    }

    /// [`Pool::run`] with per-job panic isolation: a panicking job becomes
    /// a typed [`JobError`] naming the job index instead of unwinding
    /// through the pool (first failing index wins, deterministically —
    /// never "whichever thread crashed first"). Successful results are
    /// bit-identical to [`Pool::run`].
    pub fn try_run<T, F>(&self, count: usize, f: F) -> Result<Vec<T>, JobError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        collect_first_error(self.run(count, |i| {
            catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|p| {
                record_job_panic();
                JobError {
                    index: i,
                    payload: payload_text(p.as_ref()),
                    attempts: 1,
                }
            })
        }))
    }

    /// [`Pool::run_seeded`] with panic isolation *and* deterministic seeded
    /// retry: a job that panics is re-run up to `retries` more times, each
    /// attempt with [`retry_seed`]`(base_seed, index, attempt)` — a fresh
    /// but fully reproducible seed, so a crash caused by one unlucky draw
    /// is retried identically at `--jobs 1` and `--jobs 64`. Jobs that
    /// exhaust every attempt surface as the lowest-index [`JobError`].
    ///
    /// With `retries = 0` and no panics this is bit-identical to
    /// [`Pool::run_seeded`].
    pub fn try_run_seeded<T, F>(
        &self,
        count: usize,
        base_seed: u64,
        retries: u32,
        f: F,
    ) -> Result<Vec<T>, JobError>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        collect_first_error(self.run(count, |i| {
            let mut payload = String::new();
            for attempt in 0..=retries {
                if attempt > 0 && fcn_telemetry::global().enabled() {
                    fcn_telemetry::with_shard(|s| {
                        s.inc(fcn_telemetry::names::EXEC_JOB_RETRIES_TOTAL)
                    });
                }
                let seed = retry_seed(base_seed, i as u64, attempt);
                match catch_unwind(AssertUnwindSafe(|| f(i, seed))) {
                    Ok(v) => return Ok(v),
                    Err(p) => {
                        record_job_panic();
                        payload = payload_text(p.as_ref());
                    }
                }
            }
            Err(JobError {
                index: i,
                payload,
                attempts: retries + 1,
            })
        }))
    }

    /// Run `count` jobs, each receiving `(index, job_seed(base_seed, index))`.
    ///
    /// This is the canonical entry point for randomized sweeps: all entropy
    /// a job uses must flow from its seed argument, which makes the result
    /// a pure function of `(count, base_seed)`.
    pub fn run_seeded<T, F>(&self, count: usize, base_seed: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, u64) -> T + Sync,
    {
        self.run(count, |i| f(i, job_seed(base_seed, i as u64)))
    }
}

/// Leader-side endpoints of a [`phased_scope`]: one request sender and one
/// response receiver per worker, indexed by worker id.
///
/// Each worker's request queue is FIFO (`std::sync::mpsc` ordering), so a
/// leader may pipeline several requests to the same worker and they are
/// processed in send order — the property the sharded router leans on to
/// overlap its one-way "arrivals" phase with the next tick's fan-out.
pub struct PhasedLinks<Req, Resp> {
    txs: Vec<std::sync::mpsc::Sender<Req>>,
    rxs: Vec<std::sync::mpsc::Receiver<Resp>>,
}

impl<Req, Resp> PhasedLinks<Req, Resp> {
    /// Number of workers in the scope.
    pub fn workers(&self) -> usize {
        self.txs.len()
    }

    /// Enqueue a request for worker `i` (FIFO per worker).
    ///
    /// # Panics
    /// Panics if worker `i` already exited — only possible when its closure
    /// panicked, in which case the enclosing scope re-raises that panic on
    /// join, so the propagation here merely unblocks the leader.
    pub fn send(&self, i: usize, req: Req) {
        let sent = self.txs[i].send(req);
        // fcn-allow: ERR-UNWRAP a dead worker means its closure panicked; panicking here lets the scope join and re-raise it
        sent.unwrap_or_else(|_| panic!("phased worker {i} exited before the leader finished"));
    }

    /// Block until worker `i` produces its next response.
    ///
    /// # Panics
    /// Panics if worker `i` exited without responding (its closure panicked
    /// or returned early); see [`PhasedLinks::send`].
    pub fn recv(&self, i: usize) -> Resp {
        let resp = self.rxs[i].recv();
        // fcn-allow: ERR-UNWRAP a dead worker means its closure panicked; panicking here lets the scope join and re-raise it
        resp.unwrap_or_else(|_| panic!("phased worker {i} exited without responding"))
    }
}

/// Run a leader over a fixed set of persistent scoped workers, fanning
/// requests out to the *same* threads phase after phase.
///
/// [`Pool::run`] spawns-and-joins per call, which is right for one-shot
/// grids but wrong for iterated phase loops (a tick-synchronous simulation
/// fans out thousands of times over identical worker-local state). This
/// primitive spawns `workers` scoped threads once, hands each the pair
/// `(worker id, request receiver, response sender)`, and runs `leader` with
/// the matching [`PhasedLinks`]. Workers keep their local state across
/// phases; determinism is the caller's contract, discharged the usual way —
/// the leader sends and receives **in worker-index order** and merges
/// responses itself.
///
/// Workers observe shutdown as a channel disconnect: when the leader
/// returns (or unwinds), the links drop, every pending `recv` on a request
/// channel errors, and the worker closure should return. All threads are
/// joined before `phased_scope` returns; a worker panic propagates to the
/// caller via the scope.
///
/// ```
/// use fcn_exec::phased_scope;
///
/// let total: u64 = phased_scope(
///     3,
///     &|id: usize, rx: std::sync::mpsc::Receiver<u64>, tx: std::sync::mpsc::Sender<u64>| {
///         let mut acc = 0;
///         while let Ok(x) = rx.recv() {
///             acc += x + id as u64; // worker-local state persists across phases
///             let _ = tx.send(acc);
///         }
///     },
///     |links| {
///         let mut sum = 0;
///         for phase in 0..4u64 {
///             for w in 0..links.workers() {
///                 links.send(w, phase);
///             }
///             for w in 0..links.workers() {
///                 sum += links.recv(w);
///             }
///         }
///         sum
///     },
/// );
/// assert!(total > 0);
/// ```
pub fn phased_scope<Req, Resp, W, L, R>(workers: usize, worker: &W, leader: L) -> R
where
    Req: Send,
    Resp: Send,
    W: Fn(usize, std::sync::mpsc::Receiver<Req>, std::sync::mpsc::Sender<Resp>) + Sync,
    L: FnOnce(&PhasedLinks<Req, Resp>) -> R,
{
    assert!(workers >= 1, "phased_scope needs at least one worker");
    let mut txs = Vec::with_capacity(workers);
    let mut rxs = Vec::with_capacity(workers);
    let mut ends = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (req_tx, req_rx) = std::sync::mpsc::channel();
        let (resp_tx, resp_rx) = std::sync::mpsc::channel();
        txs.push(req_tx);
        rxs.push(resp_rx);
        ends.push((req_rx, resp_tx));
    }
    let links = PhasedLinks { txs, rxs };
    std::thread::scope(|scope| {
        for (i, (req_rx, resp_tx)) in ends.into_iter().enumerate() {
            scope.spawn(move || worker(i, req_rx, resp_tx));
        }
        let out = leader(&links);
        // Disconnect every request channel so workers drain and exit; the
        // scope then joins them before returning. If `leader` unwound
        // instead, the links drop during unwinding with the same effect.
        drop(links);
        out
    })
}

/// Fold per-job results into all-or-first-error, by job index (so the
/// reported failure is deterministic regardless of completion order).
fn collect_first_error<T>(results: Vec<Result<T, JobError>>) -> Result<Vec<T>, JobError> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Bump the job-panic counter into this worker's shard (merged in job-index
/// order like every other metric, so panic counts are worker-count
/// independent).
fn record_job_panic() {
    if fcn_telemetry::global().enabled() {
        fcn_telemetry::with_shard(|s| s.inc(fcn_telemetry::names::EXEC_JOB_PANICS_TOTAL));
    }
}

/// A shared cancellation flag: cloned into workers/watchdogs, checked by
/// long loops at a natural granularity (the router checks once per tick via
/// `route_compiled_gated`). Raising it is idempotent and never unsafe —
/// consumers stop at their next check with a typed `Cancelled` outcome.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raise the flag. All clones observe it.
    pub fn cancel(&self) {
        // ordering: monotone best-effort stop hint — no data is published
        // through the flag, and a tick of staleness only delays the stop.
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has the flag been raised?
    pub fn is_cancelled(&self) -> bool {
        // ordering: see `cancel` — a stale read is benign by design.
        self.0.load(Ordering::Relaxed)
    }

    /// The underlying flag, for consumers that poll a raw
    /// `&AtomicBool` (e.g. `fcn_routing::route_compiled_gated`).
    pub fn flag(&self) -> &AtomicBool {
        &self.0
    }
}

/// A wall-clock watchdog: arms a timer on a helper thread and raises a
/// [`CancelToken`] if the timer expires before the watchdog is dropped.
///
/// Dropping the watchdog disarms it (condvar wakeup + join — no dangling
/// thread, no spurious late cancellation), so the usual shape is
///
/// ```
/// use fcn_exec::Watchdog;
/// use std::time::Duration;
///
/// let dog = Watchdog::arm(Duration::from_secs(3600));
/// let cancel = dog.token().clone();
/// // ... long sweep passing `cancel.flag()` into route_compiled_gated ...
/// assert!(!dog.fired());
/// drop(dog); // disarms
/// ```
///
/// Firing is inherently wall-clock dependent and therefore *not* part of
/// the determinism envelope; the telemetry counter
/// `exec_watchdog_fired_total` records it as an exceptional event.
#[derive(Debug)]
pub struct Watchdog {
    disarm: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
    token: CancelToken,
}

impl Watchdog {
    /// Arm a watchdog with a fresh token.
    pub fn arm(timeout: Duration) -> Watchdog {
        Watchdog::arm_token(CancelToken::new(), timeout)
    }

    /// Arm a watchdog that cancels an existing `token` on expiry.
    pub fn arm_token(token: CancelToken, timeout: Duration) -> Watchdog {
        let disarm = Arc::new((Mutex::new(false), Condvar::new()));
        let pair = Arc::clone(&disarm);
        let fire = token.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*pair;
            // Wall clock allowed: the watchdog *is* a wall-clock device;
            // it cancels runaway runs and never feeds simulated state.
            #[allow(clippy::disallowed_methods)]
            let deadline = Instant::now() + timeout;
            let mut disarmed = lock_ranked(lock, ranks::EXEC_WATCHDOG);
            loop {
                if *disarmed {
                    return;
                }
                #[allow(clippy::disallowed_methods)] // watchdog deadline check
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (g, _) = wait_timeout_ranked(cv, disarmed, deadline - now);
                disarmed = g;
            }
            drop(disarmed);
            fire.cancel();
            if fcn_telemetry::global().enabled() {
                fcn_telemetry::with_shard(|s| {
                    s.inc(fcn_telemetry::names::EXEC_WATCHDOG_FIRED_TOTAL)
                });
                fcn_telemetry::flush_thread_shard(fcn_telemetry::global());
            }
        });
        Watchdog {
            disarm,
            handle: Some(handle),
            token,
        }
    }

    /// The token this watchdog will cancel.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Did the watchdog expire (i.e. is its token cancelled)?
    pub fn fired(&self) -> bool {
        self.token.is_cancelled()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        {
            let (lock, cv) = &*self.disarm;
            *lock_ranked(lock, ranks::EXEC_WATCHDOG) = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seeds_are_index_pure() {
        // Seed for index 5 must not depend on whether 0..4 were computed.
        let direct = job_seed(0xbead, 5);
        let _ = job_seed(0xbead, 0);
        let _ = job_seed(0xbead, 3);
        assert_eq!(job_seed(0xbead, 5), direct);
        // Distinct indices and bases give distinct seeds.
        assert_ne!(job_seed(0xbead, 5), job_seed(0xbead, 6));
        assert_ne!(job_seed(0xbead, 5), job_seed(0xbeae, 5));
    }

    #[test]
    fn results_are_in_index_order() {
        let pool = Pool::new(4);
        let out = pool.run(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_sequential() {
        let work = |i: usize, seed: u64| {
            // A job whose output depends on both index and seed.
            (i as u64).wrapping_mul(seed) ^ seed.rotate_left(i as u32 % 64)
        };
        let seq = Pool::sequential().run_seeded(64, 42, work);
        for jobs in [2, 3, 8, 16] {
            let par = Pool::new(jobs).run_seeded(64, 42, work);
            assert_eq!(par, seq, "jobs={jobs} diverged from sequential");
        }
    }

    #[test]
    fn zero_means_auto() {
        assert!(Pool::new(0).jobs() >= 1);
        assert_eq!(Pool::sequential().jobs(), 1);
    }

    #[test]
    fn empty_and_tiny_counts() {
        let pool = Pool::new(8);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn merged_job_shards_match_sequential() {
        use fcn_telemetry as tele;
        // Unique metric names so concurrent tests in this binary can't
        // collide; all comparisons are against this thread's own shard.
        let work = |i: usize| {
            tele::with_shard(|s| {
                s.add("exectest_jobs_seen_total", 1);
                s.record("exectest_hist", (i as u64) % 13);
                s.set_gauge("exectest_last_index", i as u64);
            });
            i * 3
        };
        tele::global().set_enabled(true);
        let _ = tele::take_shard();
        let seq_out = Pool::sequential().run(40, work);
        let seq = tele::take_shard();
        assert_eq!(seq.counter("exectest_jobs_seen_total"), 40);
        for jobs in [2, 4, 8] {
            let par_out = Pool::new(jobs).run(40, work);
            let par = tele::take_shard();
            assert_eq!(par_out, seq_out, "jobs={jobs} results diverged");
            assert_eq!(
                par.counter("exectest_jobs_seen_total"),
                seq.counter("exectest_jobs_seen_total"),
                "jobs={jobs}"
            );
            assert_eq!(
                par.histogram("exectest_hist"),
                seq.histogram("exectest_hist"),
                "jobs={jobs}"
            );
            // Index-order merge keeps the *last* job's gauge, exactly like
            // sequential execution.
            assert_eq!(par.gauge("exectest_last_index"), Some(39), "jobs={jobs}");
            assert_eq!(par.counter(fcn_telemetry::names::EXEC_JOBS_TOTAL), 40);
            assert_eq!(
                par.gauge(fcn_telemetry::names::EXEC_WORKERS_LAST),
                Some(jobs as u64)
            );
        }
        tele::global().set_enabled(false);
    }

    #[test]
    fn borrows_flow_into_jobs() {
        let data: Vec<u64> = (0..32).collect();
        let pool = Pool::new(4);
        let out = pool.run(data.len(), |i| data[i] * 2);
        assert_eq!(out[31], 62);
    }

    #[test]
    fn retry_seed_attempt_zero_matches_job_seed() {
        for i in 0..16u64 {
            assert_eq!(retry_seed(0xfeed, i, 0), job_seed(0xfeed, i));
            assert_ne!(retry_seed(0xfeed, i, 1), job_seed(0xfeed, i));
            assert_ne!(retry_seed(0xfeed, i, 1), retry_seed(0xfeed, i, 2));
        }
    }

    #[test]
    fn try_run_reports_the_lowest_failing_index() {
        for jobs in [1, 4] {
            let pool = Pool::new(jobs);
            let err = pool
                .try_run(32, |i| {
                    if i == 7 || i == 21 {
                        panic!("boom at {i}");
                    }
                    i * 2
                })
                .unwrap_err();
            assert_eq!(err.index, 7, "jobs={jobs}");
            assert_eq!(err.attempts, 1);
            assert!(err.payload.contains("boom at 7"), "{}", err.payload);
            assert!(err.to_string().contains("job 7 panicked"));
        }
    }

    #[test]
    fn try_run_matches_run_when_nothing_panics() {
        let pool = Pool::new(3);
        let ok = pool.try_run(20, |i| i + 1).unwrap();
        assert_eq!(ok, pool.run(20, |i| i + 1));
        let seeded = pool.try_run_seeded(20, 9, 0, |_, s| s).unwrap();
        assert_eq!(seeded, pool.run_seeded(20, 9, |_, s| s));
    }

    #[test]
    fn seeded_retry_is_deterministic_across_worker_counts() {
        // Job 5 panics on its first-attempt seed and succeeds on the
        // deterministic retry seed; every worker count must agree on the
        // final output bytes.
        let work = |i: usize, seed: u64| {
            if i == 5 && seed == retry_seed(0xabc, 5, 0) {
                panic!("flaky draw");
            }
            seed ^ (i as u64)
        };
        let seq = Pool::sequential()
            .try_run_seeded(12, 0xabc, 2, work)
            .unwrap();
        for jobs in [2, 4, 8] {
            let par = Pool::new(jobs).try_run_seeded(12, 0xabc, 2, work).unwrap();
            assert_eq!(par, seq, "jobs={jobs}");
        }
        assert_eq!(seq[5], retry_seed(0xabc, 5, 1) ^ 5);
    }

    #[test]
    fn exhausted_retries_surface_attempt_count() {
        let err = Pool::new(2)
            .try_run_seeded(4, 1, 3, |i, _| {
                if i == 2 {
                    panic!("always fails");
                }
                i
            })
            .unwrap_err();
        assert_eq!((err.index, err.attempts), (2, 4));
    }

    #[test]
    // Testing the watchdog *is* measuring wall time (one of clippy.toml's
    // sanctioned sites); the deadline guards against a hung test, not output.
    #[allow(clippy::disallowed_methods)]
    fn watchdog_fires_and_cancels_token() {
        let dog = Watchdog::arm(Duration::from_millis(10));
        let token = dog.token().clone();
        let t0 = Instant::now();
        while !token.is_cancelled() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "watchdog never fired"
            );
            std::thread::yield_now();
        }
        assert!(dog.fired());
    }

    #[test]
    fn phased_workers_keep_state_across_phases() {
        // Each worker accumulates across phases; the leader's index-ordered
        // fan-in sees every partial sum, proving the threads persist.
        let worker =
            |id: usize, rx: std::sync::mpsc::Receiver<u64>, tx: std::sync::mpsc::Sender<u64>| {
                let mut acc = 0u64;
                while let Ok(x) = rx.recv() {
                    acc += x * (id as u64 + 1);
                    let _ = tx.send(acc);
                }
            };
        let history = phased_scope(4, &worker, |links| {
            assert_eq!(links.workers(), 4);
            let mut history = Vec::new();
            for phase in 1..=3u64 {
                for w in 0..links.workers() {
                    links.send(w, phase);
                }
                let round: Vec<u64> = (0..links.workers()).map(|w| links.recv(w)).collect();
                history.push(round);
            }
            history
        });
        // Worker w's accumulator after phases 1..=p is (1+2+...+p)*(w+1).
        assert_eq!(history[0], vec![1, 2, 3, 4]);
        assert_eq!(history[1], vec![3, 6, 9, 12]);
        assert_eq!(history[2], vec![6, 12, 18, 24]);
    }

    #[test]
    fn phased_requests_are_fifo_per_worker() {
        // Pipelining several requests to one worker before collecting any
        // response must preserve send order (the router's one-way "arrivals"
        // phase depends on this).
        let worker =
            |_id: usize, rx: std::sync::mpsc::Receiver<u64>, tx: std::sync::mpsc::Sender<u64>| {
                let mut log = Vec::new();
                while let Ok(x) = rx.recv() {
                    if x == u64::MAX {
                        let _ = tx.send(
                            log.iter()
                                .enumerate()
                                .map(|(i, v)| v * (i as u64 + 1))
                                .sum(),
                        );
                    } else {
                        log.push(x);
                    }
                }
            };
        let folded = phased_scope(1, &worker, |links| {
            for x in [7u64, 11, 13] {
                links.send(0, x);
            }
            links.send(0, u64::MAX);
            links.recv(0)
        });
        assert_eq!(folded, 7 + 2 * 11 + 3 * 13);
    }

    #[test]
    fn phased_leader_result_and_borrows_flow_through() {
        let data: Vec<u64> = (0..16).collect();
        let worker =
            |id: usize, rx: std::sync::mpsc::Receiver<usize>, tx: std::sync::mpsc::Sender<u64>| {
                while let Ok(i) = rx.recv() {
                    let _ = tx.send(data[i] + id as u64);
                }
            };
        let out = phased_scope(2, &worker, |links| {
            links.send(0, 3);
            links.send(1, 5);
            links.recv(0) + links.recv(1)
        });
        assert_eq!(out, 3 + (5 + 1));
    }

    #[test]
    fn dropped_watchdog_does_not_fire() {
        let token = CancelToken::new();
        let dog = Watchdog::arm_token(token.clone(), Duration::from_secs(3600));
        assert!(!dog.fired());
        drop(dog); // must disarm + join promptly, not hang for an hour
        assert!(!token.is_cancelled());
        // The flag view is shared with clones.
        token.cancel();
        assert!(token.flag().load(Ordering::Relaxed));
    }

    #[test]
    // The boundary check measures wall time on purpose (sanctioned site).
    #[allow(clippy::disallowed_methods)]
    fn watchdog_fires_at_the_zero_deadline_boundary() {
        // A zero deadline is the degenerate boundary: already expired when
        // armed. The watchdog must fire promptly, not wait for a first
        // timeout tick or hang.
        let dog = Watchdog::arm(Duration::ZERO);
        let token = dog.token().clone();
        let t0 = Instant::now();
        while !token.is_cancelled() {
            assert!(
                t0.elapsed() < Duration::from_secs(10),
                "zero-deadline watchdog never fired"
            );
            std::thread::yield_now();
        }
        assert!(dog.fired());
    }

    #[test]
    fn backoff_schedule_is_a_pure_function_of_its_inputs() {
        for index in 0..8u64 {
            for attempt in 0..6u32 {
                let a = backoff_ms(0xdead, index, attempt, 10, 400);
                let b = backoff_ms(0xdead, index, attempt, 10, 400);
                assert_eq!(a, b, "index={index} attempt={attempt}");
            }
        }
        // Distinct requests and attempts decorrelate: not every pair may
        // differ (small windows collide), but across a spread of draws the
        // schedule must not be constant.
        let draws: std::collections::BTreeSet<u64> = (0..32u64)
            .map(|i| backoff_ms(0xdead, i, 3, 10, 4000))
            .collect();
        assert!(draws.len() > 16, "jitter collapsed: {draws:?}");
    }

    #[test]
    fn backoff_is_bounded_and_window_doubles() {
        for index in 0..64u64 {
            assert_eq!(backoff_ms(7, index, 0, 10, 400), 0, "attempt 0 waits 0");
            for attempt in 1..10u32 {
                let d = backoff_ms(7, index, attempt, 10, 400);
                let window = (10u64 << (attempt - 1)).min(400);
                assert!(
                    (10..=window).contains(&d),
                    "index={index} attempt={attempt}: {d} outside [10, {window}]"
                );
            }
        }
        // Degenerate configs never panic or exceed their cap.
        assert_eq!(backoff_ms(1, 0, 1, 0, 0), 1, "zero base clamps to 1 ms");
        assert!(backoff_ms(1, 0, 63, u64::MAX / 2, u64::MAX) >= u64::MAX / 2);
        assert_eq!(backoff_ms(1, 0, 40, 100, 100), 100, "cap pins the window");
    }
}
