//! Executable emulation strategies — measured *upper* bounds that sandwich
//! the theorem's lower bound.
//!
//! Two strategies are provided:
//!
//! * [`direct_emulation`] — the classic embedding emulation: guest
//!   processors are block-assigned to host processors; each guest step
//!   delivers one message per guest wire between images (routed on the
//!   host) and then performs the assigned guest operations serially.
//! * [`block_mesh_emulation`] — a *redundant* emulation for mesh guests in
//!   the spirit of the redundant model [Koch et al. 7]: each host processor
//!   owns a cube of guest cells plus a halo of width `w`; it simulates `w`
//!   guest steps per phase locally (recomputing halo cells redundantly) and
//!   exchanges halos only once per phase — amortizing host distance/latency
//!   across `w` steps at the price of a bounded work-inefficiency factor.
//!   This is exactly the trade the paper's lower bound must survive, and
//!   the reason it must assume the general redundant model.

use fcn_multigraph::{contiguous_blocks, NodeId};
use fcn_routing::{plan_routes, RouteCtx, RouterConfig, Strategy};
use fcn_topology::Machine;
use serde::{Deserialize, Serialize};

/// Configuration shared by the emulation strategies.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EmulationConfig {
    /// Router configuration for sampled guest steps.
    pub router: RouterConfig,
    /// Path-planning strategy.
    pub strategy: Strategy,
    /// Base seed for planning and routing randomness.
    pub seed: u64,
    /// How many distinct guest steps to route as samples (the per-step
    /// demand set is identical up to routing randomness; sampling more
    /// steps tightens the estimate).
    pub sample_steps: u32,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            router: RouterConfig::default(),
            strategy: Strategy::ShortestPath,
            seed: 0xe30,
            sample_steps: 3,
        }
    }
}

/// Measured outcome of emulating `guest_steps` guest steps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmulationReport {
    /// Guest machine name.
    pub guest: String,
    /// Host machine name.
    pub host: String,
    /// Guest processor count `n`.
    pub guest_n: usize,
    /// Host processor count `m`.
    pub host_m: usize,
    /// Guest steps emulated.
    pub guest_steps: u64,
    /// Host ticks spent computing guest operations (serially per host
    /// processor; one guest operation = one tick).
    pub compute_ticks: u64,
    /// Host ticks spent routing messages.
    pub route_ticks: u64,
    /// Max guest processors assigned to one host processor.
    pub max_load: u32,
    /// For redundant strategies: host operations performed per useful guest
    /// operation (the paper's inefficiency `I`; 1.0 = work-preserving).
    pub work_ratio: f64,
}

impl EmulationReport {
    /// Total host time.
    pub fn host_ticks(&self) -> u64 {
        self.compute_ticks + self.route_ticks
    }

    /// Measured slowdown `S = T_H / T_G`.
    pub fn slowdown(&self) -> f64 {
        self.host_ticks() as f64 / self.guest_steps.max(1) as f64
    }

    /// Measured communication-induced slowdown only.
    pub fn communication_slowdown(&self) -> f64 {
        self.route_ticks as f64 / self.guest_steps.max(1) as f64
    }
}

/// Direct (embedding) emulation of `guest` on `host` for `guest_steps`
/// steps. Guest processors are assigned to host processors in contiguous
/// blocks; every guest step routes one message per guest wire (both
/// directions) whose endpoints map to different host processors.
pub fn direct_emulation(
    guest: &Machine,
    host: &Machine,
    guest_steps: u64,
    cfg: &EmulationConfig,
) -> EmulationReport {
    let n = guest.processors();
    let m = host.processors();
    assert!(m >= 1 && n >= m, "direct emulation expects |H| <= |G|");
    let assign = contiguous_blocks(n, m);
    let max_load = {
        let mut loads = vec![0u32; m];
        for &s in &assign {
            loads[s as usize] += 1;
        }
        loads.iter().copied().max().unwrap_or(0)
    };

    // Demands of one guest step: each guest edge {u,v} sends u->v and v->u.
    let mut demands: Vec<(NodeId, NodeId)> = Vec::new();
    for e in guest.graph().edges() {
        if e.u as usize >= n || e.v as usize >= n {
            continue; // auxiliary guest nodes don't compute
        }
        let (a, b) = (assign[e.u as usize], assign[e.v as usize]);
        if a != b {
            for _ in 0..e.multiplicity {
                demands.push((a, b));
                demands.push((b, a));
            }
        }
    }

    // Route a few sample steps and average (one host compilation serves all
    // samples).
    let ctx = RouteCtx::new(host);
    let samples = cfg.sample_steps.max(1);
    let mut route_total = 0u64;
    for s in 0..samples {
        let seed = cfg.seed.wrapping_add(s as u64 * 7919);
        let ticks = if demands.is_empty() {
            0
        } else {
            let routes = plan_routes(host, &demands, cfg.strategy, seed);
            let out = ctx.route_paths(&routes, cfg.router);
            assert!(out.completed, "routing did not complete; raise max_ticks");
            out.ticks
        };
        route_total += ticks;
    }
    let route_per_step = route_total as f64 / samples as f64;

    EmulationReport {
        guest: guest.name().to_string(),
        host: host.name().to_string(),
        guest_n: n,
        host_m: m,
        guest_steps,
        compute_ticks: max_load as u64 * guest_steps,
        route_ticks: (route_per_step * guest_steps as f64).round() as u64,
        max_load,
        work_ratio: (max_load as u64 * m as u64) as f64 / n as f64,
    }
}

/// Redundant block emulation of a k-dimensional mesh guest.
///
/// The guest is `mesh(k, guest_side)`; the host has `m = h^k` processors
/// for some integer `h` dividing `guest_side`. Each host processor owns a
/// `b^k` cube (`b = guest_side/h`) plus a halo of width `halo_w`; one
/// *phase* simulates `halo_w` guest steps locally (the halo shrinks one
/// layer per step, so interior results stay exact) and then refreshes halos
/// with one bulk exchange of `halo_w · b^{k-1}` messages per adjacent cube
/// pair.
pub fn block_mesh_emulation(
    k: u8,
    guest_side: usize,
    host: &Machine,
    halo_w: u32,
    guest_steps: u64,
    cfg: &EmulationConfig,
) -> EmulationReport {
    assert!(k >= 1 && halo_w >= 1);
    let kk = k as usize;
    let m = host.processors();
    let h = (m as f64).powf(1.0 / k as f64).round() as usize;
    assert_eq!(h.pow(k as u32), m, "host size must be a k-th power");
    assert!(
        guest_side.is_multiple_of(h),
        "guest side {guest_side} must be divisible by grid {h}"
    );
    let b = guest_side / h;
    assert!(
        (halo_w as usize) <= b,
        "halo width must not exceed the block side"
    );
    let n = guest_side.pow(k as u32);

    // Messages of one phase: for each pair of cube-adjacent host processors,
    // halo_w·b^{k-1} packets each way.
    let face = halo_w as usize * b.pow(k as u32 - 1);
    let mut demands: Vec<(NodeId, NodeId)> = Vec::new();
    for cube in 0..m {
        let coords = fcn_topology::mesh::coords_of(cube, kk, h);
        for d in 0..kk {
            if coords[d] + 1 < h {
                let mut c2 = coords.clone();
                c2[d] += 1;
                let other = fcn_topology::mesh::id_of(&c2, h);
                for _ in 0..face {
                    demands.push((cube as NodeId, other as NodeId));
                    demands.push((other as NodeId, cube as NodeId));
                }
            }
        }
    }

    let ctx = RouteCtx::new(host);
    let samples = cfg.sample_steps.max(1);
    let mut route_total = 0u64;
    for s in 0..samples {
        let seed = cfg.seed.wrapping_add(s as u64 * 104_729);
        let ticks = if demands.is_empty() {
            0
        } else {
            let routes = plan_routes(host, &demands, cfg.strategy, seed);
            let out = ctx.route_paths(&routes, cfg.router);
            assert!(out.completed, "phase routing did not complete");
            out.ticks
        };
        route_total += ticks;
    }
    let route_per_phase = route_total as f64 / samples as f64;

    // Compute per phase: step i (0-based) updates the cells whose results
    // are still needed: (b + 2(halo_w - i))^k, summed over the w steps.
    let compute_per_phase: u64 = (0..halo_w)
        .map(|i| ((b + 2 * (halo_w - i) as usize) as u64).pow(k as u32))
        .sum();
    let phases = guest_steps.div_ceil(halo_w as u64);
    let useful_per_phase = (halo_w as u64) * (b as u64).pow(k as u32);

    EmulationReport {
        guest: format!("mesh{k}(side={guest_side})"),
        host: host.name().to_string(),
        guest_n: n,
        host_m: m,
        guest_steps,
        compute_ticks: phases * compute_per_phase,
        route_ticks: (route_per_phase * phases as f64).round() as u64,
        max_load: (b as u32).pow(k as u32),
        work_ratio: compute_per_phase as f64 / useful_per_phase as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theorem::slowdown_lower_bound;
    use fcn_topology::Family;

    fn cfg() -> EmulationConfig {
        EmulationConfig {
            sample_steps: 2,
            ..Default::default()
        }
    }

    #[test]
    fn identity_emulation_has_unit_load_and_no_comm_free_lunch() {
        // mesh on itself: load 1, slowdown O(1 + route of one wire set).
        let g = Machine::mesh(2, 4);
        let h = Machine::mesh(2, 4);
        let r = direct_emulation(&g, &h, 10, &cfg());
        assert_eq!(r.max_load, 1);
        assert!((r.work_ratio - 1.0).abs() < 1e-12);
        // Each step routes each wire's two messages: constant ticks.
        assert!(r.slowdown() <= 8.0, "slowdown {}", r.slowdown());
    }

    #[test]
    fn measured_slowdown_respects_the_lower_bound() {
        // de Bruijn guest on small mesh host: measured S must exceed the
        // theorem's bound (modulo tiny constants).
        let g = Machine::de_bruijn(6); // n = 64
        let h = Machine::mesh(2, 3); // m = 9
        let r = direct_emulation(&g, &h, 12, &cfg());
        let bound = slowdown_lower_bound(&Family::DeBruijn, &Family::Mesh(2));
        let predicted = bound.eval(64.0, 9.0);
        assert!(
            r.slowdown() >= 0.5 * predicted,
            "measured {} vs bound {predicted}",
            r.slowdown()
        );
    }

    #[test]
    fn bigger_hosts_route_faster_until_bandwidth_binds() {
        let g = Machine::de_bruijn(7); // n = 128
        let small = Machine::mesh(2, 2);
        let large = Machine::mesh(2, 6);
        let rs = direct_emulation(&g, &small, 6, &cfg());
        let rl = direct_emulation(&g, &large, 6, &cfg());
        assert!(rl.communication_slowdown() < rs.communication_slowdown());
        assert!(rl.max_load < rs.max_load);
    }

    #[test]
    fn block_emulation_amortizes_distance() {
        // Mesh guest on a tree host (distance Θ(lg m)): block phases with
        // w > 1 must beat per-step exchanges in communication per step.
        let host = Machine::mesh(2, 4); // placeholder to size the guest
        let _ = host;
        let tree_host = Machine::custom(
            Family::Tree,
            "tree16".into(),
            Machine::tree(4).graph().clone(),
            16,
            fcn_topology::SendCapacity::Unlimited,
            vec![],
        );
        let r1 = block_mesh_emulation(2, 32, &tree_host, 1, 8, &cfg());
        let r4 = block_mesh_emulation(2, 32, &tree_host, 4, 8, &cfg());
        assert!(
            r4.communication_slowdown() < r1.communication_slowdown() * 1.05,
            "w=4 {} vs w=1 {}",
            r4.communication_slowdown(),
            r1.communication_slowdown()
        );
        // Redundancy costs bounded extra work.
        assert!(r4.work_ratio > 1.0);
        assert!(r4.work_ratio < 4.0, "work ratio {}", r4.work_ratio);
        assert!((r1.work_ratio - ((8f64 + 2.0) / 8.0).powi(2)).abs() < 0.2);
    }

    #[test]
    fn block_emulation_on_mesh_host_is_efficient() {
        let host = Machine::mesh(2, 4);
        let r = block_mesh_emulation(2, 16, &host, 2, 8, &cfg());
        assert_eq!(r.guest_n, 256);
        assert_eq!(r.host_m, 16);
        assert_eq!(r.max_load, 16);
        // Load-induced slowdown n/m = 16 dominates; total within a small
        // constant of it.
        assert!(r.slowdown() >= 16.0);
        assert!(r.slowdown() <= 16.0 * 6.0, "slowdown {}", r.slowdown());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn block_emulation_checks_geometry() {
        let host = Machine::mesh(2, 3);
        let _ = block_mesh_emulation(2, 16, &host, 1, 4, &cfg());
    }
}
