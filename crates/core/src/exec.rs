//! Semantic verification of emulations: do they compute the right values?
//!
//! The timing story (slowdown bounds) is only meaningful if the emulation
//! strategies are *correct* — every guest value a step needs must actually
//! be present where it is computed. This module gives guest computations a
//! concrete semantics (a deterministic state-mixing step whose result
//! depends on every input, so any missing or stale value changes the
//! output) and re-executes the emulation strategies value-for-value:
//!
//! * [`reference_run`] — the guest itself;
//! * [`verify_direct_emulation`] — the block-assigned host, where each host
//!   processor may only use values it owns or received over a routed guest
//!   edge that step;
//! * [`verify_block_emulation`] — the redundant halo strategy, where a host
//!   processor recomputes halo cells locally and exchanges only once per
//!   phase. The halo-shrinking algebra is subtle; this check proves it
//!   exact.

use fcn_multigraph::{contiguous_blocks, Multigraph, NodeId};
use fcn_topology::mesh::{coords_of, id_of};
use serde::{Deserialize, Serialize};

/// One deterministic guest step: every vertex mixes its own state with all
/// neighbor states. The mix is commutative over neighbors (like any
/// bulk-synchronous stencil) but sensitive to every input bit.
pub fn guest_step(graph: &Multigraph, states: &[u64]) -> Vec<u64> {
    let n = graph.node_count();
    assert_eq!(states.len(), n);
    let mut next = vec![0u64; n];
    for (v, slot) in next.iter_mut().enumerate() {
        *slot = mix(
            states[v],
            graph
                .neighbors(v as NodeId)
                .filter(|&(u, _)| u as usize != v)
                .map(|(u, m)| (states[u as usize], m)),
        );
    }
    next
}

/// The vertex update rule: own state rotated, plus a multiplicity-weighted
/// commutative combination of neighbor states.
fn mix(own: u64, neighbors: impl Iterator<Item = (u64, u32)>) -> u64 {
    let mut acc = own.rotate_left(7) ^ 0x9e37_79b9_7f4a_7c15;
    for (s, m) in neighbors {
        // Commutative (wrapping add) but value- and multiplicity-sensitive.
        acc = acc.wrapping_add(s.wrapping_mul(0x100_0000_01b3).wrapping_add(m as u64));
    }
    acc.wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
}

/// Mixed-radix counter increment over `dims` digits each in `0..base`;
/// returns `false` when the counter wraps back to all zeros (done).
fn inc_index(idx: &mut [usize], base: usize) -> bool {
    for d in (0..idx.len()).rev() {
        idx[d] += 1;
        if idx[d] < base {
            return true;
        }
        idx[d] = 0;
    }
    false
}

/// Deterministic initial states.
pub fn initial_states(n: usize, seed: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|v| (v ^ seed).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed.rotate_left(17))
        .collect()
}

/// Run the guest directly for `steps` steps.
pub fn reference_run(graph: &Multigraph, steps: u32, seed: u64) -> Vec<u64> {
    let mut states = initial_states(graph.node_count(), seed);
    for _ in 0..steps {
        states = guest_step(graph, &states);
    }
    states
}

/// Outcome of a semantic verification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Strategy verified.
    pub strategy: String,
    /// Guest processor count.
    pub guest_n: usize,
    /// Host processor count.
    pub hosts: usize,
    /// Guest steps executed.
    pub steps: u32,
    /// Values exchanged between host processors over the whole run.
    pub values_communicated: u64,
    /// Guest-operation executions performed (redundant strategies repeat
    /// some; `work_ratio` = this over `n·steps`).
    pub operations: u64,
    /// Did the emulated final state equal the sequential reference?
    pub matches_reference: bool,
}

impl VerificationReport {
    /// Host operations per useful guest operation.
    pub fn work_ratio(&self) -> f64 {
        self.operations as f64 / (self.guest_n as f64 * self.steps as f64)
    }
}

/// Execute the direct (block-assigned) emulation value-for-value and check
/// it reproduces the reference run.
///
/// Each host processor owns the states of its assigned guest vertices. Per
/// guest step, for every guest edge whose endpoints live on different
/// hosts, the endpoint values are exchanged; each host then updates its
/// vertices using only owned and received values (the function fails if an
/// update would need a value that was never delivered — by construction of
/// the demand set it never does, and the test suite pins that).
pub fn verify_direct_emulation(
    graph: &Multigraph,
    hosts: usize,
    steps: u32,
    seed: u64,
) -> VerificationReport {
    let n = graph.node_count();
    assert!(hosts >= 1 && hosts <= n);
    let assign = contiguous_blocks(n, hosts);
    let mut states = initial_states(n, seed);
    let mut values_communicated = 0u64;
    let mut operations = 0u64;
    for _ in 0..steps {
        // Receive buffers: per vertex, the set of (neighbor, value) pairs
        // available on the owner's host this step.
        // Owned values are always available; remote values must be "sent".
        let mut received: Vec<Vec<(NodeId, u64, u32)>> = vec![Vec::new(); n];
        for e in graph.edges() {
            if e.u == e.v {
                continue;
            }
            let (hu, hv) = (assign[e.u as usize], assign[e.v as usize]);
            if hu != hv {
                // Exchange endpoint values across hosts.
                received[e.v as usize].push((e.u, states[e.u as usize], e.multiplicity));
                received[e.u as usize].push((e.v, states[e.v as usize], e.multiplicity));
                values_communicated += 2;
            } else {
                // Local neighbor: the owner reads it directly.
                received[e.v as usize].push((e.u, states[e.u as usize], e.multiplicity));
                received[e.u as usize].push((e.v, states[e.v as usize], e.multiplicity));
            }
        }
        let mut next = vec![0u64; n];
        for v in 0..n {
            // The host of v computes from exactly the delivered values.
            next[v] = mix(states[v], received[v].iter().map(|&(_, s, m)| (s, m)));
            operations += 1;
        }
        states = next;
    }
    let reference = reference_run(graph, steps, seed);
    VerificationReport {
        strategy: "direct".into(),
        guest_n: n,
        hosts,
        steps,
        values_communicated,
        operations,
        matches_reference: states == reference,
    }
}

/// Execute the redundant block-halo emulation of a k-dimensional mesh guest
/// value-for-value and check it reproduces the reference run.
///
/// Host grid `h^k`; each host owns a `b^k` cube (`b = side/h`). Per phase,
/// every host copies a halo of width `w` from its neighbors' *owned* cells,
/// then runs `w` guest steps entirely locally: after step `i`, only cells
/// within distance `w - i` of the owned cube remain valid, which is exactly
/// enough to keep the owned cells exact through step `w`.
pub fn verify_block_emulation(
    k: u8,
    side: usize,
    h: usize,
    halo_w: u32,
    steps: u32,
    seed: u64,
) -> VerificationReport {
    assert!(k >= 1 && h >= 1 && side.is_multiple_of(h));
    let kk = k as usize;
    let b = side / h;
    assert!((halo_w as usize) <= b, "halo must not exceed block side");
    assert!(
        steps.is_multiple_of(halo_w),
        "steps must be a multiple of the halo width"
    );
    let n = side.pow(k as u32);
    let guest = fcn_topology::Machine::mesh(k, side);
    let graph = guest.graph();

    // Global state array; each host's owned region is a disjoint slab of
    // cells. We simulate per-phase: copy owned+halo regions, run w local
    // steps with shrinking validity, write owned cells back.
    let mut states = initial_states(n, seed);
    let mut values_communicated = 0u64;
    let mut operations = 0u64;
    let phases = steps / halo_w;
    let w = halo_w as isize;

    for _ in 0..phases {
        let mut next_global = vec![0u64; n];
        for cube in 0..h.pow(k as u32) {
            let cc = coords_of(cube, kk, h);
            let lo: Vec<isize> = cc.iter().map(|&c| (c * b) as isize).collect();
            // Local region: owned cube extended by w in every direction,
            // clipped at the guest boundary.
            let ext = b as isize + 2 * w;
            let cells = (ext as usize).pow(k as u32);
            let mut local: Vec<Option<u64>> = vec![None; cells];
            let local_index = |coords: &[isize]| -> usize {
                coords.iter().zip(&lo).fold(0usize, |acc, (&x, &l)| {
                    acc * ext as usize + (x - (l - w)) as usize
                })
            };
            // Fill owned + halo from the global array (halo cells are owned
            // by neighbor cubes: that's the communication).
            let mut idx = vec![0usize; kk];
            loop {
                let coords: Vec<isize> = idx
                    .iter()
                    .zip(&lo)
                    .map(|(&i, &l)| l - w + i as isize)
                    .collect();
                if coords.iter().all(|&x| x >= 0 && x < side as isize) {
                    let gid = id_of(
                        &coords.iter().map(|&x| x as usize).collect::<Vec<_>>(),
                        side,
                    );
                    local[local_index(&coords)] = Some(states[gid]);
                    let owned = coords
                        .iter()
                        .zip(&lo)
                        .all(|(&x, &l)| x >= l && x < l + b as isize);
                    if !owned {
                        values_communicated += 1;
                    }
                }
                if !inc_index(&mut idx, ext as usize) {
                    break;
                }
            }
            // Run w local steps; validity shrinks one layer per step.
            for step_i in 0..w {
                let valid = w - step_i; // cells within this margin are exact
                let mut new_local = local.clone();
                let mut idx = vec![0usize; kk];
                loop {
                    let coords: Vec<isize> = idx
                        .iter()
                        .zip(&lo)
                        .map(|(&i, &l)| l - w + i as isize)
                        .collect();
                    let in_bounds = coords.iter().all(|&x| x >= 0 && x < side as isize);
                    let within_margin = coords
                        .iter()
                        .zip(&lo)
                        .all(|(&x, &l)| x >= l - (valid - 1) && x < l + b as isize + (valid - 1));
                    if in_bounds && within_margin {
                        // Gather neighbors from the local copy.
                        // fcn-allow: ERR-UNWRAP the margin arithmetic guarantees validity: cells within `valid-1` of the owned block are fresh
                        let own = local[local_index(&coords)].expect("cell valid at this step");
                        let mut nb: Vec<(u64, u32)> = Vec::with_capacity(2 * kk);
                        for d in 0..kk {
                            for delta in [-1isize, 1] {
                                let mut c2 = coords.clone();
                                c2[d] += delta;
                                if c2[d] < 0 || c2[d] >= side as isize {
                                    continue; // guest boundary: no neighbor
                                }
                                let val =
                                    // fcn-allow: ERR-UNWRAP neighbors of a cell inside the margin are themselves within the margin at the previous step
                                    local[local_index(&c2)].expect("neighbor valid at this step");
                                nb.push((val, 1));
                            }
                        }
                        new_local[local_index(&coords)] = Some(mix(own, nb.into_iter()));
                        operations += 1;
                    } else if in_bounds {
                        new_local[local_index(&coords)] = None; // stale now
                    }
                    if !inc_index(&mut idx, ext as usize) {
                        break;
                    }
                }
                local = new_local;
            }
            // Write owned cells back.
            let mut idx = vec![0usize; kk];
            loop {
                let abs: Vec<isize> = idx.iter().zip(&lo).map(|(&i, &l)| l + i as isize).collect();
                let gid = id_of(&abs.iter().map(|&x| x as usize).collect::<Vec<_>>(), side);
                next_global[gid] =
                    // fcn-allow: ERR-UNWRAP owned cells sit w steps inside the halo, so they are exact after w local steps
                    local[local_index(&abs)].expect("owned cell exact after w steps");
                if !inc_index(&mut idx, b) {
                    break;
                }
            }
        }
        states = next_global;
    }

    let reference = reference_run(graph, steps, seed);
    VerificationReport {
        strategy: format!("block(w={halo_w})"),
        guest_n: n,
        hosts: h.pow(k as u32),
        steps,
        values_communicated,
        operations,
        matches_reference: states == reference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    #[test]
    fn guest_step_is_input_sensitive() {
        let g = Machine::ring(8);
        let a = reference_run(g.graph(), 4, 1);
        let b = reference_run(g.graph(), 4, 2);
        assert_ne!(a, b);
        // And deterministic.
        let a2 = reference_run(g.graph(), 4, 1);
        assert_eq!(a, a2);
    }

    #[test]
    fn direct_emulation_is_semantically_exact() {
        for machine in [
            Machine::ring(12),
            Machine::mesh(2, 4),
            Machine::de_bruijn(4),
            Machine::tree(3),
        ] {
            for hosts in [1usize, 2, 4] {
                let r = verify_direct_emulation(machine.graph(), hosts, 5, 3);
                assert!(
                    r.matches_reference,
                    "{} on {hosts} hosts diverged",
                    machine.name()
                );
                assert!((r.work_ratio() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn direct_emulation_communication_scales_with_cut() {
        let machine = Machine::mesh(2, 8);
        let r2 = verify_direct_emulation(machine.graph(), 2, 3, 5);
        let r16 = verify_direct_emulation(machine.graph(), 16, 3, 5);
        // More hosts ⇒ more crossing edges ⇒ more values moved.
        assert!(r16.values_communicated > r2.values_communicated);
    }

    #[test]
    fn block_emulation_is_semantically_exact() {
        // The headline check: halo recomputation reproduces the reference
        // bit-for-bit, for several halo widths and dimensions.
        for (k, side, h, w, steps) in [
            (1u8, 12usize, 3usize, 2u32, 6u32),
            (2, 8, 2, 1, 4),
            (2, 8, 2, 2, 4),
            (2, 12, 3, 4, 8),
        ] {
            let r = verify_block_emulation(k, side, h, w, steps, 7);
            assert!(
                r.matches_reference,
                "block k={k} side={side} h={h} w={w} diverged"
            );
            // Redundancy does extra work exactly when w > 0 and blocks
            // don't cover the whole guest.
            assert!(r.work_ratio() >= 1.0);
        }
    }

    #[test]
    fn block_emulation_work_grows_with_halo() {
        let r1 = verify_block_emulation(2, 12, 3, 1, 4, 9);
        let r4 = verify_block_emulation(2, 12, 3, 4, 4, 9);
        assert!(r4.work_ratio() > r1.work_ratio());
        // ... but communication per step falls (one exchange per phase).
        let per_step_1 = r1.values_communicated as f64 / 4.0;
        let per_step_4 = r4.values_communicated as f64 / 4.0;
        // w=4 exchanges a 4-wide halo once instead of a 1-wide halo 4 times:
        // total halo volume grows sublinearly, so per-step volume is lower
        // per message count only when distance dominates; here we just pin
        // the bookkeeping: w=4 moves at most ~2.5x the w=1 volume per phase
        // while doing 4 steps.
        assert!(
            per_step_4 < per_step_1 * 1.5,
            "{per_step_4} vs {per_step_1}"
        );
    }

    #[test]
    fn block_emulation_single_host_degenerates_to_reference() {
        let r = verify_block_emulation(2, 8, 1, 2, 4, 11);
        assert!(r.matches_reference);
        assert_eq!(r.values_communicated, 0);
    }

    #[test]
    #[should_panic(expected = "halo must not exceed")]
    fn oversized_halo_rejected() {
        let _ = verify_block_emulation(2, 8, 4, 3, 3, 1);
    }
}
