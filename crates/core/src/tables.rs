//! Regeneration of the paper's Tables 1–3.
//!
//! Each table is a (guest-class × host-class) grid of maximum-host-size
//! cells, produced by the Efficient Emulation Theorem via
//! [`crate::hostsize`]. The supplied paper text's tables are OCR-damaged;
//! every cell here is re-derived from Table 4's β values by solving
//! `n/m = β_G(n)/β_H(m)` — the legible fragments (e.g. `|H| ≤ O(lg² n)` for
//! de Bruijn on a 2-d mesh, the `lg|G|` gain on X-Tree hosts, and
//! `|H| ≤ O(|G|^{k/j})` for mesh-on-mesh) all agree.

use fcn_topology::Family;
use serde::{Deserialize, Serialize};

use crate::hostsize::{host_size_cell, HostSizeCell};

/// Which paper table a spec regenerates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSpec {
    /// `"table1"`, `"table2"`, `"table3"`.
    pub id: String,
    /// Paper caption.
    pub caption: String,
    /// Guest families, one table row each.
    pub guests: Vec<Family>,
    /// Host families, one table column each.
    pub hosts: Vec<Family>,
}

/// Table 1: guests are j-dimensional Meshes, Tori, and X-Grids.
pub fn table1_spec(dims: &[u8]) -> TableSpec {
    let mut guests = Vec::new();
    for &j in dims {
        guests.extend([Family::Mesh(j), Family::Torus(j), Family::XGrid(j)]);
    }
    TableSpec {
        id: "table1".into(),
        caption: "Maximum host sizes for efficient emulation of j-dimensional \
                  Meshes, Tori, and X-Grids"
            .into(),
        guests,
        hosts: standard_hosts(dims),
    }
}

/// Table 2: guests are j-dimensional Mesh-of-Trees, Multigrids, Pyramids.
pub fn table2_spec(dims: &[u8]) -> TableSpec {
    let mut guests = Vec::new();
    for &j in dims {
        guests.extend([
            Family::MeshOfTrees(j),
            Family::Multigrid(j),
            Family::Pyramid(j),
        ]);
    }
    TableSpec {
        id: "table2".into(),
        caption: "Maximum host sizes for efficient emulation of j-dimensional \
                  Mesh-of-Trees, Multigrids, and Pyramids"
            .into(),
        guests,
        hosts: standard_hosts(dims),
    }
}

/// Table 3: guests are the butterfly-class machines.
pub fn table3_spec(dims: &[u8]) -> TableSpec {
    TableSpec {
        id: "table3".into(),
        caption: "Maximum host sizes for efficient emulation of Butterflies, \
                  de Bruijn Graphs, Cube-Connected-Cycles, Shuffle-Exchanges, \
                  Multibutterflies, Expanders, Weak Hypercubes"
            .into(),
        guests: vec![
            Family::Butterfly,
            Family::DeBruijn,
            Family::Ccc,
            Family::ShuffleExchange,
            Family::Multibutterfly,
            Family::Expander,
            Family::WeakHypercube,
        ],
        hosts: standard_hosts(dims),
    }
}

/// The host column shared by the paper's tables: the constant-β machines,
/// the X-Tree, and the k-dimensional mesh-class machines.
fn standard_hosts(dims: &[u8]) -> Vec<Family> {
    let mut hosts = vec![
        Family::LinearArray,
        Family::Tree,
        Family::GlobalBus,
        Family::WeakPpn,
        Family::XTree,
    ];
    for &k in dims {
        hosts.extend([
            Family::Mesh(k),
            Family::Pyramid(k),
            Family::Multigrid(k),
            Family::MeshOfTrees(k),
            Family::XGrid(k),
        ]);
    }
    hosts
}

/// A fully generated table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedTable {
    /// The spec this table was generated from.
    pub spec: TableSpec,
    /// Row-major: one cell per (guest, host) pair.
    pub cells: Vec<HostSizeCell>,
}

/// Generate all cells of a table, with numeric crossovers at `guest_sizes`.
pub fn generate_table(spec: TableSpec, guest_sizes: &[u64]) -> GeneratedTable {
    let mut cells = Vec::with_capacity(spec.guests.len() * spec.hosts.len());
    for guest in &spec.guests {
        for host in &spec.hosts {
            cells.push(host_size_cell(guest, host, guest_sizes));
        }
    }
    GeneratedTable { spec, cells }
}

impl GeneratedTable {
    /// Render as an aligned text table (hosts as rows, guests as columns),
    /// matching the paper's layout.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{} — {}", self.spec.id, self.spec.caption);
        let guest_ids: Vec<String> = self.spec.guests.iter().map(|g| g.id()).collect();
        let host_ids: Vec<String> = self.spec.hosts.iter().map(|h| h.id()).collect();
        let host_w = host_ids.iter().map(String::len).max().unwrap_or(4).max(4);
        // Column widths from cell contents.
        let cell =
            |gi: usize, hi: usize| -> &str { &self.cells[gi * self.spec.hosts.len() + hi].bound };
        let col_w: Vec<usize> = guest_ids
            .iter()
            .enumerate()
            .map(|(gi, gid)| {
                (0..host_ids.len())
                    .map(|hi| cell(gi, hi).len())
                    .max()
                    .unwrap_or(0)
                    .max(gid.len())
            })
            .collect();
        let _ = write!(s, "{:host_w$}", "host");
        for (gid, w) in guest_ids.iter().zip(&col_w) {
            let _ = write!(s, " | {gid:>w$}");
        }
        let _ = writeln!(s);
        for (hi, hid) in host_ids.iter().enumerate() {
            let _ = write!(s, "{hid:host_w$}");
            for (gi, w) in (0..guest_ids.len()).zip(&col_w) {
                let _ = write!(s, " | {:>w$}", cell(gi, hi));
            }
            let _ = writeln!(s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostsize::HostSizeBound;

    #[test]
    fn table1_has_expected_shape() {
        let t = generate_table(table1_spec(&[1, 2]), &[1 << 12]);
        assert_eq!(t.spec.guests.len(), 6);
        assert_eq!(t.spec.hosts.len(), 5 + 10);
        assert_eq!(t.cells.len(), 6 * 15);
    }

    #[test]
    fn table1_mesh2_on_linear_array_cell() {
        let t = generate_table(table1_spec(&[2]), &[1 << 16]);
        let cell = t
            .cells
            .iter()
            .find(|c| c.guest == "mesh2" && c.host == "linear_array")
            .unwrap();
        assert_eq!(cell.bound, "O(n^(1/2))");
        // Numeric crossover ~ sqrt(65536) = 256.
        let (_, m) = cell.samples[0];
        assert!((m - 256.0).abs() < 80.0, "m {m}");
    }

    #[test]
    fn table3_de_bruijn_on_mesh2_is_lg_squared() {
        let t = generate_table(table3_spec(&[2]), &[1 << 20]);
        let cell = t
            .cells
            .iter()
            .find(|c| c.guest == "de_bruijn" && c.host == "mesh2")
            .unwrap();
        assert_eq!(cell.bound, "O(lg^2 n)");
        let (_, m) = cell.samples[0];
        assert!(m > 100.0 && m < 1600.0, "m {m}");
    }

    #[test]
    fn table2_guests_match_table1_bounds() {
        // Same β class ⇒ identical cells.
        let t1 = generate_table(table1_spec(&[2]), &[1 << 12]);
        let t2 = generate_table(table2_spec(&[2]), &[1 << 12]);
        let c1 = t1
            .cells
            .iter()
            .find(|c| c.guest == "mesh2" && c.host == "xtree")
            .unwrap();
        let c2 = t2
            .cells
            .iter()
            .find(|c| c.guest == "pyramid2" && c.host == "xtree")
            .unwrap();
        assert_eq!(c1.bound, c2.bound);
    }

    #[test]
    fn butterfly_class_hosts_never_appear_but_same_class_is_full() {
        // The standard host list omits butterfly-class hosts (the paper's
        // tables do too, because those hosts admit full-size emulation).
        let t = generate_table(table3_spec(&[1]), &[1 << 10]);
        for c in &t.cells {
            if c.host == "xgrid1" || c.host == "mesh1" {
                assert_eq!(c.bound, "O(lg n)", "{}/{}", c.guest, c.host);
            }
        }
        // And directly: butterfly on butterfly is full size.
        assert_eq!(
            crate::hostsize::max_host_size(&Family::Butterfly, &Family::Butterfly),
            HostSizeBound::FullSize
        );
    }

    #[test]
    fn render_is_complete() {
        let t = generate_table(table1_spec(&[1]), &[1 << 10]);
        let txt = t.render();
        assert!(txt.contains("mesh1"));
        assert!(txt.contains("linear_array"));
        assert!(txt.lines().count() >= t.spec.hosts.len() + 2);
    }
}
