//! Regeneration of the paper's figures.
//!
//! * **Figure 1** — "Communication-induced vs load-induced slowdown": for a
//!   fixed guest size `n`, sweep the host size `m` and plot the load bound
//!   `n/m` (decreasing) against the communication bound `β_G(n)/β_H(m)`.
//!   Their intersection is the smallest slowdown / largest host. Optionally
//!   decorated with *measured* direct-emulation slowdowns at small sizes.
//! * **Figure 2** — the cone construction of Lemma 9, reproduced as the
//!   measured statistics of the constructed witness
//!   ([`crate::lemma9::build_witness`]); [`fig2_series`] collects them
//!   across guest sizes so the claimed scalings are visible.

use fcn_topology::{Family, Machine};
use serde::{Deserialize, Serialize};

use crate::emulate::{direct_emulation, EmulationConfig};
use crate::lemma9::{build_witness, Lemma9Config, Lemma9Witness};
use crate::theorem::slowdown_lower_bound;

/// One point of the Figure 1 curves.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig1Point {
    /// Host size (continuous axis).
    pub m: f64,
    /// Load-induced slowdown `n/m`.
    pub load_bound: f64,
    /// Communication-induced slowdown `β_G(n)/β_H(m)`.
    pub comm_bound: f64,
}

/// The Figure 1 data set for one guest/host family pair at guest size `n`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Data {
    /// Guest family name.
    pub guest: String,
    /// Host family name.
    pub host: String,
    /// Guest size the curves are drawn at.
    pub n: f64,
    /// Curve samples, ordered by `m`.
    pub points: Vec<Fig1Point>,
    /// Host size where the two bounds cross (the largest efficient host).
    pub crossover_m: f64,
    /// The slowdown at the crossover (the smallest possible slowdown).
    pub crossover_slowdown: f64,
}

/// Compute the Figure 1 curves with `points` geometrically spaced host
/// sizes in `[2, n]`.
pub fn fig1_data(guest: &Family, host: &Family, n: f64, points: usize) -> Fig1Data {
    assert!(points >= 2 && n >= 4.0);
    let bound = slowdown_lower_bound(guest, host);
    let lo = 2.0f64;
    let hi = n;
    let pts: Vec<Fig1Point> = (0..points)
        .map(|i| {
            let f = i as f64 / (points - 1) as f64;
            let m = lo * (hi / lo).powf(f);
            Fig1Point {
                m,
                load_bound: bound.load(n, m),
                comm_bound: bound.communication(n, m),
            }
        })
        .collect();
    // Load decreases in m; communication decreases strictly slower (or
    // grows): their ratio is monotone, so a crossover exists iff the
    // communication bound dominates at m = n.
    let crossover_m = if bound.communication(n, n) <= bound.load(n, n) {
        n
    } else {
        fcn_asymptotics::crossover(lo, hi, |m| bound.load(n, m), |m| bound.communication(n, m))
    };
    Fig1Data {
        guest: guest.id(),
        host: host.id(),
        n,
        crossover_m,
        crossover_slowdown: bound.eval(n, crossover_m),
        points: pts,
    }
}

/// A measured decoration for Figure 1: direct-emulation slowdowns at small
/// concrete sizes, to overlay on the analytic curves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Measured {
    /// Host size of this measured point.
    pub m: usize,
    /// Slowdown measured by routed emulation.
    pub measured_slowdown: f64,
    /// The analytic lower bound at this `m`.
    pub predicted_lower_bound: f64,
}

/// Measure direct emulation of `guest` on hosts of the given sizes.
pub fn fig1_measured(
    guest: &Machine,
    host_family: &Family,
    host_sizes: &[usize],
    steps: u64,
    cfg: &EmulationConfig,
) -> Vec<Fig1Measured> {
    let bound = slowdown_lower_bound(&guest.family(), host_family);
    host_sizes
        .iter()
        .map(|&target| {
            let host = host_family.build_near(target, cfg.seed);
            let report = direct_emulation(guest, &host, steps, cfg);
            Fig1Measured {
                m: host.processors(),
                measured_slowdown: report.slowdown(),
                predicted_lower_bound: bound
                    .eval(guest.processors() as f64, host.processors() as f64),
            }
        })
        .collect()
}

/// Figure 2 reproduced as a size series of Lemma 9 witnesses.
pub fn fig2_series(guests: &[Machine], cfg: Lemma9Config) -> Vec<(String, Lemma9Witness)> {
    guests
        .iter()
        .map(|g| (g.name().to_string(), build_witness(g.graph(), cfg)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_intro_example_crossover() {
        // de Bruijn on 2-d mesh at n = 2^20: crossover at m ≈ lg² n = 400.
        let d = fig1_data(&Family::DeBruijn, &Family::Mesh(2), (1u64 << 20) as f64, 32);
        assert!((d.crossover_m - 400.0).abs() < 40.0, "m* {}", d.crossover_m);
        // Slowdown at crossover = n/m* ≈ 2621.
        assert!((d.crossover_slowdown - (1u64 << 20) as f64 / d.crossover_m).abs() < 1.0);
        assert_eq!(d.points.len(), 32);
    }

    #[test]
    fn fig1_curves_are_monotone() {
        let d = fig1_data(&Family::Mesh(3), &Family::Mesh(1), 32768.0, 16);
        for w in d.points.windows(2) {
            assert!(w[1].load_bound < w[0].load_bound);
            assert!(w[1].comm_bound <= w[0].comm_bound + 1e-9);
        }
    }

    #[test]
    fn fig1_same_class_crossover_is_full_size() {
        let d = fig1_data(&Family::Butterfly, &Family::Butterfly, 4096.0, 8);
        assert!((d.crossover_m - 4096.0).abs() < 1e-6);
    }

    #[test]
    fn fig1_measured_exceeds_prediction() {
        let guest = Machine::de_bruijn(6);
        let rows = fig1_measured(
            &guest,
            &Family::Mesh(2),
            &[4, 16],
            6,
            &EmulationConfig {
                sample_steps: 1,
                ..Default::default()
            },
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.measured_slowdown >= 0.4 * r.predicted_lower_bound,
                "m {}: measured {} vs bound {}",
                r.m,
                r.measured_slowdown,
                r.predicted_lower_bound
            );
        }
    }

    #[test]
    fn fig2_series_is_labeled() {
        let guests = vec![Machine::ring(8), Machine::mesh(2, 4)];
        let series = fig2_series(&guests, Lemma9Config::default());
        assert_eq!(series.len(), 2);
        assert!(series[0].0.contains("ring"));
        assert!(series[1].1.gamma_edges > 0);
    }
}
