#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-core
//!
//! The primary contribution of Kruskal & Rappoport (SPAA'94), made
//! executable:
//!
//! * [`theorem`] — the **Efficient Emulation Theorem**
//!   (`S ≥ Ω(β(G)/β(H))`) as a symbolic bound with premise auditing;
//! * [`hostsize`] — maximum host sizes from `n/m = β_G(n)/β_H(m)`
//!   (symbolic growth classes and numeric crossovers);
//! * [`tables`] — regeneration of the paper's Tables 1–3;
//! * [`figures`] — regeneration of Figures 1 (slowdown crossover) and 2
//!   (cone construction statistics);
//! * [`circuit`] — the redundant circuit model (levels, classes, copies,
//!   efficiency and correctness audits);
//! * [`lemma9`] — the constructive cone witness: the quasi-symmetric
//!   traffic `γ ∈ K_{Θ(nt),1}` inside every efficient circuit, with
//!   measured congestion;
//! * [`lemma11`] — bandwidth preservation under super-vertex collapse,
//!   measured;
//! * [`emulate`] — executable emulation strategies (direct embedding and
//!   redundant block-halo) giving measured upper bounds that sandwich the
//!   theorem's lower bound.

pub mod circuit;
pub mod emulate;
pub mod exec;
pub mod figures;
pub mod hostsize;
pub mod lemma11;
pub mod lemma9;
pub mod patterns;
pub mod statements;
pub mod tables;
pub mod theorem;

pub use circuit::{Circuit, CircuitNode};
pub use emulate::{block_mesh_emulation, direct_emulation, EmulationConfig, EmulationReport};
pub use exec::{
    guest_step, initial_states, reference_run, verify_block_emulation, verify_direct_emulation,
    VerificationReport,
};
pub use figures::{fig1_data, fig1_measured, fig2_series, Fig1Data, Fig1Measured, Fig1Point};
pub use hostsize::{
    empirical_host_size, host_size_cell, max_host_size, numeric_host_size, HostSizeBound,
    HostSizeCell,
};
pub use lemma11::{collapse_preservation, Lemma11Report};
pub use lemma9::{build_witness, build_witness_in_circuit, Lemma9Config, Lemma9Witness};
pub use patterns::{execute_pattern, pattern_bandwidth, CommPattern, PatternExecution};
pub use statements::{theorem2, theorem3, theorem4, theorem5, TheoremStatement};
pub use tables::{
    generate_table, table1_spec, table2_spec, table3_spec, GeneratedTable, TableSpec,
};
pub use theorem::{check_premises, slowdown_lower_bound, PremiseReport, SlowdownBound};

/// Glob-import surface re-exported by the `fcn-emu` facade.
pub mod prelude {
    pub use crate::circuit::Circuit;
    pub use crate::emulate::{
        block_mesh_emulation, direct_emulation, EmulationConfig, EmulationReport,
    };
    pub use crate::figures::{fig1_data, fig1_measured, fig2_series, Fig1Data};
    pub use crate::hostsize::{
        empirical_host_size, max_host_size, numeric_host_size, HostSizeBound,
    };
    pub use crate::lemma11::collapse_preservation;
    pub use crate::lemma9::{build_witness, build_witness_in_circuit, Lemma9Config};
    pub use crate::patterns::{execute_pattern, pattern_bandwidth, CommPattern};
    pub use crate::statements::{theorem2, theorem3, theorem4, theorem5};
    pub use crate::tables::{generate_table, table1_spec, table2_spec, table3_spec};
    pub use crate::theorem::{check_premises, slowdown_lower_bound, SlowdownBound};
}
