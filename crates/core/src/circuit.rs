//! Redundant circuits — the paper's model of guest computations.
//!
//! "Computations on guest `G` are represented by *circuits* ... directed
//! graphs on circuit nodes described by 3-tuples `(u, t, c)` where `u` is
//! the corresponding vertex in `G`, `t` is the guest time step, and `c` is
//! the copy number." Copies introduce *redundancy*: a single guest
//! operation may be performed at several places, which is what makes the
//! emulation model general (Koch et al. [7]). A circuit is *efficient* if a
//! `t`-step circuit has `O(|G|·t)` nodes.
//!
//! [`Circuit`] stores levels of `(vertex, copy)` nodes and the arcs between
//! consecutive levels; [`Circuit::validate`] checks the paper's correctness
//! condition (every node has an input arc from a representative of each
//! guest in-neighbor class and of its own class); [`Circuit::is_efficient`]
//! checks the work bound.

use fcn_multigraph::{Multigraph, MultigraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A circuit node: which guest vertex it represents and its copy number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CircuitNode {
    /// Guest vertex this node represents.
    pub vertex: NodeId,
    /// Copy number among the vertex's redundant copies.
    pub copy: u32,
}

/// A leveled redundant circuit over a guest graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Circuit {
    guest_n: usize,
    /// `levels[i]` lists the nodes of circuit level `i` (guest time `i`).
    levels: Vec<Vec<CircuitNode>>,
    /// `arcs[i][j] = (from, to)`: arc from `levels[i][from]` to
    /// `levels[i+1][to]`.
    arcs: Vec<Vec<(u32, u32)>>,
}

impl Circuit {
    /// The canonical *homogeneous, nonredundant* circuit: one copy of every
    /// guest vertex per level, identity arcs `(u,i) → (u,i+1)`, and routing
    /// arcs `(u,i) → (v,i+1)` for every guest edge `{u,v}` in both
    /// directions. This is the minimal efficient circuit for `t` steps.
    pub fn nonredundant(guest: &Multigraph, t: u32) -> Circuit {
        let n = guest.node_count();
        assert!(n >= 1 && t >= 1);
        let level: Vec<CircuitNode> = (0..n as NodeId)
            .map(|vertex| CircuitNode { vertex, copy: 0 })
            .collect();
        let mut gap = Vec::new();
        for u in 0..n as NodeId {
            gap.push((u, u)); // identity arc
            for (v, _) in guest.neighbors(u) {
                if v != u {
                    gap.push((u, v)); // routing arc (each direction once)
                }
            }
        }
        Circuit {
            guest_n: n,
            levels: vec![level; t as usize + 1],
            arcs: vec![gap; t as usize],
        }
    }

    /// A randomized redundant circuit: class `(u, i)` has duplicity drawn
    /// uniformly from `1..=max_dup`, and every node gets one input from a
    /// random representative of each required class. Used to exercise the
    /// general model in tests and the efficiency audit.
    pub fn redundant_random(guest: &Multigraph, t: u32, max_dup: u32, seed: u64) -> Circuit {
        assert!(max_dup >= 1);
        let n = guest.node_count();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut levels: Vec<Vec<CircuitNode>> = Vec::with_capacity(t as usize + 1);
        // Per level: start index of each vertex's copies, to find reps fast.
        let mut starts: Vec<Vec<u32>> = Vec::new();
        for _ in 0..=t {
            let mut level = Vec::new();
            let mut start = Vec::with_capacity(n);
            for vertex in 0..n as NodeId {
                start.push(level.len() as u32);
                let dup = rng.random_range(1..=max_dup);
                for copy in 0..dup {
                    level.push(CircuitNode { vertex, copy });
                }
            }
            start.push(level.len() as u32);
            levels.push(level);
            starts.push(start);
        }
        let mut arcs = Vec::with_capacity(t as usize);
        for i in 0..t as usize {
            let mut gap = Vec::new();
            let pick = |vertex: NodeId, rng: &mut StdRng, starts_i: &[u32]| -> u32 {
                let lo = starts_i[vertex as usize];
                let hi = starts_i[vertex as usize + 1];
                rng.random_range(lo..hi)
            };
            for (to_idx, node) in levels[i + 1].iter().enumerate() {
                // Input from own class...
                gap.push((pick(node.vertex, &mut rng, &starts[i]), to_idx as u32));
                // ... and from each guest neighbor's class.
                for (u, _) in guest.neighbors(node.vertex) {
                    if u != node.vertex {
                        gap.push((pick(u, &mut rng, &starts[i]), to_idx as u32));
                    }
                }
            }
            arcs.push(gap);
        }
        Circuit {
            guest_n: n,
            levels,
            arcs,
        }
    }

    /// Number of guest vertices.
    pub fn guest_n(&self) -> usize {
        self.guest_n
    }

    /// Number of guest steps represented (levels - 1).
    pub fn depth(&self) -> u32 {
        (self.levels.len() - 1) as u32
    }

    /// Total circuit nodes.
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Total arcs.
    pub fn arc_count(&self) -> usize {
        self.arcs.iter().map(Vec::len).sum()
    }

    /// Nodes of one level.
    pub fn level(&self, i: u32) -> &[CircuitNode] {
        &self.levels[i as usize]
    }

    /// Arcs from level `i` to `i+1`.
    pub fn arcs_at(&self, i: u32) -> &[(u32, u32)] {
        &self.arcs[i as usize]
    }

    /// Duplicity of class `(vertex, level)`.
    pub fn duplicity(&self, level: u32, vertex: NodeId) -> usize {
        self.levels[level as usize]
            .iter()
            .filter(|nd| nd.vertex == vertex)
            .count()
    }

    /// The paper's efficiency predicate: a `t`-step circuit is efficient if
    /// it contains at most `c · |G| · (t+1)` nodes.
    pub fn is_efficient(&self, c: f64) -> bool {
        (self.node_count() as f64) <= c * self.guest_n as f64 * self.levels.len() as f64
    }

    /// Correctness: every node of level `i+1 ≥ 1` has an input arc from some
    /// representative of its own class and of each guest-neighbor class at
    /// level `i`. Returns a description of the first violation.
    pub fn validate(&self, guest: &Multigraph) -> Result<(), String> {
        for i in 0..self.arcs.len() {
            let from_level = &self.levels[i];
            let to_level = &self.levels[i + 1];
            // inputs[j] = set of source vertices feeding node j.
            let mut inputs: Vec<Vec<NodeId>> = vec![Vec::new(); to_level.len()];
            for &(f, t) in &self.arcs[i] {
                let fv = from_level
                    .get(f as usize)
                    .ok_or_else(|| format!("arc source {f} out of range at level {i}"))?;
                if (t as usize) >= to_level.len() {
                    return Err(format!("arc target {t} out of range at level {i}"));
                }
                inputs[t as usize].push(fv.vertex);
            }
            for (j, node) in to_level.iter().enumerate() {
                let needed: Vec<NodeId> = std::iter::once(node.vertex)
                    .chain(
                        guest
                            .neighbors(node.vertex)
                            .map(|(u, _)| u)
                            .filter(|&u| u != node.vertex),
                    )
                    .collect();
                for u in needed {
                    if !inputs[j].contains(&u) {
                        return Err(format!(
                            "level {} node ({},{}) missing input from vertex {u}",
                            i + 1,
                            node.vertex,
                            node.copy
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Flatten the circuit into an undirected multigraph (node ids are level
    /// offsets + in-level index); parallel arcs merge into multiplicity.
    /// Returns the graph and the global offset of each level.
    pub fn as_multigraph(&self) -> (Multigraph, Vec<usize>) {
        let mut offsets = Vec::with_capacity(self.levels.len() + 1);
        let mut acc = 0usize;
        for l in &self.levels {
            offsets.push(acc);
            acc += l.len();
        }
        offsets.push(acc);
        let mut b = MultigraphBuilder::new(acc);
        for (i, gap) in self.arcs.iter().enumerate() {
            for &(f, t) in gap {
                b.add_edge(
                    (offsets[i] + f as usize) as NodeId,
                    (offsets[i + 1] + t as usize) as NodeId,
                );
            }
        }
        (b.build(), offsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Multigraph {
        Multigraph::from_edges(n, (0..n as NodeId).map(|i| (i, (i + 1) % n as NodeId)))
    }

    #[test]
    fn nonredundant_counts() {
        let g = ring(6);
        let c = Circuit::nonredundant(&g, 4);
        assert_eq!(c.depth(), 4);
        assert_eq!(c.node_count(), 6 * 5);
        // per gap: 6 identity + 12 routing arcs.
        assert_eq!(c.arc_count(), 4 * 18);
        assert!(c.is_efficient(1.0));
        assert_eq!(c.duplicity(2, 3), 1);
    }

    #[test]
    fn nonredundant_is_valid() {
        let g = ring(5);
        let c = Circuit::nonredundant(&g, 3);
        c.validate(&g).unwrap();
    }

    #[test]
    fn validation_catches_missing_inputs() {
        let g = ring(4);
        let mut c = Circuit::nonredundant(&g, 2);
        // Remove all arcs into level 1 node 0.
        c.arcs[0].retain(|&(_, t)| t != 0);
        let err = c.validate(&g).unwrap_err();
        assert!(err.contains("missing input"), "{err}");
    }

    #[test]
    fn redundant_random_is_valid_and_bounded() {
        let g = ring(8);
        let c = Circuit::redundant_random(&g, 5, 3, 42);
        c.validate(&g).unwrap();
        assert!(c.node_count() >= 8 * 6);
        assert!(c.node_count() <= 3 * 8 * 6);
        assert!(c.is_efficient(3.0));
        // Some class should actually be duplicated with max_dup = 3.
        let any_dup = (0..=5u32).any(|l| (0..8u32).any(|v| c.duplicity(l, v) > 1));
        assert!(any_dup);
    }

    #[test]
    fn redundant_is_deterministic_per_seed() {
        let g = ring(6);
        let a = Circuit::redundant_random(&g, 4, 2, 7);
        let b = Circuit::redundant_random(&g, 4, 2, 7);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.arc_count(), b.arc_count());
    }

    #[test]
    fn flatten_to_multigraph() {
        let g = ring(4);
        let c = Circuit::nonredundant(&g, 2);
        let (mg, offsets) = c.as_multigraph();
        assert_eq!(mg.node_count(), 12);
        assert_eq!(offsets, vec![0, 4, 8, 12]);
        // identity edge (0,0)-(0,1): global 0 - 4.
        assert!(mg.has_edge(0, 4));
        // routing edge (0,0)-(1,1): global 0 - 5.
        assert!(mg.has_edge(0, 5));
        assert!(mg.is_connected());
        assert_eq!(mg.simple_edge_count() as usize, c.arc_count());
    }

    #[test]
    fn efficiency_threshold() {
        let g = ring(4);
        let c = Circuit::redundant_random(&g, 3, 8, 1);
        // With duplicities up to 8, c = 1 should typically fail.
        assert!(!c.is_efficient(1.0));
        assert!(c.is_efficient(8.0));
    }
}
