//! Lemma 9 made constructive: the high-bandwidth traffic pattern hidden in
//! every efficient circuit (the paper's Figure 2).
//!
//! The lemma: for `t = (1+Ω(1))·Λ(G, K_n)`, any efficient homogeneous
//! circuit `Ĝ_t` over `G` embeds a quasi-symmetric traffic graph
//! `γ ∈ K_{Θ(nt),1}` with congestion `O(max(nt², t·C(G,K_n)))`, hence
//! `β(Ĝ_t, γ) ≥ Ω(t·β(G))` — the bandwidth of a `t`-step guest computation
//! is preserved no matter how cleverly the circuit is built.
//!
//! This module *builds the witness* on the canonical circuit and *measures*
//! everything the proof claims:
//!
//! * **S-nodes**: one representative per guest vertex on each of the last
//!   `t - L_min + 1` levels;
//! * **cones**: from each S-node `(u, L)`, one embedding path per
//!   destination `v` with `d(u,v) ≤ cutoff`, terminating at `(v, L-d)`;
//! * **Q-sets**: the identity chain above each cone terminal;
//! * **γ-edges**: one edge from the S-node to every member of the Q-set
//!   ("bundles travel up the cone path, then up the identity edges, picked
//!   off one-by-one").
//!
//! Congestion is accounted per circuit edge without materializing the
//! `Θ(n²t²)` γ-edges individually.

use std::collections::BTreeMap;

use fcn_multigraph::{bfs_parents, path_from_parents, Embedding, Multigraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Parameters of the construction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Lemma9Config {
    /// The `Ω(1)` slack in `t = (1+α)·Λ`. The proof needs `α > 0`.
    pub alpha: f64,
    /// Seed for the K_n embedding's tie-breaking.
    pub seed: u64,
}

impl Default for Lemma9Config {
    fn default() -> Self {
        Lemma9Config {
            alpha: 1.0,
            seed: 0x9e,
        }
    }
}

/// Everything the proof claims, measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lemma9Witness {
    /// Guest size.
    pub n: usize,
    /// Λ(G): the guest diameter (the `K_n`-dilation scale).
    pub lambda: u32,
    /// Circuit depth `t = ceil((1+α)·Λ)`.
    pub t: u32,
    /// Cone length cutoff `≈ (1+α/2)/(1+α) · Λ`.
    pub cutoff: u32,
    /// Number of S-nodes (one per vertex per S-level).
    pub s_nodes: usize,
    /// Total cone paths (Ω(n²) per S-level is the proof's counting claim).
    pub cone_paths: usize,
    /// Distinct circuit nodes used as γ vertices.
    pub gamma_vertices: usize,
    /// Total γ-edges (`Θ(n²t²)` is the claim).
    pub gamma_edges: u64,
    /// Measured congestion of the γ embedding over circuit edges.
    pub congestion: u64,
    /// Measured congestion `C(G, K_n)` of the shortest-path K_n embedding
    /// witness into G.
    pub c_g_kn: u64,
    /// The proof's congestion cap `max(n·t², t·C(G,K_n))`.
    pub congestion_cap: u64,
    /// `β(Ĝ_t, γ) = E(γ)/congestion` (the certified bandwidth of the
    /// circuit pattern).
    pub circuit_bandwidth: f64,
    /// `t · β(G)` with `β(G) = E(K_n-traffic)/C(G,K_n)` — the target the
    /// lemma says the circuit preserves up to a constant.
    pub target_bandwidth: f64,
}

impl Lemma9Witness {
    /// The lemma's conclusion as a measured constant:
    /// `β(Ĝ_t, γ) / (t·β(G))` — should be bounded below by a constant
    /// across sizes.
    pub fn preservation_ratio(&self) -> f64 {
        self.circuit_bandwidth / self.target_bandwidth
    }

    /// The congestion claim as a measured constant:
    /// `congestion / max(nt², t·C(G,K_n))` — should be bounded above.
    pub fn congestion_ratio(&self) -> f64 {
        self.congestion as f64 / self.congestion_cap as f64
    }

    /// γ's membership in `K_{r,1}` up to constants: edge count over `r²/2`.
    pub fn gamma_density(&self) -> f64 {
        let r = self.gamma_vertices as f64;
        self.gamma_edges as f64 / (r * r / 2.0)
    }
}

/// Build the Lemma 9 witness inside an arbitrary *efficient* circuit.
///
/// This is the lemma's true generality: the adversary may run any
/// redundant circuit, and the witness is found by walking the circuit's
/// actual arcs. S-sets follow identity arcs backward from the last level;
/// cone paths follow routing arcs backward along the guest's shortest
/// paths; Q-sets follow identity arcs upward from each terminal. The
/// returned statistics are measured on the concrete circuit.
pub fn build_witness_in_circuit(
    g: &Multigraph,
    circuit: &crate::circuit::Circuit,
    cfg: Lemma9Config,
) -> Lemma9Witness {
    let n = g.node_count();
    assert!(n >= 2 && circuit.guest_n() == n);
    assert!(cfg.alpha > 0.0, "lemma 9 needs alpha > 0");
    let lambda = fcn_multigraph::diameter(g);
    let t = circuit.depth();
    assert!(
        t as f64 >= (1.0 + cfg.alpha) * lambda as f64 - 1e-9,
        "circuit too shallow for alpha = {}: depth {t} < (1+α)·Λ = {}",
        cfg.alpha,
        (1.0 + cfg.alpha) * lambda as f64
    );
    let cutoff = (((1.0 + cfg.alpha / 2.0) / (1.0 + cfg.alpha)) * lambda as f64).ceil() as u32;
    let cutoff = cutoff.clamp(1, lambda);
    let l_min = cutoff;

    // Per level: index of one representative per vertex, and per node its
    // chosen identity-predecessor and per-neighbor routing predecessors.
    // For each level i in [1, t]: pred[i][j] = (arc sources by guest vertex)
    // — we precompute, per node, a map vertex -> source index.
    let mut pred: Vec<Vec<std::collections::BTreeMap<NodeId, u32>>> =
        Vec::with_capacity(t as usize);
    for i in 0..t {
        let nodes_above = circuit.level(i + 1).len();
        let mut maps: Vec<std::collections::BTreeMap<NodeId, u32>> =
            vec![std::collections::BTreeMap::new(); nodes_above];
        let from_level = circuit.level(i);
        for &(f, to) in circuit.arcs_at(i) {
            let fv = from_level[f as usize].vertex;
            maps[to as usize].entry(fv).or_insert(f);
        }
        pred.push(maps);
    }
    // Representative chain: rep[level][vertex] = node index representing
    // that vertex on the S-chain, built by following identity predecessors
    // down from the last level.
    let mut rep: Vec<Vec<u32>> = vec![Vec::new(); t as usize + 1];
    rep[t as usize] = {
        let mut first = vec![u32::MAX; n];
        for (j, node) in circuit.level(t).iter().enumerate() {
            if first[node.vertex as usize] == u32::MAX {
                first[node.vertex as usize] = j as u32;
            }
        }
        first
    };
    for i in (0..t).rev() {
        let mut below = vec![u32::MAX; n];
        for v in 0..n {
            let above = rep[i as usize + 1][v];
            if above == u32::MAX {
                continue;
            }
            below[v] = *pred[i as usize][above as usize]
                .get(&(v as NodeId))
                // fcn-allow: ERR-UNWRAP shallow-circuit construction wires an identity input at every level
                .expect("valid circuit: identity input exists");
        }
        rep[i as usize] = below;
    }

    // Mirrors the canonical construction, but congestion keys are concrete
    // circuit node indices (level, node-index pairs).
    let mut congestion: BTreeMap<(u32, u32, u32), u64> = BTreeMap::new();
    let mut cone_paths = 0usize;
    let mut gamma_edges = 0u64;
    let mut used_nodes: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let kn = fcn_multigraph::Traffic::symmetric(n).to_multigraph();
    let kn_embedding = Embedding::shortest_paths(&kn, g, (0..n as NodeId).collect(), &mut rng);
    let c_g_kn = kn_embedding.stats().congestion;
    let beta_g = kn.simple_edge_count() as f64 / c_g_kn as f64;

    for u in 0..n as NodeId {
        let (dist, parent) = bfs_parents(g, u);
        for v in 0..n as NodeId {
            if v == u {
                continue;
            }
            let d = dist[v as usize];
            if d > cutoff {
                continue;
            }
            // fcn-allow: ERR-UNWRAP BFS reached v (dist is finite), so the parent chain is complete
            let path = path_from_parents(&parent, u, v).expect("connected");
            for level in l_min..=t {
                let terminal_level = level - d;
                cone_paths += 1;
                let bundle = terminal_level as u64 + 1;
                gamma_edges += bundle;
                used_nodes.insert((level, rep[level as usize][u as usize]));
                // Routing legs: follow the circuit's actual arcs backward
                // along the shortest path, starting from u's representative.
                let mut cur = rep[level as usize][u as usize];
                for (s, w) in path.windows(2).enumerate() {
                    let gap = level - s as u32 - 1;
                    // cur lives at level gap+1; its predecessor representing
                    // w[1] sits at level gap.
                    let nxt = *pred[gap as usize][cur as usize]
                        .get(&w[1])
                        // fcn-allow: ERR-UNWRAP cone construction added a routing input for every shortest-path arc
                        .expect("valid circuit: routing input exists");
                    *congestion.entry((gap, nxt, cur)).or_insert(0) += bundle;
                    cur = nxt;
                }
                // Identity chain of v from the terminal up to level 0.
                let mut q = cur; // v's representative at terminal_level
                used_nodes.insert((terminal_level, q));
                for i in (0..terminal_level).rev() {
                    let nxt = *pred[i as usize][q as usize]
                        .get(&v)
                        // fcn-allow: ERR-UNWRAP identity chains run unbroken from the terminal level to level 0
                        .expect("valid circuit: identity input exists");
                    *congestion.entry((i, nxt, q)).or_insert(0) += i as u64 + 1;
                    q = nxt;
                    used_nodes.insert((i, q));
                }
            }
        }
    }

    let max_congestion = congestion.values().copied().max().unwrap_or(0);
    let congestion_cap = ((n as u64) * (t as u64) * (t as u64)).max((t as u64) * c_g_kn);
    Lemma9Witness {
        n,
        lambda,
        t,
        cutoff,
        s_nodes: n * (t - l_min + 1) as usize,
        cone_paths,
        gamma_vertices: used_nodes.len(),
        gamma_edges,
        congestion: max_congestion,
        c_g_kn,
        congestion_cap,
        circuit_bandwidth: gamma_edges as f64 / max_congestion.max(1) as f64,
        target_bandwidth: t as f64 * beta_g,
    }
}

/// Build the Lemma 9 witness over guest graph `g`.
///
/// Works on the canonical nonredundant circuit (`Circuit::nonredundant`
/// structure is implicit: node `(v, level)`, identity and routing edges).
pub fn build_witness(g: &Multigraph, cfg: Lemma9Config) -> Lemma9Witness {
    let n = g.node_count();
    assert!(n >= 2, "guest too small");
    assert!(cfg.alpha > 0.0, "lemma 9 needs alpha > 0");
    let lambda = fcn_multigraph::diameter(g);
    let t = ((1.0 + cfg.alpha) * lambda as f64).ceil() as u32;
    let cutoff = (((1.0 + cfg.alpha / 2.0) / (1.0 + cfg.alpha)) * lambda as f64).ceil() as u32;
    let cutoff = cutoff.clamp(1, lambda);
    let l_min = cutoff; // S-levels: [l_min, t]; terminals stay >= 0.

    // Measured C(G, K_n): shortest-path embedding of the symmetric traffic
    // multigraph into G.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let kn = fcn_multigraph::Traffic::symmetric(n).to_multigraph();
    let kn_embedding = Embedding::shortest_paths(&kn, g, (0..n as NodeId).collect(), &mut rng);
    let c_g_kn = kn_embedding.stats().congestion;
    let beta_g = kn.simple_edge_count() as f64 / c_g_kn as f64;

    // One BFS tree per vertex (shared by all S-levels for that vertex): the
    // embedding paths that "witness β(G)".
    // Congestion accumulators: key = (gap level, lower vertex, upper vertex)
    // for the circuit edge between (x, gap) and (y, gap+1).
    let mut congestion: BTreeMap<(u32, NodeId, NodeId), u64> = BTreeMap::new();
    let mut cone_paths = 0usize;
    let mut gamma_edges = 0u64;
    let mut used_nodes: std::collections::BTreeSet<(NodeId, u32)> =
        std::collections::BTreeSet::new();

    for u in 0..n as NodeId {
        let (dist, parent) = bfs_parents(g, u);
        for v in 0..n as NodeId {
            if v == u {
                continue;
            }
            let d = dist[v as usize];
            assert!(d != u32::MAX, "guest must be connected");
            if d > cutoff {
                continue; // long embedding path: not a cone path
            }
            // Extract the path once; reuse for every S-level.
            // fcn-allow: ERR-UNWRAP BFS reached v (dist is finite), so the parent chain is complete
            let path = path_from_parents(&parent, u, v).expect("connected");
            for level in l_min..=t {
                let terminal_level = level - d;
                cone_paths += 1;
                // Bundle size: Q-set = (v, terminal_level) .. (v, 0).
                let bundle = terminal_level as u64 + 1;
                gamma_edges += bundle;
                used_nodes.insert((u, level));
                for j in 0..=terminal_level {
                    used_nodes.insert((v, j));
                }
                // Routing legs: hop s goes (path[s], level-s) ->
                // (path[s+1], level-s-1); circuit edge at gap level-s-1.
                for (s, w) in path.windows(2).enumerate() {
                    let gap = level - s as u32 - 1;
                    *congestion.entry((gap, w[1], w[0])).or_insert(0) += bundle;
                }
                // Identity edges: gap i between (v,i) and (v,i+1), for
                // i < terminal_level, carries the γ-edges destined to
                // levels 0..=i: i+1 of them.
                for i in 0..terminal_level {
                    *congestion.entry((i, v, v)).or_insert(0) += i as u64 + 1;
                }
            }
        }
    }

    let max_congestion = congestion.values().copied().max().unwrap_or(0);
    let congestion_cap = ((n as u64) * (t as u64) * (t as u64)).max((t as u64) * c_g_kn);
    Lemma9Witness {
        n,
        lambda,
        t,
        cutoff,
        s_nodes: n * (t - l_min + 1) as usize,
        cone_paths,
        gamma_vertices: used_nodes.len(),
        gamma_edges,
        congestion: max_congestion,
        c_g_kn,
        congestion_cap,
        circuit_bandwidth: gamma_edges as f64 / max_congestion.max(1) as f64,
        target_bandwidth: t as f64 * beta_g,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    fn witness_for(m: &Machine) -> Lemma9Witness {
        build_witness(m.graph(), Lemma9Config::default())
    }

    #[test]
    fn mesh_witness_has_claimed_shape() {
        let m = Machine::mesh(2, 6);
        let w = witness_for(&m);
        assert_eq!(w.n, 36);
        assert_eq!(w.lambda, 10);
        assert_eq!(w.t, 20);
        // γ vertices Θ(nt): within [n, n(t+1)].
        assert!(w.gamma_vertices >= w.n);
        assert!(w.gamma_vertices <= w.n * (w.t as usize + 1));
        // Quasi-symmetric density: Ω(1) relative to (nt)²/2 with a small
        // constant.
        assert!(w.gamma_density() > 0.01, "density {}", w.gamma_density());
        // Ω(n²) cone paths per S-level on average.
        let per_level = w.cone_paths as f64 / (w.t - w.cutoff + 1) as f64;
        assert!(
            per_level >= 0.2 * (w.n * w.n) as f64,
            "cone paths per level {per_level}"
        );
    }

    #[test]
    fn congestion_within_proof_cap() {
        for m in [
            Machine::mesh(2, 5),
            Machine::ring(16),
            Machine::de_bruijn(4),
            Machine::tree(3),
        ] {
            let w = witness_for(&m);
            assert!(
                w.congestion_ratio() <= 8.0,
                "{}: congestion {} cap {}",
                m.name(),
                w.congestion,
                w.congestion_cap
            );
        }
    }

    #[test]
    fn bandwidth_preservation_holds() {
        // β(circuit, γ) ≥ c · t·β(G) with c = Ω(1).
        for m in [
            Machine::mesh(2, 5),
            Machine::de_bruijn(4),
            Machine::ring(12),
        ] {
            let w = witness_for(&m);
            assert!(
                w.preservation_ratio() > 0.05,
                "{}: ratio {}",
                m.name(),
                w.preservation_ratio()
            );
        }
    }

    #[test]
    fn preservation_constant_stable_across_sizes() {
        // The lemma is asymptotic: the ratio must not decay as n grows.
        let r1 = witness_for(&Machine::mesh(2, 4)).preservation_ratio();
        let r2 = witness_for(&Machine::mesh(2, 8)).preservation_ratio();
        assert!(r2 > r1 * 0.4, "preservation decays: {r1} -> {r2}");
    }

    #[test]
    fn s_nodes_and_edges_scale() {
        let w4 = witness_for(&Machine::mesh(2, 4));
        let w8 = witness_for(&Machine::mesh(2, 8));
        // n quadruples, t doubles: s_nodes ~ n·(t·α/2) grows ~8x; γ-edges
        // ~ n²t² grows ~64x. Allow generous bands.
        let s_ratio = w8.s_nodes as f64 / w4.s_nodes as f64;
        assert!(s_ratio > 4.0 && s_ratio < 16.0, "s_ratio {s_ratio}");
        let e_ratio = w8.gamma_edges as f64 / w4.gamma_edges as f64;
        assert!(e_ratio > 24.0 && e_ratio < 150.0, "e_ratio {e_ratio}");
    }

    #[test]
    fn general_witness_matches_canonical_on_nonredundant_circuit() {
        use crate::circuit::Circuit;
        let m = Machine::mesh(2, 4);
        let cfg = Lemma9Config::default();
        let canonical = build_witness(m.graph(), cfg);
        let circuit = Circuit::nonredundant(m.graph(), canonical.t);
        let general = build_witness_in_circuit(m.graph(), &circuit, cfg);
        // Same combinatorics: identical counts; congestion identical because
        // the nonredundant circuit has exactly one representative per class.
        assert_eq!(general.gamma_edges, canonical.gamma_edges);
        assert_eq!(general.cone_paths, canonical.cone_paths);
        assert_eq!(general.s_nodes, canonical.s_nodes);
        assert_eq!(general.congestion, canonical.congestion);
    }

    #[test]
    fn general_witness_survives_redundant_circuits() {
        use crate::circuit::Circuit;
        let m = Machine::mesh(2, 4);
        let cfg = Lemma9Config::default();
        let lambda = fcn_multigraph::diameter(m.graph());
        let t = ((1.0 + cfg.alpha) * lambda as f64).ceil() as u32;
        for seed in [1u64, 2, 3] {
            let circuit = Circuit::redundant_random(m.graph(), t, 3, seed);
            circuit.validate(m.graph()).unwrap();
            let w = build_witness_in_circuit(m.graph(), &circuit, cfg);
            // The lemma's claims hold no matter how the adversary builds
            // the circuit: quasi-symmetric γ, bounded congestion, preserved
            // bandwidth.
            assert!(w.gamma_edges > 0);
            assert!(
                w.congestion_ratio() <= 8.0,
                "seed {seed}: congestion ratio {}",
                w.congestion_ratio()
            );
            assert!(
                w.preservation_ratio() > 0.05,
                "seed {seed}: preservation {}",
                w.preservation_ratio()
            );
        }
    }

    #[test]
    fn redundancy_cannot_hide_the_bandwidth() {
        // Duplicating computation spreads the γ-embedding across more
        // nodes, but the preserved bandwidth stays within a constant of the
        // canonical circuit's — the heart of the Efficient Emulation
        // Theorem's robustness.
        use crate::circuit::Circuit;
        let m = Machine::ring(12);
        let cfg = Lemma9Config::default();
        let canonical = build_witness(m.graph(), cfg);
        let circuit = Circuit::redundant_random(m.graph(), canonical.t, 2, 7);
        let general = build_witness_in_circuit(m.graph(), &circuit, cfg);
        let ratio = general.circuit_bandwidth / canonical.circuit_bandwidth;
        assert!(
            ratio > 0.3,
            "redundant witness bandwidth collapsed: {ratio}"
        );
    }

    #[test]
    #[should_panic(expected = "too shallow")]
    fn shallow_circuits_rejected() {
        use crate::circuit::Circuit;
        let m = Machine::mesh(2, 4);
        let circuit = Circuit::nonredundant(m.graph(), 3); // Λ = 6, needs ≥ 12
        let _ = build_witness_in_circuit(m.graph(), &circuit, Lemma9Config::default());
    }

    #[test]
    #[should_panic(expected = "alpha > 0")]
    fn zero_alpha_rejected() {
        let m = Machine::ring(8);
        let _ = build_witness(
            m.graph(),
            Lemma9Config {
                alpha: 0.0,
                seed: 1,
            },
        );
    }
}
