//! The Efficient Emulation Theorem, executable.
//!
//! **Theorem 1** (Kruskal & Rappoport, SPAA'94): any efficient emulation of a
//! fixed-degree guest `G` on host `H` has slowdown `S ≥ Ω(β(G)/β(H))`,
//! provided (1) the guest time satisfies `T ≥ (1 + Ω(1))·Λ(G)` and (2) `H`
//! is bottleneck-free.
//!
//! [`slowdown_lower_bound`] returns the bound as a symbolic two-variable
//! ratio; [`SlowdownBound::eval`] evaluates it at concrete sizes; and
//! [`check_premises`] audits the theorem's side conditions for a concrete
//! pair of machines (degree boundedness, guest-time threshold, empirical
//! bottleneck-freeness).

use fcn_asymptotics::Asym;
use fcn_bandwidth::{quick_audit, BottleneckAudit};
use fcn_topology::{Family, Machine};
use serde::{Deserialize, Serialize};

/// The total slowdown lower bound `max(load, communication)`:
/// `S ≥ max(N_G/N_H, β_G(n)/β_H(m))`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SlowdownBound {
    /// β of the guest, as a growth class in the guest size `n`.
    pub guest_beta: Asym,
    /// β of the host, as a growth class in the host size `m`.
    pub host_beta: Asym,
}

impl SlowdownBound {
    /// Communication-induced slowdown at concrete sizes (unit constants).
    pub fn communication(&self, n: f64, m: f64) -> f64 {
        self.guest_beta.eval(n) / self.host_beta.eval(m)
    }

    /// Load-induced slowdown `n/m` (some host processor emulates at least
    /// `⌈n/m⌉` guest processors).
    pub fn load(&self, n: f64, m: f64) -> f64 {
        n / m
    }

    /// The combined lower bound `max(load, communication)`.
    pub fn eval(&self, n: f64, m: f64) -> f64 {
        self.load(n, m).max(self.communication(n, m))
    }

    /// Render the communication bound, e.g.
    /// `Θ((n * lg^-1 n) / (m^(1/2)))` for de Bruijn on a 2-d mesh.
    pub fn to_string_in_n_m(&self) -> String {
        let g = self.guest_beta.theta_string();
        // The host expression's only variable letter is `n` ("lg" has none),
        // so a character substitution renames it to `m`.
        let h = self.host_beta.theta_string().replace('n', "m");
        format!("Θ(({g}) / ({h}))")
    }
}

impl std::fmt::Display for SlowdownBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_string_in_n_m())
    }
}

/// The Efficient Emulation Theorem's bound for a guest/host family pair.
///
/// ```
/// use fcn_core::slowdown_lower_bound;
/// use fcn_topology::Family;
///
/// let b = slowdown_lower_bound(&Family::DeBruijn, &Family::Mesh(2));
/// // At n = 2^20 and m = lg² n the two slowdown sources balance.
/// let n = (1u64 << 20) as f64;
/// assert!((b.communication(n, 400.0) / b.load(n, 400.0) - 1.0).abs() < 1e-9);
/// ```
pub fn slowdown_lower_bound(guest: &Family, host: &Family) -> SlowdownBound {
    SlowdownBound {
        guest_beta: guest.beta(),
        host_beta: host.beta(),
    }
}

/// Result of auditing the theorem's premises on concrete machines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PremiseReport {
    /// Premise: the guest is a fixed-degree network (the weak hypercube
    /// qualifies via its unit node capacity; the bus does not qualify as a
    /// *guest*).
    pub guest_fixed_degree: bool,
    /// Maximum guest degree observed.
    pub guest_max_degree: u64,
    /// Premise: guest computation long enough, `T ≥ (1+ε)·Λ(G)`.
    pub guest_time_ok: bool,
    /// The Λ(G) threshold used (analytic λ at the guest size).
    pub lambda_threshold: f64,
    /// Premise: host is bottleneck-free (empirical audit).
    pub bottleneck_audit: BottleneckAudit,
    /// Whether the audit passed with the allowed constant.
    pub host_bottleneck_free: bool,
}

impl PremiseReport {
    /// All premises hold.
    pub fn all_ok(&self) -> bool {
        self.guest_fixed_degree && self.guest_time_ok && self.host_bottleneck_free
    }
}

/// Audit the theorem's premises for a concrete guest/host pair and a guest
/// computation length `guest_steps`, requiring `T ≥ (1+epsilon)·Λ(G)` and
/// bottleneck constant at most `allowed_bottleneck`.
pub fn check_premises(
    guest: &Machine,
    host: &Machine,
    guest_steps: u64,
    epsilon: f64,
    allowed_bottleneck: f64,
    seed: u64,
) -> PremiseReport {
    let guest_max_degree = guest.graph().max_degree();
    // "Fixed degree" at a single size is read as: degree stays bounded as
    // the family scales, which Family::fixed_degree knows; the weak
    // hypercube is admitted through its node capacity.
    let guest_fixed_degree = guest.family().fixed_degree() || guest.has_node_capacities();
    let lambda_threshold = guest.lambda_at_size();
    let guest_time_ok = guest_steps as f64 >= (1.0 + epsilon) * lambda_threshold;
    let bottleneck_audit = quick_audit(host, seed);
    let host_bottleneck_free = bottleneck_audit.is_bottleneck_free(allowed_bottleneck);
    PremiseReport {
        guest_fixed_degree,
        guest_max_degree,
        guest_time_ok,
        lambda_threshold,
        bottleneck_audit,
        host_bottleneck_free,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn de_bruijn_on_mesh_bound_matches_intro_example() {
        // S_c ≥ Ω((n/lg n) / sqrt(m)).
        let b = slowdown_lower_bound(&Family::DeBruijn, &Family::Mesh(2));
        let n = (1u64 << 20) as f64;
        // At m = lg^2 n the communication bound equals the load bound.
        let m_star = 20.0f64 * 20.0;
        let comm = b.communication(n, m_star);
        let load = b.load(n, m_star);
        assert!((comm / load - 1.0).abs() < 1e-9, "comm {comm} load {load}");
    }

    #[test]
    fn same_family_bound_is_size_ratio_only() {
        let b = slowdown_lower_bound(&Family::Butterfly, &Family::Butterfly);
        // communication(n, n) = 1: equal machines emulate at constant
        // slowdown per the bound.
        assert!((b.communication(4096.0, 4096.0) - 1.0).abs() < 1e-9);
        assert!((b.eval(4096.0, 1024.0) - 4.0).abs() < 0.6);
    }

    #[test]
    fn bound_is_monotone_in_host_size_for_mesh_hosts() {
        let b = slowdown_lower_bound(&Family::DeBruijn, &Family::Mesh(2));
        let n = 65536.0;
        assert!(b.communication(n, 64.0) > b.communication(n, 256.0));
        assert!(b.eval(n, 64.0) >= b.load(n, 64.0));
    }

    #[test]
    fn premises_hold_for_classic_pair() {
        let guest = Machine::de_bruijn(5);
        let host = Machine::mesh(2, 4);
        let steps = 3 * 5; // >= (1+eps)·lg n
        let report = check_premises(&guest, &host, steps, 0.5, 4.0, 3);
        assert!(report.guest_fixed_degree);
        assert!(report.guest_time_ok);
        assert!(
            report.host_bottleneck_free,
            "ratio {}",
            report.bottleneck_audit.worst_ratio
        );
        assert!(report.all_ok());
    }

    #[test]
    fn short_computations_fail_the_time_premise() {
        let guest = Machine::mesh(2, 16); // λ = Θ(sqrt n) = 16
        let host = Machine::mesh(2, 4);
        let report = check_premises(&guest, &host, 4, 0.5, 4.0, 3);
        assert!(!report.guest_time_ok);
        assert!(!report.all_ok());
    }

    #[test]
    fn display_renders_both_variables() {
        let b = slowdown_lower_bound(&Family::DeBruijn, &Family::Mesh(2));
        let s = b.to_string();
        assert!(s.contains('n') && s.contains('m'), "{s}");
    }
}
