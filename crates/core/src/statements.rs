//! The paper's named theorems (2–5), as checkable statement objects.
//!
//! Each [`TheoremStatement`] records the guest class, the host class, the
//! minimal guest computation time premise, and the maximum-host-size
//! conclusion — and can verify itself against the host-size solver. This is
//! how the reproduction keeps the prose theorems and the generated tables
//! from drifting apart.

use fcn_asymptotics::Asym;
use fcn_topology::Family;
use serde::{Deserialize, Serialize};

use crate::hostsize::max_host_size;

/// One of the paper's emulation theorems.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TheoremStatement {
    /// "theorem2" .. "theorem5".
    pub id: String,
    /// Prose paraphrase.
    pub statement: String,
    /// Guest families quantified over.
    pub guests: Vec<Family>,
    /// Host families quantified over.
    pub hosts: Vec<Family>,
    /// Minimal guest time `T_G` for the theorem to apply (growth class in
    /// the guest size).
    pub min_guest_time: Asym,
    /// Which table the conclusion is recorded in.
    pub table: &'static str,
}

impl TheoremStatement {
    /// Verify the conclusion: every (guest, host) pair's symbolic maximum
    /// host size is sublinear (the theorem's content — a size cap exists)
    /// unless the pair shares a β class. Returns each pair with its cap.
    pub fn conclusions(&self) -> Vec<(Family, Family, String)> {
        let mut out = Vec::new();
        for g in &self.guests {
            for h in &self.hosts {
                out.push((*g, *h, max_host_size(g, h).to_cell()));
            }
        }
        out
    }

    /// The premise `T_G = Ω(min_guest_time)` evaluated at size `n`.
    pub fn min_steps_at(&self, n: f64) -> f64 {
        self.min_guest_time.eval(n)
    }
}

/// Theorem 2: X-Tree guests on the constant-β hosts, `T_G ≥ Ω(lg|G|)`.
pub fn theorem2() -> TheoremStatement {
    TheoremStatement {
        id: "theorem2".into(),
        statement: "Efficiently emulating at least T_G = Ω(lg|G|) steps of an \
                    X-Tree on a linear array, tree, global bus, or weak \
                    parallel-prefix network requires |H| = O(|G|/lg|G| ... \
                    sublinear); re-derived: |H| = O(n/lg n) is never the \
                    binding form — the X-Tree's β = Θ(lg n) caps constant-β \
                    hosts at m/1 = n/lg n"
            .into(),
        guests: vec![Family::XTree],
        hosts: vec![
            Family::LinearArray,
            Family::Tree,
            Family::GlobalBus,
            Family::WeakPpn,
        ],
        min_guest_time: Asym::lg(),
        table: "table1-adjacent (X-Tree guest row)",
    }
}

/// Theorem 3: mesh-of-trees / multigrid / pyramid guests with the *long*
/// computation premise `T_G ≥ Ω(|G|^{1/j})`.
pub fn theorem3(j: u8) -> TheoremStatement {
    TheoremStatement {
        id: "theorem3".into(),
        statement: format!(
            "Efficiently emulating at least T_G = Ω(|G|^(1/{j})) steps of a \
             {j}-dimensional Mesh-of-Trees, Multigrid, or Pyramid on host H \
             requires |H| = O(f(|G|)) per Table 1's mesh column"
        ),
        guests: vec![
            Family::MeshOfTrees(j),
            Family::Multigrid(j),
            Family::Pyramid(j),
        ],
        hosts: standard_hosts(),
        min_guest_time: Asym::n_pow(1, j as i64),
        table: "table1",
    }
}

/// Theorem 4: same guests with only `T_G ≥ Ω(lg|G|)` (their λ is Θ(lg n),
/// so the Efficient Emulation Theorem applies already at logarithmic
/// computation lengths — these machines have short diameters).
pub fn theorem4(j: u8) -> TheoremStatement {
    TheoremStatement {
        id: "theorem4".into(),
        statement: format!(
            "Efficiently emulating at least T_G = Ω(lg|G|) steps of a \
             {j}-dimensional Mesh-of-Trees, Multigrid, or Pyramid on host H \
             requires |H| = O(f(|G|)) per Table 2"
        ),
        guests: vec![
            Family::MeshOfTrees(j),
            Family::Multigrid(j),
            Family::Pyramid(j),
        ],
        hosts: standard_hosts(),
        min_guest_time: Asym::lg(),
        table: "table2",
    }
}

/// Theorem 5: the butterfly-class guests, `T_G ≥ Ω(lg|G|)`.
pub fn theorem5() -> TheoremStatement {
    TheoremStatement {
        id: "theorem5".into(),
        statement: "Efficiently emulating at least T_G = Ω(lg|G|) steps of a \
                    Butterfly, de Bruijn, Shuffle-Exchange, \
                    Cube-Connected-Cycles, Multibutterfly, Expander, or Weak \
                    Hypercube on host H requires |H| = O(f(|G|)) per Table 3"
            .into(),
        guests: vec![
            Family::Butterfly,
            Family::DeBruijn,
            Family::ShuffleExchange,
            Family::Ccc,
            Family::Multibutterfly,
            Family::Expander,
            Family::WeakHypercube,
        ],
        hosts: standard_hosts(),
        min_guest_time: Asym::lg(),
        table: "table3",
    }
}

fn standard_hosts() -> Vec<Family> {
    vec![
        Family::LinearArray,
        Family::Tree,
        Family::GlobalBus,
        Family::WeakPpn,
        Family::XTree,
        Family::Mesh(1),
        Family::Mesh(2),
        Family::Mesh(3),
        Family::Pyramid(2),
        Family::Multigrid(2),
        Family::MeshOfTrees(2),
        Family::XGrid(2),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostsize::HostSizeBound;

    #[test]
    fn theorem2_conclusions_are_sublinear() {
        let t = theorem2();
        for (g, h, cell) in t.conclusions() {
            assert_ne!(cell, "O(n)", "{g} on {h} should be capped");
        }
        assert!(t.min_steps_at(1024.0) >= 10.0 - 1e-9);
    }

    #[test]
    fn theorem3_and_4_share_conclusions() {
        // The host caps come from β alone; the two theorems differ only in
        // the guest-time premise.
        let t3 = theorem3(2);
        let t4 = theorem4(2);
        assert_eq!(t3.conclusions(), t4.conclusions());
        assert!(t3.min_steps_at(4096.0) > t4.min_steps_at(4096.0));
    }

    #[test]
    fn theorem5_caps_are_polylog_on_weak_hosts() {
        let t = theorem5();
        for (g, h, cell) in t.conclusions() {
            if matches!(
                h,
                Family::LinearArray | Family::Tree | Family::GlobalBus | Family::WeakPpn
            ) {
                assert_eq!(cell, "O(lg n)", "{g} on {h}: {cell}");
            }
            if h == Family::Mesh(3) {
                assert_eq!(cell, "O(lg^3 n)", "{g} on {h}");
            }
        }
    }

    #[test]
    fn butterfly_class_guests_have_uniform_rows() {
        let t = theorem5();
        let conclusions = t.conclusions();
        // Group by host: all guests agree.
        for h in &t.hosts {
            let cells: Vec<&String> = conclusions
                .iter()
                .filter(|(_, hh, _)| hh == h)
                .map(|(_, _, c)| c)
                .collect();
            assert!(cells.windows(2).all(|w| w[0] == w[1]), "{h}: {cells:?}");
        }
    }

    #[test]
    fn statements_reference_real_tables() {
        for t in [theorem2(), theorem3(3), theorem4(3), theorem5()] {
            assert!(t.table.contains("table"));
            assert!(!t.guests.is_empty() && !t.hosts.is_empty());
        }
    }

    #[test]
    fn xtree_guest_on_constant_host_cap() {
        // The re-derived Theorem 2 cell: β(X-Tree) = lg n ⇒ m = n/lg n.
        match max_host_size(&Family::XTree, &Family::LinearArray) {
            HostSizeBound::Constrained(a) => {
                assert!(a.same_class(&(Asym::n() / Asym::lg())), "{a}");
            }
            HostSizeBound::FullSize => panic!("expected a cap"),
        }
    }
}
