//! Algorithm communication patterns — the paper's announced extension.
//!
//! The conclusion sketches how the method extends beyond machine-on-machine
//! emulation: "Algorithms are treated as collections of communication
//! patterns ... Lower bounds are obtained on the bandwidth of these
//! circuits, yielding lower bounds on the bandwidth of any communication
//! pattern induced by any efficient redundant simulation of the algorithm
//! on a host." This module implements the pattern library and the Lemma 8
//! application: the time to execute pattern `C` on host `H` is at least
//! `β-work(C) / β(H)`.
//!
//! Patterns are communication multigraphs with a round count: the classic
//! FFT/butterfly exchange, odd-even transposition sort, nearest-neighbor
//! stencils, all-to-all, tree broadcast, and random permutations.

use fcn_multigraph::{Cut, Embedding, Multigraph, MultigraphBuilder, NodeId, Traffic};
use fcn_routing::{plan_routes, route_batch, RouterConfig, Strategy};
use fcn_topology::Machine;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A named communication pattern over `n` logical processes.
///
/// ```
/// use fcn_core::CommPattern;
///
/// let fft = CommPattern::fft(4);
/// assert_eq!(fft.n, 16);
/// assert_eq!(fft.message_count(), 16 * 4); // n·g messages over g rounds
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommPattern {
    /// Pattern name, e.g. `fft(16)`.
    pub name: String,
    /// Processes communicating.
    pub n: usize,
    /// Communication multigraph: multiplicity = messages over the whole
    /// pattern (all rounds).
    pub graph: Multigraph,
    /// Rounds the algorithm takes on its natural machine.
    pub rounds: u32,
}

impl CommPattern {
    /// Total messages `E(C)`.
    pub fn message_count(&self) -> u64 {
        self.graph.simple_edge_count()
    }

    /// The FFT / butterfly exchange on `2^g` processes: round `ℓ` exchanges
    /// `u ↔ u xor 2^ℓ`. `g` rounds, `n·g/2` unordered pairs.
    pub fn fft(g: u32) -> CommPattern {
        let n = 1usize << g;
        let mut b = MultigraphBuilder::new(n);
        for l in 0..g {
            for u in 0..n {
                let v = u ^ (1 << l);
                if v > u {
                    // Two messages per exchange (both directions).
                    b.add_edge_mult(u as NodeId, v as NodeId, 2);
                }
            }
        }
        CommPattern {
            name: format!("fft(g={g})"),
            n,
            graph: b.build(),
            rounds: g,
        }
    }

    /// Odd-even transposition sort on `n` processes: `n` rounds of
    /// alternating neighbor compare-exchanges.
    pub fn odd_even_sort(n: usize) -> CommPattern {
        assert!(n >= 2);
        let mut b = MultigraphBuilder::new(n);
        for round in 0..n {
            let start = round % 2;
            let mut i = start;
            while i + 1 < n {
                b.add_edge_mult(i as NodeId, (i + 1) as NodeId, 2);
                i += 2;
            }
        }
        CommPattern {
            name: format!("odd_even_sort(n={n})"),
            n,
            graph: b.build(),
            rounds: n as u32,
        }
    }

    /// `steps` iterations of a 5-point stencil on a `side × side` grid.
    pub fn stencil2d(side: usize, steps: u32) -> CommPattern {
        assert!(side >= 2 && steps >= 1);
        let n = side * side;
        let mut b = MultigraphBuilder::new(n);
        for r in 0..side {
            for c in 0..side {
                let id = (r * side + c) as NodeId;
                if c + 1 < side {
                    b.add_edge_mult(id, id + 1, 2 * steps);
                }
                if r + 1 < side {
                    b.add_edge_mult(id, ((r + 1) * side + c) as NodeId, 2 * steps);
                }
            }
        }
        CommPattern {
            name: format!("stencil2d(side={side},steps={steps})"),
            n,
            graph: b.build(),
            rounds: steps,
        }
    }

    /// One all-to-all (personalized) exchange on `n` processes.
    pub fn all_to_all(n: usize) -> CommPattern {
        assert!(n >= 2);
        let mut b = MultigraphBuilder::new(n);
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge_mult(u, v, 2);
            }
        }
        CommPattern {
            name: format!("all_to_all(n={n})"),
            n,
            graph: b.build(),
            rounds: 1,
        }
    }

    /// Binary-tree broadcast from process 0 to all `n` (heap order): `lg n`
    /// rounds, one message per tree edge.
    pub fn broadcast(n: usize) -> CommPattern {
        assert!(n >= 2);
        let mut b = MultigraphBuilder::new(n);
        for v in 1..n as NodeId {
            b.add_edge((v - 1) / 2, v);
        }
        CommPattern {
            name: format!("broadcast(n={n})"),
            n,
            graph: b.build(),
            rounds: (n as f64).log2().ceil() as u32,
        }
    }

    /// `rounds` random permutations (each process sends one message per
    /// round).
    pub fn random_permutations(n: usize, rounds: u32, seed: u64) -> CommPattern {
        assert!(n >= 2 && rounds >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = MultigraphBuilder::new(n);
        for _ in 0..rounds {
            let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
            perm.shuffle(&mut rng);
            for (u, &v) in perm.iter().enumerate() {
                if u as NodeId != v {
                    b.add_edge(u as NodeId, v);
                }
            }
        }
        CommPattern {
            name: format!("random_permutations(n={n},rounds={rounds})"),
            n,
            graph: b.build(),
            rounds,
        }
    }
}

/// Lemma 8 applied to a pattern on a host: execution-time bounds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatternExecution {
    /// Pattern name.
    pub pattern: String,
    /// Host machine name.
    pub host: String,
    /// Messages in the pattern.
    pub messages: u64,
    /// Flux lower bound on execution ticks: some cut must pass its share.
    pub ticks_lower: f64,
    /// Measured ticks routing the pattern (1-to-1 block assignment).
    pub ticks_measured: u64,
    /// Congestion of the embedding witness (`O(c + Λ)` routing exists).
    pub witness_congestion: u64,
    /// Dilation of the embedding witness.
    pub witness_dilation: u32,
}

impl PatternExecution {
    /// Slowdown relative to the pattern's native round count.
    pub fn slowdown_vs_rounds(&self, rounds: u32) -> f64 {
        self.ticks_measured as f64 / rounds.max(1) as f64
    }
}

/// Execute (route) `pattern` on `host` with processes block-assigned to
/// host processors, and certify a flux lower bound on any execution.
pub fn execute_pattern(
    pattern: &CommPattern,
    host: &Machine,
    cfg: RouterConfig,
    seed: u64,
) -> PatternExecution {
    let m = host.processors();
    assert!(m >= 1, "host has no processors");
    let assign = fcn_multigraph::contiguous_blocks(pattern.n, m);

    // Demands: one packet per message whose endpoints land on different
    // host processors.
    let mut demands: Vec<(NodeId, NodeId)> = Vec::new();
    for e in pattern.graph.edges() {
        let (a, b) = (assign[e.u as usize], assign[e.v as usize]);
        if a != b {
            for i in 0..e.multiplicity {
                // Alternate directions for the paired messages.
                if i % 2 == 0 {
                    demands.push((a, b));
                } else {
                    demands.push((b, a));
                }
            }
        }
    }

    let (ticks_measured, witness) = if demands.is_empty() {
        (0, None)
    } else {
        let routes = plan_routes(host, &demands, Strategy::ShortestPath, seed);
        let out = route_batch(host, routes, cfg);
        assert!(out.completed, "pattern routing incomplete");
        // Embedding witness for the congestion side.
        let collapsed = fcn_multigraph::collapse(&pattern.graph, &assign, m);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa11);
        let emb = Embedding::shortest_paths(
            &collapsed.graph,
            host.graph(),
            (0..m as NodeId).collect(),
            &mut rng,
        );
        (out.ticks, Some(emb.stats()))
    };

    // Flux lower bound: for each candidate cut of the host, the collapsed
    // pattern mass crossing it over the doubled cut capacity.
    let collapsed = fcn_multigraph::collapse(&pattern.graph, &assign, m);
    let mut ticks_lower: f64 = 0.0;
    let mut cuts: Vec<Cut> = host.canonical_cuts().to_vec();
    if m >= 2 {
        cuts.push(Cut::prefix(host.node_count(), m / 2));
    }
    for cut in &cuts {
        // Crossing mass of the collapsed pattern (projected to processors).
        let crossing: u64 = collapsed
            .graph
            .edges()
            .filter(|e| e.u != e.v && cut.side[e.u as usize] != cut.side[e.v as usize])
            .map(|e| e.multiplicity as u64)
            .sum();
        let cap = cut.capacity(host.graph()).max(1);
        ticks_lower = ticks_lower.max(crossing as f64 / (2.0 * cap as f64));
    }

    PatternExecution {
        pattern: pattern.name.clone(),
        host: host.name().to_string(),
        messages: pattern.message_count(),
        ticks_lower,
        ticks_measured,
        witness_congestion: witness.map_or(0, |w| w.congestion),
        witness_dilation: witness.map_or(0, |w| w.dilation),
    }
}

/// The pattern-bandwidth view: treat the pattern's multigraph as traffic
/// and certify `β(H, pattern)` from both sides (Theorem 6 applied to an
/// algorithm's traffic rather than the symmetric distribution).
pub fn pattern_bandwidth(pattern: &CommPattern, host: &Machine, seed: u64) -> (f64, f64) {
    assert!(pattern.n <= host.processors());
    // Lower: embedding witness.
    let mut rng = StdRng::seed_from_u64(seed);
    let emb = Embedding::shortest_paths(
        &pattern.graph,
        host.graph(),
        (0..pattern.n as NodeId).collect(),
        &mut rng,
    );
    let lower = pattern.message_count() as f64 / emb.stats().congestion.max(1) as f64;
    // Upper: flux against the pattern-as-traffic distribution.
    let pairs: Vec<(NodeId, NodeId)> = pattern
        .graph
        .edges()
        .flat_map(|e| [(e.u, e.v), (e.v, e.u)])
        .collect();
    let traffic = Traffic::from_pairs(host.node_count(), pairs);
    let flux = fcn_bandwidth::flux_upper_bound(host, &traffic, seed, 4, 2);
    (lower, flux.rate_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_pattern_counts() {
        let p = CommPattern::fft(4);
        assert_eq!(p.n, 16);
        assert_eq!(p.rounds, 4);
        // n·g/2 pairs, multiplicity 2 each.
        assert_eq!(p.message_count(), 16 * 4);
        assert_eq!(p.graph.max_degree(), 2 * 4);
    }

    #[test]
    fn odd_even_sort_counts() {
        let p = CommPattern::odd_even_sort(8);
        // Rounds alternate 4 and 3 pairs; 8 rounds -> 4*4 + 4*3 = 28 pairs,
        // x2 messages.
        assert_eq!(p.message_count(), 56);
        assert_eq!(p.rounds, 8);
    }

    #[test]
    fn stencil_counts() {
        let p = CommPattern::stencil2d(4, 3);
        // 2*4*3 = 24 undirected grid edges, 2 messages * 3 steps each.
        assert_eq!(p.message_count(), 24 * 6);
    }

    #[test]
    fn broadcast_is_a_tree() {
        let p = CommPattern::broadcast(15);
        assert_eq!(p.message_count(), 14);
        assert!(p.graph.is_connected());
    }

    #[test]
    fn random_permutations_deterministic() {
        let a = CommPattern::random_permutations(16, 3, 9);
        let b = CommPattern::random_permutations(16, 3, 9);
        assert_eq!(a.graph, b.graph);
        assert!(a.message_count() <= 3 * 16);
        assert!(a.message_count() >= 2 * 16); // few fixed points
    }

    #[test]
    fn fft_on_linear_array_is_slow() {
        // The FFT pattern has bandwidth ~ n·g / lg... executing it on a
        // same-size linear array must take Ω(n) ticks (bisection 1).
        let p = CommPattern::fft(5); // n = 32
        let host = Machine::linear_array(32);
        let ex = execute_pattern(&p, &host, RouterConfig::default(), 3);
        assert!(ex.ticks_lower >= 16.0, "lower {}", ex.ticks_lower);
        assert!(ex.ticks_measured as f64 >= ex.ticks_lower);
    }

    #[test]
    fn fft_on_hypercube_is_fast() {
        // On the weak hypercube the same pattern runs in O(g · n/cap) —
        // much faster than on the array.
        let p = CommPattern::fft(5);
        let cube = Machine::weak_hypercube(5);
        let array = Machine::linear_array(32);
        let ex_cube = execute_pattern(&p, &cube, RouterConfig::default(), 3);
        let ex_array = execute_pattern(&p, &array, RouterConfig::default(), 3);
        assert!(
            (ex_cube.ticks_measured as f64) < 0.5 * ex_array.ticks_measured as f64,
            "cube {} array {}",
            ex_cube.ticks_measured,
            ex_array.ticks_measured
        );
    }

    #[test]
    fn stencil_on_matching_mesh_is_cheap() {
        let p = CommPattern::stencil2d(8, 2);
        let host = Machine::mesh(2, 8);
        let ex = execute_pattern(&p, &host, RouterConfig::default(), 5);
        // Identity placement: each wire carries its own few messages.
        assert!(
            ex.ticks_measured <= 8 * p.rounds as u64 + 16,
            "{}",
            ex.ticks_measured
        );
    }

    #[test]
    fn pattern_bandwidth_sandwich_is_ordered() {
        let p = CommPattern::fft(4);
        let host = Machine::mesh(2, 4);
        let (lower, upper) = pattern_bandwidth(&p, &host, 7);
        assert!(lower > 0.0);
        assert!(lower <= upper * 1.5, "lower {lower} upper {upper}");
    }

    #[test]
    fn smaller_hosts_collapse_messages() {
        let p = CommPattern::all_to_all(16);
        let host = Machine::mesh(2, 2);
        let ex = execute_pattern(&p, &host, RouterConfig::default(), 9);
        assert!(ex.messages >= 16 * 15);
        assert!(ex.ticks_measured > 0);
    }
}
