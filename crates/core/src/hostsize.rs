//! Maximum host sizes for efficient emulation — the machinery behind the
//! paper's Tables 1–3.
//!
//! "The largest host that can efficiently simulate the guest is obtained by
//! setting `S_c = N_G/N_H` and solving for `|H|` as a function of `|G|`"
//! (the Figure 1 crossover): `n/m = β_G(n)/β_H(m)`, i.e.
//! `m/β_H(m) = n/β_G(n)`. Both a symbolic solution (exact growth class) and
//! a numeric solution (concrete crossover at a given `n`) are provided; the
//! numeric one can also run on *measured* bandwidths.

use fcn_asymptotics::{invert_monotone, solve_power_log, Asym, Rational, SolveError};
use fcn_topology::Family;
use serde::{Deserialize, Serialize};

/// Maximum host size as a growth class in the guest size `n`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HostSizeBound {
    /// Bandwidth caps the host at this (sublinear) size class.
    Constrained(Asym),
    /// The bandwidth bound never binds below full size: a host as large as
    /// the guest is admissible (`|H| = Θ(|G|)`), as for butterfly-class
    /// hosts emulating butterfly-class guests.
    FullSize,
}

impl HostSizeBound {
    /// Render like the paper's table cells, e.g. `O(lg^2 n)` or `O(n)`.
    pub fn to_cell(&self) -> String {
        match self {
            HostSizeBound::Constrained(a) => format!("O({})", a.theta_string()),
            HostSizeBound::FullSize => "O(n)".to_string(),
        }
    }

    /// The growth class (Θ(n) for `FullSize`).
    pub fn as_asym(&self) -> Asym {
        match self {
            HostSizeBound::Constrained(a) => *a,
            HostSizeBound::FullSize => Asym::n(),
        }
    }
}

/// Symbolically solve `m/β_H(m) = n/β_G(n)` for `m` as a class in `n`.
///
/// ```
/// use fcn_core::max_host_size;
/// use fcn_topology::Family;
///
/// // The paper's introduction example.
/// let cap = max_host_size(&Family::DeBruijn, &Family::Mesh(2));
/// assert_eq!(cap.to_cell(), "O(lg^2 n)");
/// ```
pub fn max_host_size(guest: &Family, host: &Family) -> HostSizeBound {
    let x = Asym::n() / guest.beta(); // n / β_G(n)
    let (e, d, g) = host.beta_exponents();
    // m / β_H(m) = m^{1-e} (lg m)^{-d} (lg lg m)^{-g}.
    let solved = solve_power_log(Rational::ONE - e, -d, -g, x);
    match solved {
        Ok(m) => {
            if m.cmp_growth(&Asym::n()) == std::cmp::Ordering::Less {
                HostSizeBound::Constrained(m)
            } else {
                HostSizeBound::FullSize
            }
        }
        // Outside the n^a lg^b lglg^c class ⇒ super-polylog solution that
        // outgrows n (e.g. lg m = n^{1/j}): no sublinear cap.
        Err(SolveError::OutsideClass) => HostSizeBound::FullSize,
        // fcn-allow: ERR-UNWRAP the β forms passed in are fixed Table-4 classes that never yield a degenerate equation
        Err(e) => panic!("degenerate host-size equation: {e:?}"),
    }
}

/// Numerically solve the crossover at a concrete guest size, using the
/// analytic β forms with unit constants. Returns the host size `m*`.
pub fn numeric_host_size(guest: &Family, host: &Family, n: f64) -> f64 {
    let x = n / guest.beta().eval(n);
    let host_beta = host.beta();
    numeric_host_size_from(|m| m / host_beta.eval(m), x, n)
}

/// Numeric crossover with an arbitrary host profile `m ↦ m/β_H(m)` (use a
/// closure over *measured* host bandwidths for the empirical variant).
///
/// The answer is clamped to `n`: if even a full-size host's bandwidth keeps
/// up (`β_H(n) ≥ β_G(n)`, i.e. `profile(n) ≤ x`), the emulation is
/// unconstrained and the maximum host is the guest size itself.
pub fn numeric_host_size_from(host_profile: impl Fn(f64) -> f64, x: f64, n: f64) -> f64 {
    if host_profile(n) <= x {
        return n;
    }
    // m/β_H(m) is nondecreasing for every Table 4 machine; the solution now
    // lies strictly inside [1, n].
    invert_monotone(1.0, n, x, host_profile)
}

/// Empirical crossover: solve the host size from *measured* bandwidths.
///
/// `guest_beta_at_n` is a measured β̂(G) at guest size `n`;
/// `host_samples` are measured `(m, β̂_H(m))` points. The host profile
/// `m/β_H(m)` is interpolated log-log between samples (and extrapolated by
/// the boundary slopes), then inverted. This closes the loop between the
/// measured Table 4 and the derived Tables 1–3.
///
/// # Panics
/// Panics with fewer than 2 host samples or nonpositive measurements.
pub fn empirical_host_size(guest_beta_at_n: f64, n: f64, host_samples: &[(f64, f64)]) -> f64 {
    assert!(host_samples.len() >= 2, "need at least two host samples");
    let mut pts: Vec<(f64, f64)> = host_samples
        .iter()
        .map(|&(m, b)| {
            assert!(m > 1.0 && b > 0.0, "invalid host sample ({m}, {b})");
            (m.ln(), (m / b).ln()) // log profile
        })
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    let profile = move |m: f64| -> f64 {
        let x = m.ln();
        // Piecewise-linear in log space with linear extrapolation.
        let (lo, hi) = (pts[0], pts[pts.len() - 1]);
        let y = if x <= lo.0 {
            let (a, b) = (pts[0], pts[1]);
            a.1 + (x - a.0) * (b.1 - a.1) / (b.0 - a.0)
        } else if x >= hi.0 {
            let (a, b) = (pts[pts.len() - 2], pts[pts.len() - 1]);
            b.1 + (x - b.0) * (b.1 - a.1) / (b.0 - a.0)
        } else {
            let i = pts.partition_point(|p| p.0 <= x).min(pts.len() - 1);
            let (a, b) = (pts[i - 1], pts[i]);
            a.1 + (x - a.0) * (b.1 - a.1) / (b.0 - a.0)
        };
        y.exp()
    };
    let x = n / guest_beta_at_n;
    numeric_host_size_from(profile, x, n)
}

/// A (guest, host) cell of Tables 1–3: symbolic bound plus numeric samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostSizeCell {
    /// Guest family name.
    pub guest: String,
    /// Host family name.
    pub host: String,
    /// Symbolic bound rendered like the paper's cell.
    pub bound: String,
    /// The growth class behind it.
    pub bound_class: HostSizeBound,
    /// Numeric crossovers at the sampled guest sizes.
    pub samples: Vec<(u64, f64)>,
}

/// Compute a full table cell with numeric samples at the given guest sizes.
pub fn host_size_cell(guest: &Family, host: &Family, guest_sizes: &[u64]) -> HostSizeCell {
    let bound_class = max_host_size(guest, host);
    let samples = guest_sizes
        .iter()
        .map(|&n| (n, numeric_host_size(guest, host, n as f64)))
        .collect();
    HostSizeCell {
        guest: guest.id(),
        host: host.id(),
        bound: bound_class.to_cell(),
        bound_class,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constrained(guest: &Family, host: &Family) -> Asym {
        match max_host_size(guest, host) {
            HostSizeBound::Constrained(a) => a,
            HostSizeBound::FullSize => panic!("expected constrained"),
        }
    }

    // ---- Table 1: mesh-class guests ----

    #[test]
    fn mesh_guest_on_constant_beta_hosts() {
        // |H| = O(n^{1/j}) for linear array / tree / bus / weak PPN hosts.
        // j = 1 degenerates to full size: a 1-d mesh *is* linear-array class.
        for host in [
            Family::LinearArray,
            Family::Tree,
            Family::GlobalBus,
            Family::WeakPpn,
        ] {
            assert_eq!(
                max_host_size(&Family::Mesh(1), &host),
                HostSizeBound::FullSize,
                "{host}"
            );
            for j in 2..=3u8 {
                let m = constrained(&Family::Mesh(j), &host);
                assert!(m.same_class(&Asym::n_pow(1, j as i64)), "j={j} {host}: {m}");
            }
        }
    }

    #[test]
    fn mesh_guest_on_xtree_gains_lg() {
        let m = constrained(&Family::Mesh(2), &Family::XTree);
        assert!(m.same_class(&(Asym::n_pow(1, 2) * Asym::lg())), "{m}");
    }

    #[test]
    fn mesh_guest_on_lower_dim_mesh_hosts() {
        // |H| = O(n^{k/j}) for Mesh_k / Pyramid_k / Multigrid_k / MoT_k, k<j.
        // Pyramid(1)/Multigrid(1) are X-Tree class (β = Θ(lg m)) and gain a
        // lg factor instead.
        for (j, k) in [(2u8, 1u8), (3, 1), (3, 2)] {
            for host in [Family::Mesh(k), Family::MeshOfTrees(k), Family::XGrid(k)] {
                let m = constrained(&Family::Mesh(j), &host);
                assert!(
                    m.same_class(&Asym::n_pow(k as i64, j as i64)),
                    "j={j} k={k} {host}: {m}"
                );
            }
            for host in [Family::Pyramid(k), Family::Multigrid(k)] {
                let m = constrained(&Family::Mesh(j), &host);
                let expect = if k == 1 {
                    Asym::n_pow(1, j as i64) * Asym::lg()
                } else {
                    Asym::n_pow(k as i64, j as i64)
                };
                assert!(m.same_class(&expect), "j={j} k={k} {host}: {m}");
            }
        }
    }

    #[test]
    fn mesh_guest_on_same_dim_mesh_is_full_size() {
        assert_eq!(
            max_host_size(&Family::Mesh(2), &Family::Mesh(2)),
            HostSizeBound::FullSize
        );
        assert_eq!(
            max_host_size(&Family::Torus(3), &Family::XGrid(3)),
            HostSizeBound::FullSize
        );
    }

    // ---- Table 2: mesh-of-trees / multigrid / pyramid guests ----

    #[test]
    fn hierarchical_guests_match_mesh_guests() {
        // Same β as meshes ⇒ same host caps.
        for guest in [
            Family::MeshOfTrees(2),
            Family::Multigrid(2),
            Family::Pyramid(2),
        ] {
            let m = constrained(&guest, &Family::LinearArray);
            assert!(m.same_class(&Asym::n_pow(1, 2)), "{guest}: {m}");
            let m = constrained(&guest, &Family::XTree);
            assert!(
                m.same_class(&(Asym::n_pow(1, 2) * Asym::lg())),
                "{guest}: {m}"
            );
            let m = constrained(&guest, &Family::Mesh(1));
            assert!(m.same_class(&Asym::n_pow(1, 2)), "{guest}: {m}");
        }
    }

    // ---- Table 3: butterfly-class guests ----

    #[test]
    fn butterfly_class_guest_on_constant_hosts_is_polylog() {
        for guest in [
            Family::Butterfly,
            Family::DeBruijn,
            Family::ShuffleExchange,
            Family::Ccc,
            Family::Multibutterfly,
            Family::Expander,
            Family::WeakHypercube,
        ] {
            let m = constrained(&guest, &Family::LinearArray);
            assert!(m.same_class(&Asym::lg()), "{guest}: {m}");
        }
    }

    #[test]
    fn butterfly_guest_on_xtree_is_lg_lglg() {
        let m = constrained(&Family::Butterfly, &Family::XTree);
        assert!(m.same_class(&(Asym::lg() * Asym::lglg())), "{m}");
    }

    #[test]
    fn de_bruijn_on_mesh_k_is_lg_to_the_k() {
        // The introduction's example: m = O(lg^2 n) for the 2-d mesh.
        for k in 1..=3i64 {
            let m = constrained(&Family::DeBruijn, &Family::Mesh(k as u8));
            assert!(m.same_class(&Asym::lg_pow(k, 1)), "k={k}: {m}");
        }
    }

    #[test]
    fn butterfly_on_butterfly_is_full_size() {
        for host in [Family::Butterfly, Family::DeBruijn, Family::Ccc] {
            assert_eq!(
                max_host_size(&Family::ShuffleExchange, &host),
                HostSizeBound::FullSize
            );
        }
    }

    // ---- numeric agreement ----

    #[test]
    fn numeric_matches_symbolic_for_intro_example() {
        let n = (1u64 << 20) as f64;
        let m = numeric_host_size(&Family::DeBruijn, &Family::Mesh(2), n);
        let sym = Asym::lg_pow(2, 1).eval(n);
        let ratio = m / sym;
        assert!(ratio > 0.3 && ratio < 3.0, "m {m} sym {sym}");
    }

    #[test]
    fn numeric_host_sizes_grow_with_guest() {
        let a = numeric_host_size(&Family::Mesh(2), &Family::LinearArray, 1024.0);
        let b = numeric_host_size(&Family::Mesh(2), &Family::LinearArray, 65536.0);
        assert!(b > a);
        // n^{1/2}: 65536 -> 256-ish.
        assert!((b - 256.0).abs() < 64.0, "b {b}");
    }

    #[test]
    fn empirical_host_size_matches_analytic_on_synthetic_data() {
        // Host = 2-d mesh with β̂ = 1.5·sqrt(m) "measured" samples; guest
        // de Bruijn with β̂(n) = 1.2·n/lg n at n = 2^20. Analytic crossover
        // with these constants: m/β_H(m) = n/β_G(n) ⇒ sqrt(m)/1.5 = lg n/1.2.
        let n = (1u64 << 20) as f64;
        let samples: Vec<(f64, f64)> = [16.0, 64.0, 256.0, 1024.0]
            .iter()
            .map(|&m: &f64| (m, 1.5 * m.sqrt()))
            .collect();
        let guest_beta = 1.2 * n / n.log2();
        let m = empirical_host_size(guest_beta, n, &samples);
        let expected = (1.5 * 20.0 / 1.2_f64).powi(2);
        assert!(
            (m - expected).abs() / expected < 0.05,
            "m {m} expected {expected}"
        );
    }

    #[test]
    fn empirical_host_size_extrapolates_beyond_samples() {
        // Crossover above the largest sample: log-log extrapolation.
        let n = (1u64 << 26) as f64;
        let samples: Vec<(f64, f64)> = [16.0, 64.0, 256.0]
            .iter()
            .map(|&m: &f64| (m, m.sqrt()))
            .collect();
        let guest_beta = n / n.log2(); // lg n = 26 -> m* = 26² = 676 > 256
        let m = empirical_host_size(guest_beta, n, &samples);
        assert!((m - 676.0).abs() / 676.0 < 0.05, "m {m}");
    }

    #[test]
    #[should_panic(expected = "two host samples")]
    fn empirical_needs_samples() {
        let _ = empirical_host_size(10.0, 100.0, &[(4.0, 2.0)]);
    }

    #[test]
    fn cells_carry_samples() {
        let cell = host_size_cell(&Family::Mesh(2), &Family::Tree, &[1024, 4096]);
        assert_eq!(cell.samples.len(), 2);
        assert_eq!(cell.bound, "O(n^(1/2))");
        assert!(cell.samples[1].1 > cell.samples[0].1);
    }
}
