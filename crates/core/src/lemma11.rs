//! Lemma 11 made executable: bandwidth survives super-vertex collapse.
//!
//! The lemma: let `C` carry a quasi-symmetric traffic `γ ∈ K_{n,O(1)}`; if
//! `C`'s vertices are collapsed onto `n/k` super-vertices with load `O(k)`,
//! some traffic `ξ ∈ K_{n/k, Θ(k²)}` on the collapsed graph `M` satisfies
//! `β(M, ξ) ≥ Ω(β(C, γ))`. The proof is a counting argument: at most
//! `O(nk)` γ-edges collapse into self-loops, so `Ω(n²)` survive between
//! distinct super-vertices, each super-pair carrying at most `O(k²)` of
//! them; and the surviving γ-paths still witness the congestion.
//!
//! [`collapse_preservation`] executes exactly that: embeds `γ` into `C`,
//! collapses, and measures every quantity the proof counts.

use std::collections::BTreeMap;

use fcn_multigraph::{collapse, Embedding, Multigraph, NodeId, Traffic};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Measured quantities of one collapse experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lemma11Report {
    /// |C|.
    pub n: usize,
    /// Number of super-vertices.
    pub m: usize,
    /// Max super-vertex load (the `O(k)`).
    pub max_load: u32,
    /// γ-edges before collapse.
    pub gamma_edges: u64,
    /// γ-edges collapsed into self-loops (the proof bounds these by O(nk)).
    pub self_collapsed: u64,
    /// Surviving ξ-edges between distinct super-vertices (claim: Ω(n²)).
    pub xi_edges: u64,
    /// Max ξ multiplicity between one super-pair (claim: O(k²)).
    pub max_pair_multiplicity: u64,
    /// Congestion of the γ embedding in C.
    pub c_congestion: u64,
    /// Per-unit-capacity congestion of the collapsed embedding in M.
    pub m_unit_congestion: u64,
    /// β(C, γ) = E(γ) / congestion_C.
    pub beta_c: f64,
    /// β(M, ξ) = E(ξ) / unit-congestion_M.
    pub beta_m: f64,
}

impl Lemma11Report {
    /// The lemma's conclusion as a measured constant: `β(M,ξ)/β(C,γ)`,
    /// which should be bounded below by a constant.
    pub fn preservation_ratio(&self) -> f64 {
        self.beta_m / self.beta_c
    }

    /// Fraction of γ-edges surviving between distinct supers.
    pub fn survival_fraction(&self) -> f64 {
        self.xi_edges as f64 / self.gamma_edges as f64
    }
}

/// Execute the Lemma 11 experiment: embed `gamma` (a traffic distribution
/// on `c`'s vertices) into `c` along shortest paths, collapse `c` by
/// `assign` onto `num_supers` super-vertices, and measure the preservation
/// quantities.
pub fn collapse_preservation(
    c: &Multigraph,
    gamma: &Traffic,
    assign: &[NodeId],
    num_supers: usize,
    seed: u64,
) -> Lemma11Report {
    assert_eq!(gamma.n(), c.node_count(), "traffic must cover C exactly");
    let gamma_graph = gamma.to_multigraph();
    let mut rng = StdRng::seed_from_u64(seed);
    let embedding = Embedding::shortest_paths(
        &gamma_graph,
        c,
        (0..c.node_count() as NodeId).collect(),
        &mut rng,
    );
    let c_congestion = embedding.stats().congestion;
    let collapsed = collapse(c, assign, num_supers);

    // ξ: collapsed γ-edges between distinct supers.
    let mut xi: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    let mut self_collapsed = 0u64;
    let mut gamma_edges = 0u64;
    for e in gamma_graph.edges() {
        gamma_edges += e.multiplicity as u64;
        let (a, b) = (assign[e.u as usize], assign[e.v as usize]);
        if a == b {
            self_collapsed += e.multiplicity as u64;
        } else {
            *xi.entry((a.min(b), a.max(b))).or_insert(0) += e.multiplicity as u64;
        }
    }
    let xi_edges: u64 = xi.values().sum();
    let max_pair_multiplicity = xi.values().copied().max().unwrap_or(0);

    // Collapse the γ-paths and measure per-unit-capacity congestion on M:
    // the load on an M edge divided by its multiplicity (number of parallel
    // C wires collapsed into it).
    let mut m_load: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for (e, path) in embedding.guest_edges.iter().zip(&embedding.paths) {
        // Skip γ-edges that collapse to self-loops: they need no M wires.
        if assign[e.u as usize] == assign[e.v as usize] {
            continue;
        }
        for w in path.windows(2) {
            let (a, b) = (assign[w[0] as usize], assign[w[1] as usize]);
            if a != b {
                *m_load.entry((a.min(b), a.max(b))).or_insert(0) += e.multiplicity as u64;
            }
        }
    }
    let m_unit_congestion = m_load
        .iter()
        .map(|(&(a, b), &load)| {
            let cap = collapsed.graph.multiplicity(a, b).max(1) as u64;
            load.div_ceil(cap)
        })
        .max()
        .unwrap_or(0);

    Lemma11Report {
        n: c.node_count(),
        m: num_supers,
        max_load: collapsed.max_load(),
        gamma_edges,
        self_collapsed,
        xi_edges,
        max_pair_multiplicity,
        c_congestion,
        m_unit_congestion,
        beta_c: gamma_edges as f64 / c_congestion.max(1) as f64,
        beta_m: xi_edges as f64 / m_unit_congestion.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_multigraph::contiguous_blocks;
    use fcn_topology::Machine;

    fn run(machine: &Machine, m: usize, seed: u64) -> Lemma11Report {
        let n = machine.processors();
        let gamma = Traffic::symmetric(machine.graph().node_count());
        let assign = contiguous_blocks(machine.graph().node_count(), m);
        let _ = n;
        collapse_preservation(machine.graph(), &gamma, &assign, m, seed)
    }

    #[test]
    fn most_gamma_edges_survive() {
        let r = run(&Machine::mesh(2, 8), 8, 1);
        // Self-collapsed edges are O(nk) = O(64·8) vs n² = 4096 γ-pairs.
        assert!(r.survival_fraction() > 0.7, "{}", r.survival_fraction());
        assert_eq!(r.gamma_edges, r.self_collapsed + r.xi_edges);
    }

    #[test]
    fn pair_multiplicity_is_k_squared() {
        let r = run(&Machine::mesh(2, 8), 8, 2);
        let k = r.max_load as u64;
        // Each super-pair carries at most 2·k² γ-edges (multiplicity-2 K_n).
        assert!(
            r.max_pair_multiplicity <= 2 * k * k,
            "mult {} k {k}",
            r.max_pair_multiplicity
        );
        assert!(r.max_pair_multiplicity >= k * k / 2);
    }

    #[test]
    fn bandwidth_preserved_on_ring_collapse() {
        // Collapsing a ring onto a smaller ring: both have β = Θ(1); the
        // ratio must be Ω(1) (in fact ≥ 1: the collapsed instance is
        // easier per unit).
        let r = run(&Machine::ring(32), 8, 3);
        assert!(
            r.preservation_ratio() > 0.5,
            "ratio {}",
            r.preservation_ratio()
        );
    }

    #[test]
    fn bandwidth_preserved_on_mesh_collapse() {
        let r = run(&Machine::mesh(2, 8), 16, 4);
        assert!(
            r.preservation_ratio() > 0.5,
            "ratio {}",
            r.preservation_ratio()
        );
        assert!(r.m_unit_congestion <= r.c_congestion * 2);
    }

    #[test]
    fn loads_are_balanced() {
        let r = run(&Machine::mesh(2, 8), 8, 5);
        assert_eq!(r.max_load, 8);
        assert_eq!(r.m, 8);
        assert_eq!(r.n, 64);
    }

    #[test]
    fn collapse_to_single_super_is_degenerate_but_total() {
        let machine = Machine::ring(8);
        let gamma = Traffic::symmetric(8);
        let assign = contiguous_blocks(8, 1);
        let r = collapse_preservation(machine.graph(), &gamma, &assign, 1, 6);
        assert_eq!(r.xi_edges, 0);
        assert_eq!(r.self_collapsed, r.gamma_edges);
    }
}
