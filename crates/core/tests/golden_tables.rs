//! Golden-file tests for the symbolic table generators.
//!
//! Tables 1–3 are (guest × host) grids of maximum-host-size cells solved
//! from `n/m = β_G(n)/β_H(m)`; Table 4 is the per-family (β, λ) register
//! both sides of that equation come from. All four are *symbolic* —
//! no measurement, no randomness — so their rendered text must never drift
//! except through a deliberate change to the β/λ algebra or the solver.
//! Any such change shows up here as a readable diff.
//!
//! To regenerate after an intentional change:
//! `FCN_UPDATE_GOLDEN=1 cargo test -p fcn-core --test golden_tables`

use std::path::PathBuf;

use fcn_core::{generate_table, table1_spec, table2_spec, table3_spec};
use fcn_topology::Family;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `actual` against the checked-in golden file, or rewrite the file
/// when `FCN_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("FCN_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with FCN_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "golden mismatch for {name}; if the change is intentional, rerun \
         with FCN_UPDATE_GOLDEN=1 and review the diff"
    );
}

/// The guest sizes the snapshot pins numeric crossovers at. Two sizes keep
/// the snapshot sensitive to the numeric solver as well as the symbols.
const SIZES: [u64; 2] = [1 << 12, 1 << 20];

#[test]
fn table1_symbolic_snapshot() {
    let t = generate_table(table1_spec(&[1, 2, 3]), &SIZES);
    assert_golden("table1.txt", &t.render());
}

#[test]
fn table2_symbolic_snapshot() {
    let t = generate_table(table2_spec(&[1, 2, 3]), &SIZES);
    assert_golden("table2.txt", &t.render());
}

#[test]
fn table3_symbolic_snapshot() {
    let t = generate_table(table3_spec(&[1, 2, 3]), &SIZES);
    assert_golden("table3.txt", &t.render());
}

#[test]
fn table4_symbolic_snapshot() {
    // The analytic (β, λ) register for every family — the inputs every
    // other table is solved from.
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "table4 — analytic β and λ per machine family");
    let _ = writeln!(
        s,
        "{:<18} {:>16} {:>12} {:>6}",
        "family", "beta", "lambda", "deg"
    );
    for f in Family::all_with_dims(&[1, 2, 3]) {
        let _ = writeln!(
            s,
            "{:<18} {:>16} {:>12} {:>6}",
            f.id(),
            f.beta().theta_string(),
            f.lambda().theta_string(),
            f.fixed_degree()
        );
    }
    assert_golden("table4.txt", &s);
}

#[test]
fn numeric_crossovers_snapshot() {
    // The numeric side of the host-size cells: m* at both pinned guest
    // sizes for a representative set of pairs (the paper's worked examples).
    use fcn_core::numeric_host_size;
    use std::fmt::Write;
    let pairs = [
        (Family::DeBruijn, Family::Mesh(2)),
        (Family::DeBruijn, Family::Tree),
        (Family::Mesh(2), Family::LinearArray),
        (Family::Mesh(3), Family::Mesh(2)),
        (Family::XTree, Family::Tree),
        (Family::MeshOfTrees(2), Family::XTree),
    ];
    let mut s = String::new();
    let _ = writeln!(s, "numeric m* crossovers (guest -> host @ n)");
    for (g, h) in pairs {
        for n in SIZES {
            let m = numeric_host_size(&g, &h, n as f64);
            let _ = writeln!(
                s,
                "{:<16} -> {:<14} @ 2^{:<2} : {m:.1}",
                g.id(),
                h.id(),
                n.ilog2()
            );
        }
    }
    assert_golden("crossovers.txt", &s);
}
