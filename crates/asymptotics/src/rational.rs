//! Exact rational arithmetic for asymptotic exponents.
//!
//! Exponents appearing in the paper's closed forms are always small rationals
//! (`(k-1)/k`, `1/j`, `k/j`, ...). Keeping them exact lets the host-size
//! solver in `fcn-core` print the paper's Tables 1-3 verbatim instead of as
//! floating-point approximations.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

/// A rational number `num/den` kept in lowest terms with `den > 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i64,
    den: i64,
}

/// Greatest common divisor (always non-negative).
fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational 0/1.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational 1/1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num/den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn int(n: i64) -> Self {
        Rational { num: n, den: 1 }
    }

    /// Numerator in lowest terms (sign-carrying).
    pub fn numerator(self) -> i64 {
        self.num
    }

    /// Denominator in lowest terms (always positive).
    pub fn denominator(self) -> i64 {
        self.den
    }

    /// Is this exactly zero?
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Is this strictly positive?
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Is this strictly negative?
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Does this reduce to an integer (denominator 1)?
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Nearest `f64` value.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Absolute value.
    pub fn abs(self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        (self.num as i128 * other.den as i128).cmp(&(other.num as i128 * self.den as i128))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_sign_and_gcd() {
        let r = Rational::new(4, -6);
        assert_eq!(r.numerator(), -2);
        assert_eq!(r.denominator(), 3);
    }

    #[test]
    fn zero_in_lowest_terms() {
        let r = Rational::new(0, -7);
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.denominator(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(5, 6));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 6));
        assert_eq!(a / b, Rational::new(3, 2));
        assert_eq!(-a, Rational::new(-1, 2));
    }

    #[test]
    fn ordering_crosses_denominators() {
        assert!(Rational::new(2, 3) < Rational::new(3, 4));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert!(Rational::new(7, 7) == Rational::ONE);
    }

    #[test]
    fn recip_and_predicates() {
        let r = Rational::new(-3, 4);
        assert_eq!(r.recip(), Rational::new(-4, 3));
        assert!(r.is_negative());
        assert!(!r.is_integer());
        assert!(Rational::int(5).is_integer());
        assert_eq!(r.abs(), Rational::new(3, 4));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn to_f64_matches() {
        assert!((Rational::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-5, 10).to_string(), "-1/2");
    }
}
