//! Numeric and symbolic equation solving on growth expressions.
//!
//! Two solvers are provided:
//!
//! * a robust numeric monotone-function inverter (`invert_monotone`,
//!   `crossover`) used by the empirical pipeline to locate the Figure 1
//!   intersection of the load-induced and communication-induced slowdown
//!   curves at concrete sizes; and
//! * a symbolic solver (`solve_power_log`) for equations of the shape
//!   `m^e * (lg m)^d * (lg lg m)^g = X(n)` — precisely the shape produced by
//!   the Efficient Emulation Theorem when solving `N_G/N_H = β(G)/β(H)` for
//!   the maximum host size. It returns the solution as an [`Asym`] in `n`.

use crate::expr::Asym;
use crate::rational::Rational;

/// Invert a strictly monotone function on `[lo, hi]` by bisection.
///
/// Finds `x` with `f(x) ≈ target`. Works for increasing or decreasing `f`
/// (detected from the endpoints). Returns the midpoint after `iters`
/// bisections; callers choose `iters` ≈ 60 for full f64 precision.
///
/// # Panics
/// Panics if `target` is not bracketed by `f(lo)` and `f(hi)`.
pub fn invert_monotone(mut lo: f64, mut hi: f64, target: f64, f: impl Fn(f64) -> f64) -> f64 {
    assert!(lo < hi, "invalid bracket [{lo}, {hi}]");
    let flo = f(lo);
    let fhi = f(hi);
    let increasing = fhi >= flo;
    let (mut a, mut b) = (flo, fhi);
    if !increasing {
        std::mem::swap(&mut a, &mut b);
    }
    assert!(
        a <= target && target <= b,
        "target {target} not bracketed by f({lo})={flo}, f({hi})={fhi}"
    );
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let v = f(mid);
        let go_right = if increasing { v < target } else { v > target };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-12 * hi.abs().max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Find the crossing point of two functions on `[lo, hi]`.
///
/// Requires `f - g` to change sign exactly once on the bracket (monotone
/// difference suffices, which holds for the Figure 1 curves: the load bound
/// `n/m` is decreasing in `m` while the communication bound `β_G(n)/β_H(m)`
/// is nonincreasing strictly slower — their ratio is monotone).
pub fn crossover(lo: f64, hi: f64, f: impl Fn(f64) -> f64, g: impl Fn(f64) -> f64) -> f64 {
    invert_monotone(lo, hi, 0.0, |x| f(x) - g(x))
}

/// Error cases for the symbolic power-log solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The left-hand side `m^e (lg m)^d ...` is not strictly increasing in
    /// `m`, so the equation has no unique meaningful solution.
    NotMonotone,
    /// `e = 0` with a nonzero `lg m` exponent and `X` not a pure power of
    /// `lg n`: the solution leaves the `n^a lg^b n (lg lg n)^c` class.
    OutsideClass,
    /// The right-hand side shrinks with `n`; the host would be sublinear in a
    /// way that makes the emulation question degenerate.
    ShrinkingRhs,
}

/// Solve `m^e * (lg m)^d * (lg lg m)^g = X(n)` for `m` as a growth class.
///
/// The solver substitutes the correct scale of `lg m` depending on whether
/// `m` is polynomial, polylogarithmic, or poly-log-log in `n`, which is how
/// the paper's Tables 1-3 pick up their `lg` and `lg lg` factors:
///
/// * `X` polynomial in `n`  ⇒ `lg m = Θ(lg n)`, `lg lg m = Θ(lg lg n)`;
/// * `X` polylog in `n`     ⇒ `lg m = Θ(lg lg n)`, `lg lg m = Θ(1)`;
/// * `X` poly-log-log       ⇒ `lg m = Θ(lg lg lg n) = Θ(1)` at this precision.
///
/// The special case `e = 0, d > 0` (a Butterfly-class host, where
/// `m / β_H(m) = lg m`) is handled when `X = κ·lg n`: then `m = n^κ`.
///
/// ```
/// use fcn_asymptotics::{solve_power_log, Asym, Rational};
///
/// // de Bruijn guest on a 2-d mesh host: m^(1/2) = lg n ⇒ m = lg² n.
/// let m = solve_power_log(Rational::new(1, 2), Rational::ZERO, Rational::ZERO, Asym::lg())
///     .unwrap();
/// assert!(m.same_class(&Asym::lg_pow(2, 1)));
/// ```
pub fn solve_power_log(e: Rational, d: Rational, g: Rational, x: Asym) -> Result<Asym, SolveError> {
    if e.is_negative() {
        return Err(SolveError::NotMonotone);
    }
    if e.is_zero() {
        // lhs = (lg m)^d (lg lg m)^g. Only the paper-relevant case
        // d > 0, g = 0, X = κ lg^k n is supported: m = 2^(X^{1/d}).
        if !d.is_positive() || !g.is_zero() {
            return Err(SolveError::NotMonotone);
        }
        let xroot = x.pow(d.recip());
        // m = 2^{xroot}. Stays in class only if xroot = κ·lg n (⇒ m = n^κ)
        // or xroot = κ·lg lg n (⇒ m = lg^κ n).
        if xroot.pow_n.is_zero() && xroot.pow_lg == Rational::ONE && xroot.pow_lglg.is_zero() {
            return Ok(Asym::one().with_pow_n(Rational::int(1)).with_coeff(1.0));
        }
        if xroot.pow_n.is_zero() && xroot.pow_lg.is_zero() && xroot.pow_lglg == Rational::ONE {
            return Ok(Asym::one().with_pow_lg(Rational::int(1)).with_coeff(1.0));
        }
        return Err(SolveError::OutsideClass);
    }

    // m = (X / ((lg m)^d (lg lg m)^g))^{1/e}; substitute scales for lg m.
    let (lg_m, lglg_m): (Asym, Asym) = if x.pow_n.is_positive() {
        (Asym::lg(), Asym::lglg())
    } else if x.pow_n.is_zero() && x.pow_lg.is_positive() {
        (Asym::lglg(), Asym::one())
    } else if x.pow_n.is_zero() && x.pow_lg.is_zero() && !x.pow_lglg.is_negative() {
        (Asym::one(), Asym::one())
    } else {
        return Err(SolveError::ShrinkingRhs);
    };
    let denom = lg_m.pow(d) * lglg_m.pow(g);
    Ok((x / denom).pow(e.recip()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invert_increasing() {
        let x = invert_monotone(1.0, 1e9, 4096.0, |m| m.sqrt());
        assert!((x - 4096.0f64.powi(2)).abs() / x < 1e-9);
    }

    #[test]
    fn invert_decreasing() {
        let x = invert_monotone(1.0, 1e6, 0.001, |m| 1.0 / m);
        assert!((x - 1000.0).abs() / x < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not bracketed")]
    fn invert_requires_bracket() {
        invert_monotone(1.0, 10.0, 1000.0, |m| m);
    }

    #[test]
    fn crossover_of_figure1_shape() {
        // load bound n/m vs communication bound β_G(n)/β_H(m) for the intro
        // example: n = 2^20 de Bruijn on a 2-d mesh. Crossover at m = lg^2 n.
        let n: f64 = (1u64 << 20) as f64;
        let lgn = n.log2();
        let load = move |m: f64| n / m;
        let comm = move |m: f64| (n / lgn) / m.sqrt();
        let m_star = crossover(1.0, n, load, comm);
        assert!((m_star - lgn * lgn).abs() / m_star < 1e-6);
    }

    #[test]
    fn symbolic_de_bruijn_on_mesh2() {
        // n/m = (n/lg n)/sqrt(m)  ⇔  m^{1/2} = lg n  ⇒ m = lg^2 n.
        let x = Asym::lg();
        let m = solve_power_log(Rational::new(1, 2), Rational::ZERO, Rational::ZERO, x).unwrap();
        assert!(m.same_class(&Asym::lg_pow(2, 1)));
    }

    #[test]
    fn symbolic_mesh3_on_linear_array() {
        // guest Mesh_3: β_G = n^{2/3}, host β_H = 1:
        // n/m = n^{2/3} ⇒ m = n^{1/3}.
        let x = Asym::n_pow(1, 3);
        let m = solve_power_log(Rational::ONE, Rational::ZERO, Rational::ZERO, x).unwrap();
        assert!(m.same_class(&Asym::n_pow(1, 3)));
    }

    #[test]
    fn symbolic_mesh_on_xtree_gains_lg_factor() {
        // guest Mesh_j, host X-Tree (β_H = lg m): m / lg m = n^{1/j}
        // ⇒ m = n^{1/j} lg n.
        let x = Asym::n_pow(1, 2);
        let m = solve_power_log(Rational::ONE, Rational::int(-1), Rational::ZERO, x).unwrap();
        assert!(m.same_class(&(Asym::n_pow(1, 2) * Asym::lg())));
    }

    #[test]
    fn symbolic_butterfly_on_xtree_gains_lglg() {
        // guest Butterfly (β_G = n/lg n), host X-Tree: m / lg m = lg n
        // ⇒ m = lg n * lg lg n.
        let x = Asym::lg();
        let m = solve_power_log(Rational::ONE, Rational::int(-1), Rational::ZERO, x).unwrap();
        assert!(m.same_class(&(Asym::lg() * Asym::lglg())));
    }

    #[test]
    fn symbolic_butterfly_on_butterfly_full_size() {
        // host Butterfly-class: m/β_H(m) = lg m; guest same: X = lg n ⇒ m = n.
        let m = solve_power_log(Rational::ZERO, Rational::ONE, Rational::ZERO, Asym::lg()).unwrap();
        assert!(m.same_class(&Asym::n()));
    }

    #[test]
    fn degenerate_cases_rejected() {
        assert_eq!(
            solve_power_log(Rational::int(-1), Rational::ZERO, Rational::ZERO, Asym::n()),
            Err(SolveError::NotMonotone)
        );
        assert_eq!(
            solve_power_log(
                Rational::ONE,
                Rational::ZERO,
                Rational::ZERO,
                Asym::one() / Asym::n()
            ),
            Err(SolveError::ShrinkingRhs)
        );
    }

    #[test]
    fn numeric_agrees_with_symbolic() {
        // m / lg m = lg n at n = 2^32: numeric root vs symbolic lg n lg lg n.
        let n: f64 = 2f64.powi(32);
        let target = n.log2();
        let m_num = invert_monotone(2.0, 1e9, target, |m| m / m.log2());
        let m_sym = (Asym::lg() * Asym::lglg()).eval(n);
        // Same class: ratio bounded by a small constant.
        let ratio = m_num / m_sym;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
    }
}
