//! Log-log regression: recover Θ-class exponents from measured data.
//!
//! The Table 4 reproduction measures delivery rates `β̂(n)` at a sweep of
//! machine sizes and asks "which `n^a lg^b n` class is this?". We answer by
//! least-squares fitting `lg y = a·lg n + b·lg lg n + c` and then snapping
//! `a` to the nearest small rational (the paper's exponents all have
//! denominator ≤ 6).

use serde::{Deserialize, Serialize};

use crate::expr::Asym;
use crate::rational::Rational;

/// Result of a log-log fit `y ≈ 2^c * n^a * (lg n)^b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerLogFit {
    /// Exponent of `n`.
    pub pow_n: f64,
    /// Exponent of `lg n`.
    pub pow_lg: f64,
    /// Constant coefficient (not `lg`-ed).
    pub coeff: f64,
    /// Root-mean-square residual in `lg y` units.
    pub rms_residual: f64,
}

impl PowerLogFit {
    /// Snap the fitted exponents to the nearest rationals with denominator at
    /// most `max_den`, returning the implied growth class.
    pub fn snap(&self, max_den: i64) -> Asym {
        Asym::one()
            .with_pow_n(snap_rational(self.pow_n, max_den))
            .with_pow_lg(snap_rational(self.pow_lg, max_den))
            .with_coeff(self.coeff.max(f64::MIN_POSITIVE))
    }

    /// Evaluate the fitted model at `n`.
    pub fn eval(&self, n: f64) -> f64 {
        let lg = n.log2().max(1.0);
        self.coeff * n.powf(self.pow_n) * lg.powf(self.pow_lg)
    }
}

/// Nearest rational `p/q` with `1 <= q <= max_den` to `x`.
pub fn snap_rational(x: f64, max_den: i64) -> Rational {
    let mut best = Rational::int(x.round() as i64);
    let mut best_err = (x - best.to_f64()).abs();
    for q in 1..=max_den {
        let p = (x * q as f64).round() as i64;
        let cand = Rational::new(p, q);
        let err = (x - cand.to_f64()).abs();
        if err + 1e-12 < best_err {
            best = cand;
            best_err = err;
        }
    }
    best
}

/// Solve a small dense linear system `a x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` for (numerically) singular systems.
pub fn solve_dense(a: &mut [Vec<f64>], b: &mut [f64]) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|r| r.len() == n));
    for col in 0..n {
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            let (pivot_row, target_row) = {
                let (top, bottom) = a.split_at_mut(row);
                (&top[col], &mut bottom[0])
            };
            for (t, p) in target_row[col..n].iter_mut().zip(&pivot_row[col..n]) {
                *t -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in (col + 1)..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

/// Least-squares fit of `lg y = a lg n + b lg lg n + c` over `(n, y)` samples.
///
/// Requires at least 3 samples with distinct `n` spanning enough range for
/// `lg lg n` to vary; with exactly-collinear inputs the `lg lg` column is
/// dropped and a plain power law is fitted instead.
///
/// # Panics
/// Panics if fewer than 2 samples are provided or any sample is nonpositive.
pub fn fit_power_log(samples: &[(f64, f64)]) -> PowerLogFit {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    for &(n, y) in samples {
        assert!(n > 1.0 && y > 0.0, "samples must have n > 1, y > 0");
    }
    // Design matrix columns: [lg n, lg lg n, 1]; response: lg y.
    let rows: Vec<[f64; 3]> = samples
        .iter()
        .map(|&(n, _)| {
            let lg = n.log2();
            [lg, lg.log2().max(0.0), 1.0]
        })
        .collect();
    let ys: Vec<f64> = samples.iter().map(|&(_, y)| y.log2()).collect();

    let fit3 = normal_equations(&rows, &ys, 3);
    let (a, b, c) = match fit3 {
        Some(x) => (x[0], x[1], x[2]),
        None => {
            // Drop the lg lg column (collinear) and fit a pure power law.
            let rows2: Vec<[f64; 3]> = rows.iter().map(|r| [r[0], r[2], 0.0]).collect();
            // fcn-allow: ERR-UNWRAP two-column system with distinct sample sizes is nonsingular by construction
            let x = normal_equations(&rows2, &ys, 2).expect("power-law fit is nonsingular");
            (x[0], 0.0, x[1])
        }
    };

    let mut sq = 0.0;
    for (r, &ly) in rows.iter().zip(&ys) {
        let pred = a * r[0] + b * r[1] + c;
        sq += (pred - ly) * (pred - ly);
    }
    PowerLogFit {
        pow_n: a,
        pow_lg: b,
        coeff: c.exp2(),
        rms_residual: (sq / samples.len() as f64).sqrt(),
    }
}

/// Classify samples into the best-fitting growth class from a discrete
/// candidate set.
///
/// Free regression of `lg y` on `(lg n, lg lg n)` is ill-conditioned over
/// realistic size ranges (the two columns are nearly collinear), so instead
/// of trusting the free exponents we score each *candidate class*
/// `n^a (lg n)^b`: fit only the constant, and measure the RMS residual.
/// Candidates are exactly the classes appearing in Table 4, so this is a
/// discrete hypothesis test, not an estimation problem.
///
/// Returns the winning class (with fitted coefficient) and its residual.
pub fn classify_growth(samples: &[(f64, f64)], candidates: &[Asym]) -> (Asym, f64) {
    assert!(!candidates.is_empty() && samples.len() >= 2);
    let mut best: Option<(Asym, f64)> = None;
    for cand in candidates {
        // lg y - lg cand(n) should be constant; residual = stddev.
        let resids: Vec<f64> = samples
            .iter()
            .map(|&(n, y)| y.log2() - cand.eval(n).log2())
            .collect();
        let mean = resids.iter().sum::<f64>() / resids.len() as f64;
        let var = resids.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / resids.len() as f64;
        let rms = var.sqrt();
        if best.as_ref().is_none_or(|(_, b)| rms < *b) {
            best = Some((cand.with_coeff(mean.exp2().max(f64::MIN_POSITIVE)), rms));
        }
    }
    // fcn-allow: ERR-UNWRAP the assert at function entry guarantees at least one candidate was scored
    best.expect("nonempty candidates")
}

/// Classify with an additive offset: score each candidate class under the
/// model `y ≈ c₁·class(n) + c₀` (least squares in `(1, class)`), returning
/// the winner and its *relative* RMS residual.
///
/// Distance data needs this: a tree's average distance is `2·lg n − c`, and
/// the constant offset makes purely multiplicative fitting prefer small
/// power laws over the true `lg n`. The offset model is exact for every
/// Table 4 λ entry. Candidates whose best `c₁` is nonpositive are rejected.
pub fn classify_growth_offset(samples: &[(f64, f64)], candidates: &[Asym]) -> (Asym, f64) {
    assert!(!candidates.is_empty() && samples.len() >= 2);
    if samples.len() < 3 {
        // Two points cannot support a two-parameter model per candidate;
        // fall back to the multiplicative classifier.
        return classify_growth(samples, candidates);
    }
    let mean_y = samples.iter().map(|&(_, y)| y).sum::<f64>() / samples.len() as f64;
    // Θ(1) baseline: the offset alone must be beaten by any growing class.
    let const_rms = {
        let var = samples
            .iter()
            .map(|&(_, y)| (y - mean_y) * (y - mean_y))
            .sum::<f64>()
            / samples.len() as f64;
        var.sqrt() / mean_y.max(f64::MIN_POSITIVE)
    };
    let constant = (
        Asym::one().with_coeff(mean_y.max(f64::MIN_POSITIVE)),
        const_rms,
    );
    // Saturation guard: data whose total relative variation is tiny is a
    // constant, even if a slowly-growing class happens to model its drift
    // (e.g. a flux bound approaching its asymptote, 4(n-1)/n → 4).
    {
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for &(_, y) in samples {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        if hi - lo < 0.05 * mean_y {
            return constant;
        }
    }
    let mut best: Option<(Asym, f64)> = None;
    for cand in candidates {
        let xs: Vec<f64> = samples.iter().map(|&(n, _)| cand.eval(n)).collect();
        let ys: Vec<f64> = samples.iter().map(|&(_, y)| y).collect();
        let k = xs.len() as f64;
        let (sx, sy) = (xs.iter().sum::<f64>(), ys.iter().sum::<f64>());
        let sxx = xs.iter().map(|x| x * x).sum::<f64>();
        let sxy = xs.iter().zip(&ys).map(|(x, y)| x * y).sum::<f64>();
        let denom = k * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            continue; // constant candidate cannot explain varying data
        }
        let c1 = (k * sxy - sx * sy) / denom;
        if c1 <= 0.0 {
            continue;
        }
        let c0 = (sy - c1 * sx) / k;
        let rss: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| {
                let e = y - (c1 * x + c0);
                e * e
            })
            .sum();
        let rel_rms = (rss / k).sqrt() / mean_y.max(f64::MIN_POSITIVE);
        if best.as_ref().is_none_or(|(_, b)| rel_rms < *b) {
            best = Some((cand.with_coeff(c1.max(f64::MIN_POSITIVE)), rel_rms));
        }
    }
    // Occam margin vs the Θ(1) baseline: a growing class must beat the
    // constant fit clearly (25%), so measurement noise on flat data cannot
    // promote Θ(1) to a slowly-growing class.
    match best {
        Some((cand, rms)) if rms < 0.75 * constant.1 => (cand, rms),
        _ => constant,
    }
}

/// The candidate growth classes appearing in the paper's Table 4 β column
/// (plus a few neighbors so misfits are detectable).
pub fn table4_candidates() -> Vec<Asym> {
    let mut out = vec![
        Asym::one(),
        Asym::lg(),
        Asym::lg_pow(2, 1),
        Asym::n() / Asym::lg(),
        Asym::n(),
    ];
    for (p, q) in [(1i64, 4i64), (1, 3), (1, 2), (2, 3), (3, 4)] {
        out.push(Asym::n_pow(p, q));
    }
    out
}

/// Solve the normal equations for the first `k` columns of 3-wide rows.
fn normal_equations(rows: &[[f64; 3]], ys: &[f64], k: usize) -> Option<Vec<f64>> {
    let mut ata = vec![vec![0.0; k]; k];
    let mut atb = vec![0.0; k];
    for (r, &y) in rows.iter().zip(ys) {
        for i in 0..k {
            for (j, cell) in ata[i].iter_mut().enumerate() {
                *cell += r[i] * r[j];
            }
            atb[i] += r[i] * y;
        }
    }
    solve_dense(&mut ata, &mut atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(f: impl Fn(f64) -> f64, ns: &[f64]) -> Vec<(f64, f64)> {
        ns.iter().map(|&n| (n, f(n))).collect()
    }

    const NS: [f64; 8] = [64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0, 16384.0, 65536.0];

    #[test]
    fn fits_pure_power_law() {
        let data = synth(|n| 2.5 * n.powf(0.5), &NS);
        let fit = fit_power_log(&data);
        assert!((fit.pow_n - 0.5).abs() < 0.02, "pow_n = {}", fit.pow_n);
        assert!(fit.rms_residual < 0.05);
        assert_eq!(fit.snap(6).pow_n, Rational::new(1, 2));
    }

    #[test]
    fn fits_n_over_lg() {
        let data = synth(|n| n / n.log2(), &NS);
        let fit = fit_power_log(&data);
        assert!((fit.pow_n - 1.0).abs() < 0.05, "pow_n = {}", fit.pow_n);
        assert!((fit.pow_lg + 1.0).abs() < 0.35, "pow_lg = {}", fit.pow_lg);
        let snapped = fit.snap(1);
        assert_eq!(snapped.pow_n, Rational::ONE);
        assert_eq!(snapped.pow_lg, Rational::int(-1));
    }

    #[test]
    fn fits_two_thirds_power() {
        let data = synth(|n| 0.7 * n.powf(2.0 / 3.0), &NS);
        let fit = fit_power_log(&data);
        assert_eq!(fit.snap(6).pow_n, Rational::new(2, 3));
    }

    #[test]
    fn snap_rational_prefers_small_denominators() {
        assert_eq!(snap_rational(0.501, 6), Rational::new(1, 2));
        assert_eq!(snap_rational(0.667, 6), Rational::new(2, 3));
        assert_eq!(snap_rational(-0.99, 6), Rational::int(-1));
        assert_eq!(snap_rational(0.0, 6), Rational::ZERO);
    }

    #[test]
    fn eval_reproduces_samples() {
        let data = synth(|n| 4.0 * n.powf(0.75), &NS);
        let fit = fit_power_log(&data);
        for &(n, y) in &data {
            assert!((fit.eval(n) - y).abs() / y < 0.25);
        }
    }

    #[test]
    fn classify_picks_sqrt_for_mesh_like_data() {
        // Noisy c·sqrt(n) data: the free 3-param fit is unstable here, but
        // classification is not.
        let noise = [1.1, 0.92, 1.05, 0.9, 1.15, 0.95, 1.0, 1.08];
        let data: Vec<(f64, f64)> = NS
            .iter()
            .zip(noise)
            .map(|(&n, z)| (n, 3.0 * n.sqrt() * z))
            .collect();
        let (class, rms) = classify_growth(&data, &table4_candidates());
        assert_eq!(class.pow_n, Rational::new(1, 2));
        assert!(class.pow_lg.is_zero());
        assert!(rms < 0.3);
        assert!((class.coeff - 3.0).abs() < 0.6, "coeff {}", class.coeff);
    }

    #[test]
    fn classify_separates_n_over_lg_from_n() {
        let data = synth(|n| 0.5 * n / n.log2(), &NS);
        let (class, _) = classify_growth(&data, &table4_candidates());
        assert_eq!(class.pow_n, Rational::ONE);
        assert_eq!(class.pow_lg, Rational::int(-1));
    }

    #[test]
    fn classify_constant_class() {
        let data = synth(|_| 2.2, &NS);
        let (class, rms) = classify_growth(&data, &table4_candidates());
        assert!(class.is_constant());
        assert!(rms < 1e-9);
    }

    #[test]
    fn dense_solver_3x3() {
        let mut a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let mut b = vec![8.0, -11.0, -3.0];
        let x = solve_dense(&mut a, &mut b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
        assert!((x[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn dense_solver_detects_singular() {
        let mut a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        let mut b = vec![1.0, 2.0];
        assert!(solve_dense(&mut a, &mut b).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn fit_requires_samples() {
        let _ = fit_power_log(&[(4.0, 2.0)]);
    }
}

#[cfg(test)]
mod offset_tests {
    use super::*;

    const NS: [f64; 6] = [64.0, 128.0, 256.0, 1024.0, 4096.0, 16384.0];

    #[test]
    fn offset_classifier_sees_through_additive_constants() {
        // Tree average distance shape: 2 lg n - 4.
        let data: Vec<(f64, f64)> = NS.iter().map(|&n| (n, 2.0 * n.log2() - 4.0)).collect();
        let (class, rms) = classify_growth_offset(&data, &table4_candidates());
        assert!(class.pow_n.is_zero(), "{class:?}");
        assert_eq!(class.pow_lg, Rational::ONE, "{class:?}");
        assert!(rms < 1e-9);
    }

    #[test]
    fn offset_classifier_mesh_diameter_shape() {
        // 3(side - 1) with n = side^3.
        let data: Vec<(f64, f64)> = NS
            .iter()
            .map(|&n| (n, 3.0 * (n.powf(1.0 / 3.0) - 1.0)))
            .collect();
        let (class, _) = classify_growth_offset(&data, &table4_candidates());
        assert_eq!(class.pow_n, Rational::new(1, 3), "{class:?}");
    }

    #[test]
    fn offset_classifier_constant_data() {
        let data: Vec<(f64, f64)> = NS.iter().map(|&n| (n, 2.0)).collect();
        let (class, rms) = classify_growth_offset(&data, &table4_candidates());
        assert!(class.is_constant(), "{class:?}");
        assert!(rms < 1e-12);
    }
}
