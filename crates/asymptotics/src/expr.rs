//! Symbolic growth expressions of the form `c * n^a * (lg n)^b * (lg lg n)^d`.
//!
//! This is exactly the closed-form class appearing in the paper's Tables 1-4:
//! machine bandwidths are `n^{(k-1)/k}`, `n/lg n`, `lg n`, `1`; maximum host
//! sizes additionally pick up `lg lg` factors (e.g. Butterfly-class guests on
//! an X-Tree host give `|H| = O(lg|G| * lg lg|G|)`). The class is closed under
//! multiplication, division and rational powers, which is all the Efficient
//! Emulation Theorem's algebra needs.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Div, Mul};

use serde::{Deserialize, Serialize};

use crate::rational::Rational;

/// A growth function `coeff * n^pow_n * (lg n)^pow_lg * (lg lg n)^pow_lglg`.
///
/// `coeff` is a positive constant; asymptotic comparison ignores it but
/// numeric evaluation uses it. Exponents are exact rationals.
///
/// ```
/// use fcn_asymptotics::Asym;
///
/// // β of the de Bruijn graph over β of the 2-d mesh:
/// let ratio = (Asym::n() / Asym::lg()) / Asym::n_pow(1, 2);
/// assert_eq!(ratio.to_string(), "Θ(n^(1/2) * lg^-1 n)");
/// assert!((ratio.eval(1024.0) - 32.0 / 10.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Asym {
    /// Leading constant (always positive).
    pub coeff: f64,
    /// Exponent of `n`.
    pub pow_n: Rational,
    /// Exponent of `lg n`.
    pub pow_lg: Rational,
    /// Exponent of `lg lg n`.
    pub pow_lglg: Rational,
}

impl Asym {
    /// Θ(1).
    pub const fn one() -> Self {
        Asym {
            coeff: 1.0,
            pow_n: Rational::ZERO,
            pow_lg: Rational::ZERO,
            pow_lglg: Rational::ZERO,
        }
    }

    /// Θ(n).
    pub fn n() -> Self {
        Asym::one().with_pow_n(Rational::ONE)
    }

    /// Θ(lg n).
    pub fn lg() -> Self {
        Asym::one().with_pow_lg(Rational::ONE)
    }

    /// Θ(lg lg n).
    pub fn lglg() -> Self {
        Asym::one().with_pow_lglg(Rational::ONE)
    }

    /// Θ(n^{num/den}).
    pub fn n_pow(num: i64, den: i64) -> Self {
        Asym::one().with_pow_n(Rational::new(num, den))
    }

    /// Θ(lg^{num/den} n).
    pub fn lg_pow(num: i64, den: i64) -> Self {
        Asym::one().with_pow_lg(Rational::new(num, den))
    }

    /// This class with leading constant `c`.
    pub fn with_coeff(mut self, c: f64) -> Self {
        assert!(c > 0.0, "asymptotic coefficient must be positive");
        self.coeff = c;
        self
    }

    /// This class with `n`-exponent `p`.
    pub fn with_pow_n(mut self, p: Rational) -> Self {
        self.pow_n = p;
        self
    }

    /// This class with `lg n`-exponent `p`.
    pub fn with_pow_lg(mut self, p: Rational) -> Self {
        self.pow_lg = p;
        self
    }

    /// This class with `lg lg n`-exponent `p`.
    pub fn with_pow_lglg(mut self, p: Rational) -> Self {
        self.pow_lglg = p;
        self
    }

    /// Raise to an exact rational power.
    pub fn pow(self, p: Rational) -> Self {
        Asym {
            coeff: self.coeff.powf(p.to_f64()),
            pow_n: self.pow_n * p,
            pow_lg: self.pow_lg * p,
            pow_lglg: self.pow_lglg * p,
        }
    }

    /// Multiplicative inverse (`Θ(1/f)`).
    pub fn recip(self) -> Self {
        Asym {
            coeff: 1.0 / self.coeff,
            pow_n: -self.pow_n,
            pow_lg: -self.pow_lg,
            pow_lglg: -self.pow_lglg,
        }
    }

    /// Evaluate at `n` (uses `lg = log2`, clamped so small `n` stays finite).
    ///
    /// `lg n` is clamped below at 1 and `lg lg n` at 1, matching the usual
    /// "for n large enough" reading of asymptotic forms and keeping negative
    /// exponents well-defined at tiny sizes.
    pub fn eval(&self, n: f64) -> f64 {
        assert!(n >= 1.0, "asymptotic expressions evaluated for n >= 1");
        let lg = n.log2().max(1.0);
        let lglg = lg.log2().max(1.0);
        self.coeff
            * n.powf(self.pow_n.to_f64())
            * lg.powf(self.pow_lg.to_f64())
            * lglg.powf(self.pow_lglg.to_f64())
    }

    /// Compare asymptotic growth, ignoring the constant coefficient.
    ///
    /// Lexicographic in (pow_n, pow_lg, pow_lglg): e.g. `n/lg n` grows faster
    /// than `sqrt(n) * lg^5 n` because 1 > 1/2 at the leading position.
    pub fn cmp_growth(&self, other: &Asym) -> Ordering {
        self.pow_n
            .cmp(&other.pow_n)
            .then(self.pow_lg.cmp(&other.pow_lg))
            .then(self.pow_lglg.cmp(&other.pow_lglg))
    }

    /// True when the two expressions have identical exponents (same Θ-class).
    pub fn same_class(&self, other: &Asym) -> bool {
        self.cmp_growth(other) == Ordering::Equal
    }

    /// True for Θ(1) up to the constant.
    pub fn is_constant(&self) -> bool {
        self.pow_n.is_zero() && self.pow_lg.is_zero() && self.pow_lglg.is_zero()
    }

    /// True when the expression is nondecreasing in `n` for large `n`.
    pub fn is_nondecreasing(&self) -> bool {
        if self.pow_n.is_positive() {
            return true;
        }
        if self.pow_n.is_negative() {
            return false;
        }
        if self.pow_lg.is_positive() {
            return true;
        }
        if self.pow_lg.is_negative() {
            return false;
        }
        !self.pow_lglg.is_negative()
    }

    /// Render without the constant, e.g. `n^(2/3) * lg n` or `lg^2 n`.
    pub fn theta_string(&self) -> String {
        fn pow_str(p: Rational) -> String {
            if p.is_integer() {
                format!("{}", p.numerator())
            } else {
                format!("({p})")
            }
        }
        fn factor(base: &str, p: Rational) -> Option<String> {
            if p.is_zero() {
                None
            } else if p == Rational::ONE {
                Some(base.to_string())
            } else if base == "n" {
                Some(format!("n^{}", pow_str(p)))
            } else if base == "lg n" {
                Some(format!("lg^{} n", pow_str(p)))
            } else {
                Some(format!("({base})^{}", pow_str(p)))
            }
        }
        let parts: Vec<String> = [
            factor("n", self.pow_n),
            factor("lg n", self.pow_lg),
            factor("lg lg n", self.pow_lglg),
        ]
        .into_iter()
        .flatten()
        .collect();
        if parts.is_empty() {
            "1".to_string()
        } else {
            parts.join(" * ")
        }
    }
}

impl Default for Asym {
    fn default() -> Self {
        Asym::one()
    }
}

impl Mul for Asym {
    type Output = Asym;
    fn mul(self, rhs: Asym) -> Asym {
        Asym {
            coeff: self.coeff * rhs.coeff,
            pow_n: self.pow_n + rhs.pow_n,
            pow_lg: self.pow_lg + rhs.pow_lg,
            pow_lglg: self.pow_lglg + rhs.pow_lglg,
        }
    }
}

impl Div for Asym {
    type Output = Asym;
    // Division is multiplication by the reciprocal by definition here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Asym) -> Asym {
        self * rhs.recip()
    }
}

impl fmt::Display for Asym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Θ({})", self.theta_string())
    }
}

impl fmt::Debug for Asym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Asym[{} * {}]", self.coeff, self.theta_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        assert_eq!(Asym::one().to_string(), "Θ(1)");
        assert_eq!(Asym::n().to_string(), "Θ(n)");
        assert_eq!(Asym::n_pow(2, 3).to_string(), "Θ(n^(2/3))");
        let de_bruijn_beta = Asym::n() / Asym::lg();
        assert_eq!(de_bruijn_beta.to_string(), "Θ(n * lg^-1 n)");
        assert_eq!(Asym::lg_pow(2, 1).to_string(), "Θ(lg^2 n)");
        assert_eq!((Asym::lg() * Asym::lglg()).to_string(), "Θ(lg n * lg lg n)");
    }

    #[test]
    fn mul_div_pow() {
        let mesh2 = Asym::n_pow(1, 2); // β of the 2-d mesh
        let sq = mesh2.pow(Rational::int(2));
        assert!(sq.same_class(&Asym::n()));
        let ratio = (Asym::n() / Asym::lg()) / mesh2;
        assert_eq!(ratio.pow_n, Rational::new(1, 2));
        assert_eq!(ratio.pow_lg, Rational::int(-1));
    }

    #[test]
    fn growth_ordering() {
        let a = Asym::n() / Asym::lg(); // n / lg n
        let b = Asym::n_pow(1, 2) * Asym::lg_pow(5, 1); // sqrt(n) lg^5 n
        assert_eq!(a.cmp_growth(&b), Ordering::Greater);
        let c = Asym::lg() * Asym::lglg();
        assert_eq!(c.cmp_growth(&Asym::lg()), Ordering::Greater);
        assert_eq!(c.cmp_growth(&Asym::lg_pow(2, 1)), Ordering::Less);
    }

    #[test]
    fn eval_matches_math() {
        let f = Asym::n_pow(1, 2).with_coeff(3.0);
        assert!((f.eval(1024.0) - 3.0 * 32.0).abs() < 1e-9);
        let g = Asym::n() / Asym::lg();
        assert!((g.eval(1024.0) - 1024.0 / 10.0).abs() < 1e-9);
    }

    #[test]
    fn eval_clamps_small_n() {
        // at n = 2, lg lg n would be 0; eval must stay finite and positive.
        let f = Asym::one() / (Asym::lg() * Asym::lglg());
        assert!(f.eval(2.0).is_finite());
        assert!(f.eval(2.0) > 0.0);
    }

    #[test]
    fn monotonicity_detection() {
        assert!(Asym::n().is_nondecreasing());
        assert!(Asym::lg().is_nondecreasing());
        assert!((Asym::n() / Asym::lg()).is_nondecreasing());
        assert!(!(Asym::one() / Asym::lg()).is_nondecreasing());
        assert!(Asym::one().is_nondecreasing());
        assert!(!(Asym::one() / Asym::lglg()).is_nondecreasing());
    }

    #[test]
    fn recip_roundtrip() {
        let f = Asym::n_pow(2, 3) * Asym::lg_pow(-1, 2);
        let back = f.recip().recip();
        assert!(f.same_class(&back));
        assert!((f.coeff - back.coeff).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_coeff_rejected() {
        let _ = Asym::one().with_coeff(0.0);
    }
}
