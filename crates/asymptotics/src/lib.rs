#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-asymptotics
//!
//! Exact symbolic algebra over growth expressions `c · n^a · (lg n)^b ·
//! (lg lg n)^d` with rational exponents, plus the numeric tooling needed to
//! connect the symbolic side to measured data:
//!
//! * [`Rational`] — exact exponent arithmetic;
//! * [`Asym`] — the growth-expression class that Tables 1–4 of Kruskal &
//!   Rappoport (SPAA'94) live in, closed under `*`, `/` and rational powers;
//! * [`solve`] — monotone inversion / crossover finding (Figure 1) and the
//!   symbolic `m^e (lg m)^d = X(n)` solver behind the maximum-host-size
//!   tables;
//! * [`fit`] — log-log least squares with exponent snapping, used to classify
//!   measured bandwidths back into Θ-classes.
//!
//! This crate is dependency-free (besides `serde`) and fully deterministic.

pub mod expr;
pub mod fit;
pub mod rational;
pub mod solve;

pub use expr::Asym;
pub use fit::{fit_power_log, snap_rational, PowerLogFit};
pub use rational::Rational;
pub use solve::{crossover, invert_monotone, solve_power_log, SolveError};
