//! The warm compiled-net registry.
//!
//! Inline `fcnemu` pays net compilation and plan-cache warmup on every
//! invocation; the service pays them once per distinct machine graph and
//! reuses the artifacts across requests. Entries are keyed by the graph's
//! structural fingerprint, so two requests for the same family/size share
//! one [`CompiledNet`] and one warm [`PlanCache`] even when they arrive on
//! different connections.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use fcn_exec::lockdep::{lock_ranked, ranks, RankedGuard};
use fcn_routing::{CompiledNet, PlanCache};
use fcn_topology::Machine;

/// One warm entry: the compiled net plus its plan cache.
#[derive(Debug, Clone)]
pub struct RegistryEntry {
    /// The compiled net, shareable across request threads.
    pub net: Arc<CompiledNet>,
    /// The warm plan cache for that net; hits accumulate across requests.
    pub cache: Arc<PlanCache>,
}

/// A fingerprint-keyed registry of warm [`RegistryEntry`]s.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<u64, RegistryEntry>>,
}

impl Registry {
    /// An empty (cold) registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Number of distinct graphs currently held warm.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the registry is still cold.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the warm entry for `machine`'s graph, compiling it on first
    /// use. The second return is `true` on a warm hit. Telemetry
    /// (`serve_registry_*`) flows into the caller's thread shard so it
    /// merges in request-arrival order with the rest of the request's
    /// counters.
    pub fn get_or_compile(&self, machine: &Machine) -> (RegistryEntry, bool) {
        let key = machine.graph().fingerprint();
        if let Some(entry) = self.lock().get(&key).cloned() {
            self.record(true);
            return (entry, true);
        }
        // Compile outside the lock: compilation is the expensive step and
        // must not serialize unrelated requests. Two racing requests for a
        // brand-new graph may both compile; the first to insert wins and
        // the loser adopts the winner's entry, so all requests for one
        // fingerprint still share a single plan cache.
        let fresh = RegistryEntry {
            net: CompiledNet::shared(machine),
            cache: Arc::new(PlanCache::default()),
        };
        let mut map = self.lock();
        let entry = map.entry(key).or_insert(fresh).clone();
        let nets = map.len() as u64;
        drop(map);
        self.record(false);
        if fcn_telemetry::global().enabled() {
            fcn_telemetry::with_shard(|s| {
                s.set_gauge(fcn_telemetry::names::SERVE_REGISTRY_NETS, nets);
            });
        }
        (entry, false)
    }

    fn record(&self, hit: bool) {
        if !fcn_telemetry::global().enabled() {
            return;
        }
        fcn_telemetry::with_shard(|s| {
            if hit {
                s.inc(fcn_telemetry::names::SERVE_REGISTRY_HITS_TOTAL);
            } else {
                s.inc(fcn_telemetry::names::SERVE_REGISTRY_MISSES_TOTAL);
            }
        });
    }

    fn lock(&self) -> RankedGuard<'_, BTreeMap<u64, RegistryEntry>> {
        // Poison recovery is inside lock_ranked: a poisoned map only means
        // another request thread panicked while holding the lock; the map
        // itself is always structurally valid.
        lock_ranked(&self.entries, ranks::SERVE_REGISTRY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(side: usize) -> Machine {
        Machine::mesh(2, side)
    }

    #[test]
    fn second_request_for_the_same_graph_is_a_hit() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        let (a, hit_a) = reg.get_or_compile(&mesh(4));
        assert!(!hit_a, "cold registry must report a miss");
        let (b, hit_b) = reg.get_or_compile(&mesh(4));
        assert!(hit_b, "second lookup must be warm");
        assert!(Arc::ptr_eq(&a.net, &b.net), "warm hit must share the net");
        assert!(
            Arc::ptr_eq(&a.cache, &b.cache),
            "warm hit must share the plan cache"
        );
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_graphs_get_distinct_entries() {
        let reg = Registry::new();
        let (a, _) = reg.get_or_compile(&mesh(4));
        let (b, _) = reg.get_or_compile(&mesh(8));
        assert!(!Arc::ptr_eq(&a.net, &b.net));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn concurrent_lookups_converge_on_one_entry() {
        let reg = Arc::new(Registry::new());
        let nets: Vec<Arc<CompiledNet>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    scope.spawn(move || reg.get_or_compile(&mesh(6)).0.net)
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(reg.len(), 1);
        for net in &nets[1..] {
            assert!(
                Arc::ptr_eq(&nets[0], net),
                "every racer must adopt the single registered net"
            );
        }
    }
}
