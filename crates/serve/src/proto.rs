//! Wire types for the `fcn-serve/1` protocol.
//!
//! Frames are JSON objects; [`SERVE_SCHEMA`] is stamped on every request
//! and response so a client can never silently talk to a server speaking a
//! different field semantics (the same discipline the BENCH validators
//! enforce on committed JSONL files).

use serde::{Deserialize, Serialize};

/// Schema tag stamped on every request and response frame.
pub const SERVE_SCHEMA: &str = "fcn-serve/1";

/// Typed failure category carried by an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The frame was not a valid `fcn-serve/1` request.
    BadRequest,
    /// The admission gate was full; retry later.
    Overloaded,
    /// The request's deadline expired; the message carries partial
    /// accounting of the work done before the abort.
    Cancelled,
    /// The handler failed internally (panic or unexpected state).
    Internal,
    /// The server is draining and no longer accepts new requests.
    Shutdown,
}

/// A typed, framed failure: the category plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeError {
    /// Failure category.
    pub kind: ErrorKind,
    /// Human-readable detail (partial accounting for `Cancelled`).
    pub message: String,
    /// `Overloaded` only: how long the admission queue suggests waiting
    /// before retrying, milliseconds. `null` for every other kind.
    pub retry_after_ms: Option<u64>,
}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Always [`SERVE_SCHEMA`]; a mismatch is a `BadRequest`.
    pub schema: String,
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Request kind: `beta`, `audit`, `faults`, `metrics`, or `ping`.
    pub kind: String,
    /// Argument vector for the kind, exactly as the inline `fcnemu`
    /// subcommand would receive it (e.g. `["mesh2", "64", "--trials", "2"]`).
    pub args: Vec<String>,
    /// Per-request deadline in milliseconds. `null` means the server
    /// default; an explicit `0` is rejected as `BadRequest` (an
    /// already-expired deadline is a client bug, not a request to skip the
    /// watchdog).
    pub deadline_ms: Option<u64>,
    /// Idempotency key for retrying clients. When present, the server
    /// remembers the completed reply in a bounded cache keyed by this
    /// value, so a retry of a request whose first attempt *did* complete
    /// (the reply was lost on the wire) is answered from the cache instead
    /// of executing twice. `null` opts out (single-attempt clients).
    pub idem_key: Option<u64>,
}

impl Request {
    /// A request with the schema stamped and no deadline override.
    pub fn new(id: u64, kind: &str, args: &[&str]) -> Request {
        Request {
            schema: SERVE_SCHEMA.to_string(),
            id,
            kind: kind.to_string(),
            args: args.iter().map(|s| s.to_string()).collect(),
            deadline_ms: None,
            idem_key: None,
        }
    }

    /// Serialize to a JSON frame body.
    pub fn encode(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| {
            // The shim serializer is infallible for derived types; keep a
            // framed escape hatch instead of a panic in library code.
            format!("{{\"schema\":\"{SERVE_SCHEMA}\",\"encode_error\":\"{e}\"}}")
        })
    }

    /// Parse a JSON frame body.
    pub fn decode(body: &str) -> Result<Request, String> {
        let req: Request = serde_json::from_str(body).map_err(|e| e.to_string())?;
        if req.schema != SERVE_SCHEMA {
            return Err(format!(
                "schema {:?} does not match this server's {SERVE_SCHEMA:?}",
                req.schema
            ));
        }
        Ok(req)
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Always [`SERVE_SCHEMA`].
    pub schema: String,
    /// The request id this frame answers (0 when the request was so
    /// malformed its id could not be parsed).
    pub id: u64,
    /// `true` iff the request ran to completion.
    pub ok: bool,
    /// Process exit code the inline `fcnemu` invocation would have
    /// returned (0 on success).
    pub exit_code: i32,
    /// Captured stdout of the subcommand body, byte-identical to the
    /// inline `fcnemu` invocation for the same request.
    pub output: String,
    /// The typed failure, present iff `ok` is `false`.
    pub error: Option<ServeError>,
}

impl Response {
    /// A successful response wrapping captured subcommand output.
    pub fn success(id: u64, exit_code: i32, output: String) -> Response {
        Response {
            schema: SERVE_SCHEMA.to_string(),
            id,
            ok: true,
            exit_code,
            output,
            error: None,
        }
    }

    /// A framed failure.
    pub fn failure(id: u64, kind: ErrorKind, message: impl Into<String>) -> Response {
        Response {
            schema: SERVE_SCHEMA.to_string(),
            id,
            ok: false,
            exit_code: 1,
            output: String::new(),
            error: Some(ServeError {
                kind,
                message: message.into(),
                retry_after_ms: None,
            }),
        }
    }

    /// A framed `Overloaded` rejection carrying the admission queue's
    /// retry-after hint.
    pub fn overloaded(id: u64, message: impl Into<String>, retry_after_ms: u64) -> Response {
        Response {
            schema: SERVE_SCHEMA.to_string(),
            id,
            ok: false,
            exit_code: 1,
            output: String::new(),
            error: Some(ServeError {
                kind: ErrorKind::Overloaded,
                message: message.into(),
                retry_after_ms: Some(retry_after_ms),
            }),
        }
    }

    /// Serialize to a JSON frame body.
    pub fn encode(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|e| {
            format!("{{\"schema\":\"{SERVE_SCHEMA}\",\"encode_error\":\"{e}\"}}")
        })
    }

    /// Parse a JSON frame body.
    pub fn decode(body: &str) -> Result<Response, String> {
        let resp: Response = serde_json::from_str(body).map_err(|e| e.to_string())?;
        if resp.schema != SERVE_SCHEMA {
            return Err(format!(
                "schema {:?} does not match this client's {SERVE_SCHEMA:?}",
                resp.schema
            ));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_exactly() {
        let mut req = Request::new(7, "beta", &["mesh2", "64", "--trials", "2"]);
        req.deadline_ms = Some(1500);
        req.idem_key = Some(0xfeed_beef);
        let back = Request::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        // None deadline and idem_key round-trip too (serialized as null).
        let req = Request::new(8, "ping", &[]);
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn response_roundtrips_exactly() {
        let ok = Response::success(3, 0, "machine : mesh2 β̂ 4.2\n".to_string());
        assert_eq!(Response::decode(&ok.encode()).unwrap(), ok);
        let err = Response::failure(4, ErrorKind::Overloaded, "9 in flight");
        let back = Response::decode(&err.encode()).unwrap();
        assert_eq!(back, err);
        assert_eq!(back.error.unwrap().kind, ErrorKind::Overloaded);
    }

    #[test]
    fn overloaded_carries_a_retry_after_hint() {
        let resp = Response::overloaded(5, "queue full; retry later", 40);
        let back = Response::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
        let err = back.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Overloaded);
        assert_eq!(err.retry_after_ms, Some(40));
        // Plain failures carry no hint.
        let plain = Response::failure(6, ErrorKind::Internal, "boom");
        assert_eq!(plain.error.unwrap().retry_after_ms, None);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut req = Request::new(1, "ping", &[]);
        req.schema = "fcn-serve/0".to_string();
        let err = Request::decode(&req.encode()).unwrap_err();
        assert!(err.contains("fcn-serve/0"), "{err}");
        assert!(err.contains(SERVE_SCHEMA), "{err}");
        assert!(Response::decode("{\"schema\":\"nope\"}").is_err());
    }

    #[test]
    fn garbage_is_a_decode_error_not_a_panic() {
        assert!(Request::decode("not json").is_err());
        assert!(Request::decode("{\"id\":1}").is_err());
    }

    #[test]
    fn output_with_unicode_survives_the_wire() {
        // The report bodies contain β/Θ/α glyphs; the frame must preserve
        // them bit-exactly for the differential byte pin.
        let text = "measured β̂    : 4.233 (mean 4.100)\nanalytic Θ    : Θ(√n)\n";
        let r = Response::success(1, 0, text.to_string());
        assert_eq!(Response::decode(&r.encode()).unwrap().output, text);
    }
}
