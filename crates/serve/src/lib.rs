#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-serve
//!
//! The long-lived emulation service behind `fcnemu serve`: a daemon that
//! amortizes process startup, net compilation, and plan-cache warmup across
//! requests instead of paying them per invocation.
//!
//! The crate is deliberately split from `fcn-cli`: this crate owns the
//! *mechanism* (framed protocol, admission control, deadlines, the warm
//! [`Registry`] of compiled nets, arrival-ordered telemetry merging) and
//! exposes a [`Handler`] trait for the *policy* — `fcn-cli` implements the
//! trait by dispatching request kinds into its existing subcommand bodies,
//! which is what makes daemon responses byte-identical to inline `fcnemu`
//! output by construction.
//!
//! ## Protocol
//!
//! One TCP connection carries a sequence of length-prefixed JSON frames
//! (big-endian `u32` byte length, then that many bytes of UTF-8 JSON).
//! Requests and responses are tagged [`proto::SERVE_SCHEMA`] (`fcn-serve/1`);
//! every response echoes the request `id` and carries a typed
//! [`proto::ServeError`] on failure — a connection is never dropped without
//! a framed reply to every frame it delivered.
//!
//! ## Invariants
//!
//! * **Admission**: at most `max_inflight` heavy requests execute at once;
//!   up to `max_queued` more wait in strict FIFO order for a bounded
//!   `queue_wait_ms` (never past their own deadline), and everything beyond
//!   that is shed with a framed `Overloaded{retry_after_ms}` before any
//!   work runs ([`Admission`]). `ping`/`metrics`/`health` never queue
//!   behind heavy work.
//! * **Deadlines**: a request's `deadline_ms` arms an [`fcn_exec::Watchdog`]
//!   whose token is threaded into the routing engines; expiry surfaces as a
//!   framed `Cancelled` error with partial accounting, never a hung socket.
//!   An explicit `deadline_ms: 0` is a `BadRequest`.
//! * **Drain**: when the shutdown flag rises (SIGTERM in the CLI), the
//!   listener stops accepting, in-flight requests finish and reply, and
//!   frames that arrive during the drain get a framed `Shutdown` error.
//! * **Telemetry**: each request's metrics are captured in a thread-local
//!   shard and merged into the server's registry in *request-arrival*
//!   order, so a `metrics` request renders the same bytes regardless of
//!   which worker finished first. Connection, chaos, and replay counters
//!   live *outside* the request-ordered registry, which is what keeps the
//!   `metrics` render a pure function of the executed request sequence even
//!   under chaos.
//! * **Chaos**: wire faults are injected only by a seeded [`ChaosPlan`]
//!   (a pure function of seed + rates) wrapped around a [`FramedConn`]'s
//!   reply path, and only *after* the request executed — so a retrying
//!   client recovers byte-identical payloads, with completed-but-lost
//!   replies replayed from the idempotent reply cache instead of
//!   re-running.

pub mod admission;
pub mod chaos;
pub mod client;
pub mod io;
pub mod proto;
pub mod registry;
pub mod server;

pub use admission::{
    class_of, Admission, AdmissionSnapshot, Admit, Class, Permit, Shed, ShedReason,
};
pub use chaos::{ChaosAction, ChaosPlan, ChaosRates, ChaosSpec, ChaosStats, ChaosStream};
pub use client::{Client, ClientError, RetryPolicy};
pub use io::FramedConn;
pub use proto::{ErrorKind, Request, Response, ServeError, SERVE_SCHEMA};
pub use registry::{Registry, RegistryEntry};
pub use server::{Handler, HandlerOutcome, Server, ServerConfig};
