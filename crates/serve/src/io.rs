//! The deadline-wrapping framed I/O layer.
//!
//! Every blocking socket read or write in this crate goes through
//! [`FramedConn`] — this file is the single allowlisted home of raw
//! `read`/`write` calls (enforced by `fcn-analyze`'s `SERVE-DEADLINE`
//! rule), so no code path can accidentally block forever on a peer:
//!
//! * reads poll a caller-supplied stop flag at `poll_interval` while
//!   waiting *between* frames, so an idle connection observes a server
//!   drain promptly;
//! * writes run under a socket write timeout, so a stalled client cannot
//!   wedge a drain;
//! * frame lengths are bounded by [`MAX_FRAME_LEN`], so a corrupt header
//!   cannot allocate unboundedly.
//!
//! A frame is a big-endian `u32` payload length followed by that many
//! bytes of UTF-8 JSON.
//!
//! ## Chaos injection
//!
//! This file is also the single place a [`ChaosStream`] decision is
//! *applied* (enforced by the `CHAOS-SEED` rule): when a stream is attached
//! via [`FramedConn::set_chaos`], every outgoing frame consults the
//! deterministic plan and may be reset mid-write, stalled, truncated, or
//! corrupted. Both corruption constructions are detectable **by
//! construction**: a corrupted length prefix always claims more than
//! [`MAX_FRAME_LEN`] (rejected before allocation), and a corrupted payload
//! always starts with an invalid UTF-8 byte (rejected before JSON decode) —
//! a damaged reply can surface only as a typed error, never as a
//! mis-parsed different reply.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use crate::chaos::{ChaosAction, ChaosStream, CorruptTarget, ResetPoint};

/// Upper bound on a frame's payload length (64 MiB) — far above any real
/// report body, low enough that a corrupt length prefix cannot OOM the
/// server.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Default write timeout: a peer that cannot absorb a reply within this
/// window is treated as gone rather than allowed to wedge a drain.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// A length-prefixed frame connection over one [`TcpStream`].
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
    chaos: Option<ChaosStream>,
}

/// Is this I/O error a read-timeout expiry (the poll tick), as opposed to
/// a real failure? Both kinds occur in practice depending on platform.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl FramedConn {
    /// Wrap an accepted stream, arming the write timeout and disabling
    /// Nagle: frames are written whole and the protocol is strictly
    /// request/reply, so coalescing only adds delayed-ACK latency (~40 ms
    /// per round trip) and buys nothing.
    pub fn new(stream: TcpStream) -> io::Result<FramedConn> {
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(FramedConn {
            stream,
            chaos: None,
        })
    }

    /// Attach a chaos decision stream: every subsequent outgoing frame
    /// consults it. Used by the server's accept loop when a `ChaosPlan`
    /// is configured; never on the client side.
    pub fn set_chaos(&mut self, stream: ChaosStream) {
        self.chaos = Some(stream);
    }

    /// Connect to a server address and wrap the stream.
    pub fn connect(addr: &str) -> io::Result<FramedConn> {
        FramedConn::new(TcpStream::connect(addr)?)
    }

    /// Arm the between-frames poll interval: while waiting for the *start*
    /// of a frame, reads wake at this cadence to check the stop flag
    /// passed to [`FramedConn::read_frame`]. `None` blocks indefinitely
    /// (client mode: the reply is the only thing being waited on).
    pub fn set_poll_interval(&self, interval: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(interval)
    }

    /// Fill `buf` completely, retrying across poll-interval wakeups.
    ///
    /// `stop` is only honored while `may_stop_clean` is true *and* no byte
    /// of `buf` has been read yet — mid-frame, the read always runs to
    /// completion (a drain must not truncate a request already on the
    /// wire). Returns `Ok(false)` for a clean stop/EOF before the first
    /// byte, `Ok(true)` when `buf` is full.
    fn fill(
        &mut self,
        buf: &mut [u8],
        stop: Option<&AtomicBool>,
        may_stop_clean: bool,
    ) -> io::Result<bool> {
        let mut got = 0usize;
        while got < buf.len() {
            match self.stream.read(&mut buf[got..]) {
                Ok(0) => {
                    if got == 0 && may_stop_clean {
                        return Ok(false); // clean EOF at a frame boundary
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ));
                }
                Ok(n) => got += n,
                Err(e) if is_timeout(&e) => {
                    // ordering: the stop flag is a monotone drain hint set
                    // by the signal handler / test harness; Relaxed is
                    // sufficient for a poll.
                    if got == 0 && may_stop_clean && stop.is_some_and(|s| s.load(Ordering::Relaxed))
                    {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Read one frame. Returns `Ok(None)` on a clean close (EOF at a frame
    /// boundary) or when `stop` rises while no frame is in progress;
    /// errors on a mid-frame EOF or any real I/O failure.
    pub fn read_frame(&mut self, stop: Option<&AtomicBool>) -> io::Result<Option<Vec<u8>>> {
        let mut header = [0u8; 4];
        if !self.fill(&mut header, stop, true)? {
            return Ok(None);
        }
        let len = u32::from_be_bytes(header) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"),
            ));
        }
        let mut payload = vec![0u8; len];
        self.fill(&mut payload, None, false)?;
        Ok(Some(payload))
    }

    /// Write one frame (header + payload) under the write timeout, applying
    /// the attached chaos stream's decision (if any) for this frame.
    pub fn write_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame length {} exceeds the {MAX_FRAME_LEN}-byte bound",
                    payload.len()
                ),
            ));
        }
        // One write for header + payload: a split write would put the
        // payload in a second TCP segment that (under Nagle) waits on the
        // peer's delayed ACK of the first.
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        let action = match self.chaos.as_mut() {
            Some(stream) => {
                let action = stream.next_action();
                stream.record(&action);
                action
            }
            None => ChaosAction::None,
        };
        match action {
            ChaosAction::None => {
                self.write_resumed(&frame)?;
                self.stream.flush()
            }
            ChaosAction::Stall(ms) => {
                // An injected stall is wall-clock by design: it models a
                // congested peer, feeds no simulated quantity, and is
                // bounded by the spec's max_stall_ms.
                #[allow(clippy::disallowed_methods)]
                // fcn-allow: DET-TIME injected write stall (chaos harness), bounded and never read back
                std::thread::sleep(Duration::from_millis(ms));
                self.write_resumed(&frame)?;
                self.stream.flush()
            }
            ChaosAction::Reset(point) => {
                let sent = match point {
                    ResetPoint::PreFrame => 0,
                    ResetPoint::MidHeader => 2.min(frame.len()),
                    ResetPoint::MidPayload => (4 + payload.len() / 2).min(frame.len()),
                };
                self.abort_frame(&frame[..sent], action.label())
            }
            ChaosAction::Truncate => {
                // Full-length header, payload short one byte: the reader's
                // fill() hits EOF mid-frame and reports UnexpectedEof.
                let sent = frame.len().saturating_sub(1);
                self.abort_frame(&frame[..sent], action.label())
            }
            ChaosAction::Corrupt(target) => {
                match target {
                    // Force the length prefix's high bit: the claimed
                    // length (≥ 2³¹) exceeds MAX_FRAME_LEN, so the reader
                    // rejects the header before allocating a byte.
                    CorruptTarget::Length => frame[0] |= 0x80,
                    // XOR the first payload byte with 0xFF: JSON starts
                    // with ASCII `{` (0x7B), which becomes 0x84 — an
                    // invalid UTF-8 continuation byte the reader rejects
                    // before JSON decode. An empty payload degrades to
                    // length corruption (nothing to flip).
                    CorruptTarget::Payload if payload.is_empty() => frame[0] |= 0x80,
                    CorruptTarget::Payload => frame[4] ^= 0xFF,
                }
                // The damaged frame is delivered whole — detection is the
                // *reader's* job — then the connection is closed: the wire
                // is poisoned and nothing after it can be trusted.
                self.abort_frame(&frame, action.label())
            }
        }
    }

    /// Write `buf` completely with an explicit resume loop: a partial
    /// `write` return or an `Interrupted` error (EINTR — exactly what a
    /// SIGTERM delivers to a thread mid-syscall) resumes from the next
    /// unsent byte, so a drain signal can never tear a frame. `Ok(0)` and
    /// write-timeout expiry surface as hard errors (a peer that stops
    /// absorbing bytes mid-frame must not wedge the drain).
    fn write_resumed(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut sent = 0usize;
        while sent < buf.len() {
            match self.stream.write(&buf[sent..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes mid-frame",
                    ))
                }
                Ok(n) => sent += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Deliver `prefix` (possibly the whole damaged frame), then close both
    /// directions and report the injected fault as a connection error so
    /// the serving loop abandons the connection like a real network would.
    fn abort_frame(&mut self, prefix: &[u8], label: &str) -> io::Result<()> {
        if !prefix.is_empty() {
            self.write_resumed(prefix)?;
            self.stream.flush()?;
        }
        let _ = self.stream.shutdown(Shutdown::Both);
        Err(io::Error::new(
            io::ErrorKind::ConnectionReset,
            format!("chaos: injected {label}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (FramedConn, FramedConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || FramedConn::connect(&addr.to_string()).unwrap());
        let (server, _) = listener.accept().unwrap();
        (FramedConn::new(server).unwrap(), client.join().unwrap())
    }

    #[test]
    fn frames_roundtrip() {
        let (mut server, mut client) = pair();
        client.write_frame(b"hello").unwrap();
        client.write_frame(b"").unwrap();
        client.write_frame("βΘ".as_bytes()).unwrap();
        assert_eq!(server.read_frame(None).unwrap().unwrap(), b"hello");
        assert_eq!(server.read_frame(None).unwrap().unwrap(), b"");
        assert_eq!(server.read_frame(None).unwrap().unwrap(), "βΘ".as_bytes());
    }

    #[test]
    fn clean_close_reads_as_none() {
        let (mut server, client) = pair();
        drop(client);
        assert!(server.read_frame(None).unwrap().is_none());
    }

    #[test]
    fn oversized_header_is_rejected_without_allocation() {
        let (mut server, mut client) = pair();
        // A raw header claiming 2^31 bytes.
        client
            .stream
            .write_all(&(1u32 << 31).to_be_bytes())
            .unwrap();
        let err = server.read_frame(None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn stop_flag_interrupts_an_idle_read() {
        let (mut server, _client) = pair();
        server
            .set_poll_interval(Some(Duration::from_millis(5)))
            .unwrap();
        let stop = AtomicBool::new(true); // pre-raised: first poll sees it
        assert!(server.read_frame(Some(&stop)).unwrap().is_none());
    }

    #[test]
    fn mid_frame_close_is_an_error_not_a_truncation() {
        let (mut server, mut client) = pair();
        client.stream.write_all(&8u32.to_be_bytes()).unwrap();
        client.stream.write_all(b"only4").unwrap();
        drop(client);
        let err = server.read_frame(None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    // ------------------------------------------------------------- chaos

    use crate::chaos::{ChaosPlan, ChaosRates, ChaosSpec};

    /// A plan whose first decision on connection 0 matches `want`, found by
    /// scanning seeds (decisions are pure, so the scan is deterministic).
    fn plan_opening_with(rates: ChaosRates, want: fn(&ChaosAction) -> bool) -> ChaosPlan {
        for seed in 0..10_000u64 {
            let plan = ChaosPlan::new(ChaosSpec::new(seed, rates));
            let action = plan.stream(0).next_action();
            if want(&action) {
                return plan;
            }
        }
        panic!("no seed under 10000 opens with the requested action");
    }

    #[test]
    fn zero_rate_chaos_is_transparent() {
        let (mut server, mut client) = pair();
        let plan = ChaosPlan::new(ChaosSpec::new(7, ChaosRates::default()));
        server.set_chaos(plan.stream(0));
        for _ in 0..50 {
            server.write_frame(b"reply body").unwrap();
            assert_eq!(client.read_frame(None).unwrap().unwrap(), b"reply body");
        }
        assert_eq!(plan.stats().total(), 0);
    }

    #[test]
    fn corrupted_length_prefix_is_rejected_before_allocation() {
        let rates = ChaosRates {
            corrupt: 1.0,
            ..ChaosRates::default()
        };
        let plan = plan_opening_with(rates, |a| {
            matches!(a, ChaosAction::Corrupt(CorruptTarget::Length))
        });
        let (mut server, mut client) = pair();
        server.set_chaos(plan.stream(0));
        let err = server.write_frame(b"{\"ok\":true}").unwrap_err();
        assert!(err.to_string().contains("chaos: injected corrupt"), "{err}");
        // The reader sees a length beyond MAX_FRAME_LEN: typed InvalidData,
        // no allocation, never a mis-parsed frame.
        let err = client.read_frame(None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(plan.stats().corruptions(), 1);
    }

    #[test]
    fn corrupted_payload_is_never_valid_utf8() {
        let rates = ChaosRates {
            corrupt: 1.0,
            ..ChaosRates::default()
        };
        let plan = plan_opening_with(rates, |a| {
            matches!(a, ChaosAction::Corrupt(CorruptTarget::Payload))
        });
        let (mut server, mut client) = pair();
        server.set_chaos(plan.stream(0));
        let original = b"{\"schema\":\"fcn-serve/1\",\"ok\":true}";
        assert!(server.write_frame(original).is_err());
        // The frame arrives whole (framing intact) but the payload can
        // never decode as a reply: byte 0 is an invalid UTF-8 start.
        let payload = client.read_frame(None).unwrap().unwrap();
        assert_eq!(payload.len(), original.len());
        assert_ne!(payload, original);
        assert!(String::from_utf8(payload).is_err());
    }

    #[test]
    fn truncated_frame_reads_as_unexpected_eof() {
        let rates = ChaosRates {
            truncate: 1.0,
            ..ChaosRates::default()
        };
        let plan = plan_opening_with(rates, |a| matches!(a, ChaosAction::Truncate));
        let (mut server, mut client) = pair();
        server.set_chaos(plan.stream(0));
        assert!(server.write_frame(b"a truncated reply body").is_err());
        let err = client.read_frame(None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(plan.stats().truncations(), 1);
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn reset_points_cut_the_frame_where_decided() {
        let cases: [(fn(&ChaosAction) -> bool, bool); 3] = [
            (
                |a| matches!(a, ChaosAction::Reset(ResetPoint::PreFrame)),
                true, // nothing written: the reader sees a clean close
            ),
            (
                |a| matches!(a, ChaosAction::Reset(ResetPoint::MidHeader)),
                false, // 2 header bytes: mid-frame EOF
            ),
            (
                |a| matches!(a, ChaosAction::Reset(ResetPoint::MidPayload)),
                false, // header + half payload: mid-frame EOF
            ),
        ];
        for (want, clean_close) in cases {
            let rates = ChaosRates {
                reset: 1.0,
                ..ChaosRates::default()
            };
            let plan = plan_opening_with(rates, want);
            let (mut server, mut client) = pair();
            server.set_chaos(plan.stream(0));
            let err = server
                .write_frame(b"reply that never fully lands")
                .unwrap_err();
            assert!(err.to_string().contains("chaos: injected reset"), "{err}");
            if clean_close {
                assert!(client.read_frame(None).unwrap().is_none());
            } else {
                let err = client.read_frame(None).unwrap_err();
                assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
            }
            assert_eq!(plan.stats().resets(), 1);
        }
    }

    #[test]
    fn stalled_frame_arrives_intact_after_the_delay() {
        let rates = ChaosRates {
            stall: 1.0,
            ..ChaosRates::default()
        };
        let plan = plan_opening_with(rates, |a| matches!(a, ChaosAction::Stall(_)));
        let (mut server, mut client) = pair();
        server.set_chaos(plan.stream(0));
        server.write_frame(b"slow but whole").unwrap();
        assert_eq!(client.read_frame(None).unwrap().unwrap(), b"slow but whole");
        assert_eq!(plan.stats().stalls(), 1);
    }

    /// Satellite pin: the write path's explicit resume loop. A multi-MiB
    /// reply far exceeds the socket buffer, so the kernel forces many
    /// partial `write` returns; the frame must still arrive bit-exact even
    /// though a drain signal (stop flag) rises mid-write — writes always
    /// run to completion, only *between-frame reads* honor the stop.
    #[test]
    fn drain_signal_mid_reply_never_tears_a_large_frame() {
        let (mut server, mut client) = pair();
        let payload: Vec<u8> = (0..16 << 20).map(|i| (i * 31 % 251) as u8).collect();
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let expected = payload.clone();
            let reader = scope.spawn(move || {
                let got = client.read_frame(None).unwrap().unwrap();
                assert_eq!(got.len(), expected.len());
                assert!(got == expected, "large frame arrived torn");
                // The connection is still framed and usable afterwards.
                assert_eq!(client.read_frame(None).unwrap().unwrap(), b"after");
            });
            // Raise the drain flag while the 16 MiB write is in flight
            // (the writer blocks on socket backpressure until the reader
            // drains, so the flag is observably up mid-write).
            stop.store(true, Ordering::SeqCst);
            server.write_frame(&payload).unwrap();
            server.write_frame(b"after").unwrap();
            reader.join().unwrap();
        });
        assert!(stop.load(Ordering::SeqCst));
    }
}
