//! The deadline-wrapping framed I/O layer.
//!
//! Every blocking socket read or write in this crate goes through
//! [`FramedConn`] — this file is the single allowlisted home of raw
//! `read`/`write` calls (enforced by `fcn-analyze`'s `SERVE-DEADLINE`
//! rule), so no code path can accidentally block forever on a peer:
//!
//! * reads poll a caller-supplied stop flag at `poll_interval` while
//!   waiting *between* frames, so an idle connection observes a server
//!   drain promptly;
//! * writes run under a socket write timeout, so a stalled client cannot
//!   wedge a drain;
//! * frame lengths are bounded by [`MAX_FRAME_LEN`], so a corrupt header
//!   cannot allocate unboundedly.
//!
//! A frame is a big-endian `u32` payload length followed by that many
//! bytes of UTF-8 JSON.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Upper bound on a frame's payload length (64 MiB) — far above any real
/// report body, low enough that a corrupt length prefix cannot OOM the
/// server.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Default write timeout: a peer that cannot absorb a reply within this
/// window is treated as gone rather than allowed to wedge a drain.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// A length-prefixed frame connection over one [`TcpStream`].
#[derive(Debug)]
pub struct FramedConn {
    stream: TcpStream,
}

/// Is this I/O error a read-timeout expiry (the poll tick), as opposed to
/// a real failure? Both kinds occur in practice depending on platform.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl FramedConn {
    /// Wrap an accepted stream, arming the write timeout and disabling
    /// Nagle: frames are written whole and the protocol is strictly
    /// request/reply, so coalescing only adds delayed-ACK latency (~40 ms
    /// per round trip) and buys nothing.
    pub fn new(stream: TcpStream) -> io::Result<FramedConn> {
        stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(FramedConn { stream })
    }

    /// Connect to a server address and wrap the stream.
    pub fn connect(addr: &str) -> io::Result<FramedConn> {
        FramedConn::new(TcpStream::connect(addr)?)
    }

    /// Arm the between-frames poll interval: while waiting for the *start*
    /// of a frame, reads wake at this cadence to check the stop flag
    /// passed to [`FramedConn::read_frame`]. `None` blocks indefinitely
    /// (client mode: the reply is the only thing being waited on).
    pub fn set_poll_interval(&self, interval: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(interval)
    }

    /// Fill `buf` completely, retrying across poll-interval wakeups.
    ///
    /// `stop` is only honored while `may_stop_clean` is true *and* no byte
    /// of `buf` has been read yet — mid-frame, the read always runs to
    /// completion (a drain must not truncate a request already on the
    /// wire). Returns `Ok(false)` for a clean stop/EOF before the first
    /// byte, `Ok(true)` when `buf` is full.
    fn fill(
        &mut self,
        buf: &mut [u8],
        stop: Option<&AtomicBool>,
        may_stop_clean: bool,
    ) -> io::Result<bool> {
        let mut got = 0usize;
        while got < buf.len() {
            match self.stream.read(&mut buf[got..]) {
                Ok(0) => {
                    if got == 0 && may_stop_clean {
                        return Ok(false); // clean EOF at a frame boundary
                    }
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ));
                }
                Ok(n) => got += n,
                Err(e) if is_timeout(&e) => {
                    // ordering: the stop flag is a monotone drain hint set
                    // by the signal handler / test harness; Relaxed is
                    // sufficient for a poll.
                    if got == 0 && may_stop_clean && stop.is_some_and(|s| s.load(Ordering::Relaxed))
                    {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Read one frame. Returns `Ok(None)` on a clean close (EOF at a frame
    /// boundary) or when `stop` rises while no frame is in progress;
    /// errors on a mid-frame EOF or any real I/O failure.
    pub fn read_frame(&mut self, stop: Option<&AtomicBool>) -> io::Result<Option<Vec<u8>>> {
        let mut header = [0u8; 4];
        if !self.fill(&mut header, stop, true)? {
            return Ok(None);
        }
        let len = u32::from_be_bytes(header) as usize;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"),
            ));
        }
        let mut payload = vec![0u8; len];
        self.fill(&mut payload, None, false)?;
        Ok(Some(payload))
    }

    /// Write one frame (header + payload) under the write timeout.
    pub fn write_frame(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame length {} exceeds the {MAX_FRAME_LEN}-byte bound",
                    payload.len()
                ),
            ));
        }
        // One write for header + payload: a split write would put the
        // payload in a second TCP segment that (under Nagle) waits on the
        // peer's delayed ACK of the first.
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(payload);
        self.stream.write_all(&frame)?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (FramedConn, FramedConn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || FramedConn::connect(&addr.to_string()).unwrap());
        let (server, _) = listener.accept().unwrap();
        (FramedConn::new(server).unwrap(), client.join().unwrap())
    }

    #[test]
    fn frames_roundtrip() {
        let (mut server, mut client) = pair();
        client.write_frame(b"hello").unwrap();
        client.write_frame(b"").unwrap();
        client.write_frame("βΘ".as_bytes()).unwrap();
        assert_eq!(server.read_frame(None).unwrap().unwrap(), b"hello");
        assert_eq!(server.read_frame(None).unwrap().unwrap(), b"");
        assert_eq!(server.read_frame(None).unwrap().unwrap(), "βΘ".as_bytes());
    }

    #[test]
    fn clean_close_reads_as_none() {
        let (mut server, client) = pair();
        drop(client);
        assert!(server.read_frame(None).unwrap().is_none());
    }

    #[test]
    fn oversized_header_is_rejected_without_allocation() {
        let (mut server, mut client) = pair();
        // A raw header claiming 2^31 bytes.
        client
            .stream
            .write_all(&(1u32 << 31).to_be_bytes())
            .unwrap();
        let err = server.read_frame(None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn stop_flag_interrupts_an_idle_read() {
        let (mut server, _client) = pair();
        server
            .set_poll_interval(Some(Duration::from_millis(5)))
            .unwrap();
        let stop = AtomicBool::new(true); // pre-raised: first poll sees it
        assert!(server.read_frame(Some(&stop)).unwrap().is_none());
    }

    #[test]
    fn mid_frame_close_is_an_error_not_a_truncation() {
        let (mut server, mut client) = pair();
        client.stream.write_all(&8u32.to_be_bytes()).unwrap();
        client.stream.write_all(b"only4").unwrap();
        drop(client);
        let err = server.read_frame(None).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
