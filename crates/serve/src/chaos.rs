//! Seeded wire-chaos plans: deterministic transport-fault injection.
//!
//! This is the fcn-faults playbook applied to the transport layer. A
//! [`ChaosSpec`] (seed + per-kind rates) expands into a [`ChaosPlan`] that
//! is a **pure function** of the spec: whether reply frame `f` on
//! connection `c` is reset, stalled, truncated, or corrupted is decided by
//! threshold hashing over domain-separated SplitMix64 streams
//! ([`fcn_exec::job_seed`]), exactly like the fault plane decides which
//! wires die. No entropy, no wall clock, no iteration-order dependence —
//! the same spec injects the same faults on every run.
//!
//! Two properties carry the testing story:
//!
//! * **Purity** — [`ChaosStream::next_action`] for `(spec, conn, frame)`
//!   never depends on thread schedule or prior connections.
//! * **Monotonicity** — each fault kind draws from its *own* stream and the
//!   kinds are applied in a fixed priority order (reset ≻ stall ≻ truncate ≻
//!   corrupt), so raising one kind's rate only adds injections of that kind
//!   at the frames its threshold newly covers; frames claimed by a
//!   higher-priority kind are unaffected.
//!
//! The plan only *decides*; the framed I/O layer (`io.rs`) is the only
//! place a decision is *applied* to a socket. `fcn-analyze`'s `CHAOS-SEED`
//! rule pins that split: no chaos action may be constructed anywhere else
//! in this crate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fcn_exec::job_seed;
use fcn_telemetry::names;

/// Domain separator deriving each connection's chaos stream from the spec
/// seed (connections are numbered by the server's accept sequence).
const CONN_STREAM: u64 = 0xc4a0_5000_0000_0001;
/// Per-frame reset draw.
const RESET_STREAM: u64 = 0xc4a0_5000_0000_0002;
/// Per-frame stall draw.
const STALL_STREAM: u64 = 0xc4a0_5000_0000_0003;
/// Per-frame truncation draw.
const TRUNC_STREAM: u64 = 0xc4a0_5000_0000_0004;
/// Per-frame corruption draw.
const CORRUPT_STREAM: u64 = 0xc4a0_5000_0000_0005;
/// Shapes a chosen fault (reset point, corrupt target, stall length)
/// independently of the rate draws, so changing a rate never reshapes the
/// faults that were already firing.
const SHAPE_STREAM: u64 = 0xc4a0_5000_0000_0006;

/// Map a hash to a uniform fraction in `[0, 1)` (the 53 high bits, the
/// same construction the fault plane uses for threshold decisions).
#[inline]
fn unit_fraction(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-kind injection probabilities, each clamped to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosRates {
    /// Probability a reply frame's connection is reset (pre-frame,
    /// mid-header, or mid-payload — shaped by the shape stream).
    pub reset: f64,
    /// Probability a reply frame's write stalls before being sent.
    pub stall: f64,
    /// Probability a reply frame is truncated (full-length header, withheld
    /// payload tail, then a close).
    pub truncate: f64,
    /// Probability a reply frame is corrupted (length prefix or payload
    /// bytes; both constructions are always detectable, see `io.rs`).
    pub corrupt: f64,
}

impl ChaosRates {
    /// The same rate for every fault kind.
    pub fn uniform(rate: f64) -> ChaosRates {
        ChaosRates {
            reset: rate,
            stall: rate,
            truncate: rate,
            corrupt: rate,
        }
    }

    /// Parse `--chaos-rates`: either one float applied uniformly
    /// (`"0.05"`) or four comma-separated floats in
    /// `reset,stall,truncate,corrupt` order (`"0.1,0,0.05,0.05"`).
    pub fn parse(s: &str) -> Result<ChaosRates, String> {
        let parts: Vec<&str> = s.split(',').collect();
        let field = |raw: &str| -> Result<f64, String> {
            let v: f64 = raw
                .trim()
                .parse()
                .map_err(|_| format!("chaos rate {raw:?} is not a number"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("chaos rate {v} is outside [0, 1]"));
            }
            Ok(v)
        };
        match parts.as_slice() {
            [one] => Ok(ChaosRates::uniform(field(one)?)),
            [r, s, t, c] => Ok(ChaosRates {
                reset: field(r)?,
                stall: field(s)?,
                truncate: field(t)?,
                corrupt: field(c)?,
            }),
            _ => Err(format!(
                "expected 1 or 4 comma-separated rates (reset,stall,truncate,corrupt), got {}",
                parts.len()
            )),
        }
    }

    fn clamped(self) -> ChaosRates {
        let c = |v: f64| v.clamp(0.0, 1.0);
        ChaosRates {
            reset: c(self.reset),
            stall: c(self.stall),
            truncate: c(self.truncate),
            corrupt: c(self.corrupt),
        }
    }

    /// True when every rate is zero: the plan is a guaranteed no-op.
    pub fn is_zero(&self) -> bool {
        self.reset == 0.0 && self.stall == 0.0 && self.truncate == 0.0 && self.corrupt == 0.0
    }
}

/// Everything needed to derive a chaos plan: the full input of the pure
/// decision function.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Base seed of every decision stream.
    pub seed: u64,
    /// Per-kind injection rates.
    pub rates: ChaosRates,
    /// Upper bound on an injected write stall, milliseconds (the actual
    /// stall length is shaped per frame in `1..=max_stall_ms`).
    pub max_stall_ms: u64,
}

impl ChaosSpec {
    /// A spec with the default 5 ms stall bound.
    pub fn new(seed: u64, rates: ChaosRates) -> ChaosSpec {
        ChaosSpec {
            seed,
            rates,
            max_stall_ms: 5,
        }
    }
}

/// What to do to one outgoing reply frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Deliver the frame untouched.
    None,
    /// Close the connection at the given point of the frame.
    Reset(ResetPoint),
    /// Sleep this many milliseconds, then deliver the frame intact.
    Stall(u64),
    /// Send the full-length header but withhold the payload tail, then
    /// close: the reader sees a frame that claims more bytes than arrive.
    Truncate,
    /// Flip bytes so the frame is always detected as invalid by the reader.
    Corrupt(CorruptTarget),
}

/// Where a [`ChaosAction::Reset`] cuts the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResetPoint {
    /// Before any byte of the frame is written.
    PreFrame,
    /// After 2 of the 4 length-prefix bytes.
    MidHeader,
    /// After the header plus half the payload.
    MidPayload,
}

/// What a [`ChaosAction::Corrupt`] damages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptTarget {
    /// Force the length prefix's high bit: the claimed length exceeds
    /// `MAX_FRAME_LEN`, which every reader rejects before allocating.
    Length,
    /// XOR the first payload byte with `0xFF`: JSON payloads start with
    /// ASCII `{`, which becomes an invalid UTF-8 continuation byte, so the
    /// reply can never be mis-parsed as a different valid reply.
    Payload,
}

impl ChaosAction {
    /// Short label for error messages and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosAction::None => "none",
            ChaosAction::Reset(ResetPoint::PreFrame) => "reset-pre-frame",
            ChaosAction::Reset(ResetPoint::MidHeader) => "reset-mid-header",
            ChaosAction::Reset(ResetPoint::MidPayload) => "reset-mid-payload",
            ChaosAction::Stall(_) => "stall",
            ChaosAction::Truncate => "truncate",
            ChaosAction::Corrupt(_) => "corrupt",
        }
    }
}

/// Counters of faults actually applied to sockets, shared by every stream
/// of one plan. Rendered by the `health` request kind; deliberately *not*
/// part of the server's request-ordered metrics registry, so a `metrics`
/// render stays a pure function of the executed request sequence even
/// under chaos.
#[derive(Debug, Default)]
pub struct ChaosStats {
    resets: AtomicU64,
    stalls: AtomicU64,
    truncations: AtomicU64,
    corruptions: AtomicU64,
}

impl ChaosStats {
    /// Connection resets injected.
    pub fn resets(&self) -> u64 {
        // ordering: monitoring counters; nothing synchronizes through them.
        self.resets.load(Ordering::Relaxed)
    }

    /// Write stalls injected.
    pub fn stalls(&self) -> u64 {
        // ordering: monitoring counter (see resets).
        self.stalls.load(Ordering::Relaxed)
    }

    /// Truncated frames injected.
    pub fn truncations(&self) -> u64 {
        // ordering: monitoring counter (see resets).
        self.truncations.load(Ordering::Relaxed)
    }

    /// Corrupted frames injected.
    pub fn corruptions(&self) -> u64 {
        // ordering: monitoring counter (see resets).
        self.corruptions.load(Ordering::Relaxed)
    }

    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.resets() + self.stalls() + self.truncations() + self.corruptions()
    }
}

/// A materialized chaos plan: the spec plus shared applied-fault counters.
/// Cloneable and cheap; streams derived from the same plan share stats.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    spec: ChaosSpec,
    stats: Arc<ChaosStats>,
}

impl ChaosPlan {
    /// Materialize a spec (rates are clamped to `[0, 1]`).
    pub fn new(mut spec: ChaosSpec) -> ChaosPlan {
        spec.rates = spec.rates.clamped();
        ChaosPlan {
            spec,
            stats: Arc::new(ChaosStats::default()),
        }
    }

    /// The (clamped) spec this plan decides from.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// Applied-fault counters shared by every stream of this plan.
    pub fn stats(&self) -> &Arc<ChaosStats> {
        &self.stats
    }

    /// The decision stream for connection number `conn` (the server's
    /// accept sequence). Pure: the stream's actions depend only on
    /// `(spec, conn, frame index)`.
    pub fn stream(&self, conn: u64) -> ChaosStream {
        ChaosStream {
            base: job_seed(self.spec.seed ^ CONN_STREAM, conn),
            rates: self.spec.rates,
            max_stall_ms: self.spec.max_stall_ms.max(1),
            frame: 0,
            stats: Arc::clone(&self.stats),
        }
    }
}

/// The pure per-frame decision: reset ≻ stall ≻ truncate ≻ corrupt, each
/// kind thresholding its own stream so rates are independently monotone.
fn decide(base: u64, frame: u64, rates: &ChaosRates, max_stall_ms: u64) -> ChaosAction {
    let draw = |stream: u64| unit_fraction(job_seed(base ^ stream, frame));
    let shape = job_seed(base ^ SHAPE_STREAM, frame);
    if draw(RESET_STREAM) < rates.reset {
        return ChaosAction::Reset(match shape % 3 {
            0 => ResetPoint::PreFrame,
            1 => ResetPoint::MidHeader,
            _ => ResetPoint::MidPayload,
        });
    }
    if draw(STALL_STREAM) < rates.stall {
        return ChaosAction::Stall(1 + shape % max_stall_ms);
    }
    if draw(TRUNC_STREAM) < rates.truncate {
        return ChaosAction::Truncate;
    }
    if draw(CORRUPT_STREAM) < rates.corrupt {
        return ChaosAction::Corrupt(if shape & (1 << 7) == 0 {
            CorruptTarget::Length
        } else {
            CorruptTarget::Payload
        });
    }
    ChaosAction::None
}

/// One connection's deterministic sequence of per-frame decisions.
#[derive(Debug)]
pub struct ChaosStream {
    base: u64,
    rates: ChaosRates,
    max_stall_ms: u64,
    frame: u64,
    stats: Arc<ChaosStats>,
}

impl ChaosStream {
    /// The decision for the next outgoing frame (advances the frame index).
    pub fn next_action(&mut self) -> ChaosAction {
        let f = self.frame;
        self.frame += 1;
        decide(self.base, f, &self.rates, self.max_stall_ms)
    }

    /// Record a fault the I/O layer actually applied: bumps the plan's
    /// shared stats and the *global* telemetry registry (never the server's
    /// request-ordered registry — transport chaos must not perturb the
    /// `metrics` render).
    pub fn record(&self, action: &ChaosAction) {
        // ordering: monitoring counters; nothing synchronizes through them.
        let (slot, name) = match action {
            ChaosAction::None => return,
            ChaosAction::Reset(_) => (&self.stats.resets, names::CHAOS_RESETS_TOTAL),
            ChaosAction::Stall(_) => (&self.stats.stalls, names::CHAOS_STALLS_TOTAL),
            ChaosAction::Truncate => (&self.stats.truncations, names::CHAOS_TRUNCATIONS_TOTAL),
            ChaosAction::Corrupt(_) => (&self.stats.corruptions, names::CHAOS_CORRUPTIONS_TOTAL),
        };
        slot.fetch_add(1, Ordering::Relaxed);
        fcn_telemetry::global().counter(name).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn actions(spec: &ChaosSpec, conn: u64, frames: usize) -> Vec<ChaosAction> {
        let plan = ChaosPlan::new(spec.clone());
        let mut stream = plan.stream(conn);
        (0..frames).map(|_| stream.next_action()).collect()
    }

    #[test]
    fn plans_are_pure_functions_of_the_spec() {
        let spec = ChaosSpec::new(7, ChaosRates::uniform(0.2));
        let a = actions(&spec, 3, 200);
        let b = actions(&spec, 3, 200);
        assert_eq!(a, b, "same spec + connection must replay identically");
        // A different connection or seed decorrelates but stays pure.
        assert_ne!(a, actions(&spec, 4, 200));
        assert_ne!(a, actions(&ChaosSpec::new(8, spec.rates), 3, 200));
    }

    #[test]
    fn zero_rates_are_transparent() {
        let spec = ChaosSpec::new(99, ChaosRates::default());
        assert!(spec.rates.is_zero());
        for action in actions(&spec, 0, 500) {
            assert_eq!(action, ChaosAction::None);
        }
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn each_rate_is_monotone_in_its_own_kind() {
        // Raising one kind's rate (others fixed) only adds injections of
        // that kind: every frame that fired at the low rate still fires
        // identically at the high rate.
        let kinds: [(&str, fn(f64) -> ChaosRates); 4] = [
            ("reset", |r| ChaosRates {
                reset: r,
                ..ChaosRates::default()
            }),
            ("stall", |r| ChaosRates {
                stall: r,
                ..ChaosRates::default()
            }),
            ("truncate", |r| ChaosRates {
                truncate: r,
                ..ChaosRates::default()
            }),
            ("corrupt", |r| ChaosRates {
                corrupt: r,
                ..ChaosRates::default()
            }),
        ];
        for (kind, rates_at) in kinds {
            let lo = actions(&ChaosSpec::new(42, rates_at(0.1)), 1, 400);
            let hi = actions(&ChaosSpec::new(42, rates_at(0.4)), 1, 400);
            let mut lo_fired = 0usize;
            let mut hi_fired = 0usize;
            for (l, h) in lo.iter().zip(&hi) {
                if *l != ChaosAction::None {
                    lo_fired += 1;
                    assert_eq!(l, h, "{kind}: a fault firing at 0.1 must persist at 0.4");
                }
                if *h != ChaosAction::None {
                    hi_fired += 1;
                }
            }
            assert!(lo_fired > 0, "{kind}: rate 0.1 must fire in 400 frames");
            assert!(
                hi_fired > lo_fired,
                "{kind}: raising the rate must add faults ({lo_fired} vs {hi_fired})"
            );
        }
    }

    #[test]
    fn all_kinds_fire_under_mixed_rates() {
        let spec = ChaosSpec::new(7, ChaosRates::uniform(0.25));
        let got = actions(&spec, 0, 400);
        let fired = |p: fn(&ChaosAction) -> bool| got.iter().any(p);
        assert!(fired(|a| matches!(
            a,
            ChaosAction::Reset(ResetPoint::PreFrame)
        )));
        assert!(fired(|a| matches!(
            a,
            ChaosAction::Reset(ResetPoint::MidHeader)
        )));
        assert!(fired(|a| matches!(
            a,
            ChaosAction::Reset(ResetPoint::MidPayload)
        )));
        assert!(fired(|a| matches!(a, ChaosAction::Stall(_))));
        assert!(fired(|a| matches!(a, ChaosAction::Truncate)));
        assert!(fired(|a| matches!(
            a,
            ChaosAction::Corrupt(CorruptTarget::Length)
        )));
        assert!(fired(|a| matches!(
            a,
            ChaosAction::Corrupt(CorruptTarget::Payload)
        )));
        // Stall lengths respect the configured bound.
        for a in &got {
            if let ChaosAction::Stall(ms) = a {
                assert!((1..=spec.max_stall_ms).contains(ms));
            }
        }
    }

    #[test]
    fn rates_parse_uniform_and_per_kind() {
        assert_eq!(
            ChaosRates::parse("0.25").unwrap(),
            ChaosRates::uniform(0.25)
        );
        let r = ChaosRates::parse("0.1, 0, 0.05, 1").unwrap();
        assert_eq!(
            r,
            ChaosRates {
                reset: 0.1,
                stall: 0.0,
                truncate: 0.05,
                corrupt: 1.0
            }
        );
        assert!(ChaosRates::parse("1.5").unwrap_err().contains("[0, 1]"));
        assert!(ChaosRates::parse("a").unwrap_err().contains("not a number"));
        assert!(ChaosRates::parse("0.1,0.2").unwrap_err().contains("1 or 4"));
    }

    #[test]
    fn stats_count_only_recorded_actions() {
        let plan = ChaosPlan::new(ChaosSpec::new(1, ChaosRates::uniform(1.0)));
        let stream = plan.stream(0);
        stream.record(&ChaosAction::Reset(ResetPoint::PreFrame));
        stream.record(&ChaosAction::Stall(3));
        stream.record(&ChaosAction::Truncate);
        stream.record(&ChaosAction::Corrupt(CorruptTarget::Payload));
        stream.record(&ChaosAction::None);
        let stats = plan.stats();
        assert_eq!(stats.resets(), 1);
        assert_eq!(stats.stalls(), 1);
        assert_eq!(stats.truncations(), 1);
        assert_eq!(stats.corruptions(), 1);
        assert_eq!(stats.total(), 4);
    }
}
