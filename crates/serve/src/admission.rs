//! Bounded admission: a FIFO queue in front of the in-flight limit, with
//! priority classes and deadline-aware shedding.
//!
//! PR 8's gate was binary — slot free or typed `Overloaded` — which turns a
//! millisecond of burst into hard rejections. This queue makes degradation
//! *graceful and measured* instead:
//!
//! * at most `max_inflight` requests execute concurrently;
//! * up to `max_queued` more wait in strict FIFO order (no barging: a
//!   freed slot always goes to the longest-waiting request);
//! * a queued request waits at most its *wait budget* — the configured
//!   `queue_wait_ms` bounded above by the request's own deadline — so work
//!   that cannot start before its deadline is shed instead of executed
//!   doomed;
//! * everything beyond the queue bound is shed immediately, typed
//!   `Overloaded` with a `retry_after_ms` hint.
//!
//! The state machine (documented in DESIGN.md §3) is: `admit → {run |
//! queued}`, `queued → {run | shed(wait-expired)}`, `full-queue →
//! shed(queue-full)`. [`Class::Interactive`] kinds (`ping`, `metrics`,
//! `health`) never enter the queue at all — a monitoring probe must answer
//! in microseconds even while heavy beta grids saturate every slot.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fcn_exec::lockdep::{lock_ranked, ranks, wait_timeout_ranked, RankedGuard};
use fcn_telemetry::names;

/// Bump a process-global counter when global telemetry is enabled (the
/// admission queue's counters are transport-level and deliberately stay out
/// of the server's request-ordered registry; see the server module docs).
fn global_inc(name: &'static str) {
    let g = fcn_telemetry::global();
    if g.enabled() {
        g.counter(name).inc();
    }
}

/// Priority class of a request kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Microsecond-cheap monitoring kinds: never admitted through the
    /// queue, never counted against `max_inflight`.
    Interactive,
    /// Everything that does real work (`beta`, `audit`, `faults`): admitted
    /// through the bounded queue.
    Heavy,
}

/// The class a request kind belongs to.
pub fn class_of(kind: &str) -> Class {
    match kind {
        "ping" | "metrics" | "health" => Class::Interactive,
        _ => Class::Heavy,
    }
}

/// Why a request was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The wait queue was already at `max_queued`.
    QueueFull,
    /// The request waited its full budget (queue wait bound or its own
    /// deadline, whichever is tighter) without reaching a slot.
    WaitExpired,
}

/// A typed shed decision: the reason plus the occupancy snapshot and the
/// retry hint to frame into `Overloaded{retry_after_ms}`.
#[derive(Debug, Clone, Copy)]
pub struct Shed {
    /// Why the request was shed.
    pub reason: ShedReason,
    /// Requests executing at decision time.
    pub inflight: usize,
    /// Requests queued at decision time.
    pub queued: usize,
    /// Suggested client-side wait before retrying, milliseconds.
    pub retry_after_ms: u64,
}

/// The outcome of one admission attempt.
#[derive(Debug)]
pub enum Admit {
    /// Admitted: run now; dropping the permit frees the slot.
    Granted(Permit),
    /// Shed: reject with `Overloaded{retry_after_ms}`.
    Shed(Shed),
}

/// Monotone occupancy/shed counters, snapshotted by the `health` kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionSnapshot {
    /// Requests currently executing.
    pub inflight: usize,
    /// Requests currently waiting in the queue.
    pub queued: usize,
    /// Requests that ever waited in the queue.
    pub queued_total: u64,
    /// Requests shed because the queue was full.
    pub shed_queue_full_total: u64,
    /// Requests shed because their wait budget expired.
    pub shed_wait_expired_total: u64,
}

#[derive(Debug, Default)]
struct AdmState {
    inflight: usize,
    /// Tickets of waiting requests, front = longest-waiting.
    queue: VecDeque<u64>,
    next_ticket: u64,
    queued_total: u64,
    shed_queue_full: u64,
    shed_wait_expired: u64,
}

/// The bounded FIFO admission queue shared by all connection threads.
#[derive(Debug)]
pub struct Admission {
    limit: usize,
    max_queued: usize,
    /// The `retry_after_ms` hint framed into shed responses (the configured
    /// queue wait: by then at least one full wait-budget of queued work has
    /// drained or been shed).
    retry_hint_ms: u64,
    state: Mutex<AdmState>,
    cv: Condvar,
}

impl Admission {
    /// An admission queue running at most `limit` requests (clamped ≥ 1)
    /// with at most `max_queued` waiting behind them (0 = the PR 8 binary
    /// gate: no queue, immediate shed).
    pub fn new(limit: usize, max_queued: usize, retry_hint_ms: u64) -> Arc<Admission> {
        Arc::new(Admission {
            limit: limit.max(1),
            max_queued,
            retry_hint_ms: retry_hint_ms.max(1),
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
        })
    }

    /// The configured concurrency bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The configured queue bound.
    pub fn max_queued(&self) -> usize {
        self.max_queued
    }

    /// Requests currently holding a slot.
    pub fn inflight(&self) -> usize {
        self.lock().inflight
    }

    /// Occupancy and shed counters for the `health` kind.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let st = self.lock();
        AdmissionSnapshot {
            inflight: st.inflight,
            queued: st.queue.len(),
            queued_total: st.queued_total,
            shed_queue_full_total: st.shed_queue_full,
            shed_wait_expired_total: st.shed_wait_expired,
        }
    }

    /// Admit one heavy request, waiting in FIFO order for up to `wait_ms`
    /// milliseconds for a slot. `wait_ms` is the caller-computed budget:
    /// `min(queue_wait_ms, request deadline)` — a request that cannot start
    /// before its deadline is shed at the deadline, not executed doomed.
    pub fn admit(self: &Arc<Admission>, wait_ms: u64) -> Admit {
        let mut st = self.lock();
        if st.inflight < self.limit && st.queue.is_empty() {
            st.inflight += 1;
            return Admit::Granted(Permit {
                admission: Arc::clone(self),
            });
        }
        if st.queue.len() >= self.max_queued || wait_ms == 0 {
            let reason = if st.queue.len() >= self.max_queued {
                st.shed_queue_full += 1;
                global_inc(names::SERVE_SHED_FULL_TOTAL);
                ShedReason::QueueFull
            } else {
                st.shed_wait_expired += 1;
                global_inc(names::SERVE_SHED_DEADLINE_TOTAL);
                ShedReason::WaitExpired
            };
            return self.shed(&st, reason);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        st.queued_total += 1;
        global_inc(names::SERVE_QUEUED_TOTAL);
        // The queue wait is a wall-clock bound by definition (it models the
        // client's patience, not a simulated quantity); the condvar wakes on
        // every slot release and re-checks both FIFO position and budget.
        #[allow(clippy::disallowed_methods)]
        // fcn-allow: DET-TIME admission wait budget — wall-clock service-level bound, never feeds simulated state
        let deadline = Instant::now() + Duration::from_millis(wait_ms);
        loop {
            if st.queue.front() == Some(&ticket) && st.inflight < self.limit {
                st.queue.pop_front();
                st.inflight += 1;
                // Wake the next-in-line waiter so it can advance to front.
                self.cv.notify_all();
                return Admit::Granted(Permit {
                    admission: Arc::clone(self),
                });
            }
            #[allow(clippy::disallowed_methods)]
            // fcn-allow: DET-TIME expiry check against the wait budget taken above
            let now = Instant::now();
            if now >= deadline {
                st.queue.retain(|t| *t != ticket);
                st.shed_wait_expired += 1;
                global_inc(names::SERVE_SHED_DEADLINE_TOTAL);
                let decision = self.shed(&st, ShedReason::WaitExpired);
                // Our departure may unblock the waiter behind us.
                self.cv.notify_all();
                return decision;
            }
            let (g, _) = wait_timeout_ranked(&self.cv, st, deadline - now);
            st = g;
        }
    }

    fn shed(&self, st: &AdmState, reason: ShedReason) -> Admit {
        Admit::Shed(Shed {
            reason,
            inflight: st.inflight,
            queued: st.queue.len(),
            retry_after_ms: self.retry_hint_ms,
        })
    }

    fn lock(&self) -> RankedGuard<'_, AdmState> {
        lock_ranked(&self.state, ranks::SERVE_ADMISSION)
    }
}

/// An admitted request's slot; dropping it releases the slot and wakes the
/// queue (panic-safe: an unwinding handler still releases).
#[derive(Debug)]
pub struct Permit {
    admission: Arc<Admission>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.admission.lock();
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        self.admission.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn granted(a: Admit) -> Permit {
        match a {
            Admit::Granted(p) => p,
            Admit::Shed(s) => panic!("expected a grant, was shed: {s:?}"),
        }
    }

    fn shed(a: Admit) -> Shed {
        match a {
            Admit::Shed(s) => s,
            Admit::Granted(_) => panic!("expected a shed, was granted"),
        }
    }

    #[test]
    fn admits_up_to_limit_and_sheds_past_the_queue() {
        let adm = Admission::new(2, 0, 40);
        let a = granted(adm.admit(0));
        let b = granted(adm.admit(0));
        assert_eq!(adm.inflight(), 2);
        // No queue configured: the third request sheds immediately, typed.
        let s = shed(adm.admit(1000));
        assert_eq!(s.reason, ShedReason::QueueFull);
        assert_eq!(s.inflight, 2);
        assert_eq!(s.retry_after_ms, 40);
        drop(a);
        let c = granted(adm.admit(0));
        drop((b, c));
        assert_eq!(adm.inflight(), 0);
    }

    #[test]
    fn zero_wait_budget_sheds_instead_of_queueing() {
        let adm = Admission::new(1, 8, 25);
        let _hold = granted(adm.admit(0));
        // Queue has room, but a zero budget (deadline already tighter than
        // any queue wait) must shed immediately as wait-expired.
        let s = shed(adm.admit(0));
        assert_eq!(s.reason, ShedReason::WaitExpired);
        let snap = adm.snapshot();
        assert_eq!(snap.shed_wait_expired_total, 1);
        assert_eq!(snap.queued, 0);
    }

    #[test]
    fn queued_request_runs_when_the_slot_frees() {
        let adm = Admission::new(1, 4, 25);
        let hold = granted(adm.admit(0));
        let got_slot = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let adm2 = Arc::clone(&adm);
            let got = Arc::clone(&got_slot);
            let waiter = scope.spawn(move || {
                // Generous budget: the slot frees long before it expires.
                let p = granted(adm2.admit(10_000));
                got.store(1, Ordering::SeqCst);
                drop(p);
            });
            // Wait until the waiter is actually queued, then release.
            while adm.snapshot().queued == 0 {
                std::hint::spin_loop();
            }
            assert_eq!(got_slot.load(Ordering::SeqCst), 0, "must wait, not run");
            drop(hold);
            waiter.join().unwrap();
        });
        assert_eq!(got_slot.load(Ordering::SeqCst), 1);
        let snap = adm.snapshot();
        assert_eq!(snap.queued_total, 1);
        assert_eq!(snap.inflight, 0);
    }

    #[test]
    fn wait_budget_expiry_sheds_and_unblocks_the_queue() {
        let adm = Admission::new(1, 4, 25);
        let hold = granted(adm.admit(0));
        // A 1 ms budget expires long before the slot frees.
        let s = shed(adm.admit(1));
        assert_eq!(s.reason, ShedReason::WaitExpired);
        let snap = adm.snapshot();
        assert_eq!(snap.queued, 0, "expired waiter must leave the queue");
        assert_eq!(snap.shed_wait_expired_total, 1);
        // The slot still works afterwards.
        drop(hold);
        drop(granted(adm.admit(0)));
    }

    #[test]
    fn fifo_order_is_strict_under_contention() {
        let adm = Admission::new(1, 8, 25);
        let hold = granted(adm.admit(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let adm = Arc::clone(&adm);
                let order = Arc::clone(&order);
                // Stagger arrivals so queue order is deterministic: each
                // waiter enters only after the previous one is queued.
                while adm.snapshot().queued_total < i {
                    std::hint::spin_loop();
                }
                scope.spawn(move || {
                    let p = granted(adm.admit(60_000));
                    order.lock().unwrap().push(i);
                    drop(p);
                });
            }
            while adm.snapshot().queued < 4 {
                std::hint::spin_loop();
            }
            drop(hold);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn permit_release_survives_unwinding() {
        let adm = Admission::new(1, 0, 25);
        let adm2 = Arc::clone(&adm);
        let result = std::panic::catch_unwind(move || {
            let _permit = granted(adm2.admit(0));
            panic!("handler blew up");
        });
        assert!(result.is_err());
        assert_eq!(adm.inflight(), 0, "unwound permit must release its slot");
        drop(granted(adm.admit(0)));
    }

    #[test]
    fn zero_limit_is_clamped_to_one() {
        let adm = Admission::new(0, 0, 25);
        assert_eq!(adm.limit(), 1);
        let p = granted(adm.admit(0));
        shed(adm.admit(0));
        drop(p);
        drop(granted(adm.admit(0)));
    }

    #[test]
    fn classes_split_monitoring_from_heavy_kinds() {
        for kind in ["ping", "metrics", "health"] {
            assert_eq!(class_of(kind), Class::Interactive);
        }
        for kind in ["beta", "audit", "faults", "anything-else"] {
            assert_eq!(class_of(kind), Class::Heavy);
        }
    }
}
