//! Bounded-in-flight admission control.
//!
//! The gate is a single atomic counter with a compare-and-swap admit path:
//! no locks, no queue. A request that cannot be admitted is rejected
//! *immediately* with a typed `Overloaded` error rather than waiting — the
//! service's latency contract is that admitted work runs promptly and
//! rejected work is told so in microseconds, which keeps the tail of the
//! latency histogram honest under overload.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A bounded admission gate shared by all connection threads.
#[derive(Debug)]
pub struct AdmissionGate {
    limit: usize,
    inflight: AtomicUsize,
}

impl AdmissionGate {
    /// A gate admitting at most `limit` concurrent requests (`limit` is
    /// clamped to at least 1 — a gate that admits nothing is useless).
    pub fn new(limit: usize) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            limit: limit.max(1),
            inflight: AtomicUsize::new(0),
        })
    }

    /// The configured concurrency bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Requests currently holding a permit.
    pub fn inflight(&self) -> usize {
        // ordering: a monitoring read; no synchronization piggybacks on it.
        self.inflight.load(Ordering::Relaxed)
    }

    /// Try to admit one request. `None` means the gate is full and the
    /// caller must reject with `Overloaded`; `Some` is a permit whose drop
    /// releases the slot (panic-safe: an unwinding handler still releases).
    pub fn try_admit(self: &Arc<AdmissionGate>) -> Option<Permit> {
        // ordering: AcqRel on the winning CAS pairs with the Release in
        // Permit::drop, so a slot freed by one thread is observed free by
        // the next admitter; the permit itself carries no data.
        let admitted = self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                if n < self.limit {
                    Some(n + 1)
                } else {
                    None
                }
            })
            .is_ok();
        if admitted {
            Some(Permit {
                gate: Arc::clone(self),
            })
        } else {
            None
        }
    }
}

/// An admitted request's slot; dropping it releases the slot.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<AdmissionGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        // ordering: Release pairs with the Acquire side of try_admit's CAS.
        self.gate.inflight.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_limit_and_no_further() {
        let gate = AdmissionGate::new(3);
        let a = gate.try_admit().unwrap();
        let b = gate.try_admit().unwrap();
        let c = gate.try_admit().unwrap();
        assert_eq!(gate.inflight(), 3);
        assert!(gate.try_admit().is_none(), "4th admit must be rejected");
        drop(b);
        assert_eq!(gate.inflight(), 2);
        let d = gate.try_admit().unwrap();
        assert!(gate.try_admit().is_none());
        drop((a, c, d));
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn zero_limit_is_clamped_to_one() {
        let gate = AdmissionGate::new(0);
        assert_eq!(gate.limit(), 1);
        let p = gate.try_admit().unwrap();
        assert!(gate.try_admit().is_none());
        drop(p);
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn permit_release_survives_unwinding() {
        let gate = AdmissionGate::new(1);
        let g = Arc::clone(&gate);
        let result = std::panic::catch_unwind(move || {
            let _permit = g.try_admit().unwrap();
            panic!("handler blew up");
        });
        assert!(result.is_err());
        assert_eq!(gate.inflight(), 0, "unwound permit must release its slot");
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn contended_admission_never_exceeds_limit() {
        let gate = AdmissionGate::new(4);
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let gate = Arc::clone(&gate);
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    for _ in 0..500 {
                        if let Some(_permit) = gate.try_admit() {
                            // ordering: test-only high-water bookkeeping.
                            peak.fetch_max(gate.inflight(), Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(peak.load(Ordering::Relaxed) <= 4);
        assert_eq!(gate.inflight(), 0);
    }
}
