//! Blocking client for the `fcn-serve/1` protocol.
//!
//! One [`Client`] owns one connection and issues requests sequentially,
//! allocating monotonically increasing ids and checking that each reply
//! echoes the id of the request it answers. Concurrency is achieved by
//! opening more clients, not by pipelining on one connection.

use std::fmt;
use std::io;

use crate::io::FramedConn;
use crate::proto::{Request, Response};

/// Why a client call failed before a well-formed response arrived.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(io::Error),
    /// The server sent bytes that do not decode as an `fcn-serve/1`
    /// response, closed the connection mid-exchange, or answered with a
    /// mismatched request id.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "serve protocol error: {msg}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking `fcn-serve/1` client over one connection.
#[derive(Debug)]
pub struct Client {
    conn: FramedConn,
    next_id: u64,
}

impl Client {
    /// Connect to a serving `fcnemu serve` daemon.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Ok(Client {
            conn: FramedConn::connect(addr)?,
            next_id: 1,
        })
    }

    /// Wrap an already-connected framed stream (tests, in-process load gen).
    pub fn from_conn(conn: FramedConn) -> Client {
        Client { conn, next_id: 1 }
    }

    /// Issue one request kind with an argument vector and no deadline
    /// override; block until the framed response arrives.
    pub fn call(&mut self, kind: &str, args: &[&str]) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.request(Request::new(id, kind, args))
    }

    /// Issue a fully-formed request (the id field is overwritten with this
    /// client's next id so replies can be matched).
    pub fn request(&mut self, mut req: Request) -> Result<Response, ClientError> {
        req.id = self.next_id;
        self.next_id += 1;
        self.conn.write_frame(req.encode().as_bytes())?;
        let payload = self
            .conn
            .read_frame(None)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".to_string()))?;
        let body = String::from_utf8(payload)
            .map_err(|e| ClientError::Protocol(format!("response is not UTF-8: {e}")))?;
        let resp = Response::decode(&body).map_err(ClientError::Protocol)?;
        if resp.id != req.id && resp.id != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {} does not answer request id {}",
                resp.id, req.id
            )));
        }
        Ok(resp)
    }
}
