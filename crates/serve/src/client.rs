//! Blocking client for the `fcn-serve/1` protocol.
//!
//! One [`Client`] owns one connection and issues requests sequentially,
//! allocating monotonically increasing ids and checking that each reply
//! echoes the id of the request it answers. Concurrency is achieved by
//! opening more clients, not by pipelining on one connection.
//!
//! ## Retries
//!
//! [`Client::connect_retrying`] layers a seeded retry loop on top: when the
//! transport fails mid-exchange (a chaos reset, a torn frame, a corrupted
//! reply) or the server sheds the request as `Overloaded`, the client
//! reconnects and re-sends after a deterministic backoff drawn from
//! [`fcn_exec::backoff_ms`] — exponential with decorrelated jitter, a pure
//! function of `(retry seed, request index, attempt)`, so the schedule is
//! byte-identical at any concurrency. Each logical request carries an
//! idempotency key derived from the same stream; a retried request whose
//! first attempt actually completed is answered from the server's bounded
//! reply cache instead of executing twice, which is what makes the retried
//! run's payloads byte-identical to a clean single-attempt run. When the
//! budget is exhausted the last failure surfaces as the typed
//! [`ClientError::RetriesExhausted`].

use std::fmt;
use std::io;
use std::time::Duration;

use fcn_exec::{backoff_ms, job_seed};
use fcn_telemetry::names;

use crate::io::FramedConn;
use crate::proto::{ErrorKind, Request, Response};

/// Domain separator for idempotency keys: request `i` of a retrying client
/// carries `job_seed(retry_seed ^ IDEM_STREAM, i)`, decorrelated from the
/// backoff draws taken from the same base seed.
const IDEM_STREAM: u64 = 0x1de3_9a11_0000_0001;

/// Retry budget and backoff shape for [`Client::connect_retrying`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per logical request (1 = no retries). Clamped ≥ 1.
    pub attempts: u32,
    /// Backoff base, milliseconds (first-retry minimum wait).
    pub base_ms: u64,
    /// Backoff cap, milliseconds (window never grows past this).
    pub cap_ms: u64,
    /// Seed for the backoff jitter and idempotency-key streams.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy suited to tests and the chaos smoke: `attempts` tries with
    /// a fast 1–50 ms jittered backoff.
    pub fn fast(attempts: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            attempts,
            base_ms: 1,
            cap_ms: 50,
            seed,
        }
    }
}

/// Why a client call failed before a well-formed response arrived.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, read, or write).
    Io(io::Error),
    /// The server sent bytes that do not decode as an `fcn-serve/1`
    /// response, closed the connection mid-exchange, or answered with a
    /// mismatched request id.
    Protocol(String),
    /// Every attempt in the retry budget failed; `last` describes the final
    /// failure.
    RetriesExhausted {
        /// Attempts made (= the policy's budget).
        attempts: u32,
        /// Rendering of the last attempt's failure.
        last: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve transport error: {e}"),
            ClientError::Protocol(msg) => write!(f, "serve protocol error: {msg}"),
            ClientError::RetriesExhausted { attempts, last } => write!(
                f,
                "request failed after {attempts} attempt{}: {last}",
                if *attempts == 1 { "" } else { "s" }
            ),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A blocking `fcn-serve/1` client over one connection.
#[derive(Debug)]
pub struct Client {
    conn: FramedConn,
    next_id: u64,
    /// Request counter for the retry/idempotency streams (counts logical
    /// requests, not attempts).
    next_index: u64,
    /// Reconnect target + retry policy; `None` = single-attempt client.
    retry: Option<(String, RetryPolicy)>,
}

impl Client {
    /// Connect to a serving `fcnemu serve` daemon (single-attempt: any
    /// transport failure or shed surfaces immediately).
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        Ok(Client {
            conn: FramedConn::connect(addr)?,
            next_id: 1,
            next_index: 0,
            retry: None,
        })
    }

    /// Connect with a retry policy: transport failures and `Overloaded`
    /// sheds reconnect and re-send under seeded backoff, and every request
    /// carries an idempotency key so a completed-but-lost reply is replayed
    /// from the server's cache instead of executing twice.
    pub fn connect_retrying(addr: &str, policy: RetryPolicy) -> Result<Client, ClientError> {
        let mut c = Client::connect(addr)?;
        c.retry = Some((addr.to_string(), policy));
        Ok(c)
    }

    /// Wrap an already-connected framed stream (tests, in-process load gen).
    pub fn from_conn(conn: FramedConn) -> Client {
        Client {
            conn,
            next_id: 1,
            next_index: 0,
            retry: None,
        }
    }

    /// Issue one request kind with an argument vector and no deadline
    /// override; block until the framed response arrives.
    pub fn call(&mut self, kind: &str, args: &[&str]) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.request(Request::new(id, kind, args))
    }

    /// Issue a fully-formed request (the id field is overwritten with this
    /// client's next id so replies can be matched; under a retry policy the
    /// idempotency key is overwritten with this request's seeded key).
    pub fn request(&mut self, mut req: Request) -> Result<Response, ClientError> {
        let index = self.next_index;
        self.next_index += 1;
        let Some((addr, policy)) = self.retry.clone() else {
            req.id = self.fresh_id();
            return self.exchange(&req);
        };
        req.idem_key = Some(job_seed(policy.seed ^ IDEM_STREAM, index));
        let budget = policy.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..budget {
            if attempt > 0 {
                record_retry_attempt();
                let wait = backoff_ms(policy.seed, index, attempt, policy.base_ms, policy.cap_ms);
                // The backoff is wall-clock by nature (it spaces wire
                // retries); the *schedule* stays deterministic because the
                // durations are seeded draws.
                #[allow(clippy::disallowed_methods)]
                // fcn-allow: DET-TIME seeded backoff sleep — schedule is a pure function of the retry seed
                std::thread::sleep(Duration::from_millis(wait));
                if self.reconnect(&addr, &mut last).is_err() {
                    continue;
                }
            }
            req.id = self.fresh_id();
            match self.exchange(&req) {
                Ok(resp) if is_shed(&resp) => {
                    last = shed_text(&resp);
                }
                Ok(resp) => return Ok(resp),
                Err(ClientError::RetriesExhausted { last: l, .. }) => last = l,
                Err(e) => {
                    // The connection is suspect after any transport or
                    // protocol failure; the next attempt reconnects before
                    // re-sending, so no stale stream is ever reused.
                    last = e.to_string();
                }
            }
        }
        record_retry_exhausted();
        Err(ClientError::RetriesExhausted {
            attempts: budget,
            last,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn reconnect(&mut self, addr: &str, last: &mut String) -> Result<(), ()> {
        match FramedConn::connect(addr) {
            Ok(conn) => {
                self.conn = conn;
                Ok(())
            }
            Err(e) => {
                *last = format!("reconnect to {addr} failed: {e}");
                Err(())
            }
        }
    }

    /// One attempt: write the frame, read and validate the reply.
    fn exchange(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.conn.write_frame(req.encode().as_bytes())?;
        let payload = self
            .conn
            .read_frame(None)?
            .ok_or_else(|| ClientError::Protocol("server closed before replying".to_string()))?;
        let body = String::from_utf8(payload)
            .map_err(|e| ClientError::Protocol(format!("response is not UTF-8: {e}")))?;
        let resp = Response::decode(&body).map_err(ClientError::Protocol)?;
        if resp.id != req.id && resp.id != 0 {
            return Err(ClientError::Protocol(format!(
                "response id {} does not answer request id {}",
                resp.id, req.id
            )));
        }
        Ok(resp)
    }
}

/// Is this framed response a shed the retry loop should absorb?
fn is_shed(resp: &Response) -> bool {
    matches!(
        resp.error.as_ref().map(|e| e.kind),
        Some(ErrorKind::Overloaded)
    )
}

fn shed_text(resp: &Response) -> String {
    match &resp.error {
        Some(e) => match e.retry_after_ms {
            Some(ms) => format!("shed: {} (retry_after_ms {ms})", e.message),
            None => format!("shed: {}", e.message),
        },
        None => "shed".to_string(),
    }
}

fn record_retry_attempt() {
    let g = fcn_telemetry::global();
    if g.enabled() {
        g.counter(names::SERVE_RETRY_ATTEMPTS_TOTAL).inc();
    }
}

fn record_retry_exhausted() {
    let g = fcn_telemetry::global();
    if g.enabled() {
        g.counter(names::SERVE_RETRY_EXHAUSTED_TOTAL).inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idempotency_keys_are_seeded_and_distinct() {
        let k: Vec<u64> = (0..8).map(|i| job_seed(77 ^ IDEM_STREAM, i)).collect();
        let mut uniq = k.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), k.len(), "colliding idempotency keys");
        // And decorrelated from the backoff draws on the same base seed.
        assert_ne!(k[0], backoff_ms(77, 0, 1, 1, u64::MAX));
    }

    #[test]
    fn retries_exhausted_renders_the_last_failure() {
        let e = ClientError::RetriesExhausted {
            attempts: 3,
            last: "connection reset".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("after 3 attempts"), "{text}");
        assert!(text.contains("connection reset"), "{text}");
    }

    #[test]
    fn shed_detection_matches_overloaded_only() {
        let shed = Response::overloaded(1, "queue full", 40);
        assert!(is_shed(&shed));
        assert!(shed_text(&shed).contains("retry_after_ms 40"));
        let plain = Response::failure(1, ErrorKind::Internal, "boom");
        assert!(!is_shed(&plain));
        assert!(!is_shed(&Response::success(1, 0, String::new())));
    }
}
