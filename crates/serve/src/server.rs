//! The serving loop: accept, admit, deadline, dispatch, drain.
//!
//! The server owns the *mechanism* invariants promised in the crate docs —
//! every frame gets a framed reply, admission is a bounded FIFO queue with
//! typed shedding, deadlines cancel through the same [`fcn_exec::Watchdog`]
//! machinery the inline CLI uses, and per-request telemetry merges into the
//! server's registry in request-arrival order. What a request kind actually
//! *does* is delegated to the [`Handler`], so the CLI can plug its
//! subcommand bodies in and inherit byte-identical output for free.
//!
//! ## Which counters live where
//!
//! The request-ordered [`MetricsRegistry`] (what a `metrics` request
//! renders) is a pure function of the *executed* request sequence: only
//! handler work and its per-request outcome counters flush into it, in
//! arrival order. Connection, chaos, shed, and replay counters are
//! transport-level noise that retries are allowed to perturb, so they live
//! in the `health` render (plus the process-global registry) instead —
//! that separation is what makes a retried run's `metrics` output
//! byte-identical to the clean single-attempt run.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fcn_exec::lockdep::{lock_ranked, ranks, RankedGuard};
use fcn_exec::Watchdog;
use fcn_telemetry::names;
use fcn_telemetry::{take_shard, with_shard, LocalShard, MetricsRegistry};

use crate::admission::{Admission, Admit};
use crate::chaos::{ChaosPlan, ChaosSpec, ChaosStats};
use crate::io::FramedConn;
use crate::proto::{ErrorKind, Request, Response};

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Admission bound: at most this many heavy requests execute
    /// concurrently.
    pub max_inflight: usize,
    /// Queue bound: at most this many heavy requests wait behind the
    /// in-flight limit; the excess is shed with a framed
    /// `Overloaded{retry_after_ms}`. `0` restores the PR 8 binary gate.
    pub max_queued: usize,
    /// How long a queued request may wait for a slot, milliseconds. A
    /// request with a tighter deadline waits at most its deadline.
    pub queue_wait_ms: u64,
    /// Default per-request deadline in milliseconds when the request does
    /// not override it; `0` means no deadline.
    pub default_deadline_ms: u64,
    /// How often idle reads and the accept loop wake to check the
    /// shutdown flag.
    pub poll_interval_ms: u64,
    /// Seeded wire-chaos plan wrapped around every connection's reply
    /// path; `None` disables injection entirely.
    pub chaos: Option<ChaosSpec>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 8,
            max_queued: 16,
            queue_wait_ms: 250,
            default_deadline_ms: 0,
            poll_interval_ms: 20,
            chaos: None,
        }
    }
}

/// What a [`Handler`] did with one admitted request.
#[derive(Debug)]
pub enum HandlerOutcome {
    /// The request ran to completion (possibly with a nonzero exit code —
    /// e.g. an audit that found violations; that is still a served reply).
    Done {
        /// Exit code the inline subcommand would have returned.
        exit_code: i32,
        /// Captured stdout bytes, byte-identical to the inline run.
        output: Vec<u8>,
    },
    /// The deadline cancelled the request mid-flight.
    Cancelled {
        /// Partial accounting of the work completed before the abort.
        partial: String,
    },
    /// The request failed in a typed, non-cancellation way.
    Failed {
        /// Failure category to frame.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// Executes one admitted request kind. Implementations must be callable
/// from many connection threads at once.
pub trait Handler: Sync {
    /// Run `kind` with `args`; poll `cancel` and abort with partial
    /// accounting when it rises.
    fn handle(&self, kind: &str, args: &[String], cancel: &AtomicBool) -> HandlerOutcome;
}

/// Arrival-order telemetry merge: each request takes a sequence number the
/// moment its frame is parsed, and completed shards are flushed into the
/// server registry strictly in that sequence — whichever worker finishes
/// first. This makes the registry's contents a deterministic function of
/// the request arrival order, not the thread schedule.
#[derive(Debug, Default)]
struct MergeQueue {
    state: Mutex<MergeState>,
}

#[derive(Debug, Default)]
struct MergeState {
    next_seq: u64,
    next_flush: u64,
    done: std::collections::BTreeMap<u64, LocalShard>,
}

impl MergeQueue {
    fn admit(&self) -> u64 {
        let mut st = self.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        seq
    }

    fn complete(&self, seq: u64, shard: LocalShard, reg: &MetricsRegistry) {
        let mut st = self.lock();
        st.done.insert(seq, shard);
        loop {
            let key = st.next_flush;
            match st.done.remove(&key) {
                Some(shard) => {
                    shard.flush_into(reg);
                    st.next_flush += 1;
                }
                None => break,
            }
        }
    }

    fn lock(&self) -> RankedGuard<'_, MergeState> {
        lock_ranked(&self.state, ranks::SERVE_MERGE)
    }
}

/// A claimed merge slot that *always* completes: [`MergeTicket::finish`]
/// merges the request's real shard, and if the request path unwinds or
/// returns early instead (a panic outside the handler's `catch_unwind`, a
/// disconnect racing the reply), the `Drop` impl completes the slot with
/// whatever the thread shard holds. Without this, one dead slot would stall
/// the in-order flush for every later request (the orphaned-shard bug).
struct MergeTicket<'a> {
    merge: &'a MergeQueue,
    reg: &'a MetricsRegistry,
    seq: u64,
    done: bool,
}

impl<'a> MergeTicket<'a> {
    fn claim(merge: &'a MergeQueue, reg: &'a MetricsRegistry) -> MergeTicket<'a> {
        MergeTicket {
            merge,
            reg,
            seq: merge.admit(),
            done: false,
        }
    }

    fn finish(mut self, shard: LocalShard) {
        self.done = true;
        self.merge.complete(self.seq, shard, self.reg);
    }
}

impl Drop for MergeTicket<'_> {
    fn drop(&mut self) {
        if !self.done {
            // Fill the slot with the thread's (possibly partial) shard so
            // the arrival-order flush never stalls on this sequence number.
            self.merge.complete(self.seq, take_shard(), self.reg);
        }
    }
}

/// Bounded FIFO cache of completed replies, keyed by idempotency key, so a
/// retried request whose first attempt completed (the reply was lost on the
/// wire) is answered without executing twice. Only *deterministic* outcomes
/// are cached (`ok` responses and `BadRequest`); transient failures
/// (`Overloaded`, `Cancelled`, `Internal`, `Shutdown`) are not — a retry of
/// those is supposed to try again for real.
///
/// Keys are client-chosen and can collide across *distinct* logical
/// requests (two `fcnemu request` processes with the same default retry
/// seed both derive key 0's stream), so every entry carries the request's
/// [`fingerprint`] and a hit replays only when the fingerprint matches —
/// a mismatch is a different request that happens to share the key, and it
/// executes for real (overwriting the entry: latest wins).
#[derive(Debug, Default)]
struct ReplyCache {
    state: Mutex<ReplyCacheState>,
}

#[derive(Debug, Default)]
struct ReplyCacheState {
    order: std::collections::VecDeque<u64>,
    replies: std::collections::BTreeMap<u64, (String, Response)>,
}

/// Entries retained by the reply cache; a retry storm older than this is a
/// client bug, not something the server should buffer unboundedly for.
const REPLY_CACHE_CAP: usize = 128;

/// What makes two frames "the same logical request" for replay purposes:
/// everything except the per-attempt id.
fn fingerprint(req: &Request) -> String {
    let mut fp = req.kind.clone();
    for a in &req.args {
        fp.push('\x1f'); // unit separator: args can contain spaces
        fp.push_str(a);
    }
    fp.push('\x1f');
    fp.push_str(&req.deadline_ms.map_or_else(String::new, |d| d.to_string()));
    fp
}

impl ReplyCache {
    fn get(&self, key: u64, fp: &str) -> Option<Response> {
        let st = self.lock();
        let (cached_fp, resp) = st.replies.get(&key)?;
        (cached_fp == fp).then(|| resp.clone())
    }

    fn insert(&self, key: u64, fp: &str, resp: &Response) {
        let mut st = self.lock();
        if st
            .replies
            .insert(key, (fp.to_string(), resp.clone()))
            .is_none()
        {
            st.order.push_back(key);
            while st.order.len() > REPLY_CACHE_CAP {
                if let Some(evict) = st.order.pop_front() {
                    st.replies.remove(&evict);
                }
            }
        }
    }

    fn lock(&self) -> RankedGuard<'_, ReplyCacheState> {
        lock_ranked(&self.state, ranks::SERVE_REPLIES)
    }
}

/// Is this outcome deterministic enough to replay from the cache?
fn cacheable(resp: &Response) -> bool {
    resp.ok
        || matches!(
            resp.error.as_ref().map(|e| e.kind),
            Some(ErrorKind::BadRequest)
        )
}

/// A bound `fcn-serve/1` server. Construct with [`Server::bind`], then
/// [`Server::run`] until the shutdown flag rises.
pub struct Server<H: Handler> {
    config: ServerConfig,
    handler: H,
    listener: TcpListener,
    admission: Arc<Admission>,
    metrics: MetricsRegistry,
    merge: MergeQueue,
    replies: ReplyCache,
    chaos: Option<ChaosPlan>,
    /// Deterministic per-connection chaos-stream index (accept order).
    conn_seq: AtomicU64,
    /// Connections accepted; a transport-level counter, kept out of the
    /// request-ordered registry (see module docs).
    connections: AtomicU64,
    /// Requests answered from the reply cache instead of re-executing.
    replayed: AtomicU64,
}

impl<H: Handler> Server<H> {
    /// Bind the listening socket; no connection is accepted until
    /// [`Server::run`].
    pub fn bind(config: ServerConfig, handler: H) -> io::Result<Server<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        let admission = Admission::new(
            config.max_inflight,
            config.max_queued,
            config.queue_wait_ms.max(1),
        );
        let chaos = config.chaos.clone().map(ChaosPlan::new);
        Ok(Server {
            config,
            handler,
            listener,
            admission,
            metrics: MetricsRegistry::new(),
            merge: MergeQueue::default(),
            replies: ReplyCache::default(),
            chaos,
            conn_seq: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's own metrics registry (what a `metrics` request renders).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The chaos plan's injection counters, when a plan is configured.
    pub fn chaos_stats(&self) -> Option<&Arc<ChaosStats>> {
        self.chaos.as_ref().map(|p| p.stats())
    }

    /// Serve until `shutdown` rises, then drain: stop accepting, let every
    /// in-flight request finish and reply, answer any frame that arrives
    /// during the drain with a framed `Shutdown` error, and return once all
    /// connection threads have exited.
    #[allow(clippy::disallowed_methods)] // the accept poll below is annotated
    pub fn run(&self, shutdown: &AtomicBool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let poll = Duration::from_millis(self.config.poll_interval_ms.max(1));
        std::thread::scope(|scope| -> io::Result<()> {
            // ordering: the shutdown flag is a monotone drain hint (signal
            // handler or test harness); Relaxed polling is sufficient. The
            // connection counters are plain statistics with no ordering
            // dependents.
            while !shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        let g = fcn_telemetry::global();
                        if g.enabled() {
                            g.counter(names::SERVE_CONNECTIONS_TOTAL).inc();
                        }
                        scope.spawn(move || self.serve_conn(stream, shutdown));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // fcn-allow: DET-TIME accept-loop shutdown poll; no simulated quantity depends on it
                        std::thread::sleep(poll);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            self.metrics
                .gauge(names::SERVE_DRAIN_INFLIGHT)
                .set(self.admission.inflight() as u64);
            Ok(())
            // Scope exit joins every connection thread: that *is* the drain.
        })
    }

    /// One connection: frames in, framed replies out, until clean EOF, a
    /// transport error, an injected chaos fault, or the drain finds the
    /// connection idle.
    fn serve_conn(&self, stream: TcpStream, shutdown: &AtomicBool) {
        let poll = Duration::from_millis(self.config.poll_interval_ms.max(1));
        let Ok(mut conn) = FramedConn::new(stream) else {
            return;
        };
        if conn.set_poll_interval(Some(poll)).is_err() {
            return;
        }
        if let Some(plan) = &self.chaos {
            // ordering: accept-order connection index; Relaxed suffices for
            // a monotone id (the chaos stream only needs distinctness, and
            // accept itself is sequential in run()).
            let id = self.conn_seq.fetch_add(1, Ordering::Relaxed);
            conn.set_chaos(plan.stream(id));
        }
        loop {
            match conn.read_frame(Some(shutdown)) {
                Ok(Some(payload)) => {
                    let resp = self.handle_frame(&payload, shutdown);
                    if conn.write_frame(resp.encode().as_bytes()).is_err() {
                        return; // peer gone (or chaos cut the wire)
                    }
                }
                // Clean EOF, or the drain caught the connection idle.
                Ok(None) => return,
                Err(_) => return,
            }
        }
    }

    /// Decode and execute one frame, always producing a framed response.
    /// The thread's telemetry shard is captured afterwards and merged in
    /// arrival order, so this must only run on a dedicated request thread.
    fn handle_frame(&self, payload: &[u8], shutdown: &AtomicBool) -> Response {
        let req = match std::str::from_utf8(payload)
            .map_err(|e| e.to_string())
            .and_then(Request::decode)
        {
            Ok(req) => req,
            Err(msg) => {
                // Malformed frames get a reply too — id 0, since the
                // request's own id was unparseable.
                return Response::failure(0, ErrorKind::BadRequest, msg);
            }
        };
        let fp = req.idem_key.map(|_| fingerprint(&req));
        if let (Some(key), Some(fp)) = (req.idem_key, fp.as_deref()) {
            if let Some(mut resp) = self.replies.get(key, fp) {
                // A retry of a request that already completed: replay the
                // cached reply under the retry's id. No merge slot, no
                // handler, no ordered-registry delta — the executed request
                // sequence is unchanged, which is the byte-identity pin.
                resp.id = req.id;
                // ordering: plain statistic; see run().
                self.replayed.fetch_add(1, Ordering::Relaxed);
                let g = fcn_telemetry::global();
                if g.enabled() {
                    g.counter(names::SERVE_REPLAYED_TOTAL).inc();
                }
                return resp;
            }
        }
        let ticket = MergeTicket::claim(&self.merge, &self.metrics);
        let resp = self.execute(&req, shutdown);
        ticket.finish(take_shard());
        if let (Some(key), Some(fp)) = (req.idem_key, fp.as_deref()) {
            if cacheable(&resp) {
                self.replies.insert(key, fp, &resp);
            }
        }
        resp
    }

    fn execute(&self, req: &Request, shutdown: &AtomicBool) -> Response {
        if req.deadline_ms == Some(0) {
            // An explicit zero deadline is already expired: arming a
            // watchdog for it would be a guaranteed cancellation, and
            // treating it as "no deadline" would invert the client's
            // intent. Reject it before any accounting.
            with_shard(|s| {
                s.inc(names::SERVE_REQUESTS_TOTAL);
                s.inc(names::SERVE_ERRORS_TOTAL);
            });
            return Response::failure(
                req.id,
                ErrorKind::BadRequest,
                "deadline_ms of 0 is already expired; use null for the server default",
            );
        }
        // ordering: monotone drain hint; see run().
        if shutdown.load(Ordering::Relaxed) {
            with_shard(|s| {
                s.inc(names::SERVE_REQUESTS_TOTAL);
                s.inc(names::SERVE_ERRORS_TOTAL);
            });
            return Response::failure(
                req.id,
                ErrorKind::Shutdown,
                "server is draining and no longer accepts requests",
            );
        }
        match req.kind.as_str() {
            // Interactive kinds never touch the admission queue: a probe
            // must answer in microseconds even while heavy grids saturate
            // every slot (the priority-class half of graceful degradation).
            "ping" => {
                with_shard(|s| s.inc(names::SERVE_REQUESTS_TOTAL));
                Response::success(req.id, 0, "pong\n".to_string())
            }
            // A metrics probe must not perturb what it measures: it renders
            // the registry as-is and records nothing itself (its own shard
            // delta is empty), so back-to-back probes render identically.
            "metrics" => self.render_metrics(req),
            // Likewise read-only: transport/occupancy counters for load
            // generators, deliberately *outside* the ordered registry.
            "health" => self.render_health(req),
            _ => self.execute_admitted(req),
        }
    }

    fn render_metrics(&self, req: &Request) -> Response {
        let format = req
            .args
            .iter()
            .position(|a| a == "--format")
            .and_then(|i| req.args.get(i + 1))
            .map_or("jsonl", |s| s.as_str());
        let snap = self.metrics.snapshot();
        match format {
            "jsonl" => Response::success(req.id, 0, snap.to_jsonl()),
            "prom" => Response::success(req.id, 0, snap.to_prometheus()),
            other => Response::failure(
                req.id,
                ErrorKind::BadRequest,
                format!("unknown metrics format {other:?} (expected jsonl or prom)"),
            ),
        }
    }

    fn render_health(&self, req: &Request) -> Response {
        let snap = self.admission.snapshot();
        let (resets, stalls, truncs, corrupts) = self
            .chaos
            .as_ref()
            .map(|p| {
                let s = p.stats();
                (s.resets(), s.stalls(), s.truncations(), s.corruptions())
            })
            .unwrap_or((0, 0, 0, 0));
        // ordering: plain statistics reads; see run().
        let connections = self.connections.load(Ordering::Relaxed);
        let replayed = self.replayed.load(Ordering::Relaxed);
        let out = format!(
            "inflight                : {}\n\
             queued                  : {}\n\
             queued_total            : {}\n\
             shed_queue_full_total   : {}\n\
             shed_wait_expired_total : {}\n\
             connections_total       : {}\n\
             replayed_total          : {}\n\
             chaos_resets_total      : {}\n\
             chaos_stalls_total      : {}\n\
             chaos_truncations_total : {}\n\
             chaos_corruptions_total : {}\n",
            snap.inflight,
            snap.queued,
            snap.queued_total,
            snap.shed_queue_full_total,
            snap.shed_wait_expired_total,
            connections,
            replayed,
            resets,
            stalls,
            truncs,
            corrupts,
        );
        Response::success(req.id, 0, out)
    }

    fn execute_admitted(&self, req: &Request) -> Response {
        let deadline_ms = req.deadline_ms.unwrap_or(self.config.default_deadline_ms);
        // Deadline-aware shedding: a request that cannot start before its
        // deadline must be rejected at the deadline, not executed doomed.
        let wait_budget = if deadline_ms > 0 {
            self.config.queue_wait_ms.min(deadline_ms)
        } else {
            self.config.queue_wait_ms
        };
        let permit = match self.admission.admit(wait_budget) {
            Admit::Granted(permit) => permit,
            Admit::Shed(shed) => {
                with_shard(|s| s.inc(names::SERVE_OVERLOADED_TOTAL));
                return Response::overloaded(
                    req.id,
                    format!(
                        "admission queue full ({} requests in flight, {} queued); retry later",
                        shed.inflight, shed.queued
                    ),
                    shed.retry_after_ms,
                );
            }
        };
        let _permit = permit;
        with_shard(|s| s.inc(names::SERVE_REQUESTS_TOTAL));
        // The watchdog must outlive the handler call; its token is the
        // cancel flag the routing engines poll. deadline 0 = no deadline.
        let watchdog = (deadline_ms > 0).then(|| Watchdog::arm(Duration::from_millis(deadline_ms)));
        let idle = AtomicBool::new(false);
        let cancel: &AtomicBool = watchdog.as_ref().map_or(&idle, |w| w.token().flag());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.handler.handle(&req.kind, &req.args, cancel)
        }));
        match outcome {
            Ok(HandlerOutcome::Done { exit_code, output }) => Response::success(
                req.id,
                exit_code,
                String::from_utf8_lossy(&output).into_owned(),
            ),
            Ok(HandlerOutcome::Cancelled { partial }) => {
                with_shard(|s| s.inc(names::SERVE_DEADLINE_CANCELLED_TOTAL));
                Response::failure(
                    req.id,
                    ErrorKind::Cancelled,
                    format!("deadline of {deadline_ms} ms expired: {partial}"),
                )
            }
            Ok(HandlerOutcome::Failed { kind, message }) => {
                with_shard(|s| s.inc(names::SERVE_ERRORS_TOTAL));
                Response::failure(req.id, kind, message)
            }
            Err(panic) => {
                with_shard(|s| s.inc(names::SERVE_ERRORS_TOTAL));
                Response::failure(req.id, ErrorKind::Internal, panic_text(panic.as_ref()))
            }
        }
    }
}

/// Best-effort text of a panic payload (mirrors `fcn-exec`'s private
/// helper; panics carry `&str` or `String` in practice).
fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use std::sync::atomic::AtomicUsize;

    /// A scripted handler: `sleepy` spins until cancelled (or a release
    /// flag rises), `boom` panics, `echo` returns its args, anything else
    /// fails typed.
    struct StubHandler {
        release: AtomicBool,
        running: AtomicUsize,
    }

    impl StubHandler {
        fn new() -> StubHandler {
            StubHandler {
                release: AtomicBool::new(false),
                running: AtomicUsize::new(0),
            }
        }
    }

    impl Handler for StubHandler {
        fn handle(&self, kind: &str, args: &[String], cancel: &AtomicBool) -> HandlerOutcome {
            match kind {
                "echo" => HandlerOutcome::Done {
                    exit_code: 0,
                    output: format!("echo:{}\n", args.join(",")).into_bytes(),
                },
                "sleepy" => {
                    self.running.fetch_add(1, Ordering::SeqCst);
                    let mut spins = 0u64;
                    loop {
                        if cancel.load(Ordering::Relaxed) {
                            self.running.fetch_sub(1, Ordering::SeqCst);
                            return HandlerOutcome::Cancelled {
                                partial: format!("{spins} spins completed"),
                            };
                        }
                        if self.release.load(Ordering::SeqCst) {
                            self.running.fetch_sub(1, Ordering::SeqCst);
                            return HandlerOutcome::Done {
                                exit_code: 0,
                                output: b"released\n".to_vec(),
                            };
                        }
                        spins += 1;
                        std::hint::spin_loop();
                    }
                }
                "boom" => panic!("stub handler exploded"),
                other => HandlerOutcome::Failed {
                    kind: ErrorKind::BadRequest,
                    message: format!("unknown kind {other:?}"),
                },
            }
        }
    }

    #[allow(clippy::type_complexity)] // test helper: the tuple is the fixture
    fn start_with(
        config: ServerConfig,
    ) -> (
        Arc<Server<StubHandler>>,
        Arc<AtomicBool>,
        std::thread::JoinHandle<io::Result<()>>,
        String,
    ) {
        let server = Arc::new(Server::bind(config, StubHandler::new()).unwrap());
        let addr = server.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let runner = {
            let server = Arc::clone(&server);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || server.run(&shutdown))
        };
        (server, shutdown, runner, addr)
    }

    #[allow(clippy::type_complexity)] // test helper: the tuple is the fixture
    fn start(
        max_inflight: usize,
    ) -> (
        Arc<Server<StubHandler>>,
        Arc<AtomicBool>,
        std::thread::JoinHandle<io::Result<()>>,
        String,
    ) {
        start_with(ServerConfig {
            max_inflight,
            ..ServerConfig::default()
        })
    }

    fn stop(shutdown: &AtomicBool, runner: std::thread::JoinHandle<io::Result<()>>) {
        shutdown.store(true, Ordering::SeqCst);
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn ping_echo_and_unknown_kind_roundtrip() {
        let (_server, shutdown, runner, addr) = start(2);
        let mut client = Client::connect(&addr).unwrap();
        let pong = client.call("ping", &[]).unwrap();
        assert!(pong.ok);
        assert_eq!(pong.output, "pong\n");
        let echo = client.call("echo", &["a", "b"]).unwrap();
        assert_eq!(echo.output, "echo:a,b\n");
        assert_eq!(echo.id, 2, "ids must be echoed per-request");
        let bad = client.call("nonsense", &[]).unwrap();
        assert!(!bad.ok);
        assert_eq!(bad.error.unwrap().kind, ErrorKind::BadRequest);
        stop(&shutdown, runner);
    }

    #[test]
    fn malformed_frames_get_a_framed_bad_request() {
        let (_server, shutdown, runner, addr) = start(2);
        let mut conn = FramedConn::connect(&addr).unwrap();
        conn.write_frame(b"not json at all").unwrap();
        let body = String::from_utf8(conn.read_frame(None).unwrap().unwrap()).unwrap();
        let resp = Response::decode(&body).unwrap();
        assert_eq!(resp.id, 0);
        assert_eq!(resp.error.unwrap().kind, ErrorKind::BadRequest);
        // The connection survives a malformed frame.
        let mut client = Client::from_conn(conn);
        assert!(client.call("ping", &[]).unwrap().ok);
        stop(&shutdown, runner);
    }

    #[test]
    fn overload_is_rejected_typed_and_promptly() {
        // max_queued 0 restores the PR 8 binary gate: no queue, shed now.
        let (server, shutdown, runner, addr) = start_with(ServerConfig {
            max_inflight: 1,
            max_queued: 0,
            ..ServerConfig::default()
        });
        // Occupy the single slot with a spinning request on its own thread.
        let blocker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.call("sleepy", &[]).unwrap()
            })
        };
        while server.handler.running.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }
        let mut client = Client::connect(&addr).unwrap();
        let rejected = client.call("echo", &["x"]).unwrap();
        assert!(!rejected.ok);
        let err = rejected.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Overloaded);
        assert!(
            err.message.contains("1 requests in flight"),
            "{}",
            err.message
        );
        assert!(err.retry_after_ms.unwrap_or(0) >= 1, "hint must be framed");
        // Interactive kinds bypass the saturated gate entirely.
        assert!(client.call("ping", &[]).unwrap().ok);
        assert!(client.call("health", &[]).unwrap().ok);
        // Release the blocker; its reply must still arrive intact.
        server.handler.release.store(true, Ordering::SeqCst);
        let released = blocker.join().unwrap();
        assert_eq!(released.output, "released\n");
        // The freed slot admits again.
        assert!(client.call("echo", &["y"]).unwrap().ok);
        stop(&shutdown, runner);
    }

    #[test]
    fn queued_request_runs_when_the_slot_frees() {
        let (server, shutdown, runner, addr) = start_with(ServerConfig {
            max_inflight: 1,
            max_queued: 4,
            queue_wait_ms: 60_000,
            ..ServerConfig::default()
        });
        let blocker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.call("sleepy", &[]).unwrap()
            })
        };
        while server.handler.running.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }
        // This echo queues behind the blocker instead of shedding...
        let queued = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.call("echo", &["queued"]).unwrap()
            })
        };
        while server.admission.snapshot().queued == 0 {
            std::hint::spin_loop();
        }
        // ...and completes once the slot frees.
        server.handler.release.store(true, Ordering::SeqCst);
        assert_eq!(blocker.join().unwrap().output, "released\n");
        let resp = queued.join().unwrap();
        assert!(resp.ok);
        assert_eq!(resp.output, "echo:queued\n");
        assert_eq!(server.admission.snapshot().queued_total, 1);
        stop(&shutdown, runner);
    }

    #[test]
    fn tight_deadline_bounds_the_queue_wait() {
        let (server, shutdown, runner, addr) = start_with(ServerConfig {
            max_inflight: 1,
            max_queued: 4,
            queue_wait_ms: 60_000,
            ..ServerConfig::default()
        });
        let blocker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.call("sleepy", &[]).unwrap()
            })
        };
        while server.handler.running.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }
        // A 10 ms deadline caps the wait far below queue_wait_ms: the
        // request sheds at its deadline instead of waiting a minute.
        let mut client = Client::connect(&addr).unwrap();
        let mut req = Request::new(0, "echo", &["doomed"]);
        req.deadline_ms = Some(10);
        let resp = client.request(req).unwrap();
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Overloaded);
        assert!(err.retry_after_ms.is_some());
        assert_eq!(server.admission.snapshot().shed_wait_expired_total, 1);
        server.handler.release.store(true, Ordering::SeqCst);
        assert!(blocker.join().unwrap().ok);
        stop(&shutdown, runner);
    }

    #[test]
    fn zero_deadline_is_a_bad_request() {
        let (_server, shutdown, runner, addr) = start(2);
        let mut client = Client::connect(&addr).unwrap();
        let mut req = Request::new(0, "echo", &["x"]);
        req.deadline_ms = Some(0);
        let resp = client.request(req).unwrap();
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.kind, ErrorKind::BadRequest);
        assert!(err.message.contains("already expired"), "{}", err.message);
        stop(&shutdown, runner);
    }

    #[test]
    fn deadline_cancels_with_partial_accounting() {
        let (_server, shutdown, runner, addr) = start(2);
        let mut client = Client::connect(&addr).unwrap();
        let mut req = Request::new(0, "sleepy", &[]);
        req.deadline_ms = Some(25);
        let resp = client.request(req).unwrap();
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Cancelled);
        assert!(
            err.message.contains("deadline of 25 ms expired")
                && err.message.contains("spins completed"),
            "{}",
            err.message
        );
        stop(&shutdown, runner);
    }

    #[test]
    fn handler_panic_becomes_a_framed_internal_error() {
        let (server, shutdown, runner, addr) = start(1);
        let mut client = Client::connect(&addr).unwrap();
        let resp = client.call("boom", &[]).unwrap();
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Internal);
        assert!(
            err.message.contains("stub handler exploded"),
            "{}",
            err.message
        );
        // The permit was released despite the unwind: the next request runs.
        assert!(client.call("echo", &["after"]).unwrap().ok);
        assert_eq!(server.admission.inflight(), 0);
        stop(&shutdown, runner);
    }

    #[test]
    fn drain_finishes_inflight_and_rejects_late_frames() {
        let (server, shutdown, runner, addr) = start(4);
        // An in-flight request straddling the shutdown.
        let straddler = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.call("sleepy", &[]).unwrap()
            })
        };
        while server.handler.running.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }
        // A second, idle connection opened before the drain begins.
        let mut late = Client::connect(&addr).unwrap();
        assert!(late.call("ping", &[]).unwrap().ok);
        shutdown.store(true, Ordering::SeqCst);
        // A frame racing the drain on the idle connection either gets a
        // framed Shutdown reply or finds the connection already closed —
        // never a hang, never an unframed drop mid-exchange.
        match late.call("echo", &["too-late"]) {
            Ok(resp) => {
                assert!(!resp.ok);
                assert_eq!(resp.error.unwrap().kind, ErrorKind::Shutdown);
            }
            Err(_closed_by_drain) => {}
        }
        // The straddler must complete and receive its full reply.
        server.handler.release.store(true, Ordering::SeqCst);
        let resp = straddler.join().unwrap();
        assert!(resp.ok);
        assert_eq!(resp.output, "released\n");
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn telemetry_merges_in_arrival_order_and_metrics_is_read_only() {
        let (_server, shutdown, runner, addr) = start(4);
        let mut client = Client::connect(&addr).unwrap();
        for _ in 0..3 {
            assert!(client.call("ping", &[]).unwrap().ok);
        }
        let _ = client.call("nonsense", &[]).unwrap();
        let jsonl = client.call("metrics", &[]).unwrap();
        assert!(jsonl.ok);
        let snap = fcn_telemetry::MetricsSnapshot::from_jsonl(&jsonl.output).unwrap();
        assert_eq!(
            snap.counters.get(names::SERVE_REQUESTS_TOTAL).copied(),
            Some(4),
            "3 pings + 1 failed kind; metrics probes do not count themselves"
        );
        assert_eq!(
            snap.counters.get(names::SERVE_ERRORS_TOTAL).copied(),
            Some(1)
        );
        // Back-to-back probes render byte-identically (read-only probe),
        // and prom output is the same snapshot rendered differently.
        let again = client.call("metrics", &[]).unwrap();
        assert_eq!(jsonl.output, again.output);
        let prom = client.call("metrics", &["--format", "prom"]).unwrap();
        assert_eq!(prom.output, snap.to_prometheus());
        let bad = client.call("metrics", &["--format", "xml"]).unwrap();
        assert_eq!(bad.error.unwrap().kind, ErrorKind::BadRequest);
        stop(&shutdown, runner);
    }

    #[test]
    fn idempotent_replay_answers_from_the_cache_without_reexecuting() {
        let (server, shutdown, runner, addr) = start(4);
        let mut client = Client::connect(&addr).unwrap();
        let mut req = Request::new(0, "echo", &["once"]);
        req.idem_key = Some(0xabad_cafe);
        let first = client.request(req.clone()).unwrap();
        assert!(first.ok);
        // The "retry": same idempotency key, fresh id. It must replay the
        // cached reply (same payload, new id) without executing again.
        let second = client.request(req.clone()).unwrap();
        assert!(second.ok);
        assert_eq!(second.output, first.output);
        assert_ne!(second.id, first.id, "replay answers under the retry's id");
        // ordering: plain statistic; test-side read.
        assert_eq!(server.replayed.load(Ordering::Relaxed), 1);
        // The ordered registry saw exactly one executed echo.
        let metrics = client.call("metrics", &[]).unwrap();
        let snap = fcn_telemetry::MetricsSnapshot::from_jsonl(&metrics.output).unwrap();
        assert_eq!(
            snap.counters.get(names::SERVE_REQUESTS_TOTAL).copied(),
            Some(1),
            "the replayed attempt must not count as an executed request"
        );
        // A transient failure is not cached: a cancelled request retries
        // for real (distinct executions, distinct partials allowed).
        let mut doomed = Request::new(0, "sleepy", &[]);
        doomed.deadline_ms = Some(5);
        doomed.idem_key = Some(0xdead_0001);
        let c1 = client.request(doomed.clone()).unwrap();
        assert_eq!(c1.error.unwrap().kind, ErrorKind::Cancelled);
        let c2 = client.request(doomed).unwrap();
        assert_eq!(c2.error.unwrap().kind, ErrorKind::Cancelled);
        assert_eq!(server.replayed.load(Ordering::Relaxed), 1, "no replay");
        stop(&shutdown, runner);
    }

    #[test]
    fn colliding_idempotency_keys_never_replay_a_different_request() {
        // Client-chosen keys collide in practice: two one-shot `fcnemu
        // request` processes with the default retry seed both stamp the
        // same key. The cache must replay only when the request fingerprint
        // (kind + args + deadline) matches — never hand request B request
        // A's reply.
        let (server, shutdown, runner, addr) = start(4);
        let mut client = Client::connect(&addr).unwrap();
        let mut first = Request::new(0, "echo", &["alpha"]);
        first.idem_key = Some(7);
        let a = client.request(first.clone()).unwrap();
        assert_eq!(a.output, "echo:alpha\n");
        // Same key, different args: must execute for real.
        let mut second = Request::new(0, "echo", &["omega"]);
        second.idem_key = Some(7);
        let b = client.request(second.clone()).unwrap();
        assert_eq!(b.output, "echo:omega\n", "a collision must not replay");
        // Same key, same kind/args, different deadline: also distinct.
        let mut third = second.clone();
        third.deadline_ms = Some(60_000);
        let c = client.request(third.clone()).unwrap();
        assert_eq!(c.output, "echo:omega\n");
        // ordering: plain statistic; test-side read.
        assert_eq!(server.replayed.load(Ordering::Relaxed), 0);
        // A true retry — the latest occupant of the key, same fingerprint —
        // does replay.
        let d = client.request(third).unwrap();
        assert_eq!(d.output, "echo:omega\n");
        assert_eq!(server.replayed.load(Ordering::Relaxed), 1);
        stop(&shutdown, runner);
    }

    #[test]
    fn health_reports_occupancy_and_transport_counters() {
        let (server, shutdown, runner, addr) = start(2);
        let mut client = Client::connect(&addr).unwrap();
        assert!(client.call("echo", &["x"]).unwrap().ok);
        let health = client.call("health", &[]).unwrap();
        assert!(health.ok);
        for needle in [
            "inflight                : 0",
            "queued                  : 0",
            "connections_total       : 1",
            "replayed_total          : 0",
            "chaos_resets_total      : 0",
            "shed_queue_full_total   : 0",
        ] {
            assert!(
                health.output.contains(needle),
                "missing {needle:?} in:\n{}",
                health.output
            );
        }
        // Health probes leave the ordered registry untouched.
        let metrics = client.call("metrics", &[]).unwrap();
        let snap = fcn_telemetry::MetricsSnapshot::from_jsonl(&metrics.output).unwrap();
        assert_eq!(
            snap.counters.get(names::SERVE_REQUESTS_TOTAL).copied(),
            Some(1),
            "health must not count as an executed request"
        );
        assert_eq!(server.connections.load(Ordering::Relaxed), 1);
        stop(&shutdown, runner);
    }

    #[test]
    fn mid_request_disconnect_does_not_stall_the_merge() {
        let (server, shutdown, runner, addr) = start(4);
        // A client that sends a request and vanishes before the reply.
        {
            let mut conn = FramedConn::connect(&addr).unwrap();
            let req = Request::new(1, "sleepy", &[]);
            conn.write_frame(req.encode().as_bytes()).unwrap();
            while server.handler.running.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
            }
            // Dropping the connection here orphans the in-flight request:
            // its reply write will fail after the handler finishes.
        }
        server.handler.release.store(true, Ordering::SeqCst);
        while server.handler.running.load(Ordering::SeqCst) != 0 {
            std::hint::spin_loop();
        }
        // Later requests' telemetry still merges: the dead slot completed
        // (via MergeTicket) instead of stalling the in-order flush.
        let mut client = Client::connect(&addr).unwrap();
        assert!(client.call("ping", &[]).unwrap().ok);
        let metrics = client.call("metrics", &[]).unwrap();
        let snap = fcn_telemetry::MetricsSnapshot::from_jsonl(&metrics.output).unwrap();
        assert_eq!(
            snap.counters.get(names::SERVE_REQUESTS_TOTAL).copied(),
            Some(2),
            "the orphaned request's shard and the ping must both have merged"
        );
        stop(&shutdown, runner);
    }

    #[test]
    fn merge_ticket_drop_fills_its_slot() {
        let merge = MergeQueue::default();
        let reg = MetricsRegistry::new();
        let _ = take_shard(); // start this thread's shard clean
        let first = MergeTicket::claim(&merge, &reg);
        let second = MergeTicket::claim(&merge, &reg);
        // Complete the *later* slot first, with a real delta...
        with_shard(|s| s.add("mergetickettest_done_total", 1));
        second.finish(take_shard());
        // ...which cannot flush until seq 0 completes. Dropping the first
        // ticket unfinished (the unwind/disconnect path) must fill slot 0
        // and release the flush, not stall it forever.
        assert_eq!(
            reg.snapshot().counters.get("mergetickettest_done_total"),
            None
        );
        drop(first);
        assert_eq!(
            reg.snapshot()
                .counters
                .get("mergetickettest_done_total")
                .copied(),
            Some(1)
        );
    }

    #[test]
    fn reply_cache_is_bounded_fifo() {
        let cache = ReplyCache::default();
        for k in 0..(REPLY_CACHE_CAP as u64 + 10) {
            cache.insert(k, "fp", &Response::success(k, 0, format!("r{k}")));
        }
        assert!(
            cache.get(0, "fp").is_none(),
            "oldest entries must be evicted"
        );
        assert!(cache.get(9, "fp").is_none());
        assert_eq!(
            cache.get(10, "fp").map(|r| r.output),
            Some("r10".to_string()),
            "entries within the cap survive"
        );
        let newest = REPLY_CACHE_CAP as u64 + 9;
        assert_eq!(
            cache.get(newest, "fp").map(|r| r.output),
            Some(format!("r{newest}"))
        );
        // A colliding key from a *different* logical request never replays.
        assert!(cache.get(newest, "other-request").is_none());
        // Transient outcomes are never cacheable.
        assert!(!cacheable(&Response::overloaded(1, "full", 5)));
        assert!(!cacheable(&Response::failure(
            1,
            ErrorKind::Cancelled,
            "late"
        )));
        assert!(!cacheable(&Response::failure(
            1,
            ErrorKind::Internal,
            "boom"
        )));
        assert!(cacheable(&Response::failure(
            1,
            ErrorKind::BadRequest,
            "bad"
        )));
        assert!(cacheable(&Response::success(1, 0, String::new())));
    }
}
