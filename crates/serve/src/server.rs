//! The serving loop: accept, admit, deadline, dispatch, drain.
//!
//! The server owns the *mechanism* invariants promised in the crate docs —
//! every frame gets a framed reply, admission is bounded, deadlines cancel
//! through the same [`fcn_exec::Watchdog`] machinery the inline CLI uses,
//! and per-request telemetry merges into the server's registry in
//! request-arrival order. What a request kind actually *does* is delegated
//! to the [`Handler`], so the CLI can plug its subcommand bodies in and
//! inherit byte-identical output for free.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use fcn_exec::Watchdog;
use fcn_telemetry::names;
use fcn_telemetry::{take_shard, with_shard, LocalShard, MetricsRegistry};

use crate::admission::AdmissionGate;
use crate::io::FramedConn;
use crate::proto::{ErrorKind, Request, Response};

/// Tunables for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Admission bound: at most this many requests execute concurrently;
    /// the excess is rejected with a framed `Overloaded` error.
    pub max_inflight: usize,
    /// Default per-request deadline in milliseconds when the request does
    /// not override it; `0` means no deadline.
    pub default_deadline_ms: u64,
    /// How often idle reads and the accept loop wake to check the
    /// shutdown flag.
    pub poll_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 8,
            default_deadline_ms: 0,
            poll_interval_ms: 20,
        }
    }
}

/// What a [`Handler`] did with one admitted request.
#[derive(Debug)]
pub enum HandlerOutcome {
    /// The request ran to completion (possibly with a nonzero exit code —
    /// e.g. an audit that found violations; that is still a served reply).
    Done {
        /// Exit code the inline subcommand would have returned.
        exit_code: i32,
        /// Captured stdout bytes, byte-identical to the inline run.
        output: Vec<u8>,
    },
    /// The deadline cancelled the request mid-flight.
    Cancelled {
        /// Partial accounting of the work completed before the abort.
        partial: String,
    },
    /// The request failed in a typed, non-cancellation way.
    Failed {
        /// Failure category to frame.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

/// Executes one admitted request kind. Implementations must be callable
/// from many connection threads at once.
pub trait Handler: Sync {
    /// Run `kind` with `args`; poll `cancel` and abort with partial
    /// accounting when it rises.
    fn handle(&self, kind: &str, args: &[String], cancel: &AtomicBool) -> HandlerOutcome;
}

/// Arrival-order telemetry merge: each request takes a sequence number the
/// moment its frame is parsed, and completed shards are flushed into the
/// server registry strictly in that sequence — whichever worker finishes
/// first. This makes the registry's contents a deterministic function of
/// the request arrival order, not the thread schedule.
#[derive(Debug, Default)]
struct MergeQueue {
    state: Mutex<MergeState>,
}

#[derive(Debug, Default)]
struct MergeState {
    next_seq: u64,
    next_flush: u64,
    done: std::collections::BTreeMap<u64, LocalShard>,
}

impl MergeQueue {
    fn admit(&self) -> u64 {
        let mut st = self.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        seq
    }

    fn complete(&self, seq: u64, shard: LocalShard, reg: &MetricsRegistry) {
        let mut st = self.lock();
        st.done.insert(seq, shard);
        loop {
            let key = st.next_flush;
            match st.done.remove(&key) {
                Some(shard) => {
                    shard.flush_into(reg);
                    st.next_flush += 1;
                }
                None => break,
            }
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MergeState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A bound `fcn-serve/1` server. Construct with [`Server::bind`], then
/// [`Server::run`] until the shutdown flag rises.
pub struct Server<H: Handler> {
    config: ServerConfig,
    handler: H,
    listener: TcpListener,
    gate: Arc<AdmissionGate>,
    metrics: MetricsRegistry,
    merge: MergeQueue,
}

impl<H: Handler> Server<H> {
    /// Bind the listening socket; no connection is accepted until
    /// [`Server::run`].
    pub fn bind(config: ServerConfig, handler: H) -> io::Result<Server<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        let gate = AdmissionGate::new(config.max_inflight);
        Ok(Server {
            config,
            handler,
            listener,
            gate,
            metrics: MetricsRegistry::new(),
            merge: MergeQueue::default(),
        })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's own metrics registry (what a `metrics` request renders).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Serve until `shutdown` rises, then drain: stop accepting, let every
    /// in-flight request finish and reply, answer any frame that arrives
    /// during the drain with a framed `Shutdown` error, and return once all
    /// connection threads have exited.
    #[allow(clippy::disallowed_methods)] // the accept poll below is annotated
    pub fn run(&self, shutdown: &AtomicBool) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let poll = Duration::from_millis(self.config.poll_interval_ms.max(1));
        std::thread::scope(|scope| -> io::Result<()> {
            // ordering: the shutdown flag is a monotone drain hint (signal
            // handler or test harness); Relaxed polling is sufficient.
            while !shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        self.metrics.counter(names::SERVE_CONNECTIONS_TOTAL).inc();
                        scope.spawn(move || self.serve_conn(stream, shutdown));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // fcn-allow: DET-TIME accept-loop shutdown poll; no simulated quantity depends on it
                        std::thread::sleep(poll);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            self.metrics
                .gauge(names::SERVE_DRAIN_INFLIGHT)
                .set(self.gate.inflight() as u64);
            Ok(())
            // Scope exit joins every connection thread: that *is* the drain.
        })
    }

    /// One connection: frames in, framed replies out, until clean EOF, a
    /// transport error, or the drain finds the connection idle.
    fn serve_conn(&self, stream: TcpStream, shutdown: &AtomicBool) {
        let poll = Duration::from_millis(self.config.poll_interval_ms.max(1));
        let Ok(mut conn) = FramedConn::new(stream) else {
            return;
        };
        if conn.set_poll_interval(Some(poll)).is_err() {
            return;
        }
        loop {
            match conn.read_frame(Some(shutdown)) {
                Ok(Some(payload)) => {
                    let resp = self.handle_frame(&payload, shutdown);
                    if conn.write_frame(resp.encode().as_bytes()).is_err() {
                        return; // peer gone; nothing left to reply to
                    }
                }
                // Clean EOF, or the drain caught the connection idle.
                Ok(None) => return,
                Err(_) => return,
            }
        }
    }

    /// Decode and execute one frame, always producing a framed response.
    /// The thread's telemetry shard is captured afterwards and merged in
    /// arrival order, so this must only run on a dedicated request thread.
    fn handle_frame(&self, payload: &[u8], shutdown: &AtomicBool) -> Response {
        let req = match std::str::from_utf8(payload)
            .map_err(|e| e.to_string())
            .and_then(Request::decode)
        {
            Ok(req) => req,
            Err(msg) => {
                // Malformed frames get a reply too — id 0, since the
                // request's own id was unparseable.
                return Response::failure(0, ErrorKind::BadRequest, msg);
            }
        };
        let seq = self.merge.admit();
        let resp = self.execute(&req, shutdown);
        self.merge.complete(seq, take_shard(), &self.metrics);
        resp
    }

    fn execute(&self, req: &Request, shutdown: &AtomicBool) -> Response {
        if req.kind != "metrics" {
            with_shard(|s| s.inc(names::SERVE_REQUESTS_TOTAL));
        }
        // ordering: monotone drain hint; see run().
        if shutdown.load(Ordering::Relaxed) {
            with_shard(|s| s.inc(names::SERVE_ERRORS_TOTAL));
            return Response::failure(
                req.id,
                ErrorKind::Shutdown,
                "server is draining and no longer accepts requests",
            );
        }
        match req.kind.as_str() {
            "ping" => Response::success(req.id, 0, "pong\n".to_string()),
            // A metrics probe must not perturb what it measures: it renders
            // the registry as-is and records nothing itself (its own shard
            // delta is empty), so back-to-back probes render identically.
            "metrics" => self.render_metrics(req),
            _ => self.execute_admitted(req),
        }
    }

    fn render_metrics(&self, req: &Request) -> Response {
        let format = req
            .args
            .iter()
            .position(|a| a == "--format")
            .and_then(|i| req.args.get(i + 1))
            .map_or("jsonl", |s| s.as_str());
        let snap = self.metrics.snapshot();
        match format {
            "jsonl" => Response::success(req.id, 0, snap.to_jsonl()),
            "prom" => Response::success(req.id, 0, snap.to_prometheus()),
            other => Response::failure(
                req.id,
                ErrorKind::BadRequest,
                format!("unknown metrics format {other:?} (expected jsonl or prom)"),
            ),
        }
    }

    fn execute_admitted(&self, req: &Request) -> Response {
        let Some(_permit) = self.gate.try_admit() else {
            with_shard(|s| {
                s.inc(names::SERVE_OVERLOADED_TOTAL);
                s.inc(names::SERVE_ERRORS_TOTAL);
            });
            return Response::failure(
                req.id,
                ErrorKind::Overloaded,
                format!(
                    "admission gate full ({} requests in flight); retry later",
                    self.gate.limit()
                ),
            );
        };
        let deadline_ms = req.deadline_ms.unwrap_or(self.config.default_deadline_ms);
        // The watchdog must outlive the handler call; its token is the
        // cancel flag the routing engines poll. deadline 0 = no deadline.
        let watchdog = (deadline_ms > 0).then(|| Watchdog::arm(Duration::from_millis(deadline_ms)));
        let idle = AtomicBool::new(false);
        let cancel: &AtomicBool = watchdog.as_ref().map_or(&idle, |w| w.token().flag());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            self.handler.handle(&req.kind, &req.args, cancel)
        }));
        match outcome {
            Ok(HandlerOutcome::Done { exit_code, output }) => Response::success(
                req.id,
                exit_code,
                String::from_utf8_lossy(&output).into_owned(),
            ),
            Ok(HandlerOutcome::Cancelled { partial }) => {
                with_shard(|s| s.inc(names::SERVE_DEADLINE_CANCELLED_TOTAL));
                Response::failure(
                    req.id,
                    ErrorKind::Cancelled,
                    format!("deadline of {deadline_ms} ms expired: {partial}"),
                )
            }
            Ok(HandlerOutcome::Failed { kind, message }) => {
                with_shard(|s| s.inc(names::SERVE_ERRORS_TOTAL));
                Response::failure(req.id, kind, message)
            }
            Err(panic) => {
                with_shard(|s| s.inc(names::SERVE_ERRORS_TOTAL));
                Response::failure(req.id, ErrorKind::Internal, panic_text(panic.as_ref()))
            }
        }
    }
}

/// Best-effort text of a panic payload (mirrors `fcn-exec`'s private
/// helper; panics carry `&str` or `String` in practice).
fn panic_text(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use std::sync::atomic::AtomicUsize;

    /// A scripted handler: `sleepy` spins until cancelled (or a release
    /// flag rises), `boom` panics, `echo` returns its args, anything else
    /// fails typed.
    struct StubHandler {
        release: AtomicBool,
        running: AtomicUsize,
    }

    impl StubHandler {
        fn new() -> StubHandler {
            StubHandler {
                release: AtomicBool::new(false),
                running: AtomicUsize::new(0),
            }
        }
    }

    impl Handler for StubHandler {
        fn handle(&self, kind: &str, args: &[String], cancel: &AtomicBool) -> HandlerOutcome {
            match kind {
                "echo" => HandlerOutcome::Done {
                    exit_code: 0,
                    output: format!("echo:{}\n", args.join(",")).into_bytes(),
                },
                "sleepy" => {
                    self.running.fetch_add(1, Ordering::SeqCst);
                    let mut spins = 0u64;
                    loop {
                        if cancel.load(Ordering::Relaxed) {
                            self.running.fetch_sub(1, Ordering::SeqCst);
                            return HandlerOutcome::Cancelled {
                                partial: format!("{spins} spins completed"),
                            };
                        }
                        if self.release.load(Ordering::SeqCst) {
                            self.running.fetch_sub(1, Ordering::SeqCst);
                            return HandlerOutcome::Done {
                                exit_code: 0,
                                output: b"released\n".to_vec(),
                            };
                        }
                        spins += 1;
                        std::hint::spin_loop();
                    }
                }
                "boom" => panic!("stub handler exploded"),
                other => HandlerOutcome::Failed {
                    kind: ErrorKind::BadRequest,
                    message: format!("unknown kind {other:?}"),
                },
            }
        }
    }

    #[allow(clippy::type_complexity)] // test helper: the tuple is the fixture
    fn start(
        max_inflight: usize,
    ) -> (
        Arc<Server<StubHandler>>,
        Arc<AtomicBool>,
        std::thread::JoinHandle<io::Result<()>>,
        String,
    ) {
        let config = ServerConfig {
            max_inflight,
            ..ServerConfig::default()
        };
        let server = Arc::new(Server::bind(config, StubHandler::new()).unwrap());
        let addr = server.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let runner = {
            let server = Arc::clone(&server);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || server.run(&shutdown))
        };
        (server, shutdown, runner, addr)
    }

    fn stop(shutdown: &AtomicBool, runner: std::thread::JoinHandle<io::Result<()>>) {
        shutdown.store(true, Ordering::SeqCst);
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn ping_echo_and_unknown_kind_roundtrip() {
        let (_server, shutdown, runner, addr) = start(2);
        let mut client = Client::connect(&addr).unwrap();
        let pong = client.call("ping", &[]).unwrap();
        assert!(pong.ok);
        assert_eq!(pong.output, "pong\n");
        let echo = client.call("echo", &["a", "b"]).unwrap();
        assert_eq!(echo.output, "echo:a,b\n");
        assert_eq!(echo.id, 2, "ids must be echoed per-request");
        let bad = client.call("nonsense", &[]).unwrap();
        assert!(!bad.ok);
        assert_eq!(bad.error.unwrap().kind, ErrorKind::BadRequest);
        stop(&shutdown, runner);
    }

    #[test]
    fn malformed_frames_get_a_framed_bad_request() {
        let (_server, shutdown, runner, addr) = start(2);
        let mut conn = FramedConn::connect(&addr).unwrap();
        conn.write_frame(b"not json at all").unwrap();
        let body = String::from_utf8(conn.read_frame(None).unwrap().unwrap()).unwrap();
        let resp = Response::decode(&body).unwrap();
        assert_eq!(resp.id, 0);
        assert_eq!(resp.error.unwrap().kind, ErrorKind::BadRequest);
        // The connection survives a malformed frame.
        let mut client = Client::from_conn(conn);
        assert!(client.call("ping", &[]).unwrap().ok);
        stop(&shutdown, runner);
    }

    #[test]
    fn overload_is_rejected_typed_and_promptly() {
        let (server, shutdown, runner, addr) = start(1);
        // Occupy the single slot with a spinning request on its own thread.
        let blocker = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.call("sleepy", &[]).unwrap()
            })
        };
        while server.handler.running.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }
        let mut client = Client::connect(&addr).unwrap();
        let rejected = client.call("echo", &["x"]).unwrap();
        assert!(!rejected.ok);
        let err = rejected.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Overloaded);
        assert!(
            err.message.contains("1 requests in flight"),
            "{}",
            err.message
        );
        // Release the blocker; its reply must still arrive intact.
        server.handler.release.store(true, Ordering::SeqCst);
        let released = blocker.join().unwrap();
        assert_eq!(released.output, "released\n");
        // The freed slot admits again.
        assert!(client.call("echo", &["y"]).unwrap().ok);
        stop(&shutdown, runner);
    }

    #[test]
    fn deadline_cancels_with_partial_accounting() {
        let (_server, shutdown, runner, addr) = start(2);
        let mut client = Client::connect(&addr).unwrap();
        let mut req = Request::new(0, "sleepy", &[]);
        req.deadline_ms = Some(25);
        let resp = client.request(req).unwrap();
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Cancelled);
        assert!(
            err.message.contains("deadline of 25 ms expired")
                && err.message.contains("spins completed"),
            "{}",
            err.message
        );
        stop(&shutdown, runner);
    }

    #[test]
    fn handler_panic_becomes_a_framed_internal_error() {
        let (server, shutdown, runner, addr) = start(1);
        let mut client = Client::connect(&addr).unwrap();
        let resp = client.call("boom", &[]).unwrap();
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.kind, ErrorKind::Internal);
        assert!(
            err.message.contains("stub handler exploded"),
            "{}",
            err.message
        );
        // The permit was released despite the unwind: the next request runs.
        assert!(client.call("echo", &["after"]).unwrap().ok);
        assert_eq!(server.gate.inflight(), 0);
        stop(&shutdown, runner);
    }

    #[test]
    fn drain_finishes_inflight_and_rejects_late_frames() {
        let (server, shutdown, runner, addr) = start(4);
        // An in-flight request straddling the shutdown.
        let straddler = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                client.call("sleepy", &[]).unwrap()
            })
        };
        while server.handler.running.load(Ordering::SeqCst) == 0 {
            std::hint::spin_loop();
        }
        // A second, idle connection opened before the drain begins.
        let mut late = Client::connect(&addr).unwrap();
        assert!(late.call("ping", &[]).unwrap().ok);
        shutdown.store(true, Ordering::SeqCst);
        // A frame racing the drain on the idle connection either gets a
        // framed Shutdown reply or finds the connection already closed —
        // never a hang, never an unframed drop mid-exchange.
        match late.call("echo", &["too-late"]) {
            Ok(resp) => {
                assert!(!resp.ok);
                assert_eq!(resp.error.unwrap().kind, ErrorKind::Shutdown);
            }
            Err(_closed_by_drain) => {}
        }
        // The straddler must complete and receive its full reply.
        server.handler.release.store(true, Ordering::SeqCst);
        let resp = straddler.join().unwrap();
        assert!(resp.ok);
        assert_eq!(resp.output, "released\n");
        runner.join().unwrap().unwrap();
    }

    #[test]
    fn telemetry_merges_in_arrival_order_and_metrics_is_read_only() {
        let (_server, shutdown, runner, addr) = start(4);
        let mut client = Client::connect(&addr).unwrap();
        for _ in 0..3 {
            assert!(client.call("ping", &[]).unwrap().ok);
        }
        let _ = client.call("nonsense", &[]).unwrap();
        let jsonl = client.call("metrics", &[]).unwrap();
        assert!(jsonl.ok);
        let snap = fcn_telemetry::MetricsSnapshot::from_jsonl(&jsonl.output).unwrap();
        assert_eq!(
            snap.counters.get(names::SERVE_REQUESTS_TOTAL).copied(),
            Some(4),
            "3 pings + 1 failed kind; metrics probes do not count themselves"
        );
        assert_eq!(
            snap.counters.get(names::SERVE_ERRORS_TOTAL).copied(),
            Some(1)
        );
        // Back-to-back probes render byte-identically (read-only probe),
        // and prom output is the same snapshot rendered differently.
        let again = client.call("metrics", &[]).unwrap();
        assert_eq!(jsonl.output, again.output);
        let prom = client.call("metrics", &["--format", "prom"]).unwrap();
        assert_eq!(prom.output, snap.to_prometheus());
        let bad = client.call("metrics", &["--format", "xml"]).unwrap();
        assert_eq!(bad.error.unwrap().kind, ErrorKind::BadRequest);
        stop(&shutdown, runner);
    }
}
