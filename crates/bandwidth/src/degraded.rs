//! Degraded-β sweeps: how the operational bandwidth of a machine decays as
//! a deterministic fault plane kills wires and processors.
//!
//! The paper's `β(G, π)` is defined on an intact host. The fault plane
//! (`fcn-faults`) asks the operational question the definition leaves open:
//! how gracefully does the *measured* rate degrade when a seeded fraction of
//! the machine is dead or flapping? [`DegradedSweep`] answers with a
//! β-vs-fault-rate curve: for each fault rate it generates one
//! [`FaultPlan`], compiles one faulted net, fans the usual
//! `trials × multipliers` grid over a deterministic [`fcn_exec::Pool`], and
//! aggregates the per-cell outcomes (rate, strandings, unreachable demands,
//! replans) into one [`DegradedPoint`].
//!
//! ## Transparency and determinism
//!
//! The sweep shares its seed streams with [`crate::BandwidthEstimator`]:
//! cell `(trial, multiplier i)` draws demands with `job_seed(seed, cell)`
//! and plans with `job_seed(seed ⊕ PLAN_STREAM, trial)`. A fault rate of
//! `0.0` therefore reproduces the intact estimator's samples **bit for
//! bit** (pinned by `zero_rate_point_matches_intact_estimator`), and every
//! point is bit-identical for any worker count — the fault plan is a pure
//! function of `(fault_seed, graph)` and each cell derives its randomness
//! purely from its indices.

use std::sync::Arc;

use fcn_exec::{job_seed, Pool};
use fcn_faults::{FaultPlan, FaultSpec};
use fcn_multigraph::Traffic;
use fcn_routing::{
    plan_routes_degraded, plateau_rate, route_events_pooled, route_sharded_pooled, AbortCause,
    Backend, CompiledNet, PacketBatch, PlanCache, RateSample, RouterConfig, Strategy,
};
use fcn_topology::Machine;
use serde::{Deserialize, Serialize};

use crate::operational::PLAN_STREAM;

/// Configuration for a degraded-β sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradedSweep {
    /// Fault rates to sweep (each becomes one [`DegradedPoint`]).
    pub fault_rates: Vec<f64>,
    /// Seed of the fault plane (independent of the traffic seed so the same
    /// degraded machine can be measured under many traffics).
    pub fault_seed: u64,
    /// Batch sizes as multiples of the traffic population `n`.
    pub multipliers: Vec<usize>,
    /// Routing strategy (native policies degrade to BFS replanning around
    /// dead wires automatically).
    pub strategy: Strategy,
    /// Router configuration (discipline, tick budget).
    pub router: RouterConfig,
    /// Independent trials per fault rate.
    pub trials: usize,
    /// Base seed for demand/plan streams (matches the intact estimator).
    pub seed: u64,
    /// Worker threads; `0` means one per hardware thread. Bit-identical for
    /// every value.
    pub jobs: usize,
    /// Router shard count per cell (`1` = sequential engine). Bit-identical
    /// for every value, including on faulted nets.
    pub shards: usize,
    /// Router backend per cell ([`Backend::Tick`] by default). Bit-identical
    /// either way; [`Backend::Events`] skips outage windows on wires holding
    /// no packets instead of simulating through them, which is where
    /// degraded sweeps spend most of their idle ticks.
    pub backend: Backend,
}

impl Default for DegradedSweep {
    fn default() -> Self {
        DegradedSweep {
            fault_rates: vec![0.0, 0.02, 0.05, 0.10],
            fault_seed: 0xfa17,
            multipliers: vec![2, 4, 8],
            strategy: Strategy::ShortestPath,
            router: RouterConfig::default(),
            trials: 3,
            seed: 0xbead,
            jobs: 1,
            shards: 1,
            backend: Backend::Tick,
        }
    }
}

/// One grid cell of a degraded sweep: the usual rate sample plus the fault
/// accounting that explains it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedSample {
    /// The delivery-rate sample. `completed` means the router terminated
    /// with a typed outcome (delivered everything routable) rather than
    /// hitting the tick budget.
    pub sample: RateSample,
    /// Packets stranded at injection (path crossed a permanently dead wire).
    pub stranded: usize,
    /// Demands with no surviving route in the degraded host.
    pub unreachable: usize,
    /// Demands whose native route crossed a fault and were re-routed by BFS
    /// on the degraded graph.
    pub replans: u64,
    /// Why the router run ended.
    pub abort: AbortCause,
}

/// One point of the β-vs-fault-rate curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedPoint {
    /// The fault rate this point was generated at.
    pub fault_rate: f64,
    /// Best plateau rate across trials (`0.0` if no trial terminated within
    /// the tick budget).
    pub rate: f64,
    /// Mean of per-trial plateau rates.
    pub mean_rate: f64,
    /// All cells (trial-major, multiplier-minor).
    pub samples: Vec<DegradedSample>,
    /// Trials whose cells all terminated within the tick budget.
    pub complete_trials: usize,
    /// Processors killed by the plan.
    pub dead_nodes: usize,
    /// Links killed by the plan (including links incident to dead nodes).
    pub dead_links: usize,
    /// Transient outage windows in the plan.
    pub outages: usize,
    /// Total packets stranded across all cells.
    pub stranded: usize,
    /// Total unreachable demands across all cells.
    pub unreachable: usize,
    /// Total successful BFS replans across all cells.
    pub replans: u64,
    /// Cells that hit the tick budget (or were cancelled) instead of
    /// terminating.
    pub aborted_cells: usize,
}

impl DegradedPoint {
    /// Fraction of issued demands that were delivered, across all cells.
    pub fn delivery_fraction(&self) -> f64 {
        let issued: usize = self.samples.iter().map(|s| s.sample.messages).sum();
        if issued == 0 {
            return 1.0;
        }
        let lost = self.stranded + self.unreachable;
        1.0 - (lost.min(issued) as f64 / issued as f64)
    }
}

impl DegradedSweep {
    /// Sweep `machine` under `traffic` across every configured fault rate.
    pub fn sweep(&self, machine: &Machine, traffic: &Traffic) -> Vec<DegradedPoint> {
        assert!(self.trials >= 1, "at least one trial");
        assert!(!self.multipliers.is_empty(), "at least one multiplier");
        assert!(!self.fault_rates.is_empty(), "at least one fault rate");
        let _span = fcn_telemetry::Span::enter(fcn_telemetry::names::SPAN_DEGRADED_BETA_SWEEP);
        let n = traffic.n();
        let m_len = self.multipliers.len();
        let cells = self.trials * m_len;
        let pool = Pool::new(self.jobs);
        let base = CompiledNet::shared(machine);
        let cache = PlanCache::default();
        self.fault_rates
            .iter()
            .map(|&fault_rate| {
                let spec = FaultSpec::uniform(self.fault_seed, fault_rate);
                let plan = FaultPlan::generate(machine.graph(), &spec);
                // The faulted net keeps the intact CSR (dead wires are
                // flagged, not removed), so batches compile against it
                // exactly as against the base net. An empty plan shares the
                // base compilation outright.
                let net: Arc<CompiledNet> = if plan.is_empty() {
                    base.clone()
                } else {
                    Arc::new(base.apply_faults(&plan))
                };
                let samples: Vec<DegradedSample> = pool.run(cells, |cell| {
                    let trial = cell / m_len;
                    let mi = cell % m_len;
                    let messages = (self.multipliers[mi] * n).max(1);
                    self.cell(
                        machine,
                        &net,
                        traffic,
                        &plan,
                        &cache,
                        messages,
                        job_seed(self.seed, cell as u64),
                        job_seed(self.seed ^ PLAN_STREAM, trial as u64),
                    )
                });
                self.aggregate(fault_rate, &plan, samples, m_len)
            })
            .collect()
    }

    /// Sweep under the machine's own symmetric traffic.
    pub fn sweep_symmetric(&self, machine: &Machine) -> Vec<DegradedPoint> {
        self.sweep(machine, &machine.symmetric_traffic())
    }

    /// This sweep with a different worker count (builder-style).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// This sweep with a different router shard count (builder-style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// This sweep with a different router backend (builder-style).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// One grid cell: draw demands, plan around the faults, route on the
    /// faulted net.
    #[allow(clippy::too_many_arguments)]
    fn cell(
        &self,
        machine: &Machine,
        net: &Arc<CompiledNet>,
        traffic: &Traffic,
        plan: &FaultPlan,
        cache: &PlanCache,
        messages: usize,
        demand_seed: u64,
        plan_seed: u64,
    ) -> DegradedSample {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(demand_seed)
        };
        let demands: Vec<_> = (0..messages).map(|_| traffic.sample(&mut rng)).collect();
        let dp = plan_routes_degraded(
            machine,
            &demands,
            self.strategy,
            plan_seed,
            plan,
            Some(cache),
        );
        let batch = PacketBatch::compile(net, &dp.paths)
            // fcn-allow: ERR-UNWRAP the fault-aware planner only emits paths along surviving wires, so compile cannot reject them
            .unwrap_or_else(|e| panic!("degraded planner produced unroutable path: {e}"));
        let outcome = match self.backend {
            Backend::Events => route_events_pooled(net, &batch, self.router),
            Backend::Tick => route_sharded_pooled(net, &batch, self.router, self.shards),
        };
        // "Completed" here means the router *terminated with a typed
        // outcome* — everything routable was delivered — even if some
        // packets were stranded by dead wires. Only hitting the tick budget
        // (or cancellation) disqualifies a sample from the plateau. On an
        // intact host this coincides exactly with `RoutingOutcome::completed`.
        let terminated = !matches!(outcome.abort, AbortCause::MaxTicks | AbortCause::Cancelled);
        DegradedSample {
            sample: RateSample {
                messages,
                ticks: outcome.ticks,
                rate: outcome.rate(),
                completed: terminated,
            },
            stranded: outcome.stranded,
            unreachable: dp.unreachable.len(),
            replans: dp.replans,
            abort: outcome.abort,
        }
    }

    fn aggregate(
        &self,
        fault_rate: f64,
        plan: &FaultPlan,
        samples: Vec<DegradedSample>,
        m_len: usize,
    ) -> DegradedPoint {
        let mut plateaus = Vec::new();
        let mut complete_trials = 0;
        let rate_samples: Vec<RateSample> = samples.iter().map(|s| s.sample).collect();
        for trial in rate_samples.chunks(m_len) {
            if trial.iter().all(|s| s.completed) {
                complete_trials += 1;
            }
            if let Some(p) = plateau_rate(trial) {
                plateaus.push(p);
            }
        }
        let rate = plateaus.iter().cloned().fold(0.0, f64::max);
        let mean_rate = if plateaus.is_empty() {
            0.0
        } else {
            plateaus.iter().sum::<f64>() / plateaus.len() as f64
        };
        let (dead_nodes, dead_links, outages) = plan.summary();
        let stranded: usize = samples.iter().map(|s| s.stranded).sum();
        let unreachable: usize = samples.iter().map(|s| s.unreachable).sum();
        let replans: u64 = samples.iter().map(|s| s.replans).sum();
        let aborted_cells = samples
            .iter()
            .filter(|s| matches!(s.abort, AbortCause::MaxTicks | AbortCause::Cancelled))
            .count();
        if fcn_telemetry::global().enabled() {
            let cell_ticks: u64 = samples.iter().map(|s| s.sample.ticks).sum();
            fcn_telemetry::with_shard(|s| {
                s.inc(fcn_telemetry::names::DEGRADED_POINTS_TOTAL);
                s.add(
                    fcn_telemetry::names::DEGRADED_CELLS_TOTAL,
                    samples.len() as u64,
                );
                s.add(
                    fcn_telemetry::names::DEGRADED_STRANDED_TOTAL,
                    stranded as u64,
                );
                s.add(
                    fcn_telemetry::names::DEGRADED_UNREACHABLE_TOTAL,
                    unreachable as u64,
                );
                s.add(fcn_telemetry::names::DEGRADED_REPLANS_TOTAL, replans);
                s.add(
                    fcn_telemetry::names::DEGRADED_ABORTED_CELLS_TOTAL,
                    aborted_cells as u64,
                );
                s.add(fcn_telemetry::names::DEGRADED_CELL_TICKS_TOTAL, cell_ticks);
            });
        }
        DegradedPoint {
            fault_rate,
            rate,
            mean_rate,
            samples,
            complete_trials,
            dead_nodes,
            dead_links,
            outages,
            stranded,
            unreachable,
            replans,
            aborted_cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BandwidthEstimator;
    use fcn_topology::Machine;

    fn quick_sweep(rates: &[f64]) -> DegradedSweep {
        DegradedSweep {
            fault_rates: rates.to_vec(),
            multipliers: vec![2, 4],
            trials: 2,
            ..Default::default()
        }
    }

    #[test]
    fn zero_rate_point_matches_intact_estimator() {
        // Transparency pin: fault rate 0.0 reproduces the intact
        // estimator's cells bit for bit.
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let est = BandwidthEstimator {
            multipliers: vec![2, 4],
            trials: 2,
            ..Default::default()
        }
        .estimate(&m, &t);
        let pts = quick_sweep(&[0.0]).sweep(&m, &t);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.rate, est.rate);
        assert_eq!(p.mean_rate, est.mean_rate);
        assert_eq!(p.complete_trials, est.complete_trials);
        let rate_samples: Vec<RateSample> = p.samples.iter().map(|s| s.sample).collect();
        assert_eq!(rate_samples, est.samples);
        assert_eq!(p.stranded, 0);
        assert_eq!(p.unreachable, 0);
        assert_eq!(p.replans, 0);
        assert_eq!(p.dead_nodes + p.dead_links + p.outages, 0);
    }

    #[test]
    fn faults_degrade_the_measured_rate() {
        let m = Machine::mesh(2, 8);
        let pts = quick_sweep(&[0.0, 0.25]).sweep_symmetric(&m);
        assert_eq!(pts.len(), 2);
        let (intact, faulted) = (&pts[0], &pts[1]);
        assert!(intact.rate > 0.0);
        assert!(
            faulted.dead_links > 0 || faulted.dead_nodes > 0 || faulted.outages > 0,
            "a 25% fault rate must generate some faults"
        );
        assert!(
            faulted.rate <= intact.rate,
            "faults must not raise the rate: {} vs {}",
            faulted.rate,
            intact.rate
        );
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let seq = quick_sweep(&[0.0, 0.2]).sweep(&m, &t);
        for jobs in [2, 4] {
            let par = quick_sweep(&[0.0, 0.2]).with_jobs(jobs).sweep(&m, &t);
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn sweep_is_shard_count_invariant() {
        // Faulted nets exercise the sharded router's stranding scan and
        // fault-gated budgeted sends; the curve must not move.
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let seq = quick_sweep(&[0.0, 0.2]).sweep(&m, &t);
        for shards in [2, 4] {
            let sh = quick_sweep(&[0.0, 0.2]).with_shards(shards).sweep(&m, &t);
            assert_eq!(sh, seq, "shards={shards}");
        }
    }

    #[test]
    fn sweep_is_backend_invariant() {
        // Faulted nets exercise the event backend's window wakeups and
        // skipped-window accounting; the curve must not move.
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let tick = quick_sweep(&[0.0, 0.2]).sweep(&m, &t);
        let events = quick_sweep(&[0.0, 0.2])
            .with_backend(Backend::Events)
            .sweep(&m, &t);
        assert_eq!(events, tick);
    }

    #[test]
    fn sweep_is_deterministic_for_fixed_seeds() {
        let m = Machine::de_bruijn(4);
        let a = quick_sweep(&[0.1]).sweep_symmetric(&m);
        let b = quick_sweep(&[0.1]).sweep_symmetric(&m);
        assert_eq!(a, b);
    }

    #[test]
    fn accounting_is_internally_consistent() {
        let m = Machine::mesh(2, 8);
        let pts = quick_sweep(&[0.2]).sweep_symmetric(&m);
        let p = &pts[0];
        let stranded: usize = p.samples.iter().map(|s| s.stranded).sum();
        let unreachable: usize = p.samples.iter().map(|s| s.unreachable).sum();
        assert_eq!(p.stranded, stranded);
        assert_eq!(p.unreachable, unreachable);
        let frac = p.delivery_fraction();
        assert!((0.0..=1.0).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn butterfly_curve_has_strictly_typed_outcomes() {
        // Every cell ends in a typed abort cause — no silent spinning.
        let m = Machine::butterfly(3);
        let pts = quick_sweep(&[0.0, 0.15]).sweep_symmetric(&m);
        for p in &pts {
            for s in &p.samples {
                match s.abort {
                    AbortCause::Completed => assert_eq!(s.stranded, 0),
                    AbortCause::Stranded => assert!(s.stranded > 0),
                    AbortCause::MaxTicks | AbortCause::Cancelled => {}
                }
            }
        }
    }
}
