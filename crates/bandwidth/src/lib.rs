#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # fcn-bandwidth
//!
//! Communication-bandwidth estimation for fixed-connection machines,
//! realizing both sides of the paper's `β`:
//!
//! * [`operational`] — measured delivery rates via saturation sweeps on the
//!   `fcn-routing` simulator (achievable ⇒ lower estimates), with parallel
//!   independent trials;
//! * [`flux`] — certified cut/node-capacity upper bounds ("at most one
//!   message crosses an edge per tick");
//! * [`sandwich`] — measured + certified + analytic rows per machine size,
//!   with log-log exponent fitting across a family sweep (the Table 4
//!   reproduction pipeline);
//! * [`bottleneck`] — the bottleneck-freeness audit behind the Efficient
//!   Emulation Theorem's host premise;
//! * [`degraded`] — β-vs-fault-rate curves: the operational estimator run
//!   against a deterministic fault plane (`fcn-faults`), measuring how
//!   gracefully the delivery rate decays as wires and processors die.

pub mod bottleneck;
pub mod degraded;
pub mod flux;
pub mod operational;
pub mod sandwich;
pub mod theorem6;

pub use bottleneck::{audit_bottleneck_freeness, quick_audit, BottleneckAudit};
pub use degraded::{DegradedPoint, DegradedSample, DegradedSweep};
pub use flux::{flux_upper_bound, FluxBound};
pub use operational::{BandwidthEstimate, BandwidthEstimator, EstimateAborted};
pub use sandwich::{sandwich, sweep_family, BandwidthSandwich, FamilySweep};
pub use theorem6::{embedding_lower_bound, theorem6_sandwich, EmbeddingBound, Theorem6Certificate};
