//! Flux (cut) upper bounds on bandwidth — the certified side of `β`.
//!
//! "A simple flux argument gives the lower bound [on routing time] as Ω(c)
//! since at most one message crosses an edge per tick": if a fraction `f` of
//! traffic must cross a cut of capacity `cap`, no router exceeds rate
//! `cap/f`. We take the best (lowest) bound over the machine's canonical
//! cuts and a pool of generated-and-improved cuts.
//!
//! Node send capacities also yield flux bounds: all traffic into/out of a
//! capacitated node set is throttled by the set's total send capacity (this
//! is what certifies β = Θ(1) for the global bus, whose *wire* cuts are
//! wide).

use fcn_multigraph::{best_flux_bound, Cut, CutStats, Traffic};
use fcn_topology::Machine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A certified upper bound on delivery rate, with its witness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FluxBound {
    /// The bound: no schedule delivers faster than this (messages/tick).
    pub rate_bound: f64,
    /// Statistics of the witnessing cut (absent for node-capacity bounds).
    pub cut_stats: Option<CutStats>,
    /// Human-readable witness description.
    pub witness: String,
}

/// Best flux upper bound for `machine` under `traffic`.
///
/// Considers: (1) the machine's canonical cuts, (2) generated/improved cuts
/// (`random_seeds`, `improve_sweeps` as in
/// [`fcn_multigraph::best_flux_bound`]), and (3) the node-capacity bound for
/// weak machines.
pub fn flux_upper_bound(
    machine: &Machine,
    traffic: &Traffic,
    seed: u64,
    random_seeds: usize,
    improve_sweeps: usize,
) -> FluxBound {
    let g = machine.graph();
    let mut best: Option<FluxBound> = None;
    let mut consider = |cand: FluxBound| {
        if best.as_ref().is_none_or(|b| cand.rate_bound < b.rate_bound) {
            best = Some(cand);
        }
    };

    // Canonical cuts (traffic lives on processors; machine cuts cover all
    // nodes, so project the crossing fraction onto the processor prefix).
    for (i, cut) in machine.canonical_cuts().iter().enumerate() {
        if let Some(stats) = cut_stats_on_processors(machine, cut, traffic) {
            consider(FluxBound {
                rate_bound: stats.rate_bound,
                cut_stats: Some(stats),
                witness: format!("canonical cut #{i}"),
            });
        }
    }

    // Generated cuts on the full graph.
    let mut rng = StdRng::seed_from_u64(seed);
    let padded = pad_traffic(machine, traffic);
    if let Some((stats, _)) = best_flux_bound(g, &padded, &mut rng, random_seeds, improve_sweeps) {
        consider(FluxBound {
            rate_bound: stats.rate_bound,
            cut_stats: Some(stats),
            witness: "generated cut".to_string(),
        });
    }

    // Distance bound (the paper's second constraint, Lemma 10's dual): each
    // delivery consumes at least d(s,t) wire-slots and the machine offers
    // 2·E(G) slots per tick, so rate ≤ 2·E / avg-distance(traffic). This is
    // the bound that caps expanders and shuffle-exchanges at Θ(n/lg n),
    // where no small cut exists. For machines whose *nodes* are capacitated
    // (weak hypercube), the per-tick slot supply is the total send capacity
    // instead of the wire count.
    {
        let samples = 2000usize;
        let mut d_sum = 0u64;
        let mut d_cnt = 0u64;
        let mut cache: std::collections::BTreeMap<fcn_multigraph::NodeId, Vec<u32>> =
            std::collections::BTreeMap::new();
        for _ in 0..samples {
            let (s, t) = traffic.sample(&mut rng);
            let dist = cache
                .entry(s)
                .or_insert_with(|| fcn_multigraph::bfs_distances(g, s));
            let d = dist[t as usize];
            debug_assert!(d != u32::MAX);
            d_sum += d as u64;
            d_cnt += 1;
            if cache.len() > 256 {
                cache.clear(); // bound memory on huge machines
            }
        }
        let avg_d = (d_sum as f64 / d_cnt.max(1) as f64).max(1.0);
        consider(FluxBound {
            rate_bound: 2.0 * g.simple_edge_count() as f64 / avg_d,
            cut_stats: None,
            witness: format!("distance bound (avg d = {avg_d:.2})"),
        });
        if machine.has_node_capacities() {
            let slots: f64 = (0..machine.node_count())
                .map(|u| machine.send_capacity(u as u32) as u64)
                .map(|c| if c == u32::MAX as u64 { 0 } else { c })
                .sum::<u64>() as f64;
            let uncapped =
                (0..machine.node_count()).any(|u| machine.send_capacity(u as u32) == u32::MAX);
            if !uncapped && slots > 0.0 {
                consider(FluxBound {
                    rate_bound: slots / avg_d,
                    cut_stats: None,
                    witness: format!("capacitated distance bound (avg d = {avg_d:.2})"),
                });
            }
        }
    }

    // Node-capacity bound: every delivery consumes at least one send from a
    // finite-capacity node lying on its path. For the machines we model
    // (bus: all paths cross the hub; weak hypercube: sources are
    // capacitated), total capacity of capacitated nodes bounds the rate
    // whenever every message's path must touch one. We apply it only when
    // *all* nodes are capacitated or the capacitated set is a cut between
    // all processor pairs (the bus hub).
    if machine.has_node_capacities() {
        let caps: Vec<u64> = (0..machine.node_count())
            .map(|u| machine.send_capacity(u as u32) as u64)
            .collect();
        let finite: Vec<usize> = caps
            .iter()
            .enumerate()
            .filter(|(_, &c)| c < u32::MAX as u64)
            .map(|(u, _)| u)
            .collect();
        let all_processors_capped = (0..machine.processors()).all(|u| caps[u] < u32::MAX as u64);
        let aux_hub = finite.len() == 1 && finite[0] >= machine.processors();
        if all_processors_capped {
            // Each delivered message consumed >= 1 send at its source.
            let total: u64 = (0..machine.processors()).map(|u| caps[u]).sum();
            consider(FluxBound {
                rate_bound: total as f64,
                cut_stats: None,
                witness: "aggregate node send capacity".to_string(),
            });
        } else if aux_hub {
            let hub_cap = caps[finite[0]];
            consider(FluxBound {
                rate_bound: hub_cap as f64,
                cut_stats: None,
                witness: "bus hub capacity".to_string(),
            });
        }
    }

    // fcn-allow: ERR-UNWRAP the bisection-cut candidate is pushed unconditionally above, so `best` is always Some
    best.expect("at least one flux bound always exists")
}

/// Evaluate a full-graph cut against processor-level traffic: the crossing
/// fraction is computed on the processor prefix of the side vector.
fn cut_stats_on_processors(machine: &Machine, cut: &Cut, traffic: &Traffic) -> Option<CutStats> {
    let padded = pad_traffic(machine, traffic);
    cut.stats(machine.graph(), &padded)
}

/// Lift processor traffic to the machine's full vertex set (auxiliary nodes
/// send/receive nothing).
fn pad_traffic(machine: &Machine, traffic: &Traffic) -> Traffic {
    if traffic.n() == machine.node_count() {
        return traffic.clone();
    }
    match traffic.kind() {
        fcn_multigraph::TrafficKind::Symmetric => {
            Traffic::symmetric_on_prefix(machine.node_count(), traffic.n())
        }
        fcn_multigraph::TrafficKind::Pairs(p) => {
            Traffic::from_pairs(machine.node_count(), p.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    fn bound(machine: &Machine) -> FluxBound {
        flux_upper_bound(machine, &machine.symmetric_traffic(), 1, 4, 2)
    }

    #[test]
    fn linear_array_bound_is_constant() {
        for n in [32, 128] {
            let b = bound(&Machine::linear_array(n));
            assert!(b.rate_bound <= 5.0, "n={n}: {}", b.rate_bound);
        }
    }

    #[test]
    fn tree_bound_is_constant() {
        let b = bound(&Machine::tree(6));
        assert!(b.rate_bound <= 6.0, "{}", b.rate_bound);
    }

    #[test]
    fn mesh_bound_scales_like_sqrt_n() {
        let b8 = bound(&Machine::mesh(2, 8)).rate_bound;
        let b16 = bound(&Machine::mesh(2, 16)).rate_bound;
        let ratio = b16 / b8;
        assert!(ratio > 1.5 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn bus_bound_comes_from_hub_capacity() {
        let b = bound(&Machine::global_bus(32));
        assert_eq!(b.rate_bound, 1.0);
        assert_eq!(b.witness, "bus hub capacity");
    }

    #[test]
    fn weak_hypercube_bound_at_most_n() {
        let b = bound(&Machine::weak_hypercube(5));
        assert!(b.rate_bound <= 32.0 + 1e-9);
    }

    #[test]
    fn butterfly_bound_tracks_rows() {
        // Canonical cut: 2^g capacity, crossing fraction ~1/2 ⇒ bound ~2^{g+1}.
        let b = bound(&Machine::butterfly(4));
        assert!(b.rate_bound <= 4.4 * 16.0, "{}", b.rate_bound);
    }

    #[test]
    fn flux_upper_bounds_measured_rate() {
        // Soundness: measured rate never exceeds the certified bound.
        use fcn_routing::{measure_rate, RouterConfig, Strategy};
        for m in [Machine::mesh(2, 8), Machine::de_bruijn(4), Machine::tree(4)] {
            let t = m.symmetric_traffic();
            let fb = flux_upper_bound(&m, &t, 3, 4, 2);
            let s = measure_rate(
                &m,
                &t,
                8 * t.n(),
                Strategy::ShortestPath,
                RouterConfig::default(),
                17,
            );
            assert!(s.completed);
            assert!(
                s.rate <= fb.rate_bound * 1.0 + 1e-9,
                "{}: measured {} > bound {}",
                m.name(),
                s.rate,
                fb.rate_bound
            );
        }
    }
}
