//! Theorem 6: the graph-theoretic bandwidth equals the operational one.
//!
//! "Let `G` be a network graph of a machine with n processors. The maximum
//! expected message delivery rate under traffic distribution `T` is
//! `Θ(E(T)/C(G,T))`" — the paper's bridge between the operational
//! definition (what the router measures) and the graph-theoretic one
//! (embedding congestion). This module makes both directions executable:
//!
//! * [`embedding_lower_bound`] — a constructed embedding of the traffic
//!   multigraph certifies `β ≥ E(T)/c(witness)` (the universal O(c + Λ)
//!   router of Leighton–Maggs–Rao realizes it up to constants; our
//!   `RandomRank` discipline approximates that scheduler);
//! * [`theorem6_sandwich`] — combines it with the flux upper bound and the
//!   measured rate into a three-sided certificate, and checks the theorem's
//!   claim that all three agree within constants.

use fcn_multigraph::{Embedding, NodeId, Traffic};
use fcn_routing::{measure_rate, RouterConfig, Strategy};
use fcn_topology::Machine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::flux::flux_upper_bound;

/// A certified lower bound on β from an explicit embedding witness.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EmbeddingBound {
    /// `E(T)`: total traffic edge mass embedded.
    pub traffic_edges: u64,
    /// Congestion of the witness embedding.
    pub congestion: u64,
    /// Dilation of the witness (enters the O(c + Λ) routing time).
    pub dilation: u32,
    /// `E(T)/c`: no *better* embedding exists than the optimum, so the true
    /// graph-theoretic bandwidth is at least this.
    pub beta_lower: f64,
}

/// Embed the traffic multigraph of `traffic` into `machine` along
/// randomized shortest paths and report the implied bandwidth lower bound.
///
/// Only materializes the traffic multigraph, so use moderate `n` for the
/// symmetric distribution (`Θ(n²)` edges).
pub fn embedding_lower_bound(machine: &Machine, traffic: &Traffic, seed: u64) -> EmbeddingBound {
    let t_graph = traffic.to_multigraph();
    assert!(
        t_graph.node_count() <= machine.node_count(),
        "traffic population exceeds machine"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let phi: Vec<NodeId> = (0..t_graph.node_count() as NodeId).collect();
    // Per-source trees with per-tree randomized tie-breaking: the tighter
    // witness (Valiant doubles path lengths; decorrelated trees already
    // spread load).
    let emb = Embedding::shortest_paths(&t_graph, machine.graph(), phi, &mut rng);
    let stats = emb.stats();
    EmbeddingBound {
        traffic_edges: t_graph.simple_edge_count(),
        congestion: stats.congestion,
        dilation: stats.dilation,
        beta_lower: t_graph.simple_edge_count() as f64 / stats.congestion.max(1) as f64,
    }
}

/// The three-sided Theorem 6 certificate for one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Theorem6Certificate {
    /// Machine instance name.
    pub machine: String,
    /// Processor count.
    pub n: usize,
    /// Embedding-certified lower bound `E(T)/c`.
    pub embedding_lower: f64,
    /// Router-measured rate (achievable, so also a lower bound — and
    /// Theorem 6 says it reaches the graph-theoretic value up to constants).
    pub measured: f64,
    /// Flux-certified upper bound.
    pub flux_upper: f64,
}

impl Theorem6Certificate {
    /// Theorem 6's content at finite size: upper/lower within a constant.
    pub fn sandwich_ratio(&self) -> f64 {
        self.flux_upper / self.embedding_lower.max(f64::MIN_POSITIVE)
    }

    /// Internal consistency: lower ≤ measured·slack and measured ≤ upper.
    pub fn is_consistent(&self, slack: f64) -> bool {
        self.measured <= self.flux_upper * (1.0 + 1e-9)
            && self.embedding_lower <= self.measured * slack
    }
}

/// Compute the full certificate under symmetric traffic.
pub fn theorem6_sandwich(
    machine: &Machine,
    messages_per_proc: usize,
    seed: u64,
) -> Theorem6Certificate {
    let traffic = machine.symmetric_traffic();
    let emb = embedding_lower_bound(machine, &traffic, seed);
    let flux = flux_upper_bound(machine, &traffic, seed, 4, 2);
    let measured = measure_rate(
        machine,
        &traffic,
        messages_per_proc * traffic.n(),
        Strategy::ShortestPath,
        RouterConfig::default(),
        seed,
    );
    assert!(measured.completed, "routing incomplete");
    Theorem6Certificate {
        machine: machine.name().to_string(),
        n: machine.processors(),
        embedding_lower: emb.beta_lower,
        measured: measured.rate,
        flux_upper: flux.rate_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_bound_on_linear_array() {
        let m = Machine::linear_array(32);
        let b = embedding_lower_bound(&m, &m.symmetric_traffic(), 1);
        // K_n into a path: congestion ~ n²/2 at the middle edge; E = n(n-1).
        assert!(b.beta_lower > 0.5 && b.beta_lower < 8.0, "{}", b.beta_lower);
        assert_eq!(b.dilation, 31);
    }

    #[test]
    fn embedding_bound_scales_on_meshes() {
        let b8 = embedding_lower_bound(&Machine::mesh(2, 8), &Traffic::symmetric(64), 2);
        let b16 = embedding_lower_bound(&Machine::mesh(2, 16), &Traffic::symmetric(256), 2);
        let ratio = b16.beta_lower / b8.beta_lower;
        assert!(ratio > 1.5 && ratio < 2.7, "ratio {ratio}");
    }

    #[test]
    fn certificates_are_consistent() {
        for m in [
            Machine::mesh(2, 8),
            Machine::tree(4),
            Machine::de_bruijn(5),
            Machine::xtree(4),
        ] {
            let c = theorem6_sandwich(&m, 8, 5);
            assert!(c.is_consistent(4.0), "{}: {c:?}", m.name());
            // Theorem 6: the sandwich closes within a moderate constant.
            assert!(
                c.sandwich_ratio() < 16.0,
                "{}: sandwich ratio {}",
                m.name(),
                c.sandwich_ratio()
            );
        }
    }

    #[test]
    fn measured_rate_within_constant_of_embedding_bound() {
        // The operational side reaches the graph-theoretic value up to a
        // constant (the O(c + Λ) routing theorem).
        let m = Machine::mesh(2, 8);
        let c = theorem6_sandwich(&m, 8, 7);
        let ratio = c.measured / c.embedding_lower;
        assert!(ratio > 0.25 && ratio < 8.0, "ratio {ratio}");
    }
}
