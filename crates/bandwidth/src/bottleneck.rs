//! Bottleneck-freeness audit.
//!
//! The paper's definition: machine `H` is *bottleneck-free* if the delivery
//! rate under any quasi-symmetric distribution on `m ≤ |H|` nodes is at most
//! a constant factor *higher* than the rate under the symmetric distribution
//! `β(M)`. (A machine failing this could "cheat" an emulation: route the
//! induced pattern through a high-throughput sub-structure and beat the
//! bandwidth lower bound.) The paper asserts without proof that the
//! classical machines are bottleneck-free; this module checks it
//! empirically by measuring the rate under a family of adversarial
//! quasi-symmetric distributions and reporting the worst observed ratio.

use fcn_multigraph::Traffic;
use fcn_routing::{RouterConfig, Strategy};
use fcn_topology::Machine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::operational::BandwidthEstimator;

/// Result of auditing one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BottleneckAudit {
    /// Measured symmetric rate β̂(M).
    pub symmetric_rate: f64,
    /// Per-distribution measured rates, labeled.
    pub quasi_rates: Vec<(String, f64)>,
    /// `max(quasi) / symmetric` — the empirical bottleneck constant.
    pub worst_ratio: f64,
}

impl BottleneckAudit {
    /// True when no quasi-symmetric distribution beat the symmetric rate by
    /// more than `allowed_constant`.
    pub fn is_bottleneck_free(&self, allowed_constant: f64) -> bool {
        self.worst_ratio <= allowed_constant
    }
}

/// The audit's distribution family: adversarial quasi-symmetric patterns on
/// the full machine and on sub-populations.
fn audit_distributions(n: usize, seed: u64) -> Vec<(String, Traffic)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = vec![
        ("halves".to_string(), Traffic::bipartite_halves(n)),
        (
            "random_half_density".to_string(),
            Traffic::quasi_symmetric_random(n, 0.5, &mut rng),
        ),
        (
            "random_quarter_density".to_string(),
            Traffic::quasi_symmetric_random(n, 0.25, &mut rng),
        ),
    ];
    // Sub-population: symmetric among the first n/2 processors ("m <= |H|
    // nodes" in the definition).
    if n >= 8 {
        out.push((
            "prefix_half_population".to_string(),
            Traffic::symmetric_on_prefix(n, n / 2),
        ));
    }
    out
}

/// Audit `machine` for bottleneck-freeness.
///
/// The symmetric baseline and every quasi-symmetric distribution are
/// independent estimates, so they run as parallel cells on one
/// [`fcn_exec::Pool`] sized by `estimator.jobs` (the inner estimates run
/// sequentially to keep the thread tree flat). Results are bit-identical
/// for any worker count.
pub fn audit_bottleneck_freeness(
    machine: &Machine,
    estimator: &BandwidthEstimator,
    seed: u64,
) -> BottleneckAudit {
    let n = machine.processors();
    let mut cells: Vec<(String, Traffic)> =
        vec![("symmetric".to_string(), machine.symmetric_traffic())];
    cells.extend(audit_distributions(n, seed));
    let pool = fcn_exec::Pool::new(estimator.jobs);
    let inner = estimator.clone().with_jobs(1);
    // One wire-graph compilation serves every distribution's estimate (the
    // net depends only on the machine, not on the traffic).
    let net = fcn_routing::CompiledNet::shared(machine);
    let rates: Vec<f64> = pool.run(cells.len(), |i| {
        inner
            .estimate_compiled(
                machine,
                &net,
                &cells[i].1,
                &fcn_routing::PlanCache::default(),
            )
            .rate
    });
    let symmetric = rates[0];
    let mut quasi_rates = Vec::new();
    let mut worst: f64 = 0.0;
    for ((label, _), &rate) in cells.into_iter().zip(&rates).skip(1) {
        worst = worst.max(rate / symmetric);
        quasi_rates.push((label, rate));
    }
    BottleneckAudit {
        symmetric_rate: symmetric,
        quasi_rates,
        worst_ratio: worst,
    }
}

/// Convenience wrapper with a small default estimator (used by tests and the
/// audit example).
pub fn quick_audit(machine: &Machine, seed: u64) -> BottleneckAudit {
    let estimator = BandwidthEstimator {
        multipliers: vec![2, 4],
        strategy: Strategy::ShortestPath,
        router: RouterConfig::default(),
        trials: 2,
        seed,
        ..Default::default()
    };
    audit_bottleneck_freeness(machine, &estimator, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    #[test]
    fn mesh_is_bottleneck_free() {
        let audit = quick_audit(&Machine::mesh(2, 8), 5);
        assert!(
            audit.is_bottleneck_free(4.0),
            "worst ratio {}",
            audit.worst_ratio
        );
        assert_eq!(audit.quasi_rates.len(), 4);
    }

    #[test]
    fn tree_is_bottleneck_free() {
        let audit = quick_audit(&Machine::tree(5), 6);
        assert!(
            audit.is_bottleneck_free(4.0),
            "worst ratio {}",
            audit.worst_ratio
        );
    }

    #[test]
    fn de_bruijn_is_bottleneck_free() {
        let audit = quick_audit(&Machine::de_bruijn(5), 7);
        assert!(
            audit.is_bottleneck_free(4.0),
            "worst ratio {}",
            audit.worst_ratio
        );
    }

    #[test]
    fn audit_reports_positive_rates() {
        let audit = quick_audit(&Machine::xtree(4), 8);
        assert!(audit.symmetric_rate > 0.0);
        for (label, r) in &audit.quasi_rates {
            assert!(*r > 0.0, "{label} rate zero");
        }
    }
}
