//! Operational bandwidth estimation: the measured side of `β`.
//!
//! Runs independent saturation sweeps (different seeds) in parallel threads
//! and combines them into a [`BandwidthEstimate`]. The paper's `β` is the
//! `m → ∞` expected rate; at finite size we report the best plateau across
//! trials together with the per-trial samples so downstream fitting can see
//! the spread.

use fcn_multigraph::Traffic;
use fcn_routing::{saturation_sweep, RateSample, RouterConfig, Strategy};
use fcn_topology::Machine;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Configuration for operational bandwidth estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthEstimator {
    /// Batch sizes as multiples of the traffic population `n`.
    pub multipliers: Vec<usize>,
    /// Routing strategy.
    pub strategy: Strategy,
    /// Router configuration (discipline, tick budget).
    pub router: RouterConfig,
    /// Independent trials (different seeds), run in parallel threads.
    pub trials: usize,
    /// Base seed; trial `i` uses `seed + 1000·i`.
    pub seed: u64,
}

impl Default for BandwidthEstimator {
    fn default() -> Self {
        BandwidthEstimator {
            multipliers: vec![2, 4, 8],
            strategy: Strategy::ShortestPath,
            router: RouterConfig::default(),
            trials: 3,
            seed: 0xbead,
        }
    }
}

/// Result of operational estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthEstimate {
    /// Best completed plateau rate across trials — the β̂ sample.
    pub rate: f64,
    /// Mean of per-trial plateau rates (spread indicator).
    pub mean_rate: f64,
    /// All samples from all trials.
    pub samples: Vec<RateSample>,
    /// Number of trials whose sweeps all completed.
    pub complete_trials: usize,
}

impl BandwidthEstimator {
    /// Estimate the delivery rate of `machine` under `traffic`.
    pub fn estimate(&self, machine: &Machine, traffic: &Traffic) -> BandwidthEstimate {
        assert!(self.trials >= 1 && !self.multipliers.is_empty());
        let results: Mutex<Vec<(usize, Vec<RateSample>)>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for trial in 0..self.trials {
                let results = &results;
                let seed = self.seed.wrapping_add(1000 * trial as u64);
                scope.spawn(move |_| {
                    let samples = saturation_sweep(
                        machine,
                        traffic,
                        &self.multipliers,
                        self.strategy,
                        self.router,
                        seed,
                    );
                    results.lock().push((trial, samples));
                });
            }
        })
        .expect("bandwidth estimation thread panicked");

        let mut by_trial = results.into_inner();
        by_trial.sort_by_key(|(t, _)| *t);
        let mut all = Vec::new();
        let mut plateaus = Vec::new();
        let mut complete_trials = 0;
        for (_, samples) in by_trial {
            if samples.iter().all(|s| s.completed) {
                complete_trials += 1;
            }
            if let Some(p) = fcn_routing::plateau_rate(&samples) {
                plateaus.push(p);
            }
            all.extend(samples);
        }
        assert!(
            !plateaus.is_empty(),
            "no trial completed within the tick budget; raise router.max_ticks"
        );
        let rate = plateaus.iter().cloned().fold(0.0, f64::max);
        let mean_rate = plateaus.iter().sum::<f64>() / plateaus.len() as f64;
        BandwidthEstimate {
            rate,
            mean_rate,
            samples: all,
            complete_trials,
        }
    }

    /// Estimate under the machine's own symmetric traffic — `β̂(M)`.
    pub fn estimate_symmetric(&self, machine: &Machine) -> BandwidthEstimate {
        self.estimate(machine, &machine.symmetric_traffic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    fn quick() -> BandwidthEstimator {
        BandwidthEstimator {
            multipliers: vec![2, 4],
            trials: 2,
            ..Default::default()
        }
    }

    #[test]
    fn estimates_are_positive_and_complete() {
        let m = Machine::mesh(2, 8);
        let est = quick().estimate_symmetric(&m);
        assert!(est.rate > 0.0);
        assert!(est.complete_trials == 2);
        assert_eq!(est.samples.len(), 4);
        assert!(est.mean_rate <= est.rate + 1e-12);
    }

    #[test]
    fn mesh_estimate_tracks_sqrt_n() {
        let e8 = quick().estimate_symmetric(&Machine::mesh(2, 8)).rate;
        let e16 = quick().estimate_symmetric(&Machine::mesh(2, 16)).rate;
        let ratio = e16 / e8;
        assert!(ratio > 1.3 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn trials_are_deterministic_for_fixed_seed() {
        let m = Machine::de_bruijn(4);
        let a = quick().estimate_symmetric(&m);
        let b = quick().estimate_symmetric(&m);
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.samples.len(), b.samples.len());
    }

    #[test]
    fn bus_saturates_at_unit_rate() {
        let est = quick().estimate_symmetric(&Machine::global_bus(16));
        assert!(est.rate <= 1.05, "bus rate {}", est.rate);
    }
}
