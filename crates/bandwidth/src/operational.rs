//! Operational bandwidth estimation: the measured side of `β`.
//!
//! Fans the full `trials × multipliers` grid out over a deterministic
//! [`fcn_exec::Pool`] and combines the cells into a [`BandwidthEstimate`].
//! The paper's `β` is the `m → ∞` expected rate; at finite size we report
//! the best plateau across trials together with the per-cell samples so
//! downstream fitting can see the spread.
//!
//! ## Determinism
//!
//! Every grid cell derives its seeds purely from its indices: cell
//! `(trial, multiplier i)` draws demands with
//! `job_seed(seed, trial · M + i)` and plans routes with
//! `job_seed(seed ⊕ PLAN_STREAM, trial)`. No cell reads another cell's RNG,
//! so the estimate is bit-identical for any worker count (`jobs = 1` and
//! `jobs = 16` agree exactly — see `tests/determinism.rs`).
//!
//! Sharing one *plan* seed across a trial's multipliers is also what makes
//! the [`PlanCache`] effective: the growing batches of a trial reuse the
//! same BFS trees, so the cache serves every tree after the smallest batch
//! has populated it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fcn_exec::{job_seed, Pool};
use fcn_multigraph::Traffic;
use fcn_routing::{
    measure_rate_ctx, Backend, CompiledNet, PlanCache, RateSample, RouteCtx, RouterConfig, Strategy,
};
use fcn_topology::Machine;
use serde::{Deserialize, Serialize};

/// Domain separator for the plan-seed stream (vs the demand-seed stream).
/// Shared with [`crate::degraded`] so a zero-fault degraded sweep reproduces
/// the estimator's cells bit-for-bit.
pub(crate) const PLAN_STREAM: u64 = 0x9_1a7e_5eed;

/// Configuration for operational bandwidth estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthEstimator {
    /// Batch sizes as multiples of the traffic population `n`.
    pub multipliers: Vec<usize>,
    /// Routing strategy.
    pub strategy: Strategy,
    /// Router configuration (discipline, tick budget).
    pub router: RouterConfig,
    /// Independent trials (different seeds).
    pub trials: usize,
    /// Base seed; grid cells derive their seeds from it by index.
    pub seed: u64,
    /// Worker threads for the `trials × multipliers` grid: `1` is
    /// sequential (the default), `0` means one per hardware thread. The
    /// estimate is bit-identical for every value.
    pub jobs: usize,
    /// Router shard count for each cell's tick loop: `1` (the default) is
    /// the sequential engine, `K ≥ 2` runs the deterministic sharded
    /// router. The estimate is bit-identical for every value.
    pub shards: usize,
    /// Router backend for each cell ([`Backend::Tick`] by default). The
    /// estimate is bit-identical for every backend; [`Backend::Events`] is
    /// the cheap choice when cells spend most of their ticks idle (fault
    /// outage windows, drain tails).
    pub backend: Backend,
}

impl Default for BandwidthEstimator {
    fn default() -> Self {
        BandwidthEstimator {
            multipliers: vec![2, 4, 8],
            strategy: Strategy::ShortestPath,
            router: RouterConfig::default(),
            trials: 3,
            seed: 0xbead,
            jobs: 1,
            shards: 1,
            backend: Backend::Tick,
        }
    }
}

/// Partial accounting for a gated estimate that produced no β̂ sample:
/// either the attached cancellation flag fired mid-grid, or no trial
/// completed within the tick budget. Either way the caller learns how much
/// of the grid ran before the abort instead of a panic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateAborted {
    /// Grid cells whose routing completed within the tick budget.
    pub cells_completed: usize,
    /// Total grid cells (`trials × multipliers`).
    pub cells_total: usize,
    /// Ticks simulated across all cells before the abort.
    pub ticks_spent: u64,
    /// `true` when the cancellation flag was observed set; `false` when
    /// the grid simply exhausted its tick budget.
    pub cancelled: bool,
}

impl std::fmt::Display for EstimateAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.cancelled {
            write!(
                f,
                "cancelled after {}/{} cells ({} ticks simulated)",
                self.cells_completed, self.cells_total, self.ticks_spent
            )
        } else {
            write!(
                f,
                "no trial completed within the tick budget ({}/{} cells, {} ticks); \
                 raise router.max_ticks",
                self.cells_completed, self.cells_total, self.ticks_spent
            )
        }
    }
}

/// Result of operational estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthEstimate {
    /// Best completed plateau rate across trials — the β̂ sample.
    pub rate: f64,
    /// Mean of per-trial plateau rates (spread indicator).
    pub mean_rate: f64,
    /// All samples from all trials (trial-major, multiplier-minor order).
    pub samples: Vec<RateSample>,
    /// Number of trials whose sweeps all completed.
    pub complete_trials: usize,
}

impl BandwidthEstimator {
    /// Estimate the delivery rate of `machine` under `traffic`.
    pub fn estimate(&self, machine: &Machine, traffic: &Traffic) -> BandwidthEstimate {
        self.estimate_with_cache(machine, traffic, &PlanCache::default())
    }

    /// [`BandwidthEstimator::estimate`] with a caller-owned [`PlanCache`],
    /// so the caller can inspect hit/miss counters afterwards (`fcnemu beta
    /// --verbose`). The cache is bit-transparent: results are identical to
    /// [`BandwidthEstimator::estimate`].
    pub fn estimate_with_cache(
        &self,
        machine: &Machine,
        traffic: &Traffic,
        cache: &PlanCache,
    ) -> BandwidthEstimate {
        self.estimate_compiled(machine, &CompiledNet::shared(machine), traffic, cache)
    }

    /// The estimator's core: run the `trials × multipliers` grid over an
    /// already-compiled net (shared across all cells and, via `Arc`, with
    /// any sibling estimates the caller runs on the same machine).
    pub fn estimate_compiled(
        &self,
        machine: &Machine,
        net: &Arc<CompiledNet>,
        traffic: &Traffic,
        cache: &PlanCache,
    ) -> BandwidthEstimate {
        match self.try_estimate_compiled(machine, net, traffic, cache, None) {
            Ok(est) => est,
            // fcn-allow: ERR-UNWRAP ungated path keeps the historical panic contract
            Err(_) => panic!("no trial completed within the tick budget; raise router.max_ticks"),
        }
    }

    /// [`BandwidthEstimator::estimate_compiled`] gated on a cancellation
    /// flag: a set flag aborts every in-flight cell with
    /// [`fcn_routing::AbortCause::Cancelled`] and the call returns
    /// [`EstimateAborted`] with partial accounting instead of panicking.
    /// An un-cancelled run that produces at least one plateau is
    /// bit-identical to the ungated path; a run whose grid exhausts its
    /// tick budget also returns `Err` (with `cancelled: false`) so long-
    /// lived callers such as the emulation service never panic.
    pub fn try_estimate_compiled(
        &self,
        machine: &Machine,
        net: &Arc<CompiledNet>,
        traffic: &Traffic,
        cache: &PlanCache,
        cancel: Option<&AtomicBool>,
    ) -> Result<BandwidthEstimate, EstimateAborted> {
        assert!(self.trials >= 1 && !self.multipliers.is_empty());
        let _span = fcn_telemetry::Span::enter(fcn_telemetry::names::SPAN_BANDWIDTH_ESTIMATE);
        let n = traffic.n();
        let m_len = self.multipliers.len();
        let cells = self.trials * m_len;
        let pool = Pool::new(self.jobs);
        let mut ctx = RouteCtx::from_net(machine, net.clone())
            .with_cache(cache)
            .with_shards(self.shards)
            .with_backend(self.backend);
        if let Some(c) = cancel {
            ctx = ctx.with_cancel(c);
        }
        let samples: Vec<RateSample> = pool.run(cells, |cell| {
            let trial = cell / m_len;
            let mi = cell % m_len;
            let messages = (self.multipliers[mi] * n).max(1);
            measure_rate_ctx(
                &ctx,
                traffic,
                messages,
                self.strategy,
                self.router,
                job_seed(self.seed, cell as u64),
                job_seed(self.seed ^ PLAN_STREAM, trial as u64),
            )
        });

        let mut plateaus = Vec::new();
        let mut complete_trials = 0;
        for trial in samples.chunks(m_len) {
            if trial.iter().all(|s| s.completed) {
                complete_trials += 1;
            }
            if let Some(p) = fcn_routing::plateau_rate(trial) {
                plateaus.push(p);
            }
        }
        if fcn_telemetry::global().enabled() {
            self.publish(&samples, complete_trials as u64);
        }
        // ordering: the flag is a monotone stop hint set by another thread;
        // Relaxed suffices for the final observation too.
        let cancelled = cancel.is_some_and(|c| c.load(Ordering::Relaxed));
        if cancelled || plateaus.is_empty() {
            return Err(EstimateAborted {
                cells_completed: samples.iter().filter(|s| s.completed).count(),
                cells_total: cells,
                ticks_spent: samples.iter().map(|s| s.ticks).sum(),
                cancelled,
            });
        }
        let rate = plateaus.iter().cloned().fold(0.0, f64::max);
        let mean_rate = plateaus.iter().sum::<f64>() / plateaus.len() as f64;
        Ok(BandwidthEstimate {
            rate,
            mean_rate,
            samples,
            complete_trials,
        })
    }

    /// Push one estimate's metrics into this thread's telemetry shard.
    ///
    /// `bandwidth_saturation_ticks_total` sums the ticks every grid cell
    /// spent reaching saturation (the cost of plateau detection), and the
    /// `bandwidth_cell_ticks` histogram shows their spread — together the
    /// resource-centric view of what a β̂ sample costs.
    fn publish(&self, samples: &[RateSample], complete_trials: u64) {
        let cell_ticks: u64 = samples.iter().map(|s| s.ticks).sum();
        fcn_telemetry::with_shard(|s| {
            s.inc(fcn_telemetry::names::BANDWIDTH_ESTIMATES_TOTAL);
            s.add(
                fcn_telemetry::names::BANDWIDTH_TRIALS_TOTAL,
                self.trials as u64,
            );
            s.add(
                fcn_telemetry::names::BANDWIDTH_COMPLETE_TRIALS_TOTAL,
                complete_trials,
            );
            s.add(
                fcn_telemetry::names::BANDWIDTH_CELLS_TOTAL,
                samples.len() as u64,
            );
            s.add(
                fcn_telemetry::names::BANDWIDTH_SATURATION_TICKS_TOTAL,
                cell_ticks,
            );
            for sample in samples {
                s.record(fcn_telemetry::names::BANDWIDTH_CELL_TICKS, sample.ticks);
            }
        });
    }

    /// Estimate under the machine's own symmetric traffic — `β̂(M)`.
    pub fn estimate_symmetric(&self, machine: &Machine) -> BandwidthEstimate {
        self.estimate(machine, &machine.symmetric_traffic())
    }

    /// This estimator with a different worker count (builder-style).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// This estimator with a different router shard count (builder-style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// This estimator with a different router backend (builder-style).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    fn quick() -> BandwidthEstimator {
        BandwidthEstimator {
            multipliers: vec![2, 4],
            trials: 2,
            ..Default::default()
        }
    }

    #[test]
    fn estimates_are_positive_and_complete() {
        let m = Machine::mesh(2, 8);
        let est = quick().estimate_symmetric(&m);
        assert!(est.rate > 0.0);
        assert!(est.complete_trials == 2);
        assert_eq!(est.samples.len(), 4);
        assert!(est.mean_rate <= est.rate + 1e-12);
    }

    #[test]
    fn mesh_estimate_tracks_sqrt_n() {
        let e8 = quick().estimate_symmetric(&Machine::mesh(2, 8)).rate;
        let e16 = quick().estimate_symmetric(&Machine::mesh(2, 16)).rate;
        let ratio = e16 / e8;
        assert!(ratio > 1.3 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn trials_are_deterministic_for_fixed_seed() {
        let m = Machine::de_bruijn(4);
        let a = quick().estimate_symmetric(&m);
        let b = quick().estimate_symmetric(&m);
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.samples.len(), b.samples.len());
    }

    #[test]
    fn parallel_estimate_matches_sequential() {
        let m = Machine::mesh(2, 8);
        let seq = quick().estimate_symmetric(&m);
        for jobs in [2, 4, 0] {
            let par = quick().with_jobs(jobs).estimate_symmetric(&m);
            assert_eq!(par.rate, seq.rate, "jobs={jobs}");
            assert_eq!(par.samples, seq.samples, "jobs={jobs}");
            assert_eq!(par.complete_trials, seq.complete_trials);
        }
    }

    #[test]
    fn sharded_estimate_matches_sequential() {
        let m = Machine::mesh(2, 8);
        let seq = quick().estimate_symmetric(&m);
        for shards in [2, 4] {
            let sh = quick().with_shards(shards).estimate_symmetric(&m);
            assert_eq!(sh.rate, seq.rate, "shards={shards}");
            assert_eq!(sh.samples, seq.samples, "shards={shards}");
            assert_eq!(sh.complete_trials, seq.complete_trials);
        }
    }

    #[test]
    fn event_backend_estimate_matches_tick() {
        let m = Machine::mesh(2, 8);
        let tick = quick().estimate_symmetric(&m);
        let events = quick().with_backend(Backend::Events).estimate_symmetric(&m);
        assert_eq!(events.rate, tick.rate);
        assert_eq!(events.samples, tick.samples);
        assert_eq!(events.complete_trials, tick.complete_trials);
    }

    #[test]
    fn bus_saturates_at_unit_rate() {
        let est = quick().estimate_symmetric(&Machine::global_bus(16));
        assert!(est.rate <= 1.05, "bus rate {}", est.rate);
    }

    #[test]
    fn gated_estimate_matches_ungated_when_never_cancelled() {
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let est = quick();
        let plain = est.estimate(&m, &t);
        for (cancel, shards, backend) in [
            (None, 1, Backend::Tick),
            (Some(AtomicBool::new(false)), 1, Backend::Tick),
            (Some(AtomicBool::new(false)), 4, Backend::Tick),
            (Some(AtomicBool::new(false)), 1, Backend::Events),
        ] {
            let gated = est
                .clone()
                .with_shards(shards)
                .with_backend(backend)
                .try_estimate_compiled(
                    &m,
                    &CompiledNet::shared(&m),
                    &t,
                    &PlanCache::default(),
                    cancel.as_ref(),
                )
                .expect("unset flag must not abort");
            assert_eq!(gated.rate, plain.rate);
            assert_eq!(gated.samples, plain.samples);
            assert_eq!(gated.complete_trials, plain.complete_trials);
        }
    }

    #[test]
    fn preset_cancel_flag_aborts_with_partial_accounting() {
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let flag = AtomicBool::new(true);
        let err = quick()
            .try_estimate_compiled(
                &m,
                &CompiledNet::shared(&m),
                &t,
                &PlanCache::default(),
                Some(&flag),
            )
            .expect_err("a set flag must abort the grid");
        assert!(err.cancelled);
        assert_eq!(err.cells_total, 4);
        assert_eq!(err.cells_completed, 0, "no cell may complete routing");
        assert_eq!(err.ticks_spent, 0, "cells abort before their first tick");
        assert!(
            err.to_string().contains("cancelled after 0/4 cells"),
            "{err}"
        );
    }

    #[test]
    fn cancelled_partial_accounting_never_exceeds_the_clean_run() {
        // Property over seeded cancellation timings: however the abort
        // races the grid, the partial accounting must stay within the
        // clean (uncancelled) run's totals — an abort can only ever do
        // *less* work, and must never invent cells or ticks.
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let est = quick();
        let clean = est
            .try_estimate_compiled(
                &m,
                &CompiledNet::shared(&m),
                &t,
                &PlanCache::default(),
                None,
            )
            .expect("clean run completes");
        let clean_cells = clean.samples.iter().filter(|s| s.completed).count();
        let clean_ticks: u64 = clean.samples.iter().map(|s| s.ticks).sum();
        for seed in 0..24u64 {
            // Seeded delay in spin iterations: seed 0 is the deterministic
            // pre-cancelled boundary, later seeds race mid-grid.
            let spins = if seed == 0 {
                0
            } else {
                fcn_exec::job_seed(0xab07, seed) % 300_000
            };
            let flag = AtomicBool::new(spins == 0);
            let outcome = std::thread::scope(|scope| {
                if spins > 0 {
                    scope.spawn(|| {
                        for _ in 0..spins {
                            std::hint::spin_loop();
                        }
                        // ordering: monotone stop hint; see the estimator.
                        flag.store(true, Ordering::Relaxed);
                    });
                }
                est.try_estimate_compiled(
                    &m,
                    &CompiledNet::shared(&m),
                    &t,
                    &PlanCache::default(),
                    Some(&flag),
                )
            });
            match outcome {
                // Cancelled mid-grid: partials bounded by the clean totals.
                Err(err) => {
                    assert!(err.cancelled, "seed {seed}: only the flag may abort");
                    assert_eq!(err.cells_total, 4, "seed {seed}");
                    assert!(
                        err.cells_completed <= err.cells_total,
                        "seed {seed}: {}/{} cells",
                        err.cells_completed,
                        err.cells_total
                    );
                    assert!(
                        err.cells_completed <= clean_cells,
                        "seed {seed}: more completed cells than the clean run"
                    );
                    assert!(
                        err.ticks_spent <= clean_ticks,
                        "seed {seed}: {} ticks exceeds the clean run's {clean_ticks}",
                        err.ticks_spent
                    );
                }
                // The flag landed after the grid: bit-identical clean run.
                Ok(late) => {
                    assert_eq!(late.rate, clean.rate, "seed {seed}");
                    assert_eq!(late.samples, clean.samples, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn budget_exhaustion_reports_uncancelled_abort() {
        let m = Machine::mesh(2, 8);
        let t = m.symmetric_traffic();
        let mut est = quick();
        est.router.max_ticks = 1; // nothing can finish in one tick
        let err = est
            .try_estimate_compiled(
                &m,
                &CompiledNet::shared(&m),
                &t,
                &PlanCache::default(),
                None,
            )
            .expect_err("no trial can complete");
        assert!(!err.cancelled);
        assert!(err.to_string().contains("raise router.max_ticks"), "{err}");
    }
}
