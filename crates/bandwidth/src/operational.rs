//! Operational bandwidth estimation: the measured side of `β`.
//!
//! Fans the full `trials × multipliers` grid out over a deterministic
//! [`fcn_exec::Pool`] and combines the cells into a [`BandwidthEstimate`].
//! The paper's `β` is the `m → ∞` expected rate; at finite size we report
//! the best plateau across trials together with the per-cell samples so
//! downstream fitting can see the spread.
//!
//! ## Determinism
//!
//! Every grid cell derives its seeds purely from its indices: cell
//! `(trial, multiplier i)` draws demands with
//! `job_seed(seed, trial · M + i)` and plans routes with
//! `job_seed(seed ⊕ PLAN_STREAM, trial)`. No cell reads another cell's RNG,
//! so the estimate is bit-identical for any worker count (`jobs = 1` and
//! `jobs = 16` agree exactly — see `tests/determinism.rs`).
//!
//! Sharing one *plan* seed across a trial's multipliers is also what makes
//! the [`PlanCache`] effective: the growing batches of a trial reuse the
//! same BFS trees, so the cache serves every tree after the smallest batch
//! has populated it.

use std::sync::Arc;

use fcn_exec::{job_seed, Pool};
use fcn_multigraph::Traffic;
use fcn_routing::{
    measure_rate_ctx, Backend, CompiledNet, PlanCache, RateSample, RouteCtx, RouterConfig, Strategy,
};
use fcn_topology::Machine;
use serde::{Deserialize, Serialize};

/// Domain separator for the plan-seed stream (vs the demand-seed stream).
/// Shared with [`crate::degraded`] so a zero-fault degraded sweep reproduces
/// the estimator's cells bit-for-bit.
pub(crate) const PLAN_STREAM: u64 = 0x9_1a7e_5eed;

/// Configuration for operational bandwidth estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthEstimator {
    /// Batch sizes as multiples of the traffic population `n`.
    pub multipliers: Vec<usize>,
    /// Routing strategy.
    pub strategy: Strategy,
    /// Router configuration (discipline, tick budget).
    pub router: RouterConfig,
    /// Independent trials (different seeds).
    pub trials: usize,
    /// Base seed; grid cells derive their seeds from it by index.
    pub seed: u64,
    /// Worker threads for the `trials × multipliers` grid: `1` is
    /// sequential (the default), `0` means one per hardware thread. The
    /// estimate is bit-identical for every value.
    pub jobs: usize,
    /// Router shard count for each cell's tick loop: `1` (the default) is
    /// the sequential engine, `K ≥ 2` runs the deterministic sharded
    /// router. The estimate is bit-identical for every value.
    pub shards: usize,
    /// Router backend for each cell ([`Backend::Tick`] by default). The
    /// estimate is bit-identical for every backend; [`Backend::Events`] is
    /// the cheap choice when cells spend most of their ticks idle (fault
    /// outage windows, drain tails).
    pub backend: Backend,
}

impl Default for BandwidthEstimator {
    fn default() -> Self {
        BandwidthEstimator {
            multipliers: vec![2, 4, 8],
            strategy: Strategy::ShortestPath,
            router: RouterConfig::default(),
            trials: 3,
            seed: 0xbead,
            jobs: 1,
            shards: 1,
            backend: Backend::Tick,
        }
    }
}

/// Result of operational estimation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthEstimate {
    /// Best completed plateau rate across trials — the β̂ sample.
    pub rate: f64,
    /// Mean of per-trial plateau rates (spread indicator).
    pub mean_rate: f64,
    /// All samples from all trials (trial-major, multiplier-minor order).
    pub samples: Vec<RateSample>,
    /// Number of trials whose sweeps all completed.
    pub complete_trials: usize,
}

impl BandwidthEstimator {
    /// Estimate the delivery rate of `machine` under `traffic`.
    pub fn estimate(&self, machine: &Machine, traffic: &Traffic) -> BandwidthEstimate {
        self.estimate_with_cache(machine, traffic, &PlanCache::default())
    }

    /// [`BandwidthEstimator::estimate`] with a caller-owned [`PlanCache`],
    /// so the caller can inspect hit/miss counters afterwards (`fcnemu beta
    /// --verbose`). The cache is bit-transparent: results are identical to
    /// [`BandwidthEstimator::estimate`].
    pub fn estimate_with_cache(
        &self,
        machine: &Machine,
        traffic: &Traffic,
        cache: &PlanCache,
    ) -> BandwidthEstimate {
        self.estimate_compiled(machine, &CompiledNet::shared(machine), traffic, cache)
    }

    /// The estimator's core: run the `trials × multipliers` grid over an
    /// already-compiled net (shared across all cells and, via `Arc`, with
    /// any sibling estimates the caller runs on the same machine).
    pub fn estimate_compiled(
        &self,
        machine: &Machine,
        net: &Arc<CompiledNet>,
        traffic: &Traffic,
        cache: &PlanCache,
    ) -> BandwidthEstimate {
        assert!(self.trials >= 1 && !self.multipliers.is_empty());
        let _span = fcn_telemetry::Span::enter(fcn_telemetry::names::SPAN_BANDWIDTH_ESTIMATE);
        let n = traffic.n();
        let m_len = self.multipliers.len();
        let cells = self.trials * m_len;
        let pool = Pool::new(self.jobs);
        let ctx = RouteCtx::from_net(machine, net.clone())
            .with_cache(cache)
            .with_shards(self.shards)
            .with_backend(self.backend);
        let samples: Vec<RateSample> = pool.run(cells, |cell| {
            let trial = cell / m_len;
            let mi = cell % m_len;
            let messages = (self.multipliers[mi] * n).max(1);
            measure_rate_ctx(
                &ctx,
                traffic,
                messages,
                self.strategy,
                self.router,
                job_seed(self.seed, cell as u64),
                job_seed(self.seed ^ PLAN_STREAM, trial as u64),
            )
        });

        let mut plateaus = Vec::new();
        let mut complete_trials = 0;
        for trial in samples.chunks(m_len) {
            if trial.iter().all(|s| s.completed) {
                complete_trials += 1;
            }
            if let Some(p) = fcn_routing::plateau_rate(trial) {
                plateaus.push(p);
            }
        }
        if fcn_telemetry::global().enabled() {
            self.publish(&samples, complete_trials as u64);
        }
        assert!(
            !plateaus.is_empty(),
            "no trial completed within the tick budget; raise router.max_ticks"
        );
        let rate = plateaus.iter().cloned().fold(0.0, f64::max);
        let mean_rate = plateaus.iter().sum::<f64>() / plateaus.len() as f64;
        BandwidthEstimate {
            rate,
            mean_rate,
            samples,
            complete_trials,
        }
    }

    /// Push one estimate's metrics into this thread's telemetry shard.
    ///
    /// `bandwidth_saturation_ticks_total` sums the ticks every grid cell
    /// spent reaching saturation (the cost of plateau detection), and the
    /// `bandwidth_cell_ticks` histogram shows their spread — together the
    /// resource-centric view of what a β̂ sample costs.
    fn publish(&self, samples: &[RateSample], complete_trials: u64) {
        let cell_ticks: u64 = samples.iter().map(|s| s.ticks).sum();
        fcn_telemetry::with_shard(|s| {
            s.inc(fcn_telemetry::names::BANDWIDTH_ESTIMATES_TOTAL);
            s.add(
                fcn_telemetry::names::BANDWIDTH_TRIALS_TOTAL,
                self.trials as u64,
            );
            s.add(
                fcn_telemetry::names::BANDWIDTH_COMPLETE_TRIALS_TOTAL,
                complete_trials,
            );
            s.add(
                fcn_telemetry::names::BANDWIDTH_CELLS_TOTAL,
                samples.len() as u64,
            );
            s.add(
                fcn_telemetry::names::BANDWIDTH_SATURATION_TICKS_TOTAL,
                cell_ticks,
            );
            for sample in samples {
                s.record(fcn_telemetry::names::BANDWIDTH_CELL_TICKS, sample.ticks);
            }
        });
    }

    /// Estimate under the machine's own symmetric traffic — `β̂(M)`.
    pub fn estimate_symmetric(&self, machine: &Machine) -> BandwidthEstimate {
        self.estimate(machine, &machine.symmetric_traffic())
    }

    /// This estimator with a different worker count (builder-style).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// This estimator with a different router shard count (builder-style).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// This estimator with a different router backend (builder-style).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcn_topology::Machine;

    fn quick() -> BandwidthEstimator {
        BandwidthEstimator {
            multipliers: vec![2, 4],
            trials: 2,
            ..Default::default()
        }
    }

    #[test]
    fn estimates_are_positive_and_complete() {
        let m = Machine::mesh(2, 8);
        let est = quick().estimate_symmetric(&m);
        assert!(est.rate > 0.0);
        assert!(est.complete_trials == 2);
        assert_eq!(est.samples.len(), 4);
        assert!(est.mean_rate <= est.rate + 1e-12);
    }

    #[test]
    fn mesh_estimate_tracks_sqrt_n() {
        let e8 = quick().estimate_symmetric(&Machine::mesh(2, 8)).rate;
        let e16 = quick().estimate_symmetric(&Machine::mesh(2, 16)).rate;
        let ratio = e16 / e8;
        assert!(ratio > 1.3 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn trials_are_deterministic_for_fixed_seed() {
        let m = Machine::de_bruijn(4);
        let a = quick().estimate_symmetric(&m);
        let b = quick().estimate_symmetric(&m);
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.samples.len(), b.samples.len());
    }

    #[test]
    fn parallel_estimate_matches_sequential() {
        let m = Machine::mesh(2, 8);
        let seq = quick().estimate_symmetric(&m);
        for jobs in [2, 4, 0] {
            let par = quick().with_jobs(jobs).estimate_symmetric(&m);
            assert_eq!(par.rate, seq.rate, "jobs={jobs}");
            assert_eq!(par.samples, seq.samples, "jobs={jobs}");
            assert_eq!(par.complete_trials, seq.complete_trials);
        }
    }

    #[test]
    fn sharded_estimate_matches_sequential() {
        let m = Machine::mesh(2, 8);
        let seq = quick().estimate_symmetric(&m);
        for shards in [2, 4] {
            let sh = quick().with_shards(shards).estimate_symmetric(&m);
            assert_eq!(sh.rate, seq.rate, "shards={shards}");
            assert_eq!(sh.samples, seq.samples, "shards={shards}");
            assert_eq!(sh.complete_trials, seq.complete_trials);
        }
    }

    #[test]
    fn event_backend_estimate_matches_tick() {
        let m = Machine::mesh(2, 8);
        let tick = quick().estimate_symmetric(&m);
        let events = quick().with_backend(Backend::Events).estimate_symmetric(&m);
        assert_eq!(events.rate, tick.rate);
        assert_eq!(events.samples, tick.samples);
        assert_eq!(events.complete_trials, tick.complete_trials);
    }

    #[test]
    fn bus_saturates_at_unit_rate() {
        let est = quick().estimate_symmetric(&Machine::global_bus(16));
        assert!(est.rate <= 1.05, "bus rate {}", est.rate);
    }
}
