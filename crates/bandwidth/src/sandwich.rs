//! The bandwidth sandwich: measured lower estimate vs certified flux upper
//! bound vs analytic Θ-form.
//!
//! The paper proves its Θ entries with an explicit-embedding lower bound and
//! a flux upper bound; we do the same at finite sizes. A
//! [`BandwidthSandwich`] per (machine, size) is the data row behind the
//! Table 4 reproduction, and [`sweep_family`] collects rows across sizes for
//! exponent fitting.

use fcn_asymptotics::fit::{classify_growth, classify_growth_offset, table4_candidates};
use fcn_asymptotics::{fit_power_log, Asym, PowerLogFit};
use fcn_exec::{job_seed, Pool};
use fcn_multigraph::Traffic;
use fcn_topology::{Family, Machine};
use serde::{Deserialize, Serialize};

use crate::flux::{flux_upper_bound, FluxBound};
use crate::operational::{BandwidthEstimate, BandwidthEstimator};

/// One machine-size data point of the Table 4 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BandwidthSandwich {
    /// Machine instance name, e.g. `mesh2(8x8)`.
    pub machine: String,
    /// Family key, e.g. `mesh2`.
    pub family: String,
    /// Processor count.
    pub n: usize,
    /// Measured delivery rate (achievable ⇒ lower estimate of β).
    pub measured: f64,
    /// Certified flux upper bound.
    pub flux_bound: f64,
    /// Analytic Θ-form evaluated at `n` (unit constant).
    pub analytic: f64,
    /// Diameter (λ-side check).
    pub diameter: u32,
    /// Mean pairwise distance.
    pub avg_distance: f64,
}

/// Measure one machine completely.
pub fn sandwich(machine: &Machine, estimator: &BandwidthEstimator, seed: u64) -> BandwidthSandwich {
    let traffic: Traffic = machine.symmetric_traffic();
    let est: BandwidthEstimate = estimator.estimate(machine, &traffic);
    let flux: FluxBound = flux_upper_bound(machine, &traffic, seed, 4, 2);
    let mut srng = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    };
    let dstats = fcn_multigraph::distance_stats(machine.graph(), 2048, 16, &mut srng);
    BandwidthSandwich {
        machine: machine.name().to_string(),
        family: machine.family().id(),
        n: machine.processors(),
        measured: est.rate,
        flux_bound: flux.rate_bound,
        analytic: machine.beta_at_size(),
        diameter: dstats.diameter,
        avg_distance: dstats.avg_distance,
    }
}

/// Sweep a family across target sizes and fit the measured-β exponents.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilySweep {
    /// Family key, e.g. `mesh2`.
    pub family: String,
    /// One sandwich row per measured machine size.
    pub rows: Vec<BandwidthSandwich>,
    /// Log-log fit of measured rate vs n (free exponents; informational).
    pub beta_fit: PowerLogFit,
    /// Best-fitting Table 4 class for the measured rates, with its RMS
    /// residual in lg units. This is the robust classification: exponent
    /// decomposition over narrow size ranges is ill-conditioned, so we score
    /// the discrete hypotheses instead.
    pub beta_class: Asym,
    /// RMS residual (lg units) of `beta_class`.
    pub beta_class_residual: f64,
    /// Best-fitting class for the certified flux upper bounds. Flux bounds
    /// are deterministic (cut capacities), so this column is noise-free and
    /// resolves class calls the measured series leaves ambiguous (e.g.
    /// n/lg n vs n^(3/4), which differ by < 13% below n ≈ 4096).
    pub flux_class: Asym,
    /// RMS residual (lg units) of `flux_class`.
    pub flux_class_residual: f64,
    /// Best-fitting class for the measured diameters (the λ side).
    pub lambda_class: Asym,
    /// RMS residual (lg units) of `lambda_class`.
    pub lambda_class_residual: f64,
    /// Log-log fit of measured diameter vs n (free; informational).
    pub lambda_fit: PowerLogFit,
}

/// Run the sweep. `targets` are processor-count targets (the registry picks
/// the closest legal instance; duplicate instances are dropped).
pub fn sweep_family(
    family: Family,
    targets: &[usize],
    estimator: &BandwidthEstimator,
    seed: u64,
) -> FamilySweep {
    // Build first (fast, and dedups sizes deterministically)...
    let mut machines: Vec<(usize, Machine)> = Vec::new();
    for (i, &t) in targets.iter().enumerate() {
        let machine = family.build_near(t, seed.wrapping_add(i as u64));
        if machines
            .iter()
            .any(|(_, m)| m.processors() == machine.processors())
        {
            continue; // duplicate legal size
        }
        machines.push((i, machine));
    }
    // ... then measure the `(family, size)` cells in parallel: each
    // sandwich is independent and the largest sizes dominate the wall
    // clock. The *outer* pool takes the estimator's worker budget; the
    // inner estimates run sequentially so parallelism never nests (seeds
    // are index-pure either way, so this only shapes the thread tree, not
    // the numbers).
    let pool = Pool::new(estimator.jobs);
    let inner = estimator.clone().with_jobs(1);
    let mut rows: Vec<BandwidthSandwich> = pool.run(machines.len(), |k| {
        let (i, machine) = &machines[k];
        sandwich(machine, &inner, job_seed(seed ^ 0x5eed_5a9d, *i as u64))
    });
    rows.sort_by_key(|r| r.n);
    assert!(rows.len() >= 2, "need at least two distinct sizes to fit");
    let beta_samples: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.n as f64, r.measured.max(1e-9)))
        .collect();
    // λ classification uses the mean pairwise distance: it is Θ(diameter)
    // for every Table 4 family but varies smoothly with size, whereas the
    // diameter is a step function whose rounding confuses the classifier
    // over narrow ranges.
    let lambda_samples: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.n as f64, r.avg_distance.max(1.0)))
        .collect();
    let flux_samples: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| (r.n as f64, r.flux_bound.max(1e-9)))
        .collect();
    let candidates = table4_candidates();
    let (beta_class, beta_class_residual) = classify_growth(&beta_samples, &candidates);
    let (flux_class, flux_class_residual) = classify_growth_offset(&flux_samples, &candidates);
    let (lambda_class, lambda_class_residual) =
        classify_growth_offset(&lambda_samples, &candidates);
    FamilySweep {
        family: family.id(),
        beta_fit: fit_power_log(&beta_samples),
        beta_class,
        beta_class_residual,
        flux_class,
        flux_class_residual,
        lambda_class,
        lambda_class_residual,
        lambda_fit: fit_power_log(&lambda_samples),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BandwidthEstimator {
        BandwidthEstimator {
            multipliers: vec![2, 4],
            trials: 2,
            ..Default::default()
        }
    }

    #[test]
    fn sandwich_orders_hold() {
        // measured <= flux bound (soundness of both sides).
        for m in [Machine::mesh(2, 8), Machine::tree(5), Machine::butterfly(3)] {
            let s = sandwich(&m, &quick(), 3);
            assert!(
                s.measured <= s.flux_bound + 1e-9,
                "{}: {} > {}",
                s.machine,
                s.measured,
                s.flux_bound
            );
            assert!(s.diameter > 0);
        }
    }

    #[test]
    fn sweep_classifies_mesh_as_sqrt_n() {
        use fcn_asymptotics::Rational;
        let sweep = sweep_family(Family::Mesh(2), &[64, 144, 256, 576, 1024], &quick(), 9);
        assert!(sweep.rows.len() >= 4);
        // β ~ n^{1/2} and λ ~ n^{1/2} are the winning Table 4 classes.
        assert_eq!(
            sweep.beta_class.pow_n,
            Rational::new(1, 2),
            "{:?}",
            sweep.beta_class
        );
        assert!(sweep.beta_class.pow_lg.is_zero());
        assert_eq!(sweep.lambda_class.pow_n, Rational::new(1, 2));
    }

    #[test]
    fn sweep_dedupes_equal_sizes() {
        let sweep = sweep_family(Family::Tree, &[60, 63, 64, 255], &quick(), 4);
        let mut ns: Vec<usize> = sweep.rows.iter().map(|r| r.n).collect();
        let before = ns.len();
        ns.dedup();
        assert_eq!(ns.len(), before);
    }
}
