//! Ablation E-X5: batch vs steady-state bandwidth estimation.
//!
//! The paper's β is a limit (`m → ∞` delivery rate). We approximate it two
//! ways — growing finite batches, and open-loop injection ramped to
//! saturation — and check the two estimators agree within constants across
//! machine families.

use fcn_bandwidth::BandwidthEstimator;
use fcn_bench::{banner, fmt, write_records, RunOpts, Scale};
use fcn_routing::{saturation_throughput, SteadyConfig};
use fcn_topology::Family;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    family: String,
    n: usize,
    batch_rate: f64,
    steady_rate: f64,
    ratio: f64,
}

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let target = if scale == Scale::Quick { 128 } else { 256 };
    let estimator = BandwidthEstimator {
        multipliers: scale.multipliers(),
        trials: 2,
        jobs: opts.jobs,
        ..Default::default()
    };

    banner("Batch vs steady-state bandwidth estimates");
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>8}",
        "family", "n", "batch β̂", "steady β̂", "ratio"
    );
    let mut rows = Vec::new();
    for family in [
        Family::LinearArray,
        Family::Tree,
        Family::XTree,
        Family::Mesh(2),
        Family::Mesh(3),
        Family::DeBruijn,
        Family::Butterfly,
        Family::GlobalBus,
    ] {
        let machine = family.build_near(target, 0x5d);
        let t = machine.symmetric_traffic();
        let batch = estimator.estimate(&machine, &t).rate;
        let (steady, _) = saturation_throughput(&machine, &t, SteadyConfig::default());
        let ratio = steady / batch;
        println!(
            "{:<18} {:>6} {:>12} {:>12} {:>8}",
            family.id(),
            machine.processors(),
            fmt(batch),
            fmt(steady),
            fmt(ratio)
        );
        rows.push(Row {
            family: family.id(),
            n: machine.processors(),
            batch_rate: batch,
            steady_rate: steady,
            ratio,
        });
    }
    println!("\nagreement within a small constant validates both estimators.");
    let path = write_records("ablation_steady", &rows).expect("write records");
    println!("records: {}", path.display());
}
