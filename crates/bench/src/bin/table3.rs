//! Regenerate Table 3: maximum host sizes for efficient emulation of
//! Butterflies, de Bruijn graphs, CCCs, Shuffle-Exchanges,
//! Multibutterflies, Expanders, and Weak Hypercubes.

use fcn_bench::{banner, write_records};
use fcn_core::{generate_table, table3_spec};

fn main() {
    let opts = fcn_bench::RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let table = generate_table(table3_spec(&[1, 2, 3]), &scale.table_guest_sizes());
    banner("Table 3 (symbolic cells re-derived from the Efficient Emulation Theorem)");
    print!("{}", table.render());
    banner("spot check: the introduction's example");
    for cell in &table.cells {
        if cell.guest == "de_bruijn" && cell.host == "mesh2" {
            println!(
                "de Bruijn on 2-d mesh: {} (paper: only meshes of size O(lg² n) \
                 can efficiently emulate a de Bruijn graph)",
                cell.bound
            );
            for (n, m) in &cell.samples {
                let lg = (*n as f64).log2();
                println!(
                    "  n=2^{:<2} -> m*={:<8.1} lg²n={:<8.1} ratio={:.2}",
                    lg as u32,
                    m,
                    lg * lg,
                    m / (lg * lg)
                );
            }
        }
    }
    let path = write_records("table3", &table.cells).expect("write records");
    println!("\nrecords: {}", path.display());
}
