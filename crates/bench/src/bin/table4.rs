//! Regenerate Table 4: β and λ for every machine family.
//!
//! For each family, sweeps sizes, measures the delivery rate under
//! symmetric traffic (operational β), the flux upper bound, and the
//! diameter (λ side), then classifies the measured series into the
//! best-fitting Table 4 growth class. Prints paper-vs-measured rows and
//! writes `target/repro/table4.jsonl`.

use fcn_bandwidth::{sweep_family, BandwidthEstimator, FamilySweep};
use fcn_bench::{banner, fmt, write_records, RunOpts};
use fcn_topology::Family;

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let estimator = BandwidthEstimator {
        multipliers: scale.multipliers(),
        trials: scale.trials(),
        jobs: opts.jobs,
        ..Default::default()
    };
    let targets = scale.sweep_targets();

    banner("Table 4: β and λ per machine family (paper vs measured vs flux-certified)");
    println!(
        "{:<18} {:>16} {:>16} {:>8} {:>14} {:>12} {:>12} {:>8}",
        "family", "paper β", "measured β̂", "rms", "flux class", "paper λ", "measured λ̂", "rms"
    );

    let mut sweeps: Vec<FamilySweep> = Vec::new();
    for family in Family::all_with_dims(&[1, 2, 3]) {
        let sweep = sweep_family(family, &targets, &estimator, 0x7ab1e4);
        println!(
            "{:<18} {:>16} {:>16} {:>8} {:>14} {:>12} {:>12} {:>8}",
            family.id(),
            family.beta().theta_string(),
            sweep.beta_class.theta_string(),
            fmt(sweep.beta_class_residual),
            sweep.flux_class.theta_string(),
            family.lambda().theta_string(),
            sweep.lambda_class.theta_string(),
            fmt(sweep.lambda_class_residual),
        );
        sweeps.push(sweep);
    }

    banner("raw rows (measured rate | flux bound | analytic | diameter)");
    for sweep in &sweeps {
        for r in &sweep.rows {
            println!(
                "{:<28} n={:<6} β̂={:<10} flux≤{:<10} Θ={:<10} diam={}",
                r.machine,
                r.n,
                fmt(r.measured),
                fmt(r.flux_bound),
                fmt(r.analytic),
                r.diameter
            );
        }
    }

    let path = write_records("table4", &sweeps).expect("write table4 records");
    println!("\nrecords: {}", path.display());
}
