//! Regenerate Figure 2: the Lemma 9 cone construction, measured.
//!
//! For a series of guests, builds the S-sets / cones / Q-sets / γ-edges
//! witness and reports the quantities the proof claims: γ ∈ K_{Θ(nt),1}
//! density, Ω(n²) cone paths per level, congestion within
//! O(max(nt², t·C(G,K_n))), and bandwidth preservation
//! β(circuit, γ) ≥ Ω(t·β(G)).

use fcn_bench::{banner, fmt, write_records, Scale};
use fcn_core::{fig2_series, Lemma9Config};
use fcn_topology::Machine;

fn main() {
    let opts = fcn_bench::RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let guests: Vec<Machine> = match scale {
        Scale::Quick => vec![
            Machine::ring(16),
            Machine::mesh(2, 5),
            Machine::de_bruijn(4),
        ],
        _ => vec![
            Machine::ring(24),
            Machine::mesh(2, 5),
            Machine::mesh(2, 8),
            Machine::de_bruijn(5),
            Machine::tree(4),
            Machine::xtree(4),
        ],
    };
    let series = fig2_series(&guests, Lemma9Config::default());

    banner("Figure 2: cone-construction witnesses (Lemma 9, measured)");
    println!(
        "{:<22} {:>5} {:>4} {:>4} {:>8} {:>10} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "guest",
        "n",
        "Λ",
        "t",
        "S-nodes",
        "cones",
        "γ-edges",
        "congest",
        "cap",
        "cong/cap",
        "preserve"
    );
    for (name, w) in &series {
        println!(
            "{:<22} {:>5} {:>4} {:>4} {:>8} {:>10} {:>12} {:>10} {:>10} {:>9} {:>9}",
            name,
            w.n,
            w.lambda,
            w.t,
            w.s_nodes,
            w.cone_paths,
            w.gamma_edges,
            w.congestion,
            w.congestion_cap,
            fmt(w.congestion_ratio()),
            fmt(w.preservation_ratio())
        );
    }
    println!(
        "\ninterpretation: cong/cap = O(1) and preserve = Ω(1) across sizes are \
         exactly Lemma 9's claims."
    );

    let records: Vec<_> = series.iter().map(|(_, w)| w.clone()).collect();
    let path = write_records("fig2", &records).expect("write records");
    println!("records: {}", path.display());
}
