//! Ablation E-X1: router design choices.
//!
//! How much do the queue discipline (FIFO / farthest-first / random-rank)
//! and the routing strategy (shortest-path vs Valiant) change the measured
//! bandwidth? The paper's Theorem 6 invokes the universal O(c + Λ) router,
//! whose scheduling idea `RandomRank` mirrors; this ablation shows the
//! measured β is robust to the choice (constants move, exponents don't).

use fcn_bench::{banner, fmt, write_records, Scale};
use fcn_routing::{measure_rate, QueueDiscipline, RouterConfig, Strategy};
use fcn_topology::Machine;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    machine: String,
    n: usize,
    discipline: String,
    strategy: String,
    rate: f64,
}

fn main() {
    let opts = fcn_bench::RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let machines: Vec<Machine> = match scale {
        Scale::Quick => vec![Machine::mesh(2, 8), Machine::de_bruijn(6)],
        _ => vec![
            Machine::mesh(2, 16),
            Machine::de_bruijn(8),
            Machine::butterfly(5),
            Machine::xtree(6),
            Machine::shuffle_exchange(8),
        ],
    };
    let disciplines = [
        QueueDiscipline::Fifo,
        QueueDiscipline::FarthestFirst,
        QueueDiscipline::RandomRank,
    ];
    let strategies = [Strategy::ShortestPath, Strategy::Valiant];

    banner("Ablation: queue discipline x routing strategy -> measured rate");
    let mut rows = Vec::new();
    for m in &machines {
        let t = m.symmetric_traffic();
        println!("\n{} (n = {}):", m.name(), m.processors());
        for d in disciplines {
            for s in strategies {
                let cfg = RouterConfig {
                    discipline: d,
                    ..Default::default()
                };
                let sample = measure_rate(m, &t, 8 * t.n(), s, cfg, 0xab1);
                assert!(sample.completed, "routing incomplete");
                println!("  {d:?} + {s:?}: rate {}", fmt(sample.rate));
                rows.push(Row {
                    machine: m.name().to_string(),
                    n: m.processors(),
                    discipline: format!("{d:?}"),
                    strategy: format!("{s:?}"),
                    rate: sample.rate,
                });
            }
        }
    }

    // Spread summary: max/min rate ratio per machine.
    banner("spread per machine (max/min over the 6 configurations)");
    for m in &machines {
        let rates: Vec<f64> = rows
            .iter()
            .filter(|r| r.machine == m.name())
            .map(|r| r.rate)
            .collect();
        let (lo, hi) = (
            rates.iter().cloned().fold(f64::MAX, f64::min),
            rates.iter().cloned().fold(0.0f64, f64::max),
        );
        println!("{:<24} spread x{}", m.name(), fmt(hi / lo));
    }

    let path = write_records("ablation_routing", &rows).expect("write records");
    println!("\nrecords: {}", path.display());
}
