//! Extension experiment E-X4: algorithm communication patterns (the
//! paper's conclusion sketch). For each classic pattern and host family,
//! record the Lemma 8 execution floor, the measured routed execution, and
//! the pattern-bandwidth sandwich.

use fcn_bench::{banner, fmt, write_records, Scale};
use fcn_core::{execute_pattern, pattern_bandwidth, CommPattern};
use fcn_routing::RouterConfig;
use fcn_topology::Machine;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    pattern: String,
    host: String,
    messages: u64,
    flux_floor: f64,
    measured_ticks: u64,
    slowdown_vs_rounds: f64,
    beta_lower: f64,
    beta_upper: f64,
}

fn main() {
    let opts = fcn_bench::RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let g = if scale == Scale::Quick { 5 } else { 6 };
    let n = 1usize << g;
    let patterns = vec![
        CommPattern::fft(g),
        CommPattern::odd_even_sort(n),
        CommPattern::stencil2d((n as f64).sqrt() as usize, 4),
        CommPattern::all_to_all(n),
        CommPattern::broadcast(n),
        CommPattern::random_permutations(n, 8, 0xa1),
    ];
    let hosts = vec![
        Machine::linear_array(n),
        Machine::mesh(2, (n as f64).sqrt().ceil() as usize),
        Machine::de_bruijn(g),
        Machine::weak_hypercube(g),
    ];

    banner("Algorithm patterns: Lemma 8 floors vs measured executions");
    let mut rows = Vec::new();
    for p in &patterns {
        println!("\n{} ({} messages):", p.name, p.message_count());
        for h in &hosts {
            if h.processors() < p.n {
                continue;
            }
            let ex = execute_pattern(p, h, RouterConfig::default(), 0xeb);
            let (lo, hi) = pattern_bandwidth(p, h, 0xeb);
            println!(
                "  {:<24} floor {:>9} measured {:>8} slowdown {:>8} β∈[{}, {}]",
                h.name(),
                fmt(ex.ticks_lower),
                ex.ticks_measured,
                fmt(ex.slowdown_vs_rounds(p.rounds)),
                fmt(lo),
                fmt(hi)
            );
            assert!(
                ex.ticks_measured as f64 + 1.0 >= ex.ticks_lower,
                "measured below certified floor!"
            );
            rows.push(Row {
                pattern: p.name.clone(),
                host: h.name().to_string(),
                messages: p.message_count(),
                flux_floor: ex.ticks_lower,
                measured_ticks: ex.ticks_measured,
                slowdown_vs_rounds: ex.slowdown_vs_rounds(p.rounds),
                beta_lower: lo,
                beta_upper: hi,
            });
        }
    }
    let path = write_records("patterns", &rows).expect("write records");
    println!("\nrecords: {}", path.display());
}
