//! Ablation E-X2: the bottleneck-freeness premise.
//!
//! The Efficient Emulation Theorem assumes the host is bottleneck-free; the
//! paper asserts (without proof) that the classical machines are. This
//! audit measures, for every family, the worst ratio of quasi-symmetric to
//! symmetric delivery rate — the empirical bottleneck constant.

use fcn_bandwidth::{audit_bottleneck_freeness, BandwidthEstimator};
use fcn_bench::{banner, fmt, write_records, RunOpts, Scale};
use fcn_topology::Family;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    family: String,
    n: usize,
    symmetric_rate: f64,
    worst_ratio: f64,
    distributions: Vec<(String, f64)>,
}

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let target = match scale {
        Scale::Quick => 128,
        Scale::Default => 256,
        Scale::Full => 512,
    };
    let estimator = BandwidthEstimator {
        multipliers: scale.multipliers(),
        trials: scale.trials(),
        jobs: opts.jobs,
        ..Default::default()
    };

    banner("Bottleneck-freeness audit (worst quasi-symmetric/symmetric ratio)");
    println!(
        "{:<18} {:>6} {:>12} {:>12}  verdict",
        "family", "n", "β̂ (sym)", "worst ratio"
    );
    let mut rows = Vec::new();
    for family in Family::all_with_dims(&[1, 2, 3]) {
        let machine = family.build_near(target, 0xb0);
        let audit = audit_bottleneck_freeness(&machine, &estimator, 0xb1);
        let verdict = if audit.is_bottleneck_free(4.0) {
            "bottleneck-free (c <= 4)"
        } else {
            "SUSPECT"
        };
        println!(
            "{:<18} {:>6} {:>12} {:>12}  {verdict}",
            family.id(),
            machine.processors(),
            fmt(audit.symmetric_rate),
            fmt(audit.worst_ratio)
        );
        rows.push(Row {
            family: family.id(),
            n: machine.processors(),
            symmetric_rate: audit.symmetric_rate,
            worst_ratio: audit.worst_ratio,
            distributions: audit.quasi_rates.clone(),
        });
    }

    let path = write_records("ablation_bottleneck", &rows).expect("write records");
    println!("\nrecords: {}", path.display());
}
