//! Run every table/figure/ablation regeneration in sequence.
//!
//! `cargo run --release -p fcn-bench --bin repro-all [-- --quick|--full]
//! [--jobs N] [--metrics-out PATH]` executes the sibling binaries as
//! subprocesses so each writes its own stdout report and
//! `target/repro/*.jsonl` records. Arguments are forwarded to every binary;
//! `--jobs` only changes the wall clock, never the records. A forwarded
//! `--metrics-out PATH` is rewritten to `PATH.<bin>` per child so each
//! binary's telemetry snapshot lands in its own file instead of the last
//! child clobbering the rest.

use std::process::Command;

/// Rewrite `--metrics-out X` / `--metrics-out=X` to point at `X.<bin>`.
fn args_for(bin: &str, args: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--metrics-out" {
            out.push(a.clone());
            if let Some(path) = it.next() {
                out.push(format!("{path}.{bin}"));
            }
        } else if let Some(path) = a.strip_prefix("--metrics-out=") {
            out.push(format!("--metrics-out={path}.{bin}"));
        } else {
            out.push(a.clone());
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table4",
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "ablation_routing",
        "ablation_bottleneck",
        "ablation_redundancy",
        "ablation_steady",
        "patterns",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n################ {bin} ################");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(args_for(bin, &args))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall reproductions completed; records under target/repro/");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
