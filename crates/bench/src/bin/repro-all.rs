//! Run every table/figure/ablation regeneration in sequence, resiliently.
//!
//! `cargo run --release -p fcn-bench --bin repro-all [-- --quick|--full]
//! [--jobs N] [--metrics-out PATH] [--timeout SECS] [--keep-going]
//! [--resume]` executes the sibling binaries as subprocesses so each writes
//! its own stdout report and `target/repro/*.jsonl` records.
//!
//! Driver flags (consumed here, never forwarded to children):
//!
//! * `--timeout SECS` — wall-clock budget per child; a child that exceeds
//!   it is killed and recorded as a failure (`timeout`);
//! * `--keep-going` — keep running the remaining binaries after a failure
//!   (the default stops at the first one so the checkpoint stays sharp);
//! * `--resume` — skip the binaries already recorded as completed in
//!   `target/repro/manifest.json` from a previous run with identical
//!   forwarded arguments.
//!
//! All other arguments are forwarded to every binary; `--jobs` only changes
//! the wall clock, never the records. A forwarded `--metrics-out PATH` is
//! rewritten to `PATH.<bin>` per child so each binary's telemetry snapshot
//! lands in its own file instead of the last child clobbering the rest.
//!
//! The checkpoint manifest is rewritten after every completed child, so a
//! mid-run kill (Ctrl-C, OOM, timeout of the driver itself) loses at most
//! the child that was running. Exit codes: 0 all completed, 1 some child
//! failed, 2 driver usage or I/O error.

use std::process::Command;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Manifest format version; a mismatch (or different forwarded arguments)
/// invalidates the checkpoint rather than resuming a different experiment.
const MANIFEST_SCHEMA: &str = "fcn-repro-manifest/1";

/// The checkpoint written to `target/repro/manifest.json` after each child.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Manifest {
    schema: String,
    /// Arguments forwarded to the children (a resume with different
    /// arguments must start fresh — the records would not be comparable).
    args: Vec<String>,
    /// Binaries that have already completed successfully, in run order.
    completed: Vec<String>,
}

/// Driver options (consumed) + the argument list forwarded to children.
#[derive(Debug, Default)]
struct DriverOpts {
    timeout: Option<Duration>,
    keep_going: bool,
    resume: bool,
    forwarded: Vec<String>,
}

fn parse_driver_args<I: IntoIterator<Item = String>>(args: I) -> Result<DriverOpts, String> {
    let mut opts = DriverOpts::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--keep-going" => opts.keep_going = true,
            "--resume" => opts.resume = true,
            "--timeout" => {
                let v = it.next().ok_or("--timeout expects seconds")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("--timeout: {v:?} is not a number of seconds"))?;
                opts.timeout = Some(Duration::from_secs(secs));
            }
            other => {
                if let Some(v) = other.strip_prefix("--timeout=") {
                    let secs: u64 = v
                        .parse()
                        .map_err(|_| format!("--timeout: {v:?} is not a number of seconds"))?;
                    opts.timeout = Some(Duration::from_secs(secs));
                } else {
                    opts.forwarded.push(a);
                }
            }
        }
    }
    Ok(opts)
}

/// Rewrite `--metrics-out X` / `--metrics-out=X` to point at `X.<bin>`.
fn args_for(bin: &str, args: &[String]) -> Vec<String> {
    let mut out = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--metrics-out" {
            out.push(a.clone());
            if let Some(path) = it.next() {
                out.push(format!("{path}.{bin}"));
            }
        } else if let Some(path) = a.strip_prefix("--metrics-out=") {
            out.push(format!("--metrics-out={path}.{bin}"));
        } else {
            out.push(a.clone());
        }
    }
    out
}

/// How one child run ended.
enum ChildOutcome {
    Completed,
    Failed(Option<i32>),
    TimedOut,
}

/// Launch one child and wait for it, enforcing the optional wall-clock
/// budget by polling (`try_wait`) so the driver can kill a stuck child.
fn run_child(
    path: &std::path::Path,
    args: &[String],
    timeout: Option<Duration>,
) -> Result<ChildOutcome, String> {
    let mut child = Command::new(path)
        .args(args)
        .spawn()
        .map_err(|e| format!("failed to launch {}: {e}", path.display()))?;
    let Some(budget) = timeout else {
        let status = child
            .wait()
            .map_err(|e| format!("failed to wait for {}: {e}", path.display()))?;
        return Ok(if status.success() {
            ChildOutcome::Completed
        } else {
            ChildOutcome::Failed(status.code())
        });
    };
    // Wall clock allowed: child-process budget enforcement in the
    // orchestrator binary; no simulated quantity depends on it.
    #[allow(clippy::disallowed_methods)]
    let start = Instant::now();
    loop {
        match child
            .try_wait()
            .map_err(|e| format!("failed to poll {}: {e}", path.display()))?
        {
            Some(status) => {
                return Ok(if status.success() {
                    ChildOutcome::Completed
                } else {
                    ChildOutcome::Failed(status.code())
                });
            }
            None if start.elapsed() >= budget => {
                // Budget exhausted: kill and reap, then report the timeout.
                let _ = child.kill();
                let _ = child.wait();
                return Ok(ChildOutcome::TimedOut);
            }
            // Poll interval for child reaping; orchestration only.
            #[allow(clippy::disallowed_methods)]
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn write_manifest(path: &std::path::Path, manifest: &Manifest) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    let body = serde_json::to_string(manifest).map_err(|e| format!("manifest serializes: {e}"))?;
    std::fs::write(path, body).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Load the resumable checkpoint, if it matches this run's arguments.
fn resumable_completed(path: &std::path::Path, forwarded: &[String]) -> Vec<String> {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(_) => {
            eprintln!(
                "--resume: no checkpoint at {}; starting fresh",
                path.display()
            );
            return Vec::new();
        }
    };
    match serde_json::from_str::<Manifest>(&body) {
        Ok(m) if m.schema == MANIFEST_SCHEMA && m.args == forwarded => {
            println!(
                "resuming: {} binaries already completed ({})",
                m.completed.len(),
                m.completed.join(", ")
            );
            m.completed
        }
        Ok(m) if m.schema != MANIFEST_SCHEMA => {
            eprintln!(
                "--resume: checkpoint schema {:?} does not match {MANIFEST_SCHEMA:?}; \
                 starting fresh",
                m.schema
            );
            Vec::new()
        }
        Ok(_) => {
            eprintln!("--resume: checkpoint was written with different arguments; starting fresh");
            Vec::new()
        }
        Err(e) => {
            eprintln!(
                "--resume: cannot parse checkpoint {}: {e}; starting fresh",
                path.display()
            );
            Vec::new()
        }
    }
}

fn run() -> i32 {
    let opts = match parse_driver_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let bins = [
        "table4",
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "ablation_routing",
        "ablation_bottleneck",
        "ablation_redundancy",
        "ablation_steady",
        "patterns",
        "faults",
    ];
    let me = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot resolve current exe path: {e}");
            return 2;
        }
    };
    let Some(dir) = me.parent().map(std::path::Path::to_path_buf) else {
        eprintln!(
            "error: current exe {} has no parent directory",
            me.display()
        );
        return 2;
    };

    let manifest_path = fcn_bench::repro_dir().join("manifest.json");
    let completed = if opts.resume {
        resumable_completed(&manifest_path, &opts.forwarded)
    } else {
        Vec::new()
    };
    let mut manifest = Manifest {
        schema: MANIFEST_SCHEMA.to_string(),
        args: opts.forwarded.clone(),
        completed,
    };
    if let Err(e) = write_manifest(&manifest_path, &manifest) {
        eprintln!("error: {e}");
        return 2;
    }

    let mut failures: Vec<String> = Vec::new();
    for bin in bins {
        if manifest.completed.iter().any(|b| b == bin) {
            println!("\n################ {bin} (checkpointed, skipping) ################");
            continue;
        }
        println!("\n################ {bin} ################");
        let path = dir.join(bin);
        match run_child(&path, &args_for(bin, &opts.forwarded), opts.timeout) {
            Ok(ChildOutcome::Completed) => {
                manifest.completed.push(bin.to_string());
                if let Err(e) = write_manifest(&manifest_path, &manifest) {
                    eprintln!("error: {e}");
                    return 2;
                }
            }
            Ok(ChildOutcome::Failed(code)) => {
                eprintln!("{bin}: exited with status {code:?}");
                failures.push(bin.to_string());
                if !opts.keep_going {
                    break;
                }
            }
            Ok(ChildOutcome::TimedOut) => {
                eprintln!(
                    "{bin}: killed after exceeding --timeout {}s",
                    opts.timeout.map(|t| t.as_secs()).unwrap_or(0)
                );
                failures.push(format!("{bin} (timeout)"));
                if !opts.keep_going {
                    break;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    }
    if failures.is_empty() {
        println!("\nall reproductions completed; records under target/repro/");
        0
    } else {
        eprintln!(
            "\nFAILED: {failures:?}\ncheckpoint: {} (rerun with --resume to continue \
             from the last completed binary)",
            manifest_path.display()
        );
        1
    }
}

fn main() {
    std::process::exit(run());
}
