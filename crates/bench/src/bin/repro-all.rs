//! Run every table/figure/ablation regeneration in sequence.
//!
//! `cargo run --release -p fcn-bench --bin repro-all [-- --quick|--full]
//! [--jobs N]` executes the sibling binaries as subprocesses so each writes
//! its own stdout report and `target/repro/*.jsonl` records. All arguments
//! (including `--jobs`) are forwarded verbatim to every binary; `--jobs`
//! only changes the wall clock, never the records.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "table4",
        "table1",
        "table2",
        "table3",
        "fig1",
        "fig2",
        "ablation_routing",
        "ablation_bottleneck",
        "ablation_redundancy",
        "ablation_steady",
        "patterns",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    let mut failures = Vec::new();
    for bin in bins {
        println!("\n################ {bin} ################");
        let path = dir.join(bin);
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall reproductions completed; records under target/repro/");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
