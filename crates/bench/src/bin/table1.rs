//! Regenerate Table 1: maximum host sizes for efficient emulation of
//! j-dimensional Meshes, Tori, and X-Grids.

use fcn_bench::{banner, write_records};
use fcn_core::{generate_table, table1_spec};

fn main() {
    let opts = fcn_bench::RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let scale = opts.scale;
    let table = generate_table(table1_spec(&[1, 2, 3]), &scale.table_guest_sizes());
    banner("Table 1 (symbolic cells re-derived from the Efficient Emulation Theorem)");
    print!("{}", table.render());
    banner("numeric crossovers (guest size -> max host size)");
    for cell in &table.cells {
        let samples: Vec<String> = cell
            .samples
            .iter()
            .map(|(n, m)| format!("n=2^{} -> m*={:.1}", (*n as f64).log2() as u32, m))
            .collect();
        println!(
            "{:<12} on {:<16} {:<18} {}",
            cell.guest,
            cell.host,
            cell.bound,
            samples.join("  ")
        );
    }
    let path = write_records("table1", &table.cells).expect("write records");
    println!("\nrecords: {}", path.display());
}
