//! `perfbench` — the repo's performance trajectory, in one tier-1-friendly
//! binary.
//!
//! Times the hot paths that dominate every table regeneration — the tick
//! simulator (both the retained pre-compilation reference and the
//! compile-once/run-many pipeline), the operational estimator grid, and the
//! route planner — and records `{bench, machine, n, median_ms, rate}` rows
//! so speedups and regressions are visible across PRs (schema in
//! EXPERIMENTS.md).
//!
//! * default: saturation scale (mesh2(64), 8n packets), writes
//!   `BENCH_router.json` at the repo root — the committed trajectory;
//! * `--quick`: CI smoke scale, writes `target/BENCH_router.quick.json`
//!   so a smoke run never clobbers the committed numbers.

use std::time::Instant;

use fcn_bandwidth::BandwidthEstimator;
use fcn_bench::{banner, fmt, RunOpts, Scale};
use fcn_routing::engine::reference;
use fcn_routing::{
    plan_routes, route_compiled, CompiledNet, PacketBatch, RouterConfig, RouterScratch, Strategy,
};
use fcn_topology::Machine;
use serde::Serialize;

/// One recorded measurement (see EXPERIMENTS.md for the schema).
#[derive(Debug, Serialize)]
struct Row {
    /// Benchmark id (`route_reference`, `route_compiled`, `estimator_grid`,
    /// `planner`).
    bench: String,
    /// Machine the benchmark ran on.
    machine: String,
    /// Processor count of that machine.
    n: usize,
    /// Median wall time of the repetitions, in milliseconds.
    median_ms: f64,
    /// Bench-specific throughput: delivery rate (router benches), β̂
    /// (estimator), or packets planned per millisecond (planner).
    rate: f64,
}

/// Median of `reps` wall-clock samples of `f`, plus `f`'s last return value.
fn timed(reps: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut rate = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        rate = f();
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], rate)
}

fn main() {
    let opts = RunOpts::from_args();
    let quick = opts.scale == Scale::Quick;
    let (side, reps) = if quick { (16, 3) } else { (64, 5) };
    let machine = Machine::mesh(2, side);
    let n = machine.processors();
    let traffic = machine.symmetric_traffic();

    banner(&format!(
        "perfbench: {} (n = {n}), {reps} reps{}",
        machine.name(),
        if quick { ", quick" } else { "" }
    ));

    // Saturation-scale batch shared by both router benches (8n packets, the
    // largest multiplier of the default estimator sweep).
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbe7c);
    let demands: Vec<_> = (0..8 * traffic.n())
        .map(|_| traffic.sample(&mut rng))
        .collect();
    let routes = plan_routes(&machine, &demands, Strategy::ShortestPath, 42);
    let cfg = RouterConfig::default();
    let mut rows = Vec::new();

    // Before: the retained pre-compilation simulator, rebuilding every wire
    // array and re-deriving every hop per call (the clone it needs to
    // consume its input happens outside the timer).
    let (ref_ms, ref_rate) = timed(reps, || {
        let out = reference::route_batch(&machine, routes.clone(), cfg);
        assert!(out.completed);
        out.rate()
    });
    println!(
        "route_reference : {:>9} ms   rate {}",
        fmt(ref_ms),
        fmt(ref_rate)
    );
    rows.push(Row {
        bench: "route_reference".into(),
        machine: machine.name().to_string(),
        n,
        median_ms: ref_ms,
        rate: ref_rate,
    });

    // After: compile once, route many — the path every sweep now takes.
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &routes).expect("planner paths are walks");
    let mut scratch = RouterScratch::new();
    let (cmp_ms, cmp_rate) = timed(reps, || {
        let out = route_compiled(&net, &batch, cfg, &mut scratch);
        assert!(out.completed);
        out.rate()
    });
    println!(
        "route_compiled  : {:>9} ms   rate {}",
        fmt(cmp_ms),
        fmt(cmp_rate)
    );
    rows.push(Row {
        bench: "route_compiled".into(),
        machine: machine.name().to_string(),
        n,
        median_ms: cmp_ms,
        rate: cmp_rate,
    });
    assert_eq!(
        ref_rate, cmp_rate,
        "the rewrite must not change a single bit"
    );
    println!(
        "speedup         : {:.2}x (reference / compiled)",
        ref_ms / cmp_ms
    );

    // The estimator's full trials × multipliers grid — the workload the
    // tables actually pay for.
    let est = BandwidthEstimator {
        multipliers: if quick { vec![2, 4] } else { vec![2, 4, 8] },
        trials: 2,
        seed: 0xbead,
        ..Default::default()
    };
    let (est_ms, est_rate) = timed(reps.min(3), || est.estimate(&machine, &traffic).rate);
    println!(
        "estimator_grid  : {:>9} ms   β̂   {}",
        fmt(est_ms),
        fmt(est_rate)
    );
    rows.push(Row {
        bench: "estimator_grid".into(),
        machine: machine.name().to_string(),
        n,
        median_ms: est_ms,
        rate: est_rate,
    });

    // Planner throughput (BFS shortest paths), packets per millisecond.
    let (plan_ms, planned) = timed(reps, || {
        plan_routes(&machine, &demands, Strategy::ShortestPath, 42).len() as f64
    });
    println!(
        "planner         : {:>9} ms   {} packets/ms",
        fmt(plan_ms),
        fmt(planned / plan_ms)
    );
    rows.push(Row {
        bench: "planner".into(),
        machine: machine.name().to_string(),
        n,
        median_ms: plan_ms,
        rate: planned / plan_ms,
    });

    let path = if quick {
        let dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        dir.join("BENCH_router.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_router.json")
    };
    let mut out = String::new();
    for r in &rows {
        out.push_str(&serde_json::to_string(r).expect("row serializes"));
        out.push('\n');
    }
    std::fs::write(&path, out).expect("write bench rows");
    println!("\nwrote {} rows to {}", rows.len(), path.display());
}
