//! `perfbench` — the repo's performance trajectory, in one tier-1-friendly
//! binary.
//!
//! Times the hot paths that dominate every table regeneration — the tick
//! simulator (both the retained pre-compilation reference and the
//! compile-once/run-many pipeline), the operational estimator grid, and the
//! route planner — and records `{bench, machine, n, median_ms, rate}` rows
//! so speedups and regressions are visible across PRs (schema in
//! EXPERIMENTS.md).
//!
//! * default: saturation scale (mesh2(64), 8n packets), writes
//!   `BENCH_router.json` at the repo root — the committed trajectory;
//! * `--quick`: CI smoke scale, writes `target/BENCH_router.quick.json`
//!   so a smoke run never clobbers the committed numbers.

use std::time::Instant;

use fcn_bandwidth::BandwidthEstimator;
use fcn_bench::{banner, fmt, RunOpts, Scale, PERFBENCH_SCHEMA};
use fcn_routing::engine::reference;
use fcn_routing::{
    plan_routes, route_compiled, route_compiled_at, route_events, route_events_at,
    route_sharded_pooled, CompiledNet, InjectionSchedule, PacketBatch, RouterConfig, RouterScratch,
    Strategy,
};
use fcn_topology::Machine;
use serde::Serialize;

/// One recorded measurement (see EXPERIMENTS.md for the schema).
#[derive(Debug, Serialize)]
struct Row {
    /// Row-format version ([`PERFBENCH_SCHEMA`]); the binary refuses to
    /// merge with a file whose rows carry a different (or no) tag.
    schema: String,
    /// Benchmark id (`route_reference`, `route_compiled`,
    /// `route_sharded_k{K}`, `route_events_{saturated,sparse,drain}`,
    /// `estimator_grid`, `planner`, `telemetry_overhead`).
    bench: String,
    /// Machine the benchmark ran on.
    machine: String,
    /// Processor count of that machine.
    n: usize,
    /// Hardware threads of the measuring host — throughput rows are only
    /// comparable across runners with this pinned next to them.
    cores: usize,
    /// Median wall time of the repetitions, in milliseconds.
    median_ms: f64,
    /// Bench-specific throughput; `unit` names what it measures.
    rate: f64,
    /// Unit of `rate`: `packets/tick` (delivery rate — router benches and
    /// the estimator's β̂), `node-ticks/s` (`route_sharded_k{K}` — the
    /// scaling curve's y-axis), `packets/ms` (planner), `ratio`
    /// (`telemetry_overhead`: disabled-telemetry over no-telemetry-baseline
    /// time; `< 1.01` is the "<1 % off overhead" budget), or `x-vs-tick`
    /// (`route_events_*`: tick-backend wall time over event-backend wall
    /// time on the identical workload).
    unit: String,
}

/// Hardware threads of this host, for the `cores` column.
fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
}

impl Row {
    fn new(bench: &str, machine: &Machine, median_ms: f64, rate: f64, unit: &str) -> Row {
        Row {
            schema: PERFBENCH_SCHEMA.to_string(),
            bench: bench.to_string(),
            machine: machine.name().to_string(),
            n: machine.processors(),
            cores: host_cores(),
            median_ms,
            rate,
            unit: unit.to_string(),
        }
    }
}

/// Median of `reps` wall-clock samples of `f`, plus `f`'s last return value.
fn timed(reps: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut rate = 0.0;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)] // bench binary: timing is the product
        let t = Instant::now();
        rate = f();
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], rate)
}

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let quick = opts.scale == Scale::Quick;
    let (side, reps) = if quick { (16, 3) } else { (64, 5) };
    let machine = Machine::mesh(2, side);
    let n = machine.processors();
    let traffic = machine.symmetric_traffic();

    banner(&format!(
        "perfbench: {} (n = {n}), {reps} reps{}",
        machine.name(),
        if quick { ", quick" } else { "" }
    ));

    // Saturation-scale batch shared by both router benches (8n packets, the
    // largest multiplier of the default estimator sweep).
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbe7c);
    let demands: Vec<_> = (0..8 * traffic.n())
        .map(|_| traffic.sample(&mut rng))
        .collect();
    let routes = plan_routes(&machine, &demands, Strategy::ShortestPath, 42);
    let cfg = RouterConfig::default();
    let mut rows = Vec::new();

    // Before: the retained pre-compilation simulator, rebuilding every wire
    // array and re-deriving every hop per call (the clone it needs to
    // consume its input happens outside the timer).
    let (ref_ms, ref_rate) = timed(reps, || {
        let out = reference::route_batch(&machine, routes.clone(), cfg);
        assert!(out.completed);
        out.rate()
    });
    println!(
        "route_reference : {:>9} ms   rate {}",
        fmt(ref_ms),
        fmt(ref_rate)
    );
    rows.push(Row::new(
        "route_reference",
        &machine,
        ref_ms,
        ref_rate,
        "packets/tick",
    ));

    // After: compile once, route many — the path every sweep now takes.
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &routes).expect("planner paths are walks");
    let mut scratch = RouterScratch::new();
    let (cmp_ms, cmp_rate) = timed(reps, || {
        let out = route_compiled(&net, &batch, cfg, &mut scratch);
        assert!(out.completed);
        out.rate()
    });
    println!(
        "route_compiled  : {:>9} ms   rate {}",
        fmt(cmp_ms),
        fmt(cmp_rate)
    );
    rows.push(Row::new(
        "route_compiled",
        &machine,
        cmp_ms,
        cmp_rate,
        "packets/tick",
    ));
    assert_eq!(
        ref_rate, cmp_rate,
        "the rewrite must not change a single bit"
    );
    println!(
        "speedup         : {:.2}x (reference / compiled)",
        ref_ms / cmp_ms
    );

    // Sharded-router scaling: the same batch through `route_sharded_pooled`
    // at K ∈ {1, 2, 4, 8}, reported as node-ticks simulated per second so
    // shard counts are comparable on one axis. The outcome is asserted
    // bit-identical to the sequential run at every K; the *throughput*
    // curve depends on the host's core count — on a single-core runner the
    // boundary exchange is pure overhead and the curve is flat-to-negative,
    // which is exactly what the committed numbers should say (see
    // EXPERIMENTS.md for the schema note).
    for k in [1usize, 2, 4, 8] {
        let (sh_ms, ticks) = timed(reps, || {
            let out = route_sharded_pooled(&net, &batch, cfg, k);
            assert_eq!(
                out.rate(),
                cmp_rate,
                "sharding must not change a single bit"
            );
            out.ticks as f64
        });
        let node_ticks_per_sec = n as f64 * ticks / (sh_ms / 1e3);
        println!(
            "route_sharded_k{k}: {:>9} ms   {} node-ticks/s",
            fmt(sh_ms),
            fmt(node_ticks_per_sec)
        );
        rows.push(Row::new(
            &format!("route_sharded_k{k}"),
            &machine,
            sh_ms,
            node_ticks_per_sec,
            "node-ticks/s",
        ));
    }

    // Event backend, three regimes. Each row's `rate` is the tick backend's
    // wall time over the event backend's on the identical workload
    // (`x-vs-tick`), with bit-identity asserted first — so the committed
    // numbers say where skip-ahead pays (sparse schedules, drain tails) and
    // what it costs where it can't (saturation: every tick has an arrival,
    // so the wheel is pure bookkeeping and the ratio should sit near 1).
    //
    // saturated: the headline 8n batch, all packets at tick 0.
    let (ev_sat_ms, _) = timed(reps, || {
        let out = route_events(&net, &batch, cfg, &mut scratch);
        assert_eq!(
            out.rate(),
            cmp_rate,
            "event backend must not change a single bit"
        );
        out.rate()
    });
    println!(
        "route_events_saturated: {:>3} ms   {:.2}x vs tick",
        fmt(ev_sat_ms),
        cmp_ms / ev_sat_ms
    );
    rows.push(Row::new(
        "route_events_saturated",
        &machine,
        ev_sat_ms,
        cmp_ms / ev_sat_ms,
        "x-vs-tick",
    ));

    // sparse: short local paths (distance-2 demands) injected one packet
    // every `stride` ticks — the tick loop grinds through the idle spans,
    // the event backend jumps them. Injection rate is far below 5 % of a
    // single wire's capacity, the regime the backend is for.
    let sparse_packets = if quick { 64 } else { 256 };
    let stride: u64 = 400;
    let sparse_demands: Vec<_> = (0..sparse_packets)
        .map(|p| {
            let src = ((p * 97) % n) as u32;
            let (hop, _) = machine
                .graph()
                .neighbors(src)
                .next()
                .expect("mesh nodes have neighbors");
            let dst = machine
                .graph()
                .neighbors(hop)
                .map(|(w, _)| w)
                .find(|&w| w != src)
                .expect("mesh nodes have a second hop");
            (src, dst)
        })
        .collect();
    let sparse_routes = plan_routes(&machine, &sparse_demands, Strategy::ShortestPath, 42);
    let sparse_batch = PacketBatch::compile(&net, &sparse_routes).expect("planner paths are walks");
    let sparse_sched =
        InjectionSchedule::new((0..sparse_packets as u64).map(|i| i * stride).collect());
    let tick_out = route_compiled_at(&net, &sparse_batch, &sparse_sched, cfg, &mut scratch, None);
    let ev_out = route_events_at(&net, &sparse_batch, &sparse_sched, cfg, &mut scratch, None);
    assert_eq!(
        tick_out, ev_out,
        "event backend must not change a single bit"
    );
    let (sp_tick_ms, _) = timed(reps, || {
        route_compiled_at(&net, &sparse_batch, &sparse_sched, cfg, &mut scratch, None).ticks as f64
    });
    let (sp_ev_ms, _) = timed(reps, || {
        route_events_at(&net, &sparse_batch, &sparse_sched, cfg, &mut scratch, None).ticks as f64
    });
    let sp_speedup = sp_tick_ms / sp_ev_ms;
    println!(
        "route_events_sparse   : {:>3} ms   {:.2}x vs tick ({} pkts / {} ticks)",
        fmt(sp_ev_ms),
        sp_speedup,
        sparse_packets,
        tick_out.ticks
    );
    if !quick {
        // The committed trajectory must show the backend earning its keep:
        // the ISSUE's acceptance bar is 3x on this exact workload.
        assert!(
            sp_speedup >= 3.0,
            "sparse event-backend speedup {sp_speedup:.2}x below the 3x acceptance bar"
        );
    }
    rows.push(Row::new(
        "route_events_sparse",
        &machine,
        sp_ev_ms,
        sp_speedup,
        "x-vs-tick",
    ));

    // drain: a saturated burst at tick 0 plus one straggler far out — the
    // tail between the burst draining and the straggler arriving is all
    // idle, and only the event backend skips it. The straggler sits deep
    // enough that the tail dominates the burst's wall time (an idle tick
    // costs ~10 ns; anything much closer than 10^6 ticks drowns in the
    // burst phase's noise).
    let drain_at: u64 = 2_000_000;
    let mut drain_demands: Vec<_> = demands.iter().take(2 * n).copied().collect();
    drain_demands.push(sparse_demands[0]);
    let drain_routes = plan_routes(&machine, &drain_demands, Strategy::ShortestPath, 42);
    let drain_batch = PacketBatch::compile(&net, &drain_routes).expect("planner paths are walks");
    let mut drain_ticks = vec![0u64; drain_demands.len() - 1];
    drain_ticks.push(drain_at);
    let drain_sched = InjectionSchedule::new(drain_ticks);
    let tick_out = route_compiled_at(&net, &drain_batch, &drain_sched, cfg, &mut scratch, None);
    let ev_out = route_events_at(&net, &drain_batch, &drain_sched, cfg, &mut scratch, None);
    assert_eq!(
        tick_out, ev_out,
        "event backend must not change a single bit"
    );
    let (dr_tick_ms, _) = timed(reps, || {
        route_compiled_at(&net, &drain_batch, &drain_sched, cfg, &mut scratch, None).ticks as f64
    });
    let (dr_ev_ms, _) = timed(reps, || {
        route_events_at(&net, &drain_batch, &drain_sched, cfg, &mut scratch, None).ticks as f64
    });
    println!(
        "route_events_drain    : {:>3} ms   {:.2}x vs tick (straggler at {})",
        fmt(dr_ev_ms),
        dr_tick_ms / dr_ev_ms,
        drain_at
    );
    rows.push(Row::new(
        "route_events_drain",
        &machine,
        dr_ev_ms,
        dr_tick_ms / dr_ev_ms,
        "x-vs-tick",
    ));

    // The estimator's full trials × multipliers grid — the workload the
    // tables actually pay for.
    let est = BandwidthEstimator {
        multipliers: if quick { vec![2, 4] } else { vec![2, 4, 8] },
        trials: 2,
        seed: 0xbead,
        ..Default::default()
    };
    let (est_ms, est_rate) = timed(reps.min(3), || est.estimate(&machine, &traffic).rate);
    println!(
        "estimator_grid  : {:>9} ms   β̂   {}",
        fmt(est_ms),
        fmt(est_rate)
    );
    rows.push(Row::new(
        "estimator_grid",
        &machine,
        est_ms,
        est_rate,
        "packets/tick",
    ));

    // Planner throughput (BFS shortest paths), packets per millisecond.
    let (plan_ms, planned) = timed(reps, || {
        plan_routes(&machine, &demands, Strategy::ShortestPath, 42).len() as f64
    });
    println!(
        "planner         : {:>9} ms   {} packets/ms",
        fmt(plan_ms),
        fmt(planned / plan_ms)
    );
    rows.push(Row::new(
        "planner",
        &machine,
        plan_ms,
        planned / plan_ms,
        "packets/ms",
    ));

    // Telemetry overhead: the committed proof that the fcn-telemetry
    // instrumentation's *disabled* path (the state every simulation-facing
    // caller sees by default) costs < 1 % on the compiled router. Both
    // arms run the identical disabled code, *interleaved* rep by rep so
    // clock drift and thermal state hit them equally — the ratio isolates
    // the off path's cost against the headline `route_compiled` timing
    // instead of measuring how much the machine warmed up in between. The
    // enabled arm rides along, interleaved too, for information.
    let reg = fcn_telemetry::global();
    let was_enabled = reg.enabled();
    let overhead_reps = if quick { 3 } else { 11 };
    let mut base_ts = Vec::with_capacity(overhead_reps);
    let mut off_ts = Vec::with_capacity(overhead_reps);
    let mut on_ts = Vec::with_capacity(overhead_reps);
    for rep in 0..overhead_reps {
        let mut arm = |samples: &mut Vec<f64>| {
            #[allow(clippy::disallowed_methods)] // bench binary: timing is the product
            let t = Instant::now();
            let out = route_compiled(&net, &batch, cfg, &mut scratch);
            samples.push(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                out.rate(),
                cmp_rate,
                "telemetry must not change a single bit"
            );
        };
        // ABBA ordering: alternate which disabled arm goes first, so a
        // monotone within-rep drift (turbo decay, cache warming) biases
        // both arms equally instead of always penalizing the second slot.
        reg.set_enabled(false);
        if rep % 2 == 0 {
            arm(&mut base_ts);
            arm(&mut off_ts);
        } else {
            arm(&mut off_ts);
            arm(&mut base_ts);
        }
        reg.set_enabled(true);
        arm(&mut on_ts);
    }
    reg.set_enabled(was_enabled);
    if !was_enabled {
        // Drop the shard the enabled arm accumulated so a later
        // `--metrics-out` snapshot only reports intended collection.
        let _ = fcn_telemetry::take_shard();
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (base_ms, off_ms, on_ms) = (median(base_ts), median(off_ts), median(on_ts));
    let overhead = off_ms / base_ms;
    println!(
        "telemetry_off   : {:>9} ms   {:.4}x vs interleaved baseline (budget < 1.01)",
        fmt(off_ms),
        overhead
    );
    println!(
        "telemetry_on    : {:>9} ms   {:.4}x vs interleaved baseline (info only)",
        fmt(on_ms),
        on_ms / base_ms
    );
    rows.push(Row::new(
        "telemetry_overhead",
        &machine,
        off_ms,
        overhead,
        "ratio",
    ));

    let path = if quick {
        let dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        dir.join("BENCH_router.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_router.json")
    };
    // Validate whatever is already on disk before merging: rows written
    // under a different (or pre-versioned) schema would silently mix
    // incompatible measurements, so a mismatch is a hard error.
    let existing = match std::fs::read_to_string(&path) {
        Ok(body) => match fcn_bench::validate_bench_rows(&body) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("error: existing {} is not mergeable: {e}", path.display());
                std::process::exit(2);
            }
        },
        Err(_) => Vec::new(),
    };
    let fresh: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            let line = serde_json::to_string(r).expect("row serializes");
            (r.bench.clone(), line)
        })
        .collect();
    let body = fcn_bench::merge_bench_rows(&existing, &fresh);
    std::fs::write(&path, body).expect("write bench rows");
    println!("\nwrote {} rows to {}", rows.len(), path.display());
}
