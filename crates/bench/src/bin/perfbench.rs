//! `perfbench` — the repo's performance trajectory, in one tier-1-friendly
//! binary.
//!
//! Times the hot paths that dominate every table regeneration — the tick
//! simulator (both the retained pre-compilation reference and the
//! compile-once/run-many pipeline), the operational estimator grid, and the
//! route planner — and records `{bench, machine, n, median_ms, rate}` rows
//! so speedups and regressions are visible across PRs (schema in
//! EXPERIMENTS.md).
//!
//! * default: saturation scale (mesh2(64), 8n packets), writes
//!   `BENCH_router.json` at the repo root — the committed trajectory;
//! * `--quick`: CI smoke scale, writes `target/BENCH_router.quick.json`
//!   so a smoke run never clobbers the committed numbers.

use std::time::Instant;

use fcn_bandwidth::BandwidthEstimator;
use fcn_bench::{banner, fmt, RunOpts, Scale, PERFBENCH_SCHEMA};
use fcn_routing::engine::reference;
use fcn_routing::{
    plan_routes, route_compiled, route_sharded_pooled, CompiledNet, PacketBatch, RouterConfig,
    RouterScratch, Strategy,
};
use fcn_topology::Machine;
use serde::Serialize;

/// One recorded measurement (see EXPERIMENTS.md for the schema).
#[derive(Debug, Serialize)]
struct Row {
    /// Row-format version ([`PERFBENCH_SCHEMA`]); the binary refuses to
    /// merge with a file whose rows carry a different (or no) tag.
    schema: String,
    /// Benchmark id (`route_reference`, `route_compiled`,
    /// `route_sharded_k{K}`, `estimator_grid`, `planner`,
    /// `telemetry_overhead`).
    bench: String,
    /// Machine the benchmark ran on.
    machine: String,
    /// Processor count of that machine.
    n: usize,
    /// Median wall time of the repetitions, in milliseconds.
    median_ms: f64,
    /// Bench-specific throughput: delivery rate (router benches),
    /// node-ticks simulated per second (`route_sharded_k{K}` — the scaling
    /// curve's y-axis), β̂ (estimator), packets planned per millisecond
    /// (planner), or the disabled-telemetry/no-telemetry-baseline time
    /// ratio (`telemetry_overhead`; `< 1.01` is the "<1 % off overhead"
    /// budget).
    rate: f64,
}

impl Row {
    fn new(bench: &str, machine: &Machine, median_ms: f64, rate: f64) -> Row {
        Row {
            schema: PERFBENCH_SCHEMA.to_string(),
            bench: bench.to_string(),
            machine: machine.name().to_string(),
            n: machine.processors(),
            median_ms,
            rate,
        }
    }
}

/// Median of `reps` wall-clock samples of `f`, plus `f`'s last return value.
fn timed(reps: usize, mut f: impl FnMut() -> f64) -> (f64, f64) {
    assert!(reps >= 1);
    let mut times = Vec::with_capacity(reps);
    let mut rate = 0.0;
    for _ in 0..reps {
        #[allow(clippy::disallowed_methods)] // bench binary: timing is the product
        let t = Instant::now();
        rate = f();
        times.push(t.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (times[times.len() / 2], rate)
}

fn main() {
    let opts = RunOpts::from_args();
    let _tele = fcn_bench::telemetry(&opts);
    let quick = opts.scale == Scale::Quick;
    let (side, reps) = if quick { (16, 3) } else { (64, 5) };
    let machine = Machine::mesh(2, side);
    let n = machine.processors();
    let traffic = machine.symmetric_traffic();

    banner(&format!(
        "perfbench: {} (n = {n}), {reps} reps{}",
        machine.name(),
        if quick { ", quick" } else { "" }
    ));

    // Saturation-scale batch shared by both router benches (8n packets, the
    // largest multiplier of the default estimator sweep).
    use rand::SeedableRng as _;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbe7c);
    let demands: Vec<_> = (0..8 * traffic.n())
        .map(|_| traffic.sample(&mut rng))
        .collect();
    let routes = plan_routes(&machine, &demands, Strategy::ShortestPath, 42);
    let cfg = RouterConfig::default();
    let mut rows = Vec::new();

    // Before: the retained pre-compilation simulator, rebuilding every wire
    // array and re-deriving every hop per call (the clone it needs to
    // consume its input happens outside the timer).
    let (ref_ms, ref_rate) = timed(reps, || {
        let out = reference::route_batch(&machine, routes.clone(), cfg);
        assert!(out.completed);
        out.rate()
    });
    println!(
        "route_reference : {:>9} ms   rate {}",
        fmt(ref_ms),
        fmt(ref_rate)
    );
    rows.push(Row::new("route_reference", &machine, ref_ms, ref_rate));

    // After: compile once, route many — the path every sweep now takes.
    let net = CompiledNet::compile(&machine);
    let batch = PacketBatch::compile(&net, &routes).expect("planner paths are walks");
    let mut scratch = RouterScratch::new();
    let (cmp_ms, cmp_rate) = timed(reps, || {
        let out = route_compiled(&net, &batch, cfg, &mut scratch);
        assert!(out.completed);
        out.rate()
    });
    println!(
        "route_compiled  : {:>9} ms   rate {}",
        fmt(cmp_ms),
        fmt(cmp_rate)
    );
    rows.push(Row::new("route_compiled", &machine, cmp_ms, cmp_rate));
    assert_eq!(
        ref_rate, cmp_rate,
        "the rewrite must not change a single bit"
    );
    println!(
        "speedup         : {:.2}x (reference / compiled)",
        ref_ms / cmp_ms
    );

    // Sharded-router scaling: the same batch through `route_sharded_pooled`
    // at K ∈ {1, 2, 4, 8}, reported as node-ticks simulated per second so
    // shard counts are comparable on one axis. The outcome is asserted
    // bit-identical to the sequential run at every K; the *throughput*
    // curve depends on the host's core count — on a single-core runner the
    // boundary exchange is pure overhead and the curve is flat-to-negative,
    // which is exactly what the committed numbers should say (see
    // EXPERIMENTS.md for the schema note).
    for k in [1usize, 2, 4, 8] {
        let (sh_ms, ticks) = timed(reps, || {
            let out = route_sharded_pooled(&net, &batch, cfg, k);
            assert_eq!(
                out.rate(),
                cmp_rate,
                "sharding must not change a single bit"
            );
            out.ticks as f64
        });
        let node_ticks_per_sec = n as f64 * ticks / (sh_ms / 1e3);
        println!(
            "route_sharded_k{k}: {:>9} ms   {} node-ticks/s",
            fmt(sh_ms),
            fmt(node_ticks_per_sec)
        );
        rows.push(Row::new(
            &format!("route_sharded_k{k}"),
            &machine,
            sh_ms,
            node_ticks_per_sec,
        ));
    }

    // The estimator's full trials × multipliers grid — the workload the
    // tables actually pay for.
    let est = BandwidthEstimator {
        multipliers: if quick { vec![2, 4] } else { vec![2, 4, 8] },
        trials: 2,
        seed: 0xbead,
        ..Default::default()
    };
    let (est_ms, est_rate) = timed(reps.min(3), || est.estimate(&machine, &traffic).rate);
    println!(
        "estimator_grid  : {:>9} ms   β̂   {}",
        fmt(est_ms),
        fmt(est_rate)
    );
    rows.push(Row::new("estimator_grid", &machine, est_ms, est_rate));

    // Planner throughput (BFS shortest paths), packets per millisecond.
    let (plan_ms, planned) = timed(reps, || {
        plan_routes(&machine, &demands, Strategy::ShortestPath, 42).len() as f64
    });
    println!(
        "planner         : {:>9} ms   {} packets/ms",
        fmt(plan_ms),
        fmt(planned / plan_ms)
    );
    rows.push(Row::new("planner", &machine, plan_ms, planned / plan_ms));

    // Telemetry overhead: the committed proof that the fcn-telemetry
    // instrumentation's *disabled* path (the state every simulation-facing
    // caller sees by default) costs < 1 % on the compiled router. Both
    // arms run the identical disabled code, *interleaved* rep by rep so
    // clock drift and thermal state hit them equally — the ratio isolates
    // the off path's cost against the headline `route_compiled` timing
    // instead of measuring how much the machine warmed up in between. The
    // enabled arm rides along, interleaved too, for information.
    let reg = fcn_telemetry::global();
    let was_enabled = reg.enabled();
    let overhead_reps = if quick { 3 } else { 11 };
    let mut base_ts = Vec::with_capacity(overhead_reps);
    let mut off_ts = Vec::with_capacity(overhead_reps);
    let mut on_ts = Vec::with_capacity(overhead_reps);
    for rep in 0..overhead_reps {
        let mut arm = |samples: &mut Vec<f64>| {
            #[allow(clippy::disallowed_methods)] // bench binary: timing is the product
            let t = Instant::now();
            let out = route_compiled(&net, &batch, cfg, &mut scratch);
            samples.push(t.elapsed().as_secs_f64() * 1e3);
            assert_eq!(
                out.rate(),
                cmp_rate,
                "telemetry must not change a single bit"
            );
        };
        // ABBA ordering: alternate which disabled arm goes first, so a
        // monotone within-rep drift (turbo decay, cache warming) biases
        // both arms equally instead of always penalizing the second slot.
        reg.set_enabled(false);
        if rep % 2 == 0 {
            arm(&mut base_ts);
            arm(&mut off_ts);
        } else {
            arm(&mut off_ts);
            arm(&mut base_ts);
        }
        reg.set_enabled(true);
        arm(&mut on_ts);
    }
    reg.set_enabled(was_enabled);
    if !was_enabled {
        // Drop the shard the enabled arm accumulated so a later
        // `--metrics-out` snapshot only reports intended collection.
        let _ = fcn_telemetry::take_shard();
    }
    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (base_ms, off_ms, on_ms) = (median(base_ts), median(off_ts), median(on_ts));
    let overhead = off_ms / base_ms;
    println!(
        "telemetry_off   : {:>9} ms   {:.4}x vs interleaved baseline (budget < 1.01)",
        fmt(off_ms),
        overhead
    );
    println!(
        "telemetry_on    : {:>9} ms   {:.4}x vs interleaved baseline (info only)",
        fmt(on_ms),
        on_ms / base_ms
    );
    rows.push(Row::new("telemetry_overhead", &machine, off_ms, overhead));

    let path = if quick {
        let dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        std::fs::create_dir_all(&dir).expect("create target dir");
        dir.join("BENCH_router.quick.json")
    } else {
        std::path::PathBuf::from("BENCH_router.json")
    };
    // Validate whatever is already on disk before merging: rows written
    // under a different (or pre-versioned) schema would silently mix
    // incompatible measurements, so a mismatch is a hard error.
    let existing = match std::fs::read_to_string(&path) {
        Ok(body) => match fcn_bench::validate_bench_rows(&body) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("error: existing {} is not mergeable: {e}", path.display());
                std::process::exit(2);
            }
        },
        Err(_) => Vec::new(),
    };
    let fresh: Vec<(String, String)> = rows
        .iter()
        .map(|r| {
            let line = serde_json::to_string(r).expect("row serializes");
            (r.bench.clone(), line)
        })
        .collect();
    let body = fcn_bench::merge_bench_rows(&existing, &fresh);
    std::fs::write(&path, body).expect("write bench rows");
    println!("\nwrote {} rows to {}", rows.len(), path.display());
}
